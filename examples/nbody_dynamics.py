"""Self-gravitating N-body dynamics with FMM forces and plan patching.

Uses the dual-kernel path — expansions built once per step with the
Laplace kernel, forces read out with the Laplace *gradient* kernel — to
drive a leapfrog (kick-drift-kick) integrator.  A compact satellite
sub-cluster (5% of the points) falls through a static Plummer halo, the
classic rigid-background approximation: only the satellite moves, so
each step is exactly the bounded-motion regime the incremental geometry
path targets.  Instead of rebuilding tree, lists and evaluation plan
from scratch every step, the example calls
:meth:`~repro.core.fmm.Fmm.update_plan` (Morton delta-sort + dirty
subtree rebuild) and :meth:`~repro.core.fmm.Fmm.patch_eval_plan`
(kernel-matrix reuse for every untouched box) and prints the per-step
patch-vs-recompile timings; the first step also bit-compares the two.

Run:  python examples/nbody_dynamics.py
"""

import time

import numpy as np

from repro import Fmm
from repro.datasets import plummer_cluster
from repro.kernels.gradients import LaplaceGradientKernel

G4PI = 4.0 * np.pi  # cancels the kernel's 1/(4 pi) so G = 1


def total_energy(fmm_pot, pos, vel, mass, plan=None, eval_plan=None):
    phi = -G4PI * fmm_pot.evaluate(pos, mass, plan=plan, eval_plan=eval_plan)
    kinetic = 0.5 * float(mass @ (vel**2).sum(axis=1))
    potential = 0.5 * float(mass @ phi)
    return kinetic + potential


def main() -> None:
    n_halo, n_sat, steps, dt, eps = 3800, 200, 8, 2e-4, 0.02
    n = n_halo + n_sat
    rng = np.random.default_rng(12)
    halo = plummer_cluster(n_halo, seed=12, scale=0.05)
    # compact satellite, offset from the halo centre, falling inward
    sat = plummer_cluster(n_sat, seed=13, scale=0.008) + 0.22
    pos = np.clip(np.vstack([halo, sat]), 1e-9, 1 - 1e-9)
    mass = np.full(n, 1.0 / n)
    moving = np.arange(n_halo, n)  # only the satellite integrates
    vel = np.zeros((n, 3))
    vel[moving] = 0.05 * rng.standard_normal((n_sat, 3)) - 0.08

    from repro.kernels import LaplaceKernel

    fmm_force = Fmm(LaplaceKernel(softening=eps), order=6,
                    max_points_per_box=50,
                    eval_kernel=LaplaceGradientKernel(softening=eps))
    fmm_pot = Fmm(LaplaceKernel(softening=eps), order=6,
                  max_points_per_box=50)

    plan = fmm_force.plan(pos)
    eplan = fmm_force.compile_eval_plan(plan)
    e0 = total_energy(fmm_pot, pos, vel, mass)
    print(f"N={n} Plummer halo + {n_sat}-body satellite, leapfrog dt={dt}, "
          f"{steps} steps")
    print(f"initial energy E0 = {e0:.6f}")

    def accel(pos, plan, eplan):
        g = fmm_force.evaluate(pos, mass,
                               plan=plan, eval_plan=eplan).reshape(-1, 3)
        return -G4PI * g  # a = -grad(Phi), Phi = -G sum m/r

    acc = accel(pos, plan, eplan)
    t_patch_total = t_full_total = 0.0
    for step in range(steps):
        vel[moving] += 0.5 * dt * acc[moving]  # kick (satellite only)
        pos = pos.copy()
        pos[moving] = np.clip(pos[moving] + dt * vel[moving],
                              1e-9, 1 - 1e-9)  # drift

        # incremental geometry: delta-sort the moved rows, rebuild the
        # dirty subtrees, patch the compiled plan (bit-identical)
        t0 = time.perf_counter()
        new_plan, delta = fmm_force.update_plan(plan, pos, moved=moving)
        new_eplan = fmm_force.patch_eval_plan(eplan, plan, new_plan,
                                              delta=delta)
        t_patch = time.perf_counter() - t0

        # from-scratch rebuild, for the timing comparison (and, on the
        # first step, a bitwise identity check of the two answers)
        t0 = time.perf_counter()
        ref_plan = fmm_force.plan(pos)
        ref_eplan = fmm_force.compile_eval_plan(ref_plan)
        t_full = time.perf_counter() - t0
        t_patch_total += t_patch
        t_full_total += t_full

        plan, eplan = new_plan, new_eplan
        acc = accel(pos, plan, eplan)
        if step == 0:
            ref = -G4PI * fmm_force.evaluate(
                pos, mass, plan=ref_plan, eval_plan=ref_eplan
            ).reshape(-1, 3)
            assert np.array_equal(acc, ref), "patched plan diverged"
            print("step 1: patched plan bit-identical to fresh rebuild")
        vel[moving] += 0.5 * dt * acc[moving]  # kick

        print(f"step {step + 1}: geometry update {t_patch * 1e3:.0f} ms "
              f"(full rebuild {t_full * 1e3:.0f} ms, "
              f"{t_full / max(t_patch, 1e-12):.1f}x)")

    e1 = total_energy(fmm_pot, pos, vel, mass)
    drift = abs(e1 - e0) / abs(e0)
    print(f"relative energy drift after {steps} steps: {drift:.2e}")
    print(f"geometry updates: {t_patch_total:.2f}s patched vs "
          f"{t_full_total:.2f}s from scratch "
          f"({t_full_total / max(t_patch_total, 1e-12):.1f}x)")


if __name__ == "__main__":
    main()
