"""Self-gravitating N-body dynamics with FMM forces.

Uses the dual-kernel path — expansions built once per step with the
Laplace kernel, forces read out with the Laplace *gradient* kernel — to
drive a leapfrog (kick-drift-kick) integrator on a Plummer cluster.  The
O(N) force evaluation is what made tree codes and FMMs the backbone of
computational astrophysics; energy drift over the short run checks the
force field's consistency.

Run:  python examples/nbody_dynamics.py
"""

import numpy as np

from repro import Fmm
from repro.datasets import plummer_cluster
from repro.kernels.gradients import LaplaceGradientKernel

G4PI = 4.0 * np.pi  # cancels the kernel's 1/(4 pi) so G = 1


def accelerations(fmm_force, fmm_pot, pos, mass):
    g = fmm_force.evaluate(pos, mass).reshape(-1, 3)
    return -G4PI * g  # a = -grad(Phi), Phi = -G sum m/r


def total_energy(fmm_pot, pos, vel, mass):
    phi = -G4PI * fmm_pot.evaluate(pos, mass)
    kinetic = 0.5 * float(mass @ (vel**2).sum(axis=1))
    potential = 0.5 * float(mass @ phi)
    return kinetic + potential


def main() -> None:
    n, steps, dt, eps = 2000, 10, 2e-4, 0.02
    rng = np.random.default_rng(12)
    pos = plummer_cluster(n, seed=12, scale=0.05)
    mass = np.full(n, 1.0 / n)
    vel = 0.05 * rng.standard_normal((n, 3))

    # Plummer-softened kernels: collisionless dynamics, as in production
    # N-body codes (the softened pair matches potential and force).
    from repro.kernels import LaplaceKernel

    fmm_force = Fmm(LaplaceKernel(softening=eps), order=6,
                    max_points_per_box=50,
                    eval_kernel=LaplaceGradientKernel(softening=eps))
    fmm_pot = Fmm(LaplaceKernel(softening=eps), order=6,
                  max_points_per_box=50)

    e0 = total_energy(fmm_pot, pos, vel, mass)
    print(f"N={n} Plummer cluster, leapfrog dt={dt}, {steps} steps")
    print(f"initial energy E0 = {e0:.6f}")

    acc = accelerations(fmm_force, fmm_pot, pos, mass)
    for step in range(steps):
        vel += 0.5 * dt * acc  # kick
        pos = np.clip(pos + dt * vel, 1e-9, 1 - 1e-9)  # drift
        acc = accelerations(fmm_force, fmm_pot, pos, mass)
        vel += 0.5 * dt * acc  # kick
        if (step + 1) % 4 == 0:
            e = total_energy(fmm_pot, pos, vel, mass)
            print(f"step {step + 1}: E = {e:.6f}  (drift {abs(e - e0) / abs(e0):.2e})")

    e1 = total_energy(fmm_pot, pos, vel, mass)
    drift = abs(e1 - e0) / abs(e0)
    print(f"relative energy drift after {steps} steps: {drift:.2e}")
    print("(symplectic leapfrog + consistent FMM forces keep the drift small)")


if __name__ == "__main__":
    main()
