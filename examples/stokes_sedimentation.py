"""Stokes sedimentation: velocities of particles settling in viscous flow.

The paper's production kernel is the Stokes single layer ("related to our
target applications (fluid mechanics)", 3 unknowns per point).  Here a
cloud of point forces — gravity acting on a particle suspension on the
surface of a 1:1:4 ellipsoid, the paper's nonuniform geometry — induces
velocities through the Stokeslet; the FMM evaluates all N mutual
interactions.

Run:  python examples/stokes_sedimentation.py
"""

import numpy as np

from repro import Fmm, direct_sum, get_kernel
from repro.datasets import ellipsoid_surface


def main() -> None:
    n = 3000
    points = ellipsoid_surface(n, seed=11)
    # unit gravitational force density, pointing down in z
    forces = np.zeros((n, 3))
    forces[:, 2] = -1.0 / n

    kernel = get_kernel("stokes", viscosity=1.0)
    fmm = Fmm(kernel=kernel, order=6, max_points_per_box=50)
    velocity = fmm.evaluate(points, forces.reshape(-1)).reshape(-1, 3)

    sample = np.random.default_rng(1).choice(n, 200, replace=False)
    exact = direct_sum(
        kernel, points[sample], points, forces.reshape(-1)
    ).reshape(-1, 3)
    err = np.linalg.norm(velocity[sample] - exact) / np.linalg.norm(exact)

    mean_v = velocity.mean(axis=0)
    print(f"N = {n} Stokeslets on a 1:1:4 ellipsoid surface")
    print(f"mean settling velocity  = {mean_v[2]: .4e} (z), "
          f"lateral drift = ({mean_v[0]: .1e}, {mean_v[1]: .1e})")
    print(f"fastest / slowest particle: {velocity[:, 2].min(): .3e} / "
          f"{velocity[:, 2].max(): .3e}")
    print(f"spot check vs direct Stokeslet sum: rel err {err:.1e}")
    print()
    print("Particles at the crowded poles settle faster than stragglers at")
    print("the equator — collective hydrodynamic screening, resolved here")
    print("with O(N) work.")


if __name__ == "__main__":
    main()
