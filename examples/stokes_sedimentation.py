"""Stokes sedimentation: a particle cloud settling through a static bed.

The paper's production kernel is the Stokes single layer ("related to our
target applications (fluid mechanics)", 3 unknowns per point).  A compact
cloud of point forces — gravity acting on a particle suspension — settles
through quiescent fluid above a dense static bed of Stokeslets on the
surface of a 1:1:4 ellipsoid, the paper's nonuniform geometry.  Each time
step advects only the cloud (explicit Euler on the Stokeslet velocities),
so the geometry change is small and localized: instead of rebuilding
tree, lists and evaluation plan from scratch, the loop steps via
:meth:`~repro.core.fmm.Fmm.update_plan` +
:meth:`~repro.core.fmm.Fmm.patch_eval_plan` and prints per-step
patch-vs-recompile timings (the first step bit-compares both answers).

Run:  python examples/stokes_sedimentation.py
"""

import time

import numpy as np

from repro import Fmm, direct_sum, get_kernel
from repro.datasets import ellipsoid_surface


def main() -> None:
    n_bed, n_cloud, steps, dt = 2800, 200, 6, 0.06
    n = n_bed + n_cloud
    rng = np.random.default_rng(11)
    bed = ellipsoid_surface(n_bed, seed=11)
    # compact falling cloud above the ellipsoid's upper pole
    cloud = 0.04 * rng.standard_normal((n_cloud, 3)) + (0.5, 0.5, 0.93)
    points = np.clip(np.vstack([bed, cloud]), 1e-9, 1 - 1e-9)
    moving = np.arange(n_bed, n)
    # unit gravitational force density on the cloud, pointing down in z;
    # the bed is rigid (no net force, pure hydrodynamic screening)
    forces = np.zeros((n, 3))
    forces[moving, 2] = -1.0 / n_cloud

    kernel = get_kernel("stokes", viscosity=1.0)
    fmm = Fmm(kernel=kernel, order=6, max_points_per_box=50)
    plan = fmm.plan(points)
    eplan = fmm.compile_eval_plan(plan)
    velocity = fmm.evaluate(points, forces.reshape(-1), plan=plan,
                            eval_plan=eplan).reshape(-1, 3)

    sample = rng.choice(n, 200, replace=False)
    exact = direct_sum(
        kernel, points[sample], points, forces.reshape(-1)
    ).reshape(-1, 3)
    err = np.linalg.norm(velocity[sample] - exact) / np.linalg.norm(exact)
    print(f"N = {n} Stokeslets ({n_bed} static bed + {n_cloud} cloud)")
    print(f"initial cloud settling velocity = "
          f"{velocity[moving, 2].mean(): .4e} (z)")
    print(f"spot check vs direct Stokeslet sum: rel err {err:.1e}")

    t_patch_total = t_full_total = 0.0
    for step in range(steps):
        points = points.copy()
        points[moving] = np.clip(
            points[moving] + dt * velocity[moving], 1e-9, 1 - 1e-9
        )

        # incremental geometry: only the cloud's subtrees are dirty
        t0 = time.perf_counter()
        new_plan, delta = fmm.update_plan(plan, points, moved=moving)
        new_eplan = fmm.patch_eval_plan(eplan, plan, new_plan, delta=delta)
        t_patch = time.perf_counter() - t0

        t0 = time.perf_counter()
        ref_plan = fmm.plan(points)
        ref_eplan = fmm.compile_eval_plan(ref_plan)
        t_full = time.perf_counter() - t0
        t_patch_total += t_patch
        t_full_total += t_full

        plan, eplan = new_plan, new_eplan
        velocity = fmm.evaluate(points, forces.reshape(-1), plan=plan,
                                eval_plan=eplan).reshape(-1, 3)
        if step == 0:
            ref = fmm.evaluate(points, forces.reshape(-1), plan=ref_plan,
                               eval_plan=ref_eplan).reshape(-1, 3)
            assert np.array_equal(velocity, ref), "patched plan diverged"
            print("step 1: patched plan bit-identical to fresh rebuild")
        print(f"step {step + 1}: cloud z = {points[moving, 2].mean():.3f}, "
              f"v_z = {velocity[moving, 2].mean(): .3e}; geometry update "
              f"{t_patch * 1e3:.0f} ms (full rebuild {t_full * 1e3:.0f} ms, "
              f"{t_full / max(t_patch, 1e-12):.1f}x)")

    print()
    print(f"geometry updates: {t_patch_total:.2f}s patched vs "
          f"{t_full_total:.2f}s from scratch "
          f"({t_full_total / max(t_patch_total, 1e-12):.1f}x)")
    print("The cloud settles faster than an isolated Stokeslet would —")
    print("collective hydrodynamic screening, resolved with O(N) work and")
    print("O(moved) geometry updates per step.")


if __name__ == "__main__":
    main()
