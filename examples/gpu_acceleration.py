"""CPU vs virtual-GPU evaluation of the same FMM plan.

Reproduces the paper's §IV setup on one (virtual) Tesla S1070: S2U, the
frequency-space diagonal V-list translation, D2T and the Algorithm 4
U-list run on the device; the tree walks stay on the CPU.  Prints the
device ledger and the modelled speedup over a CPU-only evaluation at the
paper's GPU-friendly points-per-box setting (q ~ 400).

Run:  python examples/gpu_acceleration.py
"""

import numpy as np

from repro import GpuFmmEvaluator, get_kernel
from repro.core import build_lists, build_tree
from repro.core.evaluator import FmmEvaluator
from repro.datasets import uniform_cube
from repro.mpi import LINCOLN
from repro.perf.model import EVAL_PHASES
from repro.util.timer import PhaseProfile


def main() -> None:
    n, q = 60_000, 400
    points = uniform_cube(n, seed=9)
    charges = np.random.default_rng(4).standard_normal(n)
    kernel = get_kernel("laplace")

    tree = build_tree(points, q)
    lists = build_lists(tree)
    dens = charges[tree.order]

    cpu_prof = PhaseProfile()
    p_cpu = FmmEvaluator(kernel, 6).evaluate(tree, lists, dens, cpu_prof)

    gpu_ev = GpuFmmEvaluator(kernel, 6)
    gpu_prof = PhaseProfile()
    p_gpu = gpu_ev.evaluate(tree, lists, dens, gpu_prof)

    err = np.linalg.norm(p_gpu - p_cpu) / np.linalg.norm(p_cpu)
    print(f"N={n}, q={q}: GPU(single) vs CPU(double) rel diff {err:.1e}")
    print()
    led = gpu_ev.gpu.ledger
    print("device ledger (modelled):")
    for ph in ("S2U", "VLI", "D2T", "ULI"):
        print(f"  {ph:4s}: kernels {led.kernel_seconds.get(ph, 0) * 1e3:8.2f} ms, "
              f"transfers {led.transfer_seconds.get(ph, 0) * 1e3:7.2f} ms, "
              f"{led.kernel_flops.get(ph, 0):.2e} flops")

    cpu_total = sum(
        LINCOLN.compute_seconds(cpu_prof.events[ph].flops)
        for ph in EVAL_PHASES
        if ph in cpu_prof.events
    )
    gpu_residual = sum(
        LINCOLN.compute_seconds(gpu_prof.events[ph].flops)
        for ph in ("U2U", "D2D", "WLI", "XLI")
        if ph in gpu_prof.events
    ) + LINCOLN.fft_seconds(gpu_prof.events["VLI"].flops)
    gpu_total = led.total_seconds() + gpu_residual
    print()
    print(f"modelled CPU-only evaluation: {cpu_total:8.3f} s")
    print(f"modelled GPU/CPU evaluation:  {gpu_total:8.3f} s "
          f"(device {led.total_seconds():.3f} s + host {gpu_residual:.3f} s)")
    print(f"modelled speedup: {cpu_total / gpu_total:.1f}x "
          f"(paper: ~25-30x at 1M points/GPU)")


if __name__ == "__main__":
    main()
