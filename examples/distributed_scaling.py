"""Distributed FMM on the simulated MPI runtime.

Runs the full §III machinery — parallel sample sort, distributed tree
construction, LET exchange (Algorithm 2), work-based load balancing and
the hypercube reduce-scatter (Algorithm 3) — on 8 virtual ranks, checks
the result against direct summation, and prints the modelled per-phase
times a Kraken-class machine would take.

Run:  python examples/distributed_scaling.py
"""

import numpy as np

from repro import direct_sum, get_kernel, run_spmd
from repro.datasets import ellipsoid_surface
from repro.dist.driver import distributed_fmm_rank
from repro.mpi import KRAKEN
from repro.perf import evaluation_phase_times, phase_breakdown_table


def main() -> None:
    n, p = 8000, 8
    points = ellipsoid_surface(n, seed=5)

    def density(pts):
        return np.sin(12 * pts[:, 0]) * pts[:, 2]

    result = run_spmd(
        p,
        distributed_fmm_rank,
        points,
        density,
        kernel="laplace",
        order=6,
        max_points_per_box=50,
        load_balance=True,
    )
    owned = np.concatenate([v[0] for v in result.values])
    potential = np.concatenate([v[1] for v in result.values])
    assert len(owned) == n, "points conserved across ranks"

    sample = np.random.default_rng(2).choice(n, 300, replace=False)
    exact = direct_sum(get_kernel("laplace"), owned[sample], owned, density(owned))
    err = np.linalg.norm(potential[sample] - exact) / np.linalg.norm(exact)
    print(f"{p} virtual ranks, N={n} (1:1:4 ellipsoid), rel err {err:.1e}")
    print()
    rows = evaluation_phase_times(result.profiles, KRAKEN)
    print(phase_breakdown_table(rows, title="Modelled evaluation phases (Kraken constants)"))
    print()
    comm = [c.bytes_sent for c in result.comms]
    print(f"bytes sent per rank: min {min(comm)}, max {max(comm)}")
    flops = result.phase_flops("ULI")
    print(f"ULI flops imbalance (max/avg): "
          f"{max(flops) / (sum(flops) / len(flops)):.2f}")


if __name__ == "__main__":
    main()
