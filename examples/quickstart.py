"""Quickstart: evaluate an electrostatic N-body potential with the FMM.

Builds the adaptive tree over random charges in the unit cube, evaluates
the Laplace single-layer potential at every particle, and verifies the
result against exact direct summation at three accuracy settings.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import Fmm, direct_sum, get_kernel
from repro.datasets import uniform_cube


def main() -> None:
    n = 4000
    rng = np.random.default_rng(7)
    points = uniform_cube(n, seed=7)
    charges = rng.standard_normal(n)

    kernel = get_kernel("laplace")
    t0 = time.perf_counter()
    exact = direct_sum(kernel, points, points, charges)
    t_direct = time.perf_counter() - t0
    print(f"direct O(N^2) reference: {t_direct:.2f}s for N={n}")
    print()
    print("order | rel l2 error | FMM time")
    print("------+--------------+---------")
    for order in (4, 6, 8):
        fmm = Fmm(kernel="laplace", order=order, max_points_per_box=60)
        t0 = time.perf_counter()
        potential = fmm.evaluate(points, charges)
        dt = time.perf_counter() - t0
        err = np.linalg.norm(potential - exact) / np.linalg.norm(exact)
        print(f"  {order}   |   {err:.2e}   | {dt:6.2f}s")
    print()
    print("Accuracy is set by the surface order; runtime is O(N) in the")
    print("particle count, vs O(N^2) for the direct sum.")


if __name__ == "__main__":
    main()
