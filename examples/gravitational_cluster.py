"""Gravitational potential of a Plummer star cluster.

A classic N-body workload: the Plummer model concentrates most stars in a
dense core, producing the strongly adaptive octrees the paper's
"nonuniform" experiments stress (its ellipsoid tree spanned 25 levels).
We compute per-star potentials, total potential energy, and show how the
adaptive tree depth responds to the clustering.

Run:  python examples/gravitational_cluster.py
"""

import numpy as np

from repro import Fmm, direct_sum, get_kernel
from repro.datasets import plummer_cluster, uniform_cube
from repro.util import morton


def main() -> None:
    n = 6000
    masses = np.full(n, 1.0 / n)  # equal-mass stars, total mass 1

    for name, points in (
        ("uniform", uniform_cube(n, seed=3)),
        ("plummer", plummer_cluster(n, seed=3)),
    ):
        fmm = Fmm(kernel="laplace", order=6, max_points_per_box=50)
        plan = fmm.plan(points)
        levels = morton.level(plan.tree.keys[plan.tree.is_leaf])
        potential = fmm.evaluate(points, masses, plan=plan)
        # gravitational sign convention: Phi = -G * sum m/r  (G = 4*pi here
        # so the kernel's 1/(4 pi r) normalisation cancels)
        phi = -4.0 * np.pi * potential
        total_energy = 0.5 * float(masses @ phi)
        sample = np.random.default_rng(0).choice(n, 300, replace=False)
        exact = -4.0 * np.pi * direct_sum(
            get_kernel("laplace"), points[sample], points, masses
        )
        err = np.linalg.norm(phi[sample] - exact) / np.linalg.norm(exact)
        print(f"{name:8s}: leaf levels {levels.min()}..{levels.max()}, "
              f"{plan.tree.n_nodes} octants")
        print(f"          total potential energy U = {total_energy:.6f} "
              f"(virial scale |U| ~ {abs(total_energy):.3f})")
        print(f"          spot-check vs direct sum: rel err {err:.1e}")
        print()
    print("The Plummer core drives the tree ~twice as deep as the uniform")
    print("cube at the same N — the adaptivity the paper's algorithms are")
    print("built to load-balance.")


if __name__ == "__main__":
    main()
