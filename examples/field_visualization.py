"""Potential and field maps on a grid slice (separate targets).

Uses ``Fmm.evaluate_targets`` — the tree and expansions are built over the
sources once, then reused for two different observation sets: a planar
grid for the potential map, and the same grid with the gradient
evaluation kernel for the field magnitude.  Renders both as ASCII contour
maps (no plotting dependencies).

Run:  python examples/field_visualization.py
"""

import numpy as np

from repro import Fmm
from repro.datasets import plummer_cluster
from repro.kernels import LaplaceKernel
from repro.kernels.gradients import LaplaceGradientKernel

SHADES = " .:-=+*#%@"


def ascii_map(values: np.ndarray, title: str) -> None:
    lo, hi = values.min(), values.max()
    norm = (values - lo) / (hi - lo + 1e-30)
    idx = (norm * (len(SHADES) - 1)).astype(int)
    print(title)
    for row in idx:
        print("".join(SHADES[i] for i in row))
    print(f"[{lo:.3g} .. {hi:.3g}]")
    print()


def main() -> None:
    n, res = 4000, 48
    sources = plummer_cluster(n, seed=21, scale=0.08)
    # two clusters: offset a third of the mass
    sources[: n // 3] = np.clip(
        sources[: n // 3] + np.array([0.25, 0.2, 0.0]), 1e-9, 1 - 1e-9
    )
    mass = np.full(n, 1.0 / n)

    # observation grid: the z = 0.5 slice
    xs = np.linspace(0.02, 0.98, res)
    gx, gy = np.meshgrid(xs, xs, indexing="xy")
    grid = np.stack([gx.ravel(), gy.ravel(), np.full(res * res, 0.5)], axis=1)

    pot_fmm = Fmm(LaplaceKernel(), order=6, max_points_per_box=60)
    plan = pot_fmm.plan(sources)
    phi = pot_fmm.evaluate_targets(sources, mass, grid, plan=plan)
    ascii_map(phi.reshape(res, res), f"potential on z=0.5 (N={n} sources)")

    grad_fmm = Fmm(LaplaceKernel(), order=6, max_points_per_box=60,
                   eval_kernel=LaplaceGradientKernel())
    g = grad_fmm.evaluate_targets(sources, mass, grid, plan=plan)
    gmag = np.linalg.norm(g.reshape(-1, 3), axis=1).reshape(res, res)
    ascii_map(np.log10(gmag + 1e-12), "log10 |grad phi| on z=0.5")

    print("Both maps reuse one FMM plan: tree + lists built once, two")
    print("O(targets) read-outs with different evaluation kernels.")


if __name__ == "__main__":
    main()
