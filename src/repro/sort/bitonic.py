"""Distributed bitonic sort of one element block per rank.

Used to sort the splitter samples in the sample-sort (the paper's
"combination of sample sort and bitonic sort").  Each rank contributes a
local block; after ``O(log^2 p)`` compare-exchange rounds rank ``r`` holds
the ``r``-th block of the global sorted order.  Works for any
power-of-two communicator size and any per-rank block length.
"""

from __future__ import annotations

import numpy as np

from repro.mpi.comm import SimComm

__all__ = ["bitonic_sort"]

_TAG = 7000


def _compare_exchange(comm: SimComm, local: np.ndarray, partner: int, keep_low: bool):
    """Exchange blocks with the partner and keep the low or high half."""
    other = comm.sendrecv(local, partner, _TAG)
    merged = np.sort(np.concatenate([local, other]), kind="stable")
    return merged[: len(local)] if keep_low else merged[len(merged) - len(local) :]


def bitonic_sort(comm: SimComm, local: np.ndarray) -> np.ndarray:
    """Globally sort equal-ish blocks across a power-of-two communicator.

    Returns this rank's block of the global ascending order.  Blocks keep
    their input length per rank.
    """
    p, r = comm.size, comm.rank
    if p & (p - 1) != 0:
        raise ValueError("bitonic_sort requires a power-of-two communicator")
    local = np.sort(np.asarray(local), kind="stable")
    k = 2
    while k <= p:
        j = k >> 1
        while j >= 1:
            partner = r ^ j
            ascending = (r & k) == 0
            keep_low = (r < partner) == ascending
            local = _compare_exchange(comm, local, partner, keep_low)
            j >>= 1
        k <<= 1
    return local
