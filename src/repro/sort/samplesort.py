"""Parallel sample sort with payload redistribution.

The workhorse of the paper's tree construction: globally sorts the point
Morton keys (carrying the point coordinates, and optionally densities, as
payload) so every rank ends up with a contiguous chunk of the sorted
order.  Splitters are chosen by regular sampling; the samples themselves
are sorted with the distributed bitonic sort when the communicator is a
power of two (the paper's scheme), falling back to a gather+sort
otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.mpi.comm import SimComm
from repro.sort.bitonic import bitonic_sort

__all__ = ["parallel_sample_sort"]

_OVERSAMPLE = 8


def _choose_splitters(comm: SimComm, keys: np.ndarray) -> np.ndarray:
    """p-1 global splitters by regular sampling (bitonic sample sort)."""
    p = comm.size
    s = _OVERSAMPLE
    local_sorted = np.sort(keys)
    if local_sorted.size:
        pick = np.linspace(0, local_sorted.size - 1, s).round().astype(np.int64)
        samples = local_sorted[pick]
    else:
        samples = np.empty(0, dtype=keys.dtype)
    if p & (p - 1) == 0 and p > 1:
        mine = bitonic_sort(comm, samples)
        # Global sample array is distributed; pick every s-th element as a
        # splitter via an allgather of the small blocks.
        blocks = comm.allgather(mine)
    else:
        blocks = comm.allgather(samples)
    glob = np.sort(np.concatenate(blocks))
    if glob.size == 0:
        return np.empty(0, dtype=keys.dtype)
    idx = (np.arange(1, p) * glob.size) // p
    return glob[np.minimum(idx, glob.size - 1)]


def parallel_sample_sort(
    comm: SimComm,
    keys: np.ndarray,
    *payloads: np.ndarray,
):
    """Sort ``keys`` globally; each rank receives a contiguous chunk.

    Parameters
    ----------
    keys:
        Local key array (any numpy-sortable dtype).
    payloads:
        Arrays whose leading dimension matches ``keys``; permuted and
        redistributed alongside the keys.

    Returns
    -------
    (sorted_keys, *sorted_payloads):
        This rank's chunk of the global sorted order.  Ties are broken
        arbitrarily between ranks but each rank's chunk is sorted and all
        chunks are globally ordered: every key on rank ``k`` is <= every
        key on rank ``k+1``.
    """
    keys = np.asarray(keys)
    for pl in payloads:
        if len(pl) != keys.size:
            raise ValueError("payload length mismatch")
    # Work estimate for the machine model: comparison sorts at both ends
    # of the exchange, ~2 flops per comparison.
    n = max(int(keys.size), 2)
    comm.profile.current.flops += 4.0 * n * np.log2(n)
    p = comm.size
    if p == 1:
        order = np.argsort(keys, kind="stable")
        out = tuple(np.asarray(pl)[order] for pl in payloads)
        return (keys[order], *out)

    splitters = _choose_splitters(comm, keys)
    dest = np.searchsorted(splitters, keys, side="right")
    order = np.argsort(dest, kind="stable")
    keys_by_dest = keys[order]
    payloads_by_dest = [np.asarray(pl)[order] for pl in payloads]
    counts = np.bincount(dest, minlength=p)
    bounds = np.concatenate([[0], np.cumsum(counts)])

    blocks = [
        tuple(
            arr[bounds[k] : bounds[k + 1]]
            for arr in (keys_by_dest, *payloads_by_dest)
        )
        for k in range(p)
    ]
    received = comm.alltoall(blocks)
    out_keys = np.concatenate([blk[0] for blk in received])
    order = np.argsort(out_keys, kind="stable")
    out_keys = out_keys[order]
    out_payloads = tuple(
        np.concatenate([blk[1 + i] for blk in received])[order]
        for i in range(len(payloads))
    )
    return (out_keys, *out_payloads)
