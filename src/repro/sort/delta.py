"""Incremental Morton delta-sort for moving point sets.

Time-stepping workloads perturb a small fraction of the points each step.
Re-running the full ``argsort`` (and downstream tree construction) from
scratch wastes the fact that the overwhelming majority of the sorted order
is unchanged: only the moved points can change position.  This module
recomputes Morton keys *only* for the moved points and insertion-merges
the small sorted delta into the surviving order — O(m log m + n) instead
of O(n log n), and, more importantly, it yields the old-row -> new-row
permutation that lets the plan patcher reuse every untouched kernel-matrix
block downstream.

The merge reproduces ``np.argsort(keys, kind="stable")`` *exactly*,
including its tie semantics: points sharing a Morton cell are ordered by
original point index.  ``tests/test_dynamic_geometry.py`` checks this
against the full sort on adversarial key collisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import morton

__all__ = ["DeltaSort", "delta_sort"]


@dataclass
class DeltaSort:
    """Result of :func:`delta_sort`.

    Attributes
    ----------
    point_keys:
        Morton ids of all points under the new coordinates, sorted.
    order:
        Permutation with ``new_points[order]`` Morton-sorted — identical
        to ``np.argsort(new_keys, kind="stable")``.
    perm:
        ``(n + 1,)`` map from old sorted row to new sorted row.  Entry
        ``n`` maps the sentinel row to the new sentinel row, so padded
        gather-index arrays remap with a single fancy index.
    moved:
        Original-order indices of the points whose coordinates changed.
    moved_rows:
        New sorted rows of the moved points (ascending).
    """

    point_keys: np.ndarray
    order: np.ndarray
    perm: np.ndarray
    moved: np.ndarray
    moved_rows: np.ndarray


def delta_sort(
    old_point_keys: np.ndarray,
    old_order: np.ndarray,
    new_points: np.ndarray,
    moved: np.ndarray,
) -> DeltaSort:
    """Merge re-keyed moved points into an existing Morton-sorted order.

    Parameters
    ----------
    old_point_keys / old_order:
        The previous sorted keys and the permutation that produced them.
    new_points:
        Full point array in *original* order (only rows listed in
        ``moved`` may differ from the previous geometry).
    moved:
        Original-order indices of the points that moved.
    """
    old_point_keys = np.asarray(old_point_keys, dtype=np.uint64)
    old_order = np.asarray(old_order, dtype=np.int64)
    n = old_order.size
    moved = np.unique(np.asarray(moved, dtype=np.int64))
    if moved.size == 0:
        perm = np.arange(n + 1, dtype=np.int64)
        return DeltaSort(
            point_keys=old_point_keys,
            order=old_order,
            perm=perm,
            moved=moved,
            moved_rows=np.empty(0, np.int64),
        )

    moved_keys = morton.encode_points(np.asarray(new_points, dtype=np.float64)[moved])

    # Old sorted rows of the moved points, via the inverse permutation.
    inv = np.empty(n, dtype=np.int64)
    inv[old_order] = np.arange(n, dtype=np.int64)
    moved_old_rows = inv[moved]

    keep = np.ones(n, dtype=bool)
    keep[moved_old_rows] = False
    kept_rows = np.flatnonzero(keep)
    kept_keys = old_point_keys[kept_rows]
    kept_ids = old_order[kept_rows]

    # Sort the delta by (key, original index) — the stable-sort tie order.
    ds = np.lexsort((moved, moved_keys))
    mk = moved_keys[ds]
    mid = moved[ds]

    # Insertion positions into the kept sequence.  Where a moved key
    # collides with kept keys, the tie breaks on original index; within an
    # equal-key run kept_ids is ascending (inherited from the old stable
    # sort), so a second searchsorted on the id resolves it.
    lo = np.searchsorted(kept_keys, mk, side="left")
    hi = np.searchsorted(kept_keys, mk, side="right")
    pos = lo
    for j in np.flatnonzero(hi > lo):
        pos[j] = lo[j] + np.searchsorted(kept_ids[lo[j] : hi[j]], mid[j])

    m = mid.size
    moved_rows = pos + np.arange(m, dtype=np.int64)
    kept_final = np.arange(kept_rows.size, dtype=np.int64) + np.searchsorted(
        pos, np.arange(kept_rows.size, dtype=np.int64), side="right"
    )

    point_keys = np.empty(n, dtype=np.uint64)
    order = np.empty(n, dtype=np.int64)
    point_keys[kept_final] = kept_keys
    order[kept_final] = kept_ids
    point_keys[moved_rows] = mk
    order[moved_rows] = mid

    perm = np.empty(n + 1, dtype=np.int64)
    perm[kept_rows] = kept_final
    perm[inv[mid]] = moved_rows
    perm[n] = n
    return DeltaSort(
        point_keys=point_keys,
        order=order,
        perm=perm,
        moved=moved,
        moved_rows=moved_rows,
    )
