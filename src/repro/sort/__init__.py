"""Distributed sorting: parallel sample sort (with bitonic splitter sort).

The paper's setup phase is dominated by the parallel sort of the input
points ("the major cost being the parallel sort, which ... exhibits
textbook scalability"), with complexity
``O(n/p log n/p + p log p)`` — "combination of sample sort and bitonic
sort" (its §III-D, citing Grama et al.).
"""

from repro.sort.samplesort import parallel_sample_sort
from repro.sort.bitonic import bitonic_sort

__all__ = ["parallel_sample_sort", "bitonic_sort"]
