"""Plain-text rendering of the experiment tables."""

from __future__ import annotations

from repro.perf.model import PhaseTimes

__all__ = ["format_table", "phase_breakdown_table"]


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width table (benchmarks print these next to the paper's)."""
    cells = [[str(h) for h in headers]] + [
        [c if isinstance(c, str) else f"{c:.3g}" for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def phase_breakdown_table(rows: list[PhaseTimes], title: str = "") -> str:
    """Table II format: Event | Max Time | Avg Time | Max Flops | Avg Flops."""
    return format_table(
        ["Event", "Max. Time", "Avg. Time", "Max. Flops", "Avg. Flops"],
        [
            [
                r.name,
                f"{r.max_seconds:.2e}",
                f"{r.avg_seconds:.2e}",
                f"{r.max_flops:.2e}",
                f"{r.avg_flops:.2e}",
            ]
            for r in rows
        ],
        title=title,
    )
