"""Fabric-wide event tracing: one record per message, one per phase span.

The phase ledgers (:class:`repro.util.timer.PhaseProfile`) only keep
*aggregates* — total messages, total bytes, total modelled seconds per
phase per rank.  That is enough for Table II but says nothing about the
communication *structure* the paper's complexity arguments are about:
who talked to whom, in what order, and how long the dependency chains
are.  A :class:`TraceRecorder` captures exactly that:

* one :class:`MessageEvent` per point-to-point message **endpoint**
  (``kind="send"`` at the sender, ``kind="recv"`` at the receiver), with
  source, destination, tag, pickled byte count, the phase the endpoint
  rank had open, the modelled latency/bandwidth seconds, and the logical
  per-rank order (``seq``);
* one :class:`SpanEvent` per ``PhaseProfile.phase()`` activation, with
  the wall seconds and the flop/message/byte/comm-second *deltas*
  accumulated during that activation.

The recorder is shared by every rank of an SPMD run (ranks are threads),
so all methods are thread-safe.  Tracing is strictly opt-in: with no
recorder attached, the communicator's hot path only pays an ``is None``
check per message.

JSONL schema (one object per line, field order not significant)::

    {"kind": "send"|"recv", "rank": int, "src": int, "dst": int,
     "tag": int, "nbytes": int, "phase": str,
     "t_lat": float, "t_bw": float, "seq": int}
    {"kind": "span", "rank": int, "phase": str, "wall_s": float,
     "flops": float, "comm_messages": int, "comm_bytes": float,
     "comm_s": float, "aborted": bool, "precision": str}

``precision`` (schema addition, defaulting to ``"fp64"`` when absent so
older traces still load) records the arithmetic precision the emitting
profile was evaluating at — spans of an fp32 plan apply carry
``"fp32"``, setup and communication spans inherit whatever the profile
was bound to.

Nonblocking request groups (see ``SimComm.record_inflight``) emit one
synthetic ``INFLIGHT:<phase>`` span per completed group: ``comm_*``
fields carry the group's modelled cost, ``flops`` the compute the rank
performed *while the group was airborne* — the raw material for
:func:`repro.perf.model.achieved_overlap_seconds`.  In-flight spans are
bookkeeping overlays: their comm charges are also accounted in the
ordinary phase spans, so sum over spans of one phase still matches the
ledger when ``INFLIGHT:*`` spans are excluded.

``aborted`` marks spans that were closed by an exception unwinding
through the phase or force-flushed at abort time for a wedged rank
(see :meth:`repro.util.timer.PhaseProfile.flush_open_spans`) — so the
JSONL export of a *failed* run is still well-formed: every opened phase
produces exactly one span.  Chaos-injection and recovery machinery emit
synthetic spans under ``CHAOS:*`` / ``RECOVERY:*`` phase names (see
:mod:`repro.mpi.faults`).

``t_lat``/``t_bw`` are the alpha-beta terms of the machine model
(``t_s`` and ``nbytes / bandwidth``); their sum is the modelled seconds
the ledger charged for this endpoint.  ``seq`` increases by one per
recorded event on the recording rank, giving the logical send/recv
order needed to reconstruct dependency chains (see
:mod:`repro.perf.commviz`).
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass
from typing import Iterable, Iterator

__all__ = ["MessageEvent", "SpanEvent", "TraceRecorder"]


@dataclass(frozen=True)
class MessageEvent:
    """One endpoint of one point-to-point message."""

    kind: str  #: ``"send"`` or ``"recv"``
    rank: int  #: the recording rank (== src for sends, dst for recvs)
    src: int
    dst: int
    tag: int
    nbytes: int
    phase: str  #: phase the recording rank had open
    t_lat: float  #: modelled latency seconds (``t_s``)
    t_bw: float  #: modelled bandwidth seconds (``nbytes / bandwidth``)
    seq: int  #: logical event order on the recording rank

    @property
    def seconds(self) -> float:
        """Total modelled seconds charged for this endpoint."""
        return self.t_lat + self.t_bw


@dataclass(frozen=True)
class SpanEvent:
    """One ``PhaseProfile.phase()`` activation on one rank.

    Counter fields are the *deltas* accumulated during this activation,
    so re-entered phases (e.g. ``let`` after a re-balance) produce one
    span each and their counters sum to the ledger totals.
    """

    kind: str  #: always ``"span"``
    rank: int
    phase: str
    wall_s: float
    flops: float
    comm_messages: int
    comm_bytes: float
    comm_s: float
    #: True when the span was closed by an exception unwinding through the
    #: phase, or force-flushed for a wedged rank at abort time.
    aborted: bool = False
    #: Arithmetic precision of the evaluation the span belongs to
    #: ("fp64" / "fp32"); defaults keep pre-precision traces loadable.
    precision: str = "fp64"


class TraceRecorder:
    """Thread-safe, append-only event log of one SPMD run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: list[MessageEvent | SpanEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    # -- recording (called from the communication/profiling layers) --------

    def record_send(
        self,
        rank: int,
        dst: int,
        tag: int,
        nbytes: int,
        phase: str,
        t_lat: float,
        t_bw: float,
        seq: int,
    ) -> None:
        ev = MessageEvent(
            "send", rank, rank, dst, tag, nbytes, phase, t_lat, t_bw, seq
        )
        with self._lock:
            self.events.append(ev)

    def record_recv(
        self,
        rank: int,
        src: int,
        tag: int,
        nbytes: int,
        phase: str,
        t_lat: float,
        t_bw: float,
        seq: int,
    ) -> None:
        ev = MessageEvent(
            "recv", rank, src, rank, tag, nbytes, phase, t_lat, t_bw, seq
        )
        with self._lock:
            self.events.append(ev)

    def record_span(
        self,
        rank: int,
        phase: str,
        wall_s: float,
        flops: float,
        comm_messages: int,
        comm_bytes: float,
        comm_s: float,
        aborted: bool = False,
        precision: str = "fp64",
    ) -> None:
        ev = SpanEvent(
            "span",
            rank,
            phase,
            wall_s,
            flops,
            comm_messages,
            comm_bytes,
            comm_s,
            aborted,
            precision,
        )
        with self._lock:
            self.events.append(ev)

    # -- queries ------------------------------------------------------------

    def message_events(
        self, kind: str | None = None, phase: str | None = None
    ) -> list[MessageEvent]:
        """Message events, optionally filtered by kind and/or phase."""
        return [
            ev
            for ev in self.events
            if isinstance(ev, MessageEvent)
            and (kind is None or ev.kind == kind)
            and (phase is None or ev.phase == phase)
        ]

    def span_events(
        self, rank: int | None = None, phase: str | None = None
    ) -> list[SpanEvent]:
        return [
            ev
            for ev in self.events
            if isinstance(ev, SpanEvent)
            and (rank is None or ev.rank == rank)
            and (phase is None or ev.phase == phase)
        ]

    def phases(self) -> list[str]:
        """Distinct phase names of message events, in first-seen order."""
        out: dict[str, None] = {}
        for ev in self.events:
            if isinstance(ev, MessageEvent):
                out.setdefault(ev.phase)
        return list(out)

    def per_rank_send_counts(self) -> dict[int, int]:
        """Rank -> number of send events (should equal ``messages_sent``)."""
        out: dict[int, int] = {}
        for ev in self.message_events(kind="send"):
            out[ev.rank] = out.get(ev.rank, 0) + 1
        return out

    def per_rank_send_bytes(self) -> dict[int, int]:
        """Rank -> total sent bytes (should equal ``bytes_sent``)."""
        out: dict[int, int] = {}
        for ev in self.message_events(kind="send"):
            out[ev.rank] = out.get(ev.rank, 0) + ev.nbytes
        return out

    def signature(self) -> dict[int, list[tuple]]:
        """Deterministic per-rank fingerprint of the trace.

        The global event list interleaves rank threads nondeterministically
        and ``wall_s`` is real time, so raw traces of identical runs never
        compare equal.  The signature keeps only what *is* deterministic:
        each rank's own events in program order, with wall-clock fields
        dropped (modelled ``t_lat``/``t_bw``/``comm_s`` are kept — they are
        functions of the machine model, not of the scheduler).  Two runs
        with the same inputs, machine model and
        :class:`~repro.mpi.faults.FaultPlan` seed that *complete* produce
        identical signatures.
        """
        out: dict[int, list[tuple]] = {}
        for ev in self.events:
            if isinstance(ev, MessageEvent):
                key = (
                    ev.kind, ev.src, ev.dst, ev.tag, ev.nbytes, ev.phase,
                    ev.t_lat, ev.t_bw, ev.seq,
                )
            else:
                key = (
                    ev.kind, ev.phase, ev.flops, ev.comm_messages,
                    ev.comm_bytes, ev.comm_s, ev.aborted, ev.precision,
                )
            out.setdefault(ev.rank, []).append(key)
        return out

    # -- (de)serialisation --------------------------------------------------

    def iter_jsonl(self) -> Iterator[str]:
        for ev in list(self.events):
            yield json.dumps(asdict(ev), sort_keys=True)

    def write_jsonl(self, path: str, append: bool = False) -> int:
        """Write one JSON object per event; returns the event count."""
        n = 0
        with open(path, "a" if append else "w") as fh:
            for line in self.iter_jsonl():
                fh.write(line + "\n")
                n += 1
        return n

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "TraceRecorder":
        rec = cls()
        for obj in records:
            kind = obj.get("kind")
            if kind == "span":
                rec.events.append(SpanEvent(**obj))
            elif kind in ("send", "recv"):
                rec.events.append(MessageEvent(**obj))
            else:
                raise ValueError(f"unknown trace event kind: {kind!r}")
        return rec

    @classmethod
    def read_jsonl(cls, path: str) -> "TraceRecorder":
        with open(path) as fh:
            return cls.from_records(
                json.loads(line) for line in fh if line.strip()
            )
