"""From ledgers to modelled seconds.

The paper's Table II reports, per evaluation phase, the maximum and the
average (over ranks) of wall-clock time and flops.  Here the per-rank time
of a phase is modelled as

    t_rank(phase) = flops_rank(phase) / cpu_flops + comm_seconds_rank(phase)

with ``comm_seconds`` already accumulated message-by-message by the
simulated communicator under the alpha-beta model.  ``Max`` over ranks
approximates the critical path (barrier-synchronised phases), ``Avg`` the
load; their gap is the paper's load-imbalance signal (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.machine import MachineModel
from repro.util.timer import PhaseProfile

__all__ = [
    "PhaseTimes",
    "evaluation_phase_times",
    "EVAL_PHASES",
    "aggregate",
    "achieved_overlap_seconds",
    "overlap_report",
    "parallel_report",
    "serve_span_summary",
]

#: Fine-grained evaluation phases, in execution order.  The two
#: communication steps of §III-C are tracked separately: the ghost
#: density exchange and the shared-density reduce-scatter.
EVAL_PHASES = [
    "S2U",
    "U2U",
    "COMM_exchange",
    "COMM_reduce",
    "VLI",
    "XLI",
    "D2D",
    "WLI",
    "D2T",
    "ULI",
]

#: Paper Table II rows -> our fine-grained phases.
TABLE2_ROWS = {
    "Upward": ["S2U", "U2U"],
    "Comm.": ["COMM_exchange", "COMM_reduce"],
    "U-list": ["ULI"],
    "V-list": ["VLI"],
    "W-list": ["WLI"],
    "X-list": ["XLI"],
    "Downward": ["D2D", "D2T"],
}


@dataclass
class PhaseTimes:
    """Max/avg modelled seconds and flops of one phase across ranks."""

    name: str
    max_seconds: float
    avg_seconds: float
    max_flops: float
    avg_flops: float


def _phase_values(profiles: list[PhaseProfile], machine: MachineModel, phases):
    secs = np.zeros(len(profiles))
    flops = np.zeros(len(profiles))
    for i, prof in enumerate(profiles):
        for ph in phases:
            ev = prof.events.get(ph)
            if ev is None:
                continue
            secs[i] += machine.compute_seconds(ev.flops) + ev.comm_seconds
            flops[i] += ev.flops
    return secs, flops


def aggregate(
    profiles: list[PhaseProfile],
    machine: MachineModel,
    name: str,
    phases: list[str],
) -> PhaseTimes:
    """Max/avg across ranks of the combined listed phases."""
    secs, flops = _phase_values(profiles, machine, phases)
    return PhaseTimes(
        name=name,
        max_seconds=float(secs.max()),
        avg_seconds=float(secs.mean()),
        max_flops=float(flops.max()),
        avg_flops=float(flops.mean()),
    )


def evaluation_phase_times(
    profiles: list[PhaseProfile], machine: MachineModel
) -> list[PhaseTimes]:
    """The paper's Table II rows (Total eval + breakdown + Comp)."""
    rows = [aggregate(profiles, machine, "Total eval", EVAL_PHASES)]
    for row_name, phases in TABLE2_ROWS.items():
        rows.append(aggregate(profiles, machine, row_name, phases))
    comp = [ph for ph in EVAL_PHASES if not ph.startswith("COMM")]
    rows.append(aggregate(profiles, machine, "Comp", comp))
    return rows


def overlapped_eval_seconds(
    profiles: list[PhaseProfile], machine: MachineModel
) -> tuple[float, float]:
    """Evaluation time with communication/computation overlap (future work).

    The paper lists overlap as an unexploited opportunity ("we do not
    thoroughly overlap computation and communication").  Two overlaps are
    legal by the dependency structure of Algorithm 1:

    * the ghost density exchange only feeds the *direct* phases, so it can
      hide behind S2U + U2U;
    * the reduce-scatter only feeds V/W, so it can hide behind the X-list
      (which needs ghost points but not reduced densities).

    Returns ``(overlapped, sequential)`` max-over-ranks modelled seconds.
    """
    seq = np.zeros(len(profiles))
    ovl = np.zeros(len(profiles))
    for i, prof in enumerate(profiles):
        t = {}
        for ph in EVAL_PHASES:
            ev = prof.events.get(ph)
            t[ph] = (
                machine.compute_seconds(ev.flops) + ev.comm_seconds
                if ev is not None
                else 0.0
            )
        seq[i] = sum(t.values())
        upward = t["S2U"] + t["U2U"]
        rest = t["VLI"] + t["D2D"] + t["WLI"] + t["D2T"] + t["ULI"]
        ovl[i] = (
            max(t["COMM_exchange"], upward)
            + max(t["COMM_reduce"], t["XLI"])
            + rest
        )
    return float(ovl.max()), float(seq.max())


def achieved_overlap_seconds(trace, machine: MachineModel) -> dict[int, float]:
    """Modelled communication seconds each rank *actually hid*, per rank.

    Reads the ``INFLIGHT:*`` spans a pipelined run emits (one per
    completed nonblocking request group; see ``SimComm.record_inflight``):
    a group of modelled cost ``comm_s`` flown over ``flops`` of concurrent
    compute hides ``min(comm_s, compute_seconds(flops))`` — the message
    can hide at most behind the compute that actually ran, and the
    compute can hide at most the message's full cost.  A sequential run
    emits no in-flight spans and achieves zero overlap, so the return is
    ``{}``-defaulted per rank.
    """
    hidden: dict[int, float] = {}
    for ev in trace.events:
        if getattr(ev, "kind", None) != "span":
            continue
        if not ev.phase.startswith("INFLIGHT:") or ev.aborted:
            continue
        hid = min(ev.comm_s, machine.compute_seconds(ev.flops))
        hidden[ev.rank] = hidden.get(ev.rank, 0.0) + hid
    return hidden


def overlap_report(
    profiles: list[PhaseProfile],
    machine: MachineModel,
    trace=None,
) -> dict[str, float]:
    """Sequential vs modelled vs *achieved* overlapped evaluation seconds.

    ``sequential`` and ``modelled_overlapped`` come from the phase
    ledgers (:func:`overlapped_eval_seconds` — the dependency-legal
    bound).  With a trace from a pipelined run, ``achieved`` is the
    max-over-ranks of ``sequential_rank - hidden_rank``: what the
    schedule actually saved, which can fall short of the model when the
    overlapped compute was too small to cover the messages.
    """
    ovl, seq = overlapped_eval_seconds(profiles, machine)
    out = {"sequential": seq, "modelled_overlapped": ovl}
    if trace is not None:
        hidden = achieved_overlap_seconds(trace, machine)
        per_rank = np.zeros(len(profiles))
        for i, prof in enumerate(profiles):
            rank_seq = 0.0
            for ph in EVAL_PHASES:
                ev = prof.events.get(ph)
                if ev is not None:
                    rank_seq += machine.compute_seconds(ev.flops) + ev.comm_seconds
            per_rank[i] = rank_seq - hidden.get(i, 0.0)
        out["achieved"] = float(per_rank.max()) if len(profiles) else 0.0
        out["hidden_max"] = float(max(hidden.values(), default=0.0))
    return out


def parallel_report(trace) -> dict:
    """Modelled vs achieved intra-rank parallel speedup per phase.

    Reads the ``PARALLEL:<phase>`` / ``PARALLEL:busy:<phase>`` span pairs
    the tile executor emits (see
    :func:`repro.core.parallel.record_parallel_spans`): the first carries
    the section's elapsed wall seconds and its tile count (in
    ``comm_messages``), the second the summed per-tile busy seconds and
    the pool's thread count.  Per phase:

    * ``achieved`` — summed busy over summed elapsed: how many tiles
      were, on average, actually in flight at once.  1.0 means the
      section ran serially (one core, GIL-bound tiles, or a 1-thread
      pool); ``threads`` is the ceiling.
    * ``modelled`` — ``tiles / ceil(tiles / threads)`` averaged over
      sections (elapsed-weighted): the speedup a perfect
      fixed-assignment schedule of equal-cost tiles would reach, i.e.
      the quantisation-limited bound for the observed tile counts.

    The ``overall`` entry aggregates every phase.  Analogous to
    :func:`overlap_report` for comm/compute overlap: the gap between
    achieved and modelled is lost to tile cost imbalance, combine
    serialisation and pool handoff.
    """
    per_phase: dict[str, dict[str, float]] = {}
    for ev in trace.span_events():
        ph = ev.phase
        if not ph.startswith("PARALLEL:"):
            continue
        busy = ph.startswith("PARALLEL:busy:")
        name = ph.split(":", 2)[2] if busy else ph.split(":", 1)[1]
        st = per_phase.setdefault(name, {
            "elapsed_s": 0.0, "busy_s": 0.0, "tiles": 0, "sections": 0,
            "threads": 0,
        })
        if busy:
            st["busy_s"] += ev.wall_s
            st["threads"] = max(st["threads"], int(ev.comm_messages))
        else:
            st["elapsed_s"] += ev.wall_s
            st["tiles"] += int(ev.comm_messages)
            st["sections"] += 1
    out: dict[str, dict] = {}
    tot_elapsed = tot_busy = 0.0
    tot_modelled_w = 0.0
    for name, st in per_phase.items():
        threads = max(st["threads"], 1)
        # elapsed-weighted mean of the per-section quantisation bound;
        # sections of one phase share a tile count in steady state, so
        # using the aggregate tiles/sections is faithful
        tiles_per_section = st["tiles"] / max(st["sections"], 1)
        waves = np.ceil(tiles_per_section / threads)
        modelled = (
            tiles_per_section / waves if waves > 0 else 1.0
        )
        achieved = (
            st["busy_s"] / st["elapsed_s"] if st["elapsed_s"] > 0 else 1.0
        )
        out[name] = {
            "modelled": float(min(modelled, threads)),
            "achieved": float(achieved),
            "elapsed_s": float(st["elapsed_s"]),
            "busy_s": float(st["busy_s"]),
            "tiles": int(st["tiles"]),
            "sections": int(st["sections"]),
            "threads": int(threads),
        }
        tot_elapsed += st["elapsed_s"]
        tot_busy += st["busy_s"]
        tot_modelled_w += out[name]["modelled"] * st["elapsed_s"]
    report = {"phases": out}
    if out:
        report["overall"] = {
            "modelled": float(
                tot_modelled_w / tot_elapsed if tot_elapsed > 0 else 1.0
            ),
            "achieved": float(
                tot_busy / tot_elapsed if tot_elapsed > 0 else 1.0
            ),
            "elapsed_s": float(tot_elapsed),
            "busy_s": float(tot_busy),
        }
    return report


def setup_seconds(
    profiles: list[PhaseProfile], machine: MachineModel
) -> dict[str, float]:
    """Modelled max-over-ranks time of the setup phases.

    ``setup:plan`` / ``setup:wli`` are the evaluation-plan compilation
    spans (see :mod:`repro.core.plan`): one-time work that amortises
    across repeated applies, so it belongs with setup, not evaluation.
    ``setup:precision`` is the one-time ``precision="auto"`` calibration
    probe (plus the distributed precision vote; see
    :func:`repro.core.autotune.autotune_precision`).
    """
    out = {}
    for ph in (
        "tree", "let", "lists", "balance",
        "setup:plan", "setup:wli", "setup:precision",
    ):
        secs, _ = _phase_values(profiles, machine, [ph])
        out[ph] = float(secs.max())
    return out


def serve_span_summary(trace) -> dict:
    """Aggregate the serving plane's trace spans into one health report.

    The distributed serving plane narrates itself through three span
    families on the shared :class:`~repro.perf.trace.TraceRecorder`:

    * ``SERVE:heartbeat:<model>`` — one per rank per completed dispatch
      (liveness: a silent rank under traffic is a wedged rank),
    * ``SERVE:dispatch:<model>`` — the router rank's per-request spans,
    * ``RECOVERY:retry#K:<cause>:backoff=<s>s`` — one per failover retry
      (the span's ``comm_s`` carries the backoff actually slept), plus
      ``RECOVERY:resume`` / ``RECOVERY:gpu_fallback:*`` from the
      checkpoint and device-degrade machinery, and ``CHAOS:*`` spans
      marking the injections themselves.

    Returns a JSON-friendly dict: per-model heartbeat counts per rank,
    per-model dispatch count and wall-time sum, retries by cause with
    total backoff, and raw counts of resume / fallback / chaos spans.
    """
    heartbeats: dict[str, dict[int, int]] = {}
    dispatches: dict[str, dict] = {}
    retries: dict[str, int] = {}
    backoff_s = 0.0
    resumes = 0
    gpu_fallbacks = 0
    chaos: dict[str, int] = {}
    for ev in trace.span_events():
        ph = ev.phase
        if ph.startswith("SERVE:heartbeat:"):
            model = ph.split(":", 2)[2]
            per_rank = heartbeats.setdefault(model, {})
            per_rank[ev.rank] = per_rank.get(ev.rank, 0) + 1
        elif ph.startswith("SERVE:dispatch:"):
            model = ph.split(":", 2)[2]
            d = dispatches.setdefault(model, {"count": 0, "wall_s": 0.0})
            d["count"] += 1
            d["wall_s"] += ev.wall_s
        elif ph.startswith("RECOVERY:retry"):
            # RECOVERY:retry#K:<cause>:backoff=<s>s
            parts = ph.split(":")
            cause = parts[2] if len(parts) > 2 else "unknown"
            retries[cause] = retries.get(cause, 0) + 1
            backoff_s += ev.comm_s
        elif ph == "RECOVERY:resume":
            resumes += 1
        elif ph.startswith("RECOVERY:gpu_fallback"):
            gpu_fallbacks += 1
        elif ph.startswith("CHAOS:"):
            kind = ph.split(":", 1)[1]
            chaos[kind] = chaos.get(kind, 0) + 1
    return {
        "heartbeats": heartbeats,
        "dispatches": dispatches,
        "retries_by_cause": retries,
        "backoff_s": backoff_s,
        "checkpoint_resumes": resumes,
        "gpu_fallbacks": gpu_fallbacks,
        "injections": chaos,
    }
