"""Performance modelling, reporting and tracing.

Converts the per-rank phase ledgers (counted flops, counted bytes/messages)
into modelled per-phase times under a :class:`MachineModel`, renders the
paper's tables (Table II per-phase breakdown, Table III GPU sweep), and —
via :mod:`repro.perf.trace` / :mod:`repro.perf.commviz` — records per-message
traces from which per-phase communication matrices and modelled
critical-path estimates are reconstructed.
"""

from repro.perf.commviz import (
    CommMatrix,
    CriticalPath,
    communication_matrix,
    critical_path,
    phase_critical_paths,
    phase_matrices,
    render_matrix,
    render_phase_summary,
)
from repro.perf.model import EVAL_PHASES, PhaseTimes, evaluation_phase_times
from repro.perf.report import format_table, phase_breakdown_table
from repro.perf.trace import MessageEvent, SpanEvent, TraceRecorder

__all__ = [
    "PhaseTimes",
    "evaluation_phase_times",
    "EVAL_PHASES",
    "format_table",
    "phase_breakdown_table",
    "TraceRecorder",
    "MessageEvent",
    "SpanEvent",
    "CommMatrix",
    "CriticalPath",
    "communication_matrix",
    "phase_matrices",
    "critical_path",
    "phase_critical_paths",
    "render_matrix",
    "render_phase_summary",
]
