"""Performance modelling and reporting.

Converts the per-rank phase ledgers (counted flops, counted bytes/messages)
into modelled per-phase times under a :class:`MachineModel`, and renders
the paper's tables (Table II per-phase breakdown, Table III GPU sweep).
"""

from repro.perf.model import PhaseTimes, evaluation_phase_times, EVAL_PHASES
from repro.perf.report import format_table, phase_breakdown_table

__all__ = [
    "PhaseTimes",
    "evaluation_phase_times",
    "EVAL_PHASES",
    "format_table",
    "phase_breakdown_table",
]
