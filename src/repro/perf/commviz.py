"""Communication matrices and critical-path estimates from a trace.

The paper's communication arguments are structural: Algorithm 3 bounds
every rank at ``log2 p`` partners per round, the owner-based baseline
concentrates O(p) messages on the ranks owning near-root octants, and
the Figure 5 load-imbalance signal is a max-vs-avg gap.  Given a
:class:`~repro.perf.trace.TraceRecorder`, this module reconstructs:

* per-phase ``p x p`` communication matrices (message counts and bytes,
  ``[src, dst]``) with row/column marginals — the "who talked to whom"
  picture;
* a modelled critical-path estimate per phase: the *rank bound* (max
  over ranks of compute + communication seconds, the barrier-synchronous
  estimate Table II uses) and the *chain bound* (longest dependency
  chain through matched send/recv pairs, replayed event-by-event);
* plain-text renderers in the style of :mod:`repro.perf.report`.

All byte counts are pickled payload sizes; modelled seconds use the
alpha-beta terms recorded per event, so a trace taken under one
:class:`~repro.mpi.machine.MachineModel` stays consistent with the
ledgers of that run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.perf.report import format_table
from repro.perf.trace import MessageEvent, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.machine import MachineModel

__all__ = [
    "CommMatrix",
    "CriticalPath",
    "communication_matrix",
    "phase_matrices",
    "critical_path",
    "phase_critical_paths",
    "render_matrix",
    "render_phase_summary",
]


@dataclass
class CommMatrix:
    """Per-phase (or whole-run) traffic matrix, indexed ``[src, dst]``."""

    phase: str | None  #: ``None`` = all phases combined
    counts: np.ndarray  #: (p, p) int64 message counts
    nbytes: np.ndarray  #: (p, p) float64 payload bytes

    @property
    def size(self) -> int:
        return self.counts.shape[0]

    def row_messages(self) -> np.ndarray:
        """Messages sent per rank (row marginal)."""
        return self.counts.sum(axis=1)

    def col_messages(self) -> np.ndarray:
        """Messages received per rank (column marginal)."""
        return self.counts.sum(axis=0)

    def row_bytes(self) -> np.ndarray:
        return self.nbytes.sum(axis=1)

    def col_bytes(self) -> np.ndarray:
        return self.nbytes.sum(axis=0)

    def total_messages(self) -> int:
        return int(self.counts.sum())

    def total_bytes(self) -> float:
        return float(self.nbytes.sum())

    def max_rank_messages(self) -> int:
        """Max messages sent by any single rank (the Alg. 3 bound target)."""
        return int(self.row_messages().max()) if self.size else 0


def communication_matrix(
    trace: TraceRecorder, size: int, phase: str | None = None
) -> CommMatrix:
    """Build the ``p x p`` matrix from the trace's *send* events.

    Each message is counted once (at its sender); the ledger convention
    of charging both endpoints applies to modelled seconds, not to the
    matrix.  ``phase`` filters on the *sender's* open phase.
    """
    counts = np.zeros((size, size), dtype=np.int64)
    nbytes = np.zeros((size, size), dtype=np.float64)
    for ev in trace.message_events(kind="send", phase=phase):
        counts[ev.src, ev.dst] += 1
        nbytes[ev.src, ev.dst] += ev.nbytes
    return CommMatrix(phase=phase, counts=counts, nbytes=nbytes)


def phase_matrices(trace: TraceRecorder, size: int) -> dict[str, CommMatrix]:
    """One matrix per phase that carried any traffic, in first-seen order."""
    return {
        ph: communication_matrix(trace, size, phase=ph) for ph in trace.phases()
    }


# -- critical path ----------------------------------------------------------


@dataclass
class CriticalPath:
    """Two modelled lower-bound estimates of a phase's wall-clock."""

    phase: str | None
    #: max over ranks of (compute + comm) seconds — the synchronous bound.
    rank_bound: float
    #: longest dependency chain through matched send/recv pairs, with each
    #: rank's compute placed before its first message.
    chain_bound: float

    @property
    def seconds(self) -> float:
        """The critical-path estimate: the tighter (larger) of the bounds."""
        return max(self.rank_bound, self.chain_bound)


def _match_sends(events: list[MessageEvent]) -> dict[int, MessageEvent | None]:
    """Map each recv event (by index) to its matching send event.

    The fabric delivers per-(src, dst, tag) channels FIFO, so the k-th
    recv on a channel matches the k-th send.  Sends from outside the
    filtered event set (cross-phase messages) leave the recv unmatched
    (mapped to ``None``).
    """
    sends: dict[tuple[int, int, int], list[MessageEvent]] = {}
    for ev in events:
        if ev.kind == "send":
            sends.setdefault((ev.src, ev.dst, ev.tag), []).append(ev)
    for chan in sends.values():
        chan.sort(key=lambda e: e.seq)
    match: dict[int, MessageEvent | None] = {}
    recvs: dict[tuple[int, int, int], list[tuple[int, MessageEvent]]] = {}
    for i, ev in enumerate(events):
        if ev.kind == "recv":
            recvs.setdefault((ev.src, ev.dst, ev.tag), []).append((i, ev))
    for chan, pairs in recvs.items():
        pairs.sort(key=lambda it: it[1].seq)
        avail = sends.get(chan, [])
        for k, (i, _ev) in enumerate(pairs):
            match[i] = avail[k] if k < len(avail) else None
    return match


def critical_path(
    trace: TraceRecorder,
    machine: "MachineModel",
    size: int,
    phase: str | None = None,
) -> CriticalPath:
    """Modelled critical path of one phase (or of the whole run).

    The chain bound replays the phase's message events as a discrete
    schedule: each rank starts after its modelled compute time (counted
    flops of its spans), events on one rank execute in logical order,
    and a recv additionally waits for its matching send to complete.
    Both endpoints pay the event's alpha-beta cost, mirroring the ledger
    convention.
    """
    events = trace.message_events(phase=phase)
    spans = trace.span_events(phase=phase)

    comp = np.zeros(size)
    comm = np.zeros(size)
    for sp in spans:
        comp[sp.rank] += machine.compute_seconds(sp.flops)
        comm[sp.rank] += sp.comm_s
    rank_bound = float((comp + comm).max()) if size else 0.0

    # chain replay
    by_rank: dict[int, list[tuple[int, MessageEvent]]] = {}
    for i, ev in enumerate(events):
        by_rank.setdefault(ev.rank, []).append((i, ev))
    for lst in by_rank.values():
        lst.sort(key=lambda it: it[1].seq)
    match = _match_sends(events)
    send_index = {id(ev): i for i, ev in enumerate(events) if ev.kind == "send"}

    done = np.full(len(events), -1.0)  # completion time per event index
    clock = {r: float(comp[r]) for r in by_rank}
    cursor = {r: 0 for r in by_rank}
    remaining = len(events)
    while remaining:
        progressed = False
        for r, lst in by_rank.items():
            while cursor[r] < len(lst):
                i, ev = lst[cursor[r]]
                if ev.kind == "recv":
                    dep = match.get(i)
                    if dep is not None:
                        j = send_index[id(dep)]
                        if done[j] < 0.0:
                            break  # matching send not yet scheduled
                        start = max(clock[r], done[j])
                    else:
                        start = clock[r]
                else:
                    start = clock[r]
                t = start + ev.seconds
                clock[r] = t
                done[i] = t
                cursor[r] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            # Unmatchable ordering (can only arise from a truncated or
            # cross-phase-filtered trace): release the earliest blocked
            # recv without its dependency rather than spinning forever.
            for r, lst in by_rank.items():
                if cursor[r] < len(lst):
                    i, ev = lst[cursor[r]]
                    t = clock[r] + ev.seconds
                    clock[r] = t
                    done[i] = t
                    cursor[r] += 1
                    remaining -= 1
                    break
    chain = max(clock.values(), default=0.0)
    chain = max(chain, float(comp.max()) if size else 0.0)
    return CriticalPath(phase=phase, rank_bound=rank_bound, chain_bound=chain)


def phase_critical_paths(
    trace: TraceRecorder, machine: "MachineModel", size: int
) -> dict[str, CriticalPath]:
    """Critical-path estimates for every phase with any span or traffic."""
    names: dict[str, None] = {}
    for ev in trace.events:
        names.setdefault(ev.phase)
    return {
        ph: critical_path(trace, machine, size, phase=ph) for ph in names
    }


# -- rendering --------------------------------------------------------------


def render_matrix(cm: CommMatrix, what: str = "counts") -> str:
    """Fixed-width matrix with row/column marginals.

    ``what`` selects ``"counts"`` (messages) or ``"bytes"``.
    """
    if what not in ("counts", "bytes"):
        raise ValueError("what must be 'counts' or 'bytes'")
    m = cm.counts if what == "counts" else cm.nbytes
    p = cm.size
    unit = "msgs" if what == "counts" else "bytes"
    title = (
        f"Communication matrix [{unit}] — phase "
        f"{cm.phase if cm.phase is not None else '<all>'} "
        f"(total {cm.total_messages()} msgs, {cm.total_bytes():.0f} bytes)"
    )
    headers = ["src\\dst"] + [str(c) for c in range(p)] + ["sent"]
    rows = []
    col_tot = m.sum(axis=0)
    for r in range(p):
        rows.append(
            [str(r)] + [_fmt_cell(m[r, c]) for c in range(p)] + [_fmt_cell(m[r].sum())]
        )
    rows.append(["recvd"] + [_fmt_cell(col_tot[c]) for c in range(p)] + [_fmt_cell(m.sum())])
    return format_table(headers, rows, title=title)


def _fmt_cell(v) -> str:
    f = float(v)
    if f == 0:
        return "."
    if f == int(f) and abs(f) < 1e6:
        return str(int(f))
    return f"{f:.3g}"


def render_phase_summary(
    trace: TraceRecorder, machine: "MachineModel", size: int
) -> str:
    """Per-phase traffic totals and critical-path estimates (one table)."""
    mats = phase_matrices(trace, size)
    paths = phase_critical_paths(trace, machine, size)
    rows = []
    for ph, cp in paths.items():
        cm = mats.get(ph)
        rows.append(
            [
                ph,
                cm.total_messages() if cm else 0,
                f"{cm.total_bytes():.3g}" if cm else "0",
                cm.max_rank_messages() if cm else 0,
                f"{cp.rank_bound:.3e}",
                f"{cp.chain_bound:.3e}",
                f"{cp.seconds:.3e}",
            ]
        )
    return format_table(
        ["Phase", "Msgs", "Bytes", "Max/rank", "Rank-bound s", "Chain s", "Crit. path s"],
        rows,
        title=f"Trace summary — {size} ranks, machine {machine.name}",
    )
