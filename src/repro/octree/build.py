"""Adaptive octree construction from point sets (``Points2Octree``).

The tree is refined top-down: an octant containing more than ``q`` points
(the paper's maximum points-per-box parameter) is split into its 8 children
until every leaf holds at most ``q`` points or ``max_depth`` is reached.
Empty children are kept, so the resulting leaf set is a *complete* linear
octree — matching what the paper's DENDRO substrate produces.

Everything operates on the sorted array of point Morton keys, so per-octant
point counts are two ``searchsorted`` calls and the whole construction is
vectorised level by level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import morton

__all__ = ["build_leaves", "leaf_point_counts", "points_to_octree", "OctreeBuild"]


def _point_range(point_keys: np.ndarray, octs: np.ndarray):
    """(begin, end) index ranges of each octant's points in the sorted keys."""
    lo = morton.deepest_first_descendant(octs)
    hi = morton.deepest_last_descendant(octs)
    begin = np.searchsorted(point_keys, lo, side="left")
    end = np.searchsorted(point_keys, hi, side="right")
    return begin, end


def build_leaves(
    sorted_point_keys: np.ndarray,
    max_points_per_box: int,
    max_depth: int = morton.MAX_DEPTH,
    roots: np.ndarray | None = None,
) -> np.ndarray:
    """Complete linear octree whose non-empty leaves hold <= q points.

    Parameters
    ----------
    sorted_point_keys:
        Morton ids of the points at ``MAX_DEPTH``, sorted ascending.
    max_points_per_box:
        The paper's ``q``.
    max_depth:
        Refinement stops here even if a box still exceeds ``q`` points.
    roots:
        Optional sorted seed octants to refine instead of the unit-cube
        root; the distributed builder passes each rank's domain cover.
    """
    if max_points_per_box < 1:
        raise ValueError("max_points_per_box must be >= 1")
    if not (0 < max_depth <= morton.MAX_DEPTH):
        raise ValueError(f"max_depth must be in (0, {morton.MAX_DEPTH}]")
    keys = np.asarray(sorted_point_keys, dtype=np.uint64)
    current = (
        np.array([morton.ROOT], dtype=np.uint64)
        if roots is None
        else np.asarray(roots, dtype=np.uint64)
    )
    leaf_parts: list[np.ndarray] = []
    while current.size:
        begin, end = _point_range(keys, current)
        counts = end - begin
        split = (counts > max_points_per_box) & (morton.level(current) < max_depth)
        leaf_parts.append(current[~split])
        current = morton.children(current[split]).ravel() if np.any(split) else np.empty(0, np.uint64)
    return np.sort(np.concatenate(leaf_parts))


def leaf_point_counts(sorted_point_keys: np.ndarray, leaves: np.ndarray):
    """Per-leaf (begin, end) point ranges in the sorted point array."""
    return _point_range(np.asarray(sorted_point_keys, dtype=np.uint64), leaves)


@dataclass
class OctreeBuild:
    """Result of :func:`points_to_octree`.

    Attributes
    ----------
    leaves:
        Complete sorted linear octree (leaf octant ids).
    order:
        Permutation sorting the input points into Morton order.
    point_keys:
        Morton ids of the points, in sorted order.
    leaf_begin / leaf_end:
        Per-leaf index ranges into the Morton-sorted point array.
    """

    leaves: np.ndarray
    order: np.ndarray
    point_keys: np.ndarray
    leaf_begin: np.ndarray
    leaf_end: np.ndarray

    @property
    def leaf_counts(self) -> np.ndarray:
        return self.leaf_end - self.leaf_begin


def points_to_octree(
    points: np.ndarray,
    max_points_per_box: int,
    max_depth: int = morton.MAX_DEPTH,
) -> OctreeBuild:
    """Sequential ``Points2Octree``: sort points, refine, index leaf ranges."""
    keys = morton.encode_points(points)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    leaves = build_leaves(keys, max_points_per_box, max_depth)
    begin, end = leaf_point_counts(keys, leaves)
    return OctreeBuild(leaves, order, keys, begin, end)
