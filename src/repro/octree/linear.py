"""Operations on sorted linear octrees (arrays of octant ids).

A *linear octree* stores only leaves, as a Morton-sorted ``uint64`` array.
It is *complete* when the leaf regions tile the unit cube exactly.  The
routines here mirror the primitives of the DENDRO package the paper builds
on: completion of a region between two octants, completion of a partial
tree to the unit cube, ancestor removal, and validity checks.
"""

from __future__ import annotations

import numpy as np

from repro.util import morton

__all__ = [
    "is_sorted_unique",
    "remove_ancestors",
    "coarsest_common_ancestor",
    "fill_cell_range",
    "complete_region",
    "complete_to_unit_cube",
    "is_complete",
    "covering_leaf_indices",
]


def is_sorted_unique(keys: np.ndarray) -> bool:
    """True when ``keys`` is strictly increasing (valid linear octree order)."""
    keys = np.asarray(keys, dtype=np.uint64)
    return bool(np.all(keys[1:] > keys[:-1])) if keys.size > 1 else True


def remove_ancestors(keys: np.ndarray) -> np.ndarray:
    """Drop every octant that is an ancestor of another octant in the set.

    Input need not be sorted; output is sorted and unique.  In Morton
    pre-order an ancestor immediately precedes its first descendant chain,
    so a single linear sweep comparing each octant with the next retained
    one suffices.
    """
    keys = np.unique(np.asarray(keys, dtype=np.uint64))
    if keys.size <= 1:
        return keys
    # In sorted Morton id order the descendants of an octant occupy the
    # contiguous id interval (oct, deepest_last_descendant(oct)], so an
    # octant is an ancestor of something iff its *immediate* successor lies
    # in that interval.
    keep = np.ones(keys.size, dtype=bool)
    keep[:-1] = keys[1:] > morton.deepest_last_descendant(keys[:-1])
    return keys[keep]


def coarsest_common_ancestor(a: np.uint64, b: np.uint64) -> np.uint64:
    """Finest octant containing both ``a`` and ``b``."""
    la = int(morton.level(a))
    lb = int(morton.level(b))
    lev = min(la, lb)
    while lev > 0:
        pa = morton.ancestor_at(a, np.int64(lev))
        pb = morton.ancestor_at(b, np.int64(lev))
        if pa == pb:
            return np.uint64(pa)
        lev -= 1
    return np.uint64(morton.ROOT)


def _cell_index(octs: np.ndarray) -> np.ndarray:
    """Morton cell index (interleaved key without level bits) of the first
    ``MAX_DEPTH`` cell inside each octant."""
    return np.asarray(octs, dtype=np.uint64) >> np.uint64(morton.LEVEL_BITS)


def fill_cell_range(cell_lo: int, cell_hi: int) -> np.ndarray:
    """Coarsest sorted octant cover of the Morton cell range ``[lo, hi)``.

    Cells are ``MAX_DEPTH``-level lattice positions in interleaved-key
    order.  Greedy: at each position emit the largest octant that is both
    aligned there and fits in the remaining range.  This primitive is what
    DENDRO's region completion reduces to in key space.
    """
    lo = int(cell_lo)
    hi = int(cell_hi)
    out: list[int] = []
    while lo < hi:
        k = 0
        # Largest aligned block: 8**k must divide lo and fit below hi.
        while k < morton.MAX_DEPTH:
            size = 1 << (3 * (k + 1))
            if lo % size != 0 or lo + size > hi:
                break
            k += 1
        block = 1 << (3 * k)
        out.append((lo << morton.LEVEL_BITS) | (morton.MAX_DEPTH - k))
        lo += block
    return np.array(out, dtype=np.uint64)


def complete_region(a: np.uint64, b: np.uint64) -> np.ndarray:
    """Coarsest complete linear octree strictly between octants ``a``, ``b``.

    ``a`` must precede ``b`` in Morton order and neither may be an ancestor
    of the other.  This is DENDRO's ``CompleteRegion``: the octants filling
    the key-space gap between the two, exclusive of both endpoints.
    """
    a = np.uint64(a)
    b = np.uint64(b)
    if not (a < b):
        raise ValueError("complete_region requires a < b in Morton order")
    if morton.is_ancestor(a, b) or morton.is_ancestor(b, a):
        raise ValueError("endpoints must not be ancestor-related")
    gap_lo = int(_cell_index(morton.deepest_last_descendant(a))) + 1
    gap_hi = int(_cell_index(morton.deepest_first_descendant(b)))
    return fill_cell_range(gap_lo, gap_hi)


def complete_to_unit_cube(leaves: np.ndarray) -> np.ndarray:
    """Extend a sorted, ancestor-free leaf set to tile the whole unit cube.

    Gaps between consecutive leaves — and before the first / after the last
    leaf — are filled with the coarsest octants that fit (DENDRO Algorithm 4
    at single-process scope).
    """
    leaves = remove_ancestors(leaves)
    if leaves.size == 0:
        return np.array([morton.ROOT], dtype=np.uint64)
    n_cells = 1 << (3 * morton.MAX_DEPTH)
    pieces = [leaves]
    starts = _cell_index(morton.deepest_first_descendant(leaves))
    stops = _cell_index(morton.deepest_last_descendant(leaves)) + np.uint64(1)
    pieces.append(fill_cell_range(0, int(starts[0])))
    for i in range(leaves.size - 1):
        pieces.append(fill_cell_range(int(stops[i]), int(starts[i + 1])))
    pieces.append(fill_cell_range(int(stops[-1]), n_cells))
    return np.sort(np.concatenate(pieces))


def is_complete(leaves: np.ndarray) -> bool:
    """True when the sorted leaf set tiles the unit cube with no overlap."""
    leaves = np.asarray(leaves, dtype=np.uint64)
    if leaves.size == 0 or not is_sorted_unique(leaves):
        return False
    span = np.uint64(1 << morton.LEVEL_BITS)  # one MAX_DEPTH cell in id units
    lo = morton.deepest_first_descendant(leaves)
    hi = morton.deepest_last_descendant(leaves)
    if lo[0] != morton.deepest_first_descendant(np.array([morton.ROOT]))[0]:
        return False
    if hi[-1] != morton.deepest_last_descendant(np.array([morton.ROOT]))[0]:
        return False
    return bool(np.all(hi[:-1] + span == lo[1:]))


def covering_leaf_indices(leaves: np.ndarray, octs: np.ndarray) -> np.ndarray:
    """Index of the leaf whose region contains each query octant.

    ``leaves`` must be a complete sorted linear octree.  Returns -1 when the
    query octant is not contained in (or equal to) any single leaf — i.e.
    when the query is coarser than the local refinement.
    """
    leaves = np.asarray(leaves, dtype=np.uint64)
    octs = np.asarray(octs, dtype=np.uint64)
    lo = morton.deepest_first_descendant(leaves)
    q_lo = morton.deepest_first_descendant(octs)
    q_hi = morton.deepest_last_descendant(octs)
    idx = np.searchsorted(lo, q_lo, side="right") - 1
    idx = np.clip(idx, 0, leaves.size - 1)
    ok = (morton.deepest_first_descendant(leaves[idx]) <= q_lo) & (
        q_hi <= morton.deepest_last_descendant(leaves[idx])
    )
    return np.where(ok, idx, -1)
