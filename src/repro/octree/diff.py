"""Octant-structure diffing for incremental tree updates.

Given the previous leaf set and the re-sorted point keys after a motion
step, :func:`update_leaves` finds the *dirty subtrees* — the minimal set
of octants whose refinement must be recomputed — and rebuilds only those
via one batched :func:`repro.octree.build.build_leaves` call seeded with
the rebuild roots.  Leaves outside every rebuild root are carried over
unchanged, so a small-motion step touches a handful of octants instead of
re-refining the whole cube.

The rebuild root of a dirty leaf is the highest ancestor whose *new*
point count still fits in a box (<= q): that is exactly the octant the
global top-down refinement would leave as a leaf, so splicing the local
rebuild into the carried-over leaves reproduces the from-scratch
``build_leaves`` result octant for octant (merge steps walk up, splits
refine down, membership-only changes keep the leaf).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.octree.build import build_leaves
from repro.util import morton

__all__ = ["LeafDiff", "update_leaves"]


@dataclass
class LeafDiff:
    """Result of :func:`update_leaves`.

    Attributes
    ----------
    leaves:
        The new complete sorted leaf set.
    roots:
        Sorted, disjoint rebuild roots (every structural or membership
        change is confined to these subtrees).
    refinement_changed:
        True when the leaf *key set* changed (a split or merge happened);
        False means only leaf membership moved.
    """

    leaves: np.ndarray
    roots: np.ndarray
    refinement_changed: bool


def _covered(keys: np.ndarray, roots: np.ndarray) -> np.ndarray:
    """Mask of ``keys`` lying at or below one of the sorted ``roots``."""
    if roots.size == 0 or keys.size == 0:
        return np.zeros(keys.size, dtype=bool)
    lo = morton.deepest_first_descendant(keys)
    hi = morton.deepest_last_descendant(keys)
    idx = np.searchsorted(morton.deepest_first_descendant(roots), lo, side="right") - 1
    idx = np.clip(idx, 0, roots.size - 1)
    rlo = morton.deepest_first_descendant(roots[idx])
    rhi = morton.deepest_last_descendant(roots[idx])
    return (rlo <= lo) & (hi <= rhi)


def update_leaves(
    old_leaves: np.ndarray,
    new_point_keys: np.ndarray,
    changed_cells: np.ndarray,
    max_points_per_box: int,
    max_depth: int = morton.MAX_DEPTH,
) -> LeafDiff:
    """Diff and locally rebuild the leaf set after a point-motion step.

    Parameters
    ----------
    old_leaves:
        Previous complete sorted leaf set.
    new_point_keys:
        Morton ids of all points under the new coordinates, sorted
        (:func:`repro.sort.delta.delta_sort` produces these).
    changed_cells:
        Sorted unique Morton cell ids (at ``MAX_DEPTH``) that gained or
        lost a point — the union of the moved points' old and new cells.
    """
    old_leaves = np.asarray(old_leaves, dtype=np.uint64)
    keys = np.asarray(new_point_keys, dtype=np.uint64)
    cells = np.asarray(changed_cells, dtype=np.uint64)
    if cells.size == 0:
        return LeafDiff(
            leaves=old_leaves, roots=np.empty(0, np.uint64), refinement_changed=False
        )

    # Dirty leaves: any changed cell inside the leaf's key range.
    lo = morton.deepest_first_descendant(old_leaves)
    hi = morton.deepest_last_descendant(old_leaves)
    dirty = (
        np.searchsorted(cells, hi, side="right")
        - np.searchsorted(cells, lo, side="left")
    ) > 0
    dirty_leaves = old_leaves[dirty]
    if dirty_leaves.size == 0:
        return LeafDiff(
            leaves=old_leaves, roots=np.empty(0, np.uint64), refinement_changed=False
        )

    def count_of(octs: np.ndarray) -> np.ndarray:
        b = np.searchsorted(keys, morton.deepest_first_descendant(octs), side="left")
        e = np.searchsorted(keys, morton.deepest_last_descendant(octs), side="right")
        return e - b

    # Rebuild root: the highest ancestor whose new count still fits; an
    # overfull leaf is its own root (split case).  Vectorised walk-up —
    # at most MAX_DEPTH iterations, each one batched searchsorted pair.
    roots = dirty_leaves.copy()
    climb = count_of(roots) <= max_points_per_box  # overfull leaves stay put
    while True:
        idx = np.flatnonzero(climb & (morton.level(roots) > 0))
        if idx.size == 0:
            break
        par = morton.parent(roots[idx])
        ok = count_of(par) <= max_points_per_box
        roots[idx[ok]] = par[ok]
        climb[idx[~ok]] = False
        if not np.any(ok):
            break

    # Deduplicate: drop roots at or below an earlier (coarser) root.  The
    # sorted key order is pre-order, so one linear scan suffices.
    roots = np.unique(roots)
    keep = np.ones(roots.size, dtype=bool)
    last = None
    for i, r in enumerate(roots):
        if last is not None and morton.is_ancestor_or_equal(last, r):
            keep[i] = False
        else:
            last = r
    roots = roots[keep]

    rebuilt = build_leaves(keys, max_points_per_box, max_depth, roots=roots)
    kept = old_leaves[~_covered(old_leaves, roots)]
    leaves = np.sort(np.concatenate([kept, rebuilt]))
    refinement_changed = not (
        leaves.size == old_leaves.size and np.array_equal(leaves, old_leaves)
    )
    return LeafDiff(leaves=leaves, roots=roots, refinement_changed=refinement_changed)
