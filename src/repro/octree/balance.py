"""2:1 balance refinement of complete linear octrees.

The paper's FMM does *not* require a balanced tree (its U/V/W/X lists
handle arbitrary level jumps, and the Kraken runs span 20+ levels), but the
DENDRO substrate the paper builds on provides balancing and downstream
users frequently want it, so we reproduce the ripple-propagation balance as
an optional post-pass on a complete leaf array.

A complete linear octree is 2:1 balanced when, for every leaf, every
same-level neighbour region is covered by leaves no more than one level
coarser.
"""

from __future__ import annotations

import numpy as np

from repro.util import morton
from repro.octree import linear

__all__ = ["balance_2to1", "is_2to1_balanced"]


def _violations(leaves: np.ndarray) -> np.ndarray:
    """Indices of leaves that are too coarse next to some finer leaf.

    A leaf ``c`` violates balance when a leaf more than one level finer is
    adjacent to it; equivalently, when some leaf's *parent's* same-level
    neighbour candidate lies strictly inside ``c`` at a finer level than
    ``c``'s own.
    """
    fine = leaves[morton.level(leaves) > 1]
    if fine.size == 0:
        return np.empty(0, dtype=np.int64)
    parents = np.unique(morton.parent(fine))
    ids, valid = morton.neighbors(parents)
    required = np.unique(ids[valid])
    cover = linear.covering_leaf_indices(leaves, required)
    ok = cover >= 0
    too_coarse = ok & (morton.level(leaves[np.clip(cover, 0, None)]) < morton.level(required))
    return np.unique(cover[too_coarse])


def balance_2to1(
    leaves: np.ndarray, max_rounds: int = morton.MAX_DEPTH + 1
) -> np.ndarray:
    """2:1-balanced refinement of a complete linear octree.

    Each round splits every leaf that is more than one level coarser than
    an adjacent leaf; splitting can create new violations one level up
    (the "ripple"), so rounds repeat until a fixed point — at most
    ``MAX_DEPTH`` rounds since minimum leaf level rises monotonically.
    """
    leaves = np.asarray(leaves, dtype=np.uint64)
    if not linear.is_complete(leaves):
        raise ValueError("balance_2to1 expects a complete linear octree")
    for _ in range(max_rounds):
        bad = _violations(leaves)
        if bad.size == 0:
            return leaves
        keep = np.ones(leaves.size, dtype=bool)
        keep[bad] = False
        kids = morton.children(leaves[bad]).ravel()
        leaves = np.sort(np.concatenate([leaves[keep], kids]))
    raise RuntimeError("2:1 balance did not converge")  # pragma: no cover


def is_2to1_balanced(leaves: np.ndarray) -> bool:
    """Check that every leaf's neighbourhood is within one level of it."""
    leaves = np.asarray(leaves, dtype=np.uint64)
    fine = leaves[morton.level(leaves) > 1]
    if fine.size == 0:
        return True
    ids, valid = morton.neighbors(fine)
    levels = np.broadcast_to(morton.level(fine)[:, None], ids.shape)
    flat_ids = ids[valid]
    flat_lev = levels[valid]
    cover = linear.covering_leaf_indices(leaves, flat_ids)
    ok = cover >= 0
    neighbor_levels = morton.level(leaves[np.clip(cover, 0, None)])
    return not np.any(ok & (flat_lev - neighbor_levels > 1))
