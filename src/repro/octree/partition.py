"""Weighted partitioning of Morton-sorted arrays across ranks.

This is the sequential arithmetic behind the paper's two partitioning
passes: the initial equal-chunk split of the sorted leaf array, and the
work-weighted repartition of §III-B ("we repartition the leaves to ensure
that the total weight of the leaves owned by each process is approximately
equal", Algorithm 1 of Sundar et al.).  The distributed wrappers in
:mod:`repro.dist.loadbalance` reduce to these functions applied to global
prefix sums.
"""

from __future__ import annotations

import numpy as np

__all__ = ["partition_bounds", "split_by_weights", "rank_of_index"]


def partition_bounds(total: int, parts: int) -> np.ndarray:
    """Equal-chunk boundaries: ``parts + 1`` monotone indices over ``total``.

    Chunk sizes differ by at most one element (the leading chunks get the
    remainder), matching a block distribution of a sorted array.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    base, rem = divmod(int(total), parts)
    sizes = np.full(parts, base, dtype=np.int64)
    sizes[:rem] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


def split_by_weights(weights: np.ndarray, parts: int) -> np.ndarray:
    """Contiguous split of a weighted sequence into ``parts`` even pieces.

    Returns ``parts + 1`` boundaries such that each piece's weight is as
    close as possible to ``total_weight / parts`` under the constraint that
    pieces are contiguous (the Morton-order constraint of the paper).  Uses
    the ideal prefix-sum cut points, which is exactly what the distributed
    algorithm computes from a global scan.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    w = np.asarray(weights, dtype=np.float64)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    n = w.size
    if n == 0:
        return np.zeros(parts + 1, dtype=np.int64)
    prefix = np.cumsum(w)
    total = prefix[-1]
    if total == 0:
        return partition_bounds(n, parts)
    targets = total * np.arange(1, parts) / parts
    cuts = np.searchsorted(prefix, targets, side="left") + 1
    bounds = np.concatenate([[0], cuts, [n]]).astype(np.int64)
    return np.maximum.accumulate(bounds)


def rank_of_index(bounds: np.ndarray, idx) -> np.ndarray:
    """Owning rank of each global index under the given boundaries."""
    idx = np.asarray(idx, dtype=np.int64)
    return np.clip(np.searchsorted(bounds, idx, side="right") - 1, 0, len(bounds) - 2)
