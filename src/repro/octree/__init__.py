"""Linear (Morton-array) octrees: construction, completion, partitioning.

This subpackage is the reproduction of the paper's DENDRO substrate
(Sundar, Sampath & Biros, SISC 2008): octrees are plain sorted ``uint64``
arrays of octant ids, built bottom-up/top-down from point Morton keys and
partitioned across (virtual) MPI ranks by splitting the sorted array.
"""

from repro.octree.build import build_leaves, leaf_point_counts, points_to_octree
from repro.octree.linear import (
    complete_region,
    complete_to_unit_cube,
    coarsest_common_ancestor,
    is_complete,
    is_sorted_unique,
    remove_ancestors,
)
from repro.octree.partition import (
    partition_bounds,
    split_by_weights,
)
from repro.octree.balance import balance_2to1, is_2to1_balanced

__all__ = [
    "build_leaves",
    "leaf_point_counts",
    "points_to_octree",
    "complete_region",
    "complete_to_unit_cube",
    "coarsest_common_ancestor",
    "is_complete",
    "is_sorted_unique",
    "remove_ancestors",
    "partition_bounds",
    "split_by_weights",
    "balance_2to1",
    "is_2to1_balanced",
]
