"""Per-phase accounting of modelled time, flops and bytes.

Wall-clock on a single laptop core says nothing about a 65K-core run, so —
exactly like the paper's own complexity analysis — every phase accumulates
*counted* work (flops) and *counted* traffic (messages, bytes) into a
:class:`PhaseProfile`.  Machine models (see :mod:`repro.mpi.machine`)
convert those ledgers into modelled seconds.  Wall-clock is also recorded so
real measurements remain available for the sequential benchmarks.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["PhaseEvent", "PhaseProfile"]


@dataclass
class PhaseEvent:
    """Accumulated counters for one named phase on one rank."""

    name: str
    wall_seconds: float = 0.0
    flops: float = 0.0
    comm_messages: int = 0
    comm_bytes: float = 0.0
    #: Modelled communication seconds (latency + bandwidth terms), filled in
    #: by the communication layer as messages are logged.
    comm_seconds: float = 0.0

    def merge(self, other: "PhaseEvent") -> None:
        self.wall_seconds += other.wall_seconds
        self.flops += other.flops
        self.comm_messages += other.comm_messages
        self.comm_bytes += other.comm_bytes
        self.comm_seconds += other.comm_seconds


@dataclass
class PhaseProfile:
    """Ordered collection of :class:`PhaseEvent` counters.

    A profile may optionally be bound to a trace recorder (see
    :meth:`bind_trace`): every ``phase()`` activation then emits one span
    event carrying the wall seconds and the counter *deltas* accumulated
    while the phase was open.  Spans closed by an exception unwinding
    through the phase (a rank crash, an abort) carry ``aborted=True``.

    A chaos hook (see :meth:`bind_chaos`) is called on every phase
    *entry*, before the phase opens — fault plans use it to inject
    phase-targeted crashes and straggler delays.
    """

    events: dict[str, PhaseEvent] = field(default_factory=dict)
    #: Arithmetic precision of the evaluation this profile is tracking
    #: ("fp64" / "fp32").  Set by the evaluator at the top of each
    #: evaluate call and stamped onto every emitted span, so traces can
    #: attribute wall time and flops to a precision.
    precision: str = "fp64"
    #: Open phases, innermost last: (name, start perf_counter, counter snapshot).
    _open: list[tuple[str, float, tuple]] = field(default_factory=list)
    #: Optional :class:`repro.perf.trace.TraceRecorder` (duck-typed so the
    #: util layer stays independent of :mod:`repro.perf`).
    _trace: object | None = field(default=None, repr=False, compare=False)
    _trace_rank: int = field(default=0, repr=False, compare=False)
    #: Optional phase-entry hook ``hook(rank, name, profile)`` (duck-typed;
    #: see :class:`repro.mpi.faults.ChaosFabric`).  May raise to crash the
    #: rank *before* the phase opens.
    _chaos: object | None = field(default=None, repr=False, compare=False)
    _chaos_rank: int = field(default=0, repr=False, compare=False)

    def bind_trace(self, trace, rank: int = 0) -> None:
        """Emit one span event per ``phase()`` activation into ``trace``."""
        self._trace = trace
        self._trace_rank = int(rank)

    def bind_chaos(self, hook, rank: int = 0) -> None:
        """Call ``hook(rank, name, profile)`` on every phase entry."""
        self._chaos = hook
        self._chaos_rank = int(rank)

    def event(self, name: str) -> PhaseEvent:
        ev = self.events.get(name)
        if ev is None:
            ev = self.events[name] = PhaseEvent(name)
        return ev

    @property
    def current(self) -> PhaseEvent:
        """Event of the innermost active phase (``"untimed"`` outside any)."""
        return self.event(self.current_name)

    @property
    def current_name(self) -> str:
        """Name of the innermost active phase (``"untimed"`` outside any)."""
        return self._open[-1][0] if self._open else "untimed"

    def _snapshot(self, ev: PhaseEvent) -> tuple:
        return (ev.flops, ev.comm_messages, ev.comm_bytes, ev.comm_seconds)

    def _emit_span(
        self, name: str, wall: float, ev: PhaseEvent, snap: tuple, aborted: bool
    ) -> None:
        self._trace.record_span(
            self._trace_rank,
            name,
            wall,
            ev.flops - snap[0],
            ev.comm_messages - snap[1],
            ev.comm_bytes - snap[2],
            ev.comm_seconds - snap[3],
            aborted=aborted,
            precision=self.precision,
        )

    @contextmanager
    def phase(self, name: str):
        """Time a phase; nested phases attribute counters to the innermost."""
        if self._chaos is not None:
            # before the phase opens: an injected crash leaves no open span
            self._chaos(self._chaos_rank, name, self)
        ev = self.event(name)
        snap = self._snapshot(ev)
        t0 = time.perf_counter()
        self._open.append((name, t0, snap))
        aborted = True
        try:
            yield ev
            aborted = False
        finally:
            wall = time.perf_counter() - t0
            ev.wall_seconds += wall
            self._open.pop()
            if self._trace is not None:
                self._emit_span(name, wall, ev, snap, aborted)

    def flush_open_spans(self) -> int:
        """Close still-open phases as ``aborted`` spans; returns the count.

        The launcher calls this for ranks whose threads never unwound
        past an abort (wedged in foreign code or a sleep), so a JSONL
        export of the failed run is still well-formed: every phase that
        was open at abort time gets exactly one span, flagged aborted.
        Counter deltas are read while the wedged thread may still be
        running — a benign race, acceptable for post-mortem traces.
        """
        if self._trace is None:
            return 0
        now = time.perf_counter()
        flushed = 0
        for name, t0, snap in list(self._open):
            self._emit_span(name, now - t0, self.event(name), snap, True)
            flushed += 1
        return flushed

    def add_flops(self, flops: float, phase: str | None = None) -> None:
        (self.event(phase) if phase else self.current).flops += flops

    def add_message(
        self, nbytes: float, seconds: float, phase: str | None = None
    ) -> None:
        ev = self.event(phase) if phase else self.current
        ev.comm_messages += 1
        ev.comm_bytes += nbytes
        ev.comm_seconds += seconds

    def merge(self, other: "PhaseProfile") -> None:
        for name, ev in other.events.items():
            self.event(name).merge(ev)

    def total_flops(self) -> float:
        return sum(ev.flops for ev in self.events.values())

    def as_table(self) -> list[tuple[str, float, float, float, float]]:
        """Rows of (phase, wall s, flops, messages, bytes) in insert order."""
        return [
            (ev.name, ev.wall_seconds, ev.flops, ev.comm_messages, ev.comm_bytes)
            for ev in self.events.values()
        ]
