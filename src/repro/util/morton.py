"""Vectorised 3-D Morton (Z-order) key algebra for linear octrees.

An *octant id* packs the octant's anchor (its minimum corner, expressed in
integer lattice coordinates at the maximum refinement depth) together with
its refinement level into a single ``uint64``::

    oct_id = (interleave(x, y, z) << LEVEL_BITS) | level

With ``MAX_DEPTH = 19`` the interleaved anchor occupies ``3 * 19 = 57`` bits
and the level 5 bits, for 62 bits total.  Sorting ids numerically yields the
Morton *pre-order* traversal of the octree: every ancestor precedes its
descendants and disjoint subtrees appear in Z-order.  This single-word
representation is what the paper's DENDRO substrate uses for distributed
linear octrees and what makes all tree algorithms expressible as operations
on sorted ``uint64`` arrays.

All functions are vectorised and accept scalars or ``ndarray``s of ids.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_DEPTH",
    "LEVEL_BITS",
    "ROOT",
    "anchor",
    "anchor_step",
    "ancestor_at",
    "ancestors_of",
    "adjacent",
    "box_side_int",
    "children",
    "closures_touch",
    "deepest_first_descendant",
    "deepest_last_descendant",
    "encode_anchors",
    "encode_points",
    "is_ancestor",
    "is_ancestor_or_equal",
    "is_valid",
    "level",
    "make_oct",
    "neighbors",
    "parent",
]

#: Maximum refinement depth supported by the 64-bit key encoding.
MAX_DEPTH = 19

#: Number of low-order bits reserved for the level field.
LEVEL_BITS = 5

_LEVEL_MASK = np.uint64((1 << LEVEL_BITS) - 1)
_COORD_BITS = MAX_DEPTH
_MAX_COORD = np.uint64(1 << _COORD_BITS)

#: The root octant (anchor 0, level 0).
ROOT = np.uint64(0)

# Magic-number bit spreading for interleaving up to 21-bit coordinates into
# every third bit of a 64-bit word (classic Morton dilation constants).
_SPREAD_MASKS = (
    (np.uint64(32), np.uint64(0x1F00000000FFFF)),
    (np.uint64(16), np.uint64(0x1F0000FF0000FF)),
    (np.uint64(8), np.uint64(0x100F00F00F00F00F)),
    (np.uint64(4), np.uint64(0x10C30C30C30C30C3)),
    (np.uint64(2), np.uint64(0x1249249249249249)),
)


def _spread(v: np.ndarray) -> np.ndarray:
    """Dilate the low 21 bits of ``v`` so bit *i* moves to bit ``3 i``."""
    v = v.astype(np.uint64) & np.uint64(0x1FFFFF)
    for shift, mask in _SPREAD_MASKS:
        v = (v | (v << shift)) & mask
    return v


def _compact(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread`: gather every third bit into the low bits."""
    v = v.astype(np.uint64) & np.uint64(0x1249249249249249)
    v = (v | (v >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    v = (v | (v >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return v


def make_oct(x, y, z, lev) -> np.ndarray:
    """Build octant ids from integer anchor coordinates and levels.

    Anchor coordinates are lattice positions at ``MAX_DEPTH`` resolution and
    must be aligned to the octant's own grid (multiples of
    ``anchor_step(lev)``); this is not checked here for speed.
    """
    x = np.asarray(x, dtype=np.uint64)
    y = np.asarray(y, dtype=np.uint64)
    z = np.asarray(z, dtype=np.uint64)
    lev = np.asarray(lev, dtype=np.uint64)
    key = (_spread(x) << np.uint64(2)) | (_spread(y) << np.uint64(1)) | _spread(z)
    return (key << np.uint64(LEVEL_BITS)) | lev


def level(octs) -> np.ndarray:
    """Refinement level of each octant (0 = root)."""
    return (np.asarray(octs, dtype=np.uint64) & _LEVEL_MASK).astype(np.int64)


def anchor(octs) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Integer anchor coordinates (min corner) at ``MAX_DEPTH`` resolution."""
    key = np.asarray(octs, dtype=np.uint64) >> np.uint64(LEVEL_BITS)
    x = _compact(key >> np.uint64(2))
    y = _compact(key >> np.uint64(1))
    z = _compact(key)
    return x.astype(np.int64), y.astype(np.int64), z.astype(np.int64)


def anchor_step(lev) -> np.ndarray:
    """Lattice alignment (and side length) of an octant at level ``lev``."""
    return box_side_int(lev)


def box_side_int(lev) -> np.ndarray:
    """Integer side length of a level-``lev`` octant at ``MAX_DEPTH`` units."""
    lev = np.asarray(lev, dtype=np.int64)
    return np.int64(1) << (MAX_DEPTH - lev)


def is_valid(octs) -> np.ndarray:
    """Check level range and anchor alignment of octant ids."""
    octs = np.asarray(octs, dtype=np.uint64)
    lev = level(octs)
    ok = (lev >= 0) & (lev <= MAX_DEPTH)
    x, y, z = anchor(octs)
    step = box_side_int(np.clip(lev, 0, MAX_DEPTH))
    for c in (x, y, z):
        ok &= (c % step) == 0
        ok &= c < np.int64(int(_MAX_COORD))
    return ok


def encode_points(points: np.ndarray, depth: int = MAX_DEPTH) -> np.ndarray:
    """Morton ids (at level ``depth``) of points in the unit cube.

    Points are clipped into ``[0, 1)`` so boundary points land in the last
    cell instead of overflowing the lattice.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"expected (n, 3) points, got {pts.shape}")
    scaled = np.clip(pts, 0.0, np.nextafter(1.0, 0.0)) * float(1 << depth)
    cells = scaled.astype(np.uint64) << np.uint64(MAX_DEPTH - depth)
    return make_oct(cells[:, 0], cells[:, 1], cells[:, 2], np.full(len(pts), depth))


def encode_anchors(anchors: np.ndarray, lev) -> np.ndarray:
    """Octant ids from an ``(n, 3)`` integer anchor array."""
    a = np.asarray(anchors)
    return make_oct(a[:, 0], a[:, 1], a[:, 2], lev)


def parent(octs) -> np.ndarray:
    """Parent octant id (the root maps to itself)."""
    octs = np.asarray(octs, dtype=np.uint64)
    lev = level(octs)
    plev = np.maximum(lev - 1, 0)
    # Clear anchor bits finer than the parent's resolution.  Each level
    # contributes 3 interleaved bits right above the level field.
    shift = (np.uint64(LEVEL_BITS) + 3 * (MAX_DEPTH - plev).astype(np.uint64))
    key = (octs >> shift) << shift
    return key | plev.astype(np.uint64)


def ancestor_at(octs, lev) -> np.ndarray:
    """Ancestor (or self) of each octant at the requested coarser level."""
    octs = np.asarray(octs, dtype=np.uint64)
    lev = np.asarray(lev, dtype=np.int64)
    shift = (np.uint64(LEVEL_BITS) + 3 * (MAX_DEPTH - lev).astype(np.uint64))
    key = (octs >> shift) << shift
    return key | lev.astype(np.uint64)


def children(octs) -> np.ndarray:
    """The 8 children of each octant, shape ``(..., 8)``, in Morton order."""
    octs = np.atleast_1d(np.asarray(octs, dtype=np.uint64))
    lev = level(octs)
    if np.any(lev >= MAX_DEPTH):
        raise ValueError("cannot refine an octant at MAX_DEPTH")
    clev = (lev + 1).astype(np.uint64)
    base = (octs >> np.uint64(LEVEL_BITS)) << np.uint64(LEVEL_BITS)
    # Child k differs from the parent in the 3 interleaved bits at the
    # child's resolution; k itself is the Morton order within the parent.
    offs = np.arange(8, dtype=np.uint64)
    shift = (np.uint64(LEVEL_BITS) + 3 * (MAX_DEPTH - 1 - lev).astype(np.uint64))
    kids = base[:, None] | (offs[None, :] << shift[:, None]) | clev[:, None].astype(np.uint64)
    return kids


def is_ancestor(a, b) -> np.ndarray:
    """True where octant ``a`` is a *strict* ancestor of octant ``b``."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    la, lb = level(a), level(b)
    return (la < lb) & (ancestor_at(b, np.minimum(la, lb)) == a)


def is_ancestor_or_equal(a, b) -> np.ndarray:
    """True where ``a`` is an ancestor of ``b`` or equal to it."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    la, lb = level(a), level(b)
    return (la <= lb) & (ancestor_at(b, np.minimum(la, lb)) == a)


def deepest_first_descendant(octs) -> np.ndarray:
    """Id of the first ``MAX_DEPTH``-level descendant (same anchor)."""
    octs = np.asarray(octs, dtype=np.uint64)
    key = (octs >> np.uint64(LEVEL_BITS)) << np.uint64(LEVEL_BITS)
    return key | np.uint64(MAX_DEPTH)


def deepest_last_descendant(octs) -> np.ndarray:
    """Id of the last ``MAX_DEPTH``-level descendant of each octant."""
    octs = np.asarray(octs, dtype=np.uint64)
    lev = level(octs)
    key = octs >> np.uint64(LEVEL_BITS)
    fill = (np.uint64(1) << (3 * (MAX_DEPTH - lev).astype(np.uint64))) - np.uint64(1)
    return ((key | fill) << np.uint64(LEVEL_BITS)) | np.uint64(MAX_DEPTH)


def ancestors_of(octs, include_self: bool = False) -> np.ndarray:
    """Sorted unique ancestors of a set of octants (root included)."""
    cur = np.unique(np.asarray(octs, dtype=np.uint64))
    out = [cur] if include_self else []
    while cur.size and np.any(level(cur) > 0):
        cur = np.unique(parent(cur[level(cur) > 0]))
        out.append(cur)
    if not out:
        return np.empty(0, dtype=np.uint64)
    return np.unique(np.concatenate(out))


# 26 neighbour offsets (all sign combinations except the zero offset).
_NEIGHBOR_OFFSETS = np.array(
    [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if (dx, dy, dz) != (0, 0, 0)
    ],
    dtype=np.int64,
)


def neighbors(octs) -> tuple[np.ndarray, np.ndarray]:
    """Same-level neighbour candidates of each octant.

    Returns ``(ids, valid)`` with shape ``(n, 26)``; ``valid`` is False for
    offsets that fall outside the unit cube.  Whether a candidate actually
    exists in a given tree is the caller's concern.
    """
    octs = np.atleast_1d(np.asarray(octs, dtype=np.uint64))
    x, y, z = anchor(octs)
    lev = level(octs)
    step = box_side_int(lev)
    nx = x[:, None] + _NEIGHBOR_OFFSETS[None, :, 0] * step[:, None]
    ny = y[:, None] + _NEIGHBOR_OFFSETS[None, :, 1] * step[:, None]
    nz = z[:, None] + _NEIGHBOR_OFFSETS[None, :, 2] * step[:, None]
    hi = np.int64(int(_MAX_COORD))
    valid = (
        (nx >= 0) & (nx < hi) & (ny >= 0) & (ny < hi) & (nz >= 0) & (nz < hi)
    )
    nxc = np.where(valid, nx, 0).astype(np.uint64)
    nyc = np.where(valid, ny, 0).astype(np.uint64)
    nzc = np.where(valid, nz, 0).astype(np.uint64)
    lev_b = np.broadcast_to(lev[:, None], nxc.shape)
    ids = make_oct(nxc, nyc, nzc, lev_b)
    return ids, valid


def closures_touch(a, b) -> np.ndarray:
    """True where the closed boxes of ``a`` and ``b`` intersect.

    This includes overlap (ancestor/descendant pairs) as well as shared
    faces, edges and corners.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    ax, ay, az = anchor(a)
    bx, by, bz = anchor(b)
    sa = box_side_int(level(a))
    sb = box_side_int(level(b))
    out = np.ones(np.broadcast_shapes(a.shape, b.shape), dtype=bool)
    for ca, cb in ((ax, bx), (ay, by), (az, bz)):
        out &= (ca <= cb + sb) & (cb <= ca + sa)
    return out


def adjacent(a, b) -> np.ndarray:
    """True where distinct, non-overlapping octants share a boundary point.

    Matches the paper's adjacency definition: ``a`` and ``b`` share a
    vertex, edge, or face.  Ancestor/descendant pairs (whose interiors
    overlap) and identical octants are *not* adjacent.
    """
    touch = closures_touch(a, b)
    related = is_ancestor_or_equal(a, b) | is_ancestor_or_equal(b, a)
    return touch & ~related
