"""Shared utilities: Morton key algebra, geometry, array helpers, timers."""

from repro.util import morton
from repro.util.geometry import box_center, box_half_width, box_corners
from repro.util.timer import PhaseProfile

__all__ = ["morton", "box_center", "box_half_width", "box_corners", "PhaseProfile"]
