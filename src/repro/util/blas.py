"""BLAS threadpool guard for the intra-rank task executor.

The parallel plan executor (:mod:`repro.core.parallel`) runs tile GEMMs
on its own thread pool.  If the underlying BLAS also spins up its own
threads per call, a ``threads=4`` apply can land ``4 x blas_threads``
runnable threads on the host — oversubscription that wrecks serving p99
far more than it helps throughput.  The fix is the standard
threadpoolctl trick: pin BLAS to one thread *inside* parallel sections
and restore the ambient setting on exit.

threadpoolctl itself is an optional dependency we cannot assume, so this
module reimplements the narrow slice we need with ctypes: find the
OpenBLAS (or MKL) shared library NumPy/SciPy actually loaded, resolve
its ``*_set_num_threads`` / ``*_get_num_threads`` pair, and drive those.
Every probe failure degrades to a no-op guard — on an exotic BLAS the
executor still runs correctly, it just cannot prevent oversubscription.

The guard is **reentrant and refcounted**: concurrent serve workers all
enter ``limit_blas_threads(1)`` around their plan applies; the first
entry saves the ambient thread count and pins, the last exit restores.
Nested sections therefore see a stable setting, and the restore cannot
race between overlapping applies.
"""

from __future__ import annotations

import ctypes
import glob
import os
import threading
from contextlib import contextmanager

__all__ = ["limit_blas_threads", "blas_thread_count", "blas_controller"]


class _BlasControl:
    """A resolved (set_num_threads, get_num_threads) pair."""

    def __init__(self, setter, getter):
        self._set = setter
        self._get = getter

    def get(self) -> int:
        try:
            return int(self._get())
        except Exception:
            return 0

    def set(self, n: int) -> None:
        try:
            self._set(int(n))
        except Exception:
            pass


#: Symbol-name candidates, most specific first.  SciPy >= 1.11 vendors
#: OpenBLAS with a ``scipy_openblas`` prefix (and an ILP64 ``64_``
#: suffix); older wheels export the plain OpenBLAS names.
_SET_SYMBOLS = (
    "scipy_openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "openblas_set_num_threads",
    "goto_set_num_threads",
    "MKL_Set_Num_Threads",
)
_GET_SYMBOLS = (
    "scipy_openblas_get_num_threads64_",
    "scipy_openblas_get_num_threads",
    "openblas_get_num_threads64_",
    "openblas_get_num_threads",
    "MKL_Get_Max_Threads",
)


def _candidate_libs() -> list[str]:
    """Shared BLAS libraries bundled with the loaded numpy/scipy."""
    out: list[str] = []
    for mod in ("numpy", "scipy"):
        try:
            pkg = __import__(mod)
        except Exception:  # pragma: no cover - numpy is a hard dep
            continue
        base = os.path.dirname(os.path.dirname(pkg.__file__))
        for libdir in (f"{mod}.libs", f"{mod}/.libs"):
            pat = os.path.join(base, libdir, "*")
            out.extend(
                p for p in sorted(glob.glob(pat))
                if "blas" in os.path.basename(p).lower()
            )
    return out


def _probe() -> _BlasControl | None:
    # Prefer threadpoolctl when it happens to be installed: it knows
    # every BLAS flavour and handles multiple loaded libraries.
    try:
        import threadpoolctl  # type: ignore

        ctl = threadpoolctl.ThreadpoolController()

        def _set(n: int, _ctl=ctl) -> None:
            _ctl.limit(limits=int(n), user_api="blas")

        def _get(_ctl=ctl) -> int:
            infos = [
                i["num_threads"]
                for i in _ctl.info()
                if i.get("user_api") == "blas"
            ]
            return max(infos) if infos else 0

        return _BlasControl(_set, _get)
    except Exception:
        pass
    for path in _candidate_libs():
        try:
            lib = ctypes.CDLL(path, mode=ctypes.RTLD_GLOBAL)
        except OSError:
            continue
        setter = getter = None
        for name in _SET_SYMBOLS:
            setter = getattr(lib, name, None)
            if setter is not None:
                break
        for name in _GET_SYMBOLS:
            getter = getattr(lib, name, None)
            if getter is not None:
                break
        if setter is not None and getter is not None:
            setter.argtypes = [ctypes.c_int]
            setter.restype = None
            getter.argtypes = []
            getter.restype = ctypes.c_int
            return _BlasControl(setter, getter)
    return None


_probe_lock = threading.Lock()
_probed = False
_control: _BlasControl | None = None


def blas_controller() -> _BlasControl | None:
    """The process BLAS control handle, or ``None`` when unresolvable."""
    global _probed, _control
    if not _probed:
        with _probe_lock:
            if not _probed:
                _control = _probe()
                _probed = True
    return _control


def blas_thread_count() -> int:
    """Current BLAS thread setting (0 when no controllable BLAS found)."""
    ctl = blas_controller()
    return ctl.get() if ctl is not None else 0


_guard_lock = threading.Lock()
_guard_depth = 0
_guard_saved = 0


@contextmanager
def limit_blas_threads(n: int = 1):
    """Pin the BLAS threadpool to ``n`` for the duration of the block.

    Reentrant across threads: the outermost entry (process-wide) saves
    the ambient setting and pins; inner/concurrent entries just bump the
    refcount, and the last exit restores.  No-op when no controllable
    BLAS library could be resolved.
    """
    global _guard_depth, _guard_saved
    ctl = blas_controller()
    if ctl is None:
        yield
        return
    with _guard_lock:
        if _guard_depth == 0:
            _guard_saved = ctl.get()
            ctl.set(n)
        _guard_depth += 1
    try:
        yield
    finally:
        with _guard_lock:
            _guard_depth -= 1
            if _guard_depth == 0 and _guard_saved > 0:
                ctl.set(_guard_saved)
