"""Physical (unit-cube) geometry of octants.

The octree lives in the unit cube ``[0, 1]^3``.  A level-``l`` octant has
side ``2**-l``.  These helpers convert octant ids into floating-point
centres, corners and half-widths used by the KIFMM surface constructions.
"""

from __future__ import annotations

import numpy as np

from repro.util import morton

__all__ = ["box_center", "box_half_width", "box_corners", "points_to_box_frame"]

_SCALE = 1.0 / float(1 << morton.MAX_DEPTH)


def box_half_width(lev) -> np.ndarray:
    """Half of the physical side length of a level-``lev`` octant."""
    lev = np.asarray(lev, dtype=np.float64)
    return 0.5 * np.exp2(-lev)


def box_center(octs) -> np.ndarray:
    """Physical centre of each octant, shape ``(n, 3)``."""
    octs = np.atleast_1d(np.asarray(octs, dtype=np.uint64))
    x, y, z = morton.anchor(octs)
    half = morton.box_side_int(morton.level(octs)).astype(np.float64) * 0.5
    out = np.empty((octs.size, 3), dtype=np.float64)
    out[:, 0] = (x.astype(np.float64) + half) * _SCALE
    out[:, 1] = (y.astype(np.float64) + half) * _SCALE
    out[:, 2] = (z.astype(np.float64) + half) * _SCALE
    return out


def box_corners(octs) -> tuple[np.ndarray, np.ndarray]:
    """Physical (min corner, max corner) of each octant, shapes ``(n, 3)``."""
    octs = np.atleast_1d(np.asarray(octs, dtype=np.uint64))
    x, y, z = morton.anchor(octs)
    side = morton.box_side_int(morton.level(octs)).astype(np.float64)
    lo = np.stack([x, y, z], axis=1).astype(np.float64) * _SCALE
    hi = lo + side[:, None] * _SCALE
    return lo, hi


def points_to_box_frame(points: np.ndarray, oct_id) -> np.ndarray:
    """Express points in the octant-centred frame scaled by its half width.

    The box interior maps to ``[-1, 1]^3``; used when validating surface
    separation assumptions in tests.
    """
    c = box_center(np.asarray([oct_id], dtype=np.uint64))[0]
    r = float(box_half_width(morton.level(np.uint64(oct_id))))
    return (np.asarray(points, dtype=np.float64) - c) / r
