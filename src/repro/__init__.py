"""repro — reproduction of Lashuk et al., *A massively parallel adaptive
fast-multipole method on heterogeneous architectures* (SC 2009).

Public entry points:

* :class:`repro.Fmm` — single-process kernel-independent adaptive FMM.
* :class:`repro.DistributedFmm` — the distributed FMM on the simulated MPI
  runtime (:func:`repro.run_spmd` launches SPMD functions).
* :class:`repro.GpuFmmEvaluator` — the virtual-GPU accelerated evaluator.
* :func:`repro.get_kernel` / :func:`repro.direct_sum` — kernels and the
  exact O(N^2) baseline.
"""

from repro.core import Fmm
from repro.dist.driver import DistributedFmm
from repro.gpu import GpuFmmEvaluator, VirtualGpu
from repro.kernels import direct_sum, get_kernel
from repro.mpi import run_spmd

__version__ = "1.0.0"

__all__ = [
    "Fmm",
    "DistributedFmm",
    "GpuFmmEvaluator",
    "VirtualGpu",
    "get_kernel",
    "direct_sum",
    "run_spmd",
    "__version__",
]
