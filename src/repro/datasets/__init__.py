"""Particle distributions used by the paper's experiments."""

from repro.datasets.distributions import (
    ellipsoid_surface,
    filament,
    plummer_cluster,
    two_spheres,
    uniform_cube,
    make_distribution,
)

__all__ = [
    "uniform_cube",
    "ellipsoid_surface",
    "plummer_cluster",
    "two_spheres",
    "filament",
    "make_distribution",
]
