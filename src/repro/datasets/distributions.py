"""Synthetic particle distributions (paper §V, "Particle distributions").

* ``uniform_cube`` — "random sampling with uniform probability density
  distribution on the unit cube"; the paper's *uniform* workload.
* ``ellipsoid_surface`` — "distribution of points on the surface of an
  ellipsoid of ratio 1:1:4 with uniform distribution of angle spacing in
  spherical coordinates"; the paper's *nonuniform* workload, producing
  highly adaptive trees (the Kraken run spanned leaf levels 2..27).
* ``plummer_cluster`` — a classic strongly clustered N-body distribution,
  included as an extra stress test beyond the paper's two.

All functions return points inside the open unit cube, ready for the
Morton machinery.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_cube",
    "ellipsoid_surface",
    "plummer_cluster",
    "two_spheres",
    "filament",
    "make_distribution",
]


def uniform_cube(n: int, seed: int | np.random.Generator = 0) -> np.ndarray:
    """Uniform iid points in the unit cube."""
    rng = np.random.default_rng(seed)
    return rng.random((n, 3))


def ellipsoid_surface(
    n: int,
    seed: int | np.random.Generator = 0,
    semi_axes: tuple[float, float, float] = (0.1, 0.1, 0.4),
) -> np.ndarray:
    """Points on a 1:1:4 ellipsoid surface, uniform in spherical angles.

    Uniform *angle* spacing (as the paper specifies) concentrates points at
    the poles of the long axis, which together with the surface constraint
    yields the deep, badly unbalanced octrees the paper stresses.
    """
    rng = np.random.default_rng(seed)
    theta = rng.uniform(0.0, np.pi, n)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    a, b, c = semi_axes
    pts = np.stack(
        [
            a * np.sin(theta) * np.cos(phi),
            b * np.sin(theta) * np.sin(phi),
            c * np.cos(theta),
        ],
        axis=1,
    )
    return pts + 0.5


def plummer_cluster(
    n: int, seed: int | np.random.Generator = 0, scale: float = 0.06
) -> np.ndarray:
    """Plummer-model cluster, clipped into the unit cube around its centre."""
    rng = np.random.default_rng(seed)
    # Plummer radius sampling: r = scale / sqrt(u^{-2/3} - 1).
    u = rng.uniform(1e-8, 1.0, n)
    r = scale / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    r = np.minimum(r, 0.45)
    v = rng.standard_normal((n, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    return np.clip(v * r[:, None] + 0.5, 1e-9, 1.0 - 1e-9)


def two_spheres(n: int, seed: int | np.random.Generator = 0) -> np.ndarray:
    """Two well-separated spherical shells: a cluster-merger workload.

    Stresses the V-list across the gap and produces two disjoint refined
    regions in the octree — a common pattern in boundary-integral solvers
    (two interacting bodies).
    """
    rng = np.random.default_rng(seed)
    v = rng.standard_normal((n, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    centers = np.where(
        (np.arange(n) % 2 == 0)[:, None],
        np.array([0.27, 0.27, 0.27]),
        np.array([0.73, 0.73, 0.73]),
    )
    return np.clip(centers + 0.12 * v, 1e-9, 1 - 1e-9)


def filament(n: int, seed: int | np.random.Generator = 0,
             thickness: float = 0.004) -> np.ndarray:
    """Points along a helical filament: quasi-1D, extreme tree depth.

    Like the paper's ellipsoid, a lower-dimensional source manifold; the
    helix additionally curves through many octree branches, a hard case
    for Morton-contiguous partitioning.
    """
    rng = np.random.default_rng(seed)
    t = rng.uniform(0.0, 1.0, n)
    core = np.stack(
        [
            0.5 + 0.3 * np.cos(4 * np.pi * t),
            0.5 + 0.3 * np.sin(4 * np.pi * t),
            0.1 + 0.8 * t,
        ],
        axis=1,
    )
    return np.clip(core + thickness * rng.standard_normal((n, 3)), 1e-9, 1 - 1e-9)


_DISTRIBUTIONS = {
    "uniform": uniform_cube,
    "ellipsoid": ellipsoid_surface,
    "plummer": plummer_cluster,
    "two_spheres": two_spheres,
    "filament": filament,
}


def make_distribution(name: str, n: int, seed: int = 0) -> np.ndarray:
    """Dispatch by name: uniform | ellipsoid | plummer | two_spheres | filament."""
    try:
        fn = _DISTRIBUTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown distribution {name!r}; available: {sorted(_DISTRIBUTIONS)}"
        ) from None
    return fn(n, seed)
