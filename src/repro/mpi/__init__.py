"""Simulated MPI runtime.

This environment has no MPI (and one core), so the paper's distributed
algorithms run on a *simulated* communicator: every virtual rank executes
the real SPMD code in its own thread, exchanging pickled payloads through
an in-process fabric with MPI point-to-point semantics.  Collectives are
implemented *on top of* point-to-point with the textbook algorithms
(binomial trees, recursive doubling, pairwise exchange), so per-rank
message counts and byte volumes are the ones a real run would produce.

Time is *modelled*, not measured: each message charges the standard
alpha-beta cost ``t_s + nbytes / bandwidth`` to both endpoints' phase
profiles, and compute phases are converted from counted flops by
:mod:`repro.perf.model` using a :class:`MachineModel`.  This reproduces the
paper's own analysis framework (its Section III-C/III-D complexity model)
at laptop scale.

Failure semantics: when a rank raises (or the run times out) the fabric
aborts via ``Fabric.abort_all``, which sets the abort flag *and* notifies
every rank's condition variable — surviving ranks blocked in ``recv``
unblock immediately with ``SpmdAborted`` instead of waiting on a poll
tick.  ``run_spmd``'s ``timeout`` is one shared deadline for the whole
run: all thread joins draw from a single time budget, so a wedged run
fails after ``timeout`` seconds total rather than ``nranks * timeout``.

Per-message observability is opt-in: ``run_spmd(..., trace=True)``
threads a :class:`repro.perf.trace.TraceRecorder` through every rank's
communicator; see :mod:`repro.perf.commviz` for communication matrices
and critical-path estimates built from the trace.

Chaos and recovery (see :mod:`repro.mpi.faults`): a seeded
:class:`~repro.mpi.faults.FaultPlan` passed as ``run_spmd(...,
faults=...)`` injects rank crashes, stragglers, dropped/duplicated
deliveries and payload bit-flips deterministically;
``integrity=True`` adds a CRC32 + sequence frame to every message so
corruption surfaces as a typed :class:`~repro.mpi.comm.CorruptMessage`
instead of an unpickling crash or a silent hang.
:func:`~repro.mpi.runtime.run_spmd_resilient` retries whole runs on
typed transient faults under a bounded
:class:`~repro.mpi.faults.RetryPolicy`.
"""

from repro.mpi.machine import KRAKEN, LINCOLN, LOCAL, MachineModel
from repro.mpi.comm import CorruptMessage, Request, SimComm, wait_all
from repro.mpi.runtime import SpmdError, run_spmd, run_spmd_resilient

__all__ = [
    "MachineModel",
    "KRAKEN",
    "LINCOLN",
    "LOCAL",
    "SimComm",
    "Request",
    "wait_all",
    "CorruptMessage",
    "SpmdError",
    "run_spmd",
    "run_spmd_resilient",
]
