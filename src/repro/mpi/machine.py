"""Machine models: the constants that turn counted work into modelled time.

The paper's two platforms are represented by calibrated constants:

* **Kraken** — Cray XT5, 2.3 GHz quad-core Opterons, SeaStar2+ 3-D torus.
  The paper reports ~500 MFlop/s sustained per core on the evaluation
  phase and ~260 MFlop/s at 64K cores.
* **Lincoln** — Dell cluster, 2.33 GHz Harpertown + Tesla S1070 (4 GPUs
  per unit), SDR InfiniBand.

Communication is charged with the alpha-beta (latency + inverse-bandwidth)
model the paper's complexity section uses:
``T(msg) = t_s + nbytes * t_w``.  Both endpoints of a message are charged
(a deliberately conservative convention, documented here once; it affects
constants, never shapes).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "KRAKEN", "LINCOLN", "LOCAL"]


@dataclass(frozen=True)
class MachineModel:
    """Per-rank performance constants of a distributed platform.

    Attributes
    ----------
    name:
        Display name.
    cpu_flops:
        Sustained floating-point rate of one core (flop/s) on FMM-like
        kernels (dense small matvecs + streaming particle loops).
    latency:
        Point-to-point message latency ``t_s`` (seconds).
    bandwidth:
        Per-link bandwidth (bytes/second); ``t_w = 1 / bandwidth``.
    """

    name: str
    cpu_flops: float
    latency: float
    bandwidth: float
    #: Structured-kernel (FFT) rate of one core: FFTs run far closer to
    #: peak than the FMM's irregular particle kernels, and the paper's
    #: GPU configuration keeps the per-octant FFTs on the CPU.
    cpu_fft_flops: float = 2e9

    def message_seconds(self, nbytes: float) -> float:
        """Alpha-beta cost of one message."""
        return self.latency + float(nbytes) / self.bandwidth

    def compute_seconds(self, flops: float) -> float:
        """Modelled time of a counted-flop compute section."""
        return float(flops) / self.cpu_flops

    def fft_seconds(self, flops: float) -> float:
        """Modelled time of a counted-flop FFT section."""
        return float(flops) / self.cpu_fft_flops


#: Cray XT5 (paper's Kraken): ~500 MFlop/s/core sustained on the FMM
#: evaluation, SeaStar2+ torus (~6 us latency, ~1.6 GB/s effective/link).
KRAKEN = MachineModel("kraken-xt5", cpu_flops=500e6, latency=6e-6, bandwidth=1.6e9)

#: Dell/Harpertown + SDR InfiniBand (paper's Lincoln): similar per-core
#: rate, SDR IB ~4 us latency, ~1.0 GB/s.
LINCOLN = MachineModel("lincoln-ib", cpu_flops=500e6, latency=4e-6, bandwidth=1.0e9)

#: A neutral model for unit tests (round numbers).
LOCAL = MachineModel("local-sim", cpu_flops=1e9, latency=1e-6, bandwidth=1e9)
