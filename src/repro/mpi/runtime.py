"""SPMD launcher: run one function on ``p`` virtual ranks.

Each rank runs the *same* function in its own thread with its own
:class:`SimComm` — the programming model is exactly MPI's.  If any rank
raises, the fabric aborts (``Fabric.abort_all`` — flag *and* condition
notification, so blocked receivers wake immediately rather than on a
poll tick) and the first exception is re-raised in the caller.

The ``timeout`` is one shared deadline for the *whole run*: the joins
across all rank threads consume a single time budget, so a wedged run
fails after ``timeout`` seconds total, not ``nranks * timeout``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.mpi.comm import Fabric, SimComm, SpmdAborted
from repro.mpi.machine import LOCAL, MachineModel
from repro.util.timer import PhaseProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.trace import TraceRecorder

__all__ = ["run_spmd", "SpmdResult"]


@dataclass
class SpmdResult:
    """Return values and per-rank profiles of one SPMD run."""

    values: list[Any]
    profiles: list[PhaseProfile]
    comms: list[SimComm]
    #: The shared trace recorder, if tracing was requested (else ``None``).
    trace: "TraceRecorder | None" = field(default=None)

    def max_phase_seconds(self, machine: MachineModel, phase: str) -> float:
        """Modelled wall-clock of a phase: max over ranks of comp + comm."""
        out = 0.0
        for prof in self.profiles:
            ev = prof.events.get(phase)
            if ev is None:
                continue
            out = max(out, machine.compute_seconds(ev.flops) + ev.comm_seconds)
        return out

    def avg_phase_seconds(self, machine: MachineModel, phase: str) -> float:
        """Modelled per-rank average time of a phase."""
        total = 0.0
        for prof in self.profiles:
            ev = prof.events.get(phase)
            if ev is not None:
                total += machine.compute_seconds(ev.flops) + ev.comm_seconds
        return total / len(self.profiles)

    def phase_flops(self, phase: str) -> list[float]:
        return [p.events.get(phase).flops if phase in p.events else 0.0 for p in self.profiles]


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineModel | None = None,
    timeout: float = 600.0,
    trace: "TraceRecorder | bool | None" = None,
    **kwargs: Any,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` virtual ranks.

    Returns an :class:`SpmdResult` with per-rank return values, phase
    profiles and communicators (for ledger inspection).  The first rank
    exception is re-raised with its original traceback.

    ``timeout`` is a single shared deadline across all ranks (total run
    budget, not per-thread).  ``trace`` attaches a
    :class:`~repro.perf.trace.TraceRecorder` to every rank's communicator
    and profile; pass ``True`` to have one created, or an existing
    recorder to accumulate several runs into one trace.  The recorder is
    returned on ``SpmdResult.trace``.
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    machine = machine if machine is not None else LOCAL
    if trace is True:
        from repro.perf.trace import TraceRecorder

        trace = TraceRecorder()
    elif trace is False:
        trace = None
    fabric = Fabric(nranks)
    profiles = [PhaseProfile() for _ in range(nranks)]
    comms = [
        SimComm(fabric, r, machine=machine, profile=profiles[r], trace=trace)
        for r in range(nranks)
    ]
    values: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def worker(rank: int) -> None:
        try:
            values[rank] = fn(comms[rank], *args, **kwargs)
        except SpmdAborted:
            pass  # secondary failure: the primary error is reported
        except BaseException as exc:  # noqa: BLE001 - must surface any rank failure
            with lock:
                errors.append((rank, exc))
            fabric.abort_all()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    deadline = time.monotonic() + timeout
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
        if t.is_alive():
            fabric.abort_all()
            for t2 in threads:
                t2.join(timeout=5.0)
            raise TimeoutError(f"SPMD run exceeded {timeout}s (possible deadlock)")
    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return SpmdResult(values=values, profiles=profiles, comms=comms, trace=trace)
