"""SPMD launcher: run one function on ``p`` virtual ranks.

Each rank runs the *same* function in its own thread with its own
:class:`SimComm` — the programming model is exactly MPI's.  If any rank
raises, the fabric aborts (``Fabric.abort_all`` — flag *and* condition
notification, so blocked receivers wake immediately rather than on a
poll tick) and the first exception is re-raised in the caller.

The ``timeout`` is one shared deadline for the *whole run*: the joins
across all rank threads consume a single time budget, so a wedged run
fails after ``timeout`` seconds total, not ``nranks * timeout``.  When
both a rank error *and* wedged threads exist, the rank error wins — a
recorded root cause is never masked by the deadline (the wedged ranks
are noted on the :class:`SpmdError`).

Chaos and recovery: ``run_spmd(..., faults=FaultPlan(...))`` swaps the
fabric for a :class:`~repro.mpi.faults.ChaosFabric` that injects the
planned faults deterministically; ``integrity=True`` turns on CRC32 +
sequence framing of every message (typed :class:`CorruptMessage` instead
of unpickling crashes).  :func:`run_spmd_resilient` retries whole runs
on typed transient faults under a bounded
:class:`~repro.mpi.faults.RetryPolicy`, re-deriving the fault plan per
attempt so deterministic replays converge.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.mpi.comm import Fabric, SimComm, SpmdAborted
from repro.mpi.machine import LOCAL, MachineModel
from repro.util.timer import PhaseProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.faults import FaultEvent, FaultPlan, RetryPolicy
    from repro.perf.trace import TraceRecorder

__all__ = ["run_spmd", "run_spmd_resilient", "SpmdResult", "SpmdError"]


class SpmdError(RuntimeError):
    """A rank of an SPMD run failed.

    ``rank`` is the lowest failing rank (its exception is the
    ``__cause__``); ``wedged`` lists ranks whose threads were still alive
    after the abort grace period, if any.
    """

    def __init__(self, message: str, rank: int, wedged: tuple[int, ...] = ()):
        super().__init__(message)
        self.rank = rank
        self.wedged = tuple(wedged)


@dataclass
class SpmdResult:
    """Return values and per-rank profiles of one SPMD run."""

    values: list[Any]
    profiles: list[PhaseProfile]
    comms: list[SimComm]
    #: The shared trace recorder, if tracing was requested (else ``None``).
    trace: "TraceRecorder | None" = field(default=None)
    #: Chaos injections that fired (deterministic order; empty when no
    #: fault plan was attached).
    fault_events: "list[FaultEvent]" = field(default_factory=list)
    #: Number of run attempts it took (``run_spmd_resilient`` sets > 1).
    attempts: int = 1

    def max_phase_seconds(self, machine: MachineModel, phase: str) -> float:
        """Modelled wall-clock of a phase: max over ranks of comp + comm."""
        out = 0.0
        for prof in self.profiles:
            ev = prof.events.get(phase)
            if ev is None:
                continue
            out = max(out, machine.compute_seconds(ev.flops) + ev.comm_seconds)
        return out

    def avg_phase_seconds(self, machine: MachineModel, phase: str) -> float:
        """Modelled per-rank average time of a phase."""
        total = 0.0
        for prof in self.profiles:
            ev = prof.events.get(phase)
            if ev is not None:
                total += machine.compute_seconds(ev.flops) + ev.comm_seconds
        return total / len(self.profiles)

    def phase_flops(self, phase: str) -> list[float]:
        return [p.events.get(phase).flops if phase in p.events else 0.0 for p in self.profiles]


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineModel | None = None,
    timeout: float = 600.0,
    trace: "TraceRecorder | bool | None" = None,
    faults: "FaultPlan | None" = None,
    integrity: bool = False,
    **kwargs: Any,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` virtual ranks.

    Returns an :class:`SpmdResult` with per-rank return values, phase
    profiles and communicators (for ledger inspection).  The first rank
    exception is re-raised (as :class:`SpmdError`) with the original
    error as its ``__cause__``.

    ``timeout`` is a single shared deadline across all ranks (total run
    budget, not per-thread).  ``trace`` attaches a
    :class:`~repro.perf.trace.TraceRecorder` to every rank's communicator
    and profile; pass ``True`` to have one created, or an existing
    recorder to accumulate several runs into one trace.  The recorder is
    returned on ``SpmdResult.trace``.

    ``faults`` runs the SPMD function on a
    :class:`~repro.mpi.faults.ChaosFabric` executing the given
    :class:`~repro.mpi.faults.FaultPlan`; the injections that fired are
    returned on ``SpmdResult.fault_events``.  ``integrity`` enables the
    CRC32 + sequence frame around every message (see
    :class:`~repro.mpi.comm.SimComm`).
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    machine = machine if machine is not None else LOCAL
    if trace is True:
        from repro.perf.trace import TraceRecorder

        trace = TraceRecorder()
    elif trace is False:
        trace = None
    if faults is not None:
        from repro.mpi.faults import ChaosFabric

        fabric: Fabric = ChaosFabric(nranks, faults)
    else:
        fabric = Fabric(nranks)
    profiles = [PhaseProfile() for _ in range(nranks)]
    comms = [
        SimComm(
            fabric,
            r,
            machine=machine,
            profile=profiles[r],
            trace=trace,
            integrity=integrity,
        )
        for r in range(nranks)
    ]
    if faults is not None:
        fabric.bind(profiles, trace)
        for r, prof in enumerate(profiles):
            prof.bind_chaos(fabric.on_phase, r)
    values: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def worker(rank: int) -> None:
        try:
            values[rank] = fn(comms[rank], *args, **kwargs)
        except SpmdAborted:
            pass  # secondary failure: the primary error is reported
        except BaseException as exc:  # noqa: BLE001 - must surface any rank failure
            with lock:
                errors.append((rank, exc))
            fabric.abort_all()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    deadline = time.monotonic() + timeout
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
    timed_out = any(t.is_alive() for t in threads)
    if timed_out:
        fabric.abort_all()
        grace = time.monotonic() + 5.0
        for t in threads:
            t.join(timeout=max(0.0, grace - time.monotonic()))
    wedged = tuple(r for r, t in enumerate(threads) if t.is_alive())
    if wedged and trace is not None:
        # close the wedged ranks' open phases so the trace stays well-formed
        for r in wedged:
            profiles[r].flush_open_spans()
    fault_events = list(fabric.fault_events) if faults is not None else []
    if errors:
        # a recorded rank error is always the primary cause — never mask
        # it with the deadline, even if other threads wedged past the abort
        with lock:
            rank, exc = min(errors, key=lambda e: e[0])
        note = f" (ranks {list(wedged)} still wedged past the abort)" if wedged else ""
        err = SpmdError(f"rank {rank} failed: {exc!r}{note}", rank, wedged)
        err.fault_events = fault_events
        raise err from exc
    if timed_out:
        note = f"; wedged ranks: {list(wedged)}" if wedged else ""
        err = TimeoutError(f"SPMD run exceeded {timeout}s (possible deadlock{note})")
        err.fault_events = fault_events
        raise err
    return SpmdResult(
        values=values,
        profiles=profiles,
        comms=comms,
        trace=trace,
        fault_events=fault_events,
    )


def run_spmd_resilient(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    policy: "RetryPolicy | None" = None,
    faults: "FaultPlan | None" = None,
    machine: MachineModel | None = None,
    timeout: float = 600.0,
    trace: "TraceRecorder | bool | None" = None,
    integrity: bool = False,
    rank_state: bool = False,
    **kwargs: Any,
) -> SpmdResult:
    """:func:`run_spmd` with bounded retries on typed transient faults.

    Each attempt re-derives the fault plan via
    :meth:`~repro.mpi.faults.FaultPlan.for_attempt`, so planned transient
    faults stop firing once their ``attempts`` budget is spent and the
    deterministic replay converges to a clean run.  Non-transient errors
    (anything not in ``policy.retry_on``) re-raise immediately.

    With ``rank_state=True`` the rank function is called as
    ``fn(comm, state, *args, **kwargs)`` where ``state`` is a per-rank
    dict that *persists across attempts* — the hook for checkpoint
    resume: stash a set-up :class:`~repro.dist.driver.DistributedFmm`
    there on attempt 0 and call ``fmm.rebind(comm);
    fmm.evaluate(dens, resume=True)`` on later attempts to skip the
    completed phases (see TUTORIAL §9).

    Pass ``trace=True`` (or a recorder) to accumulate every attempt —
    including the failed ones and their ``CHAOS:*`` / ``RECOVERY:*``
    spans — into one trace.  The result's ``attempts`` field reports how
    many runs it took.
    """
    if policy is None:
        from repro.mpi.faults import RetryPolicy

        policy = RetryPolicy()
    if trace is True:
        from repro.perf.trace import TraceRecorder

        trace = TraceRecorder()
    elif trace is False:
        trace = None
    states: list[dict] | None = (
        [{} for _ in range(nranks)] if rank_state else None
    )
    if rank_state:
        inner = fn

        def fn(comm, *a, **k):  # noqa: F811 - deliberate rebinding
            return inner(comm, states[comm.rank], *a, **k)

    past_events: list = []
    for attempt in range(policy.max_attempts):
        plan = faults.for_attempt(attempt) if faults is not None else None
        t0 = time.monotonic()
        try:
            result = run_spmd(
                nranks,
                fn,
                *args,
                machine=machine,
                timeout=timeout,
                trace=trace,
                faults=plan,
                integrity=integrity,
                **kwargs,
            )
        except BaseException as exc:  # noqa: BLE001 - typed filter below
            cause = exc.__cause__ if exc.__cause__ is not None else exc
            transient = isinstance(cause, policy.retry_on) or isinstance(
                exc, policy.retry_on
            )
            if not transient or attempt == policy.max_attempts - 1:
                raise
            past_events.extend(getattr(exc, "fault_events", ()))
            delay = policy.delay(attempt + 1)
            if trace is not None:
                # the span name carries the whole retry decision — attempt
                # number, typed cause, deterministic backoff — so the
                # recovery history is readable straight off the trace (and
                # stable under TraceRecorder.signature(): the jitter is
                # seeded, the wall clock is not part of the name)
                rank = getattr(exc, "rank", 0) or 0
                trace.record_span(
                    rank,
                    f"RECOVERY:retry#{attempt + 1}:{type(cause).__name__}"
                    f":backoff={delay:.3f}s",
                    time.monotonic() - t0,
                    0.0,
                    0,
                    0.0,
                    delay,
                )
            if delay > 0.0:
                time.sleep(delay)
            continue
        result.attempts = attempt + 1
        # injections of the failed attempts, then the successful one's
        result.fault_events = past_events + result.fault_events
        return result
    raise AssertionError("unreachable: retry loop always returns or raises")
