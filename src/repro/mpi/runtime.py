"""SPMD launcher: run one function on ``p`` virtual ranks.

Each rank runs the *same* function in its own thread with its own
:class:`SimComm` — the programming model is exactly MPI's.  If any rank
raises, the fabric aborts so peers blocked in ``recv`` fail fast instead
of deadlocking, and the first exception is re-raised in the caller.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.mpi.comm import Fabric, SimComm, SpmdAborted
from repro.mpi.machine import LOCAL, MachineModel
from repro.util.timer import PhaseProfile

__all__ = ["run_spmd", "SpmdResult"]


@dataclass
class SpmdResult:
    """Return values and per-rank profiles of one SPMD run."""

    values: list[Any]
    profiles: list[PhaseProfile]
    comms: list[SimComm]

    def max_phase_seconds(self, machine: MachineModel, phase: str) -> float:
        """Modelled wall-clock of a phase: max over ranks of comp + comm."""
        out = 0.0
        for prof in self.profiles:
            ev = prof.events.get(phase)
            if ev is None:
                continue
            out = max(out, machine.compute_seconds(ev.flops) + ev.comm_seconds)
        return out

    def avg_phase_seconds(self, machine: MachineModel, phase: str) -> float:
        """Modelled per-rank average time of a phase."""
        total = 0.0
        for prof in self.profiles:
            ev = prof.events.get(phase)
            if ev is not None:
                total += machine.compute_seconds(ev.flops) + ev.comm_seconds
        return total / len(self.profiles)

    def phase_flops(self, phase: str) -> list[float]:
        return [p.events.get(phase).flops if phase in p.events else 0.0 for p in self.profiles]


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineModel | None = None,
    timeout: float = 600.0,
    **kwargs: Any,
) -> SpmdResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` virtual ranks.

    Returns an :class:`SpmdResult` with per-rank return values, phase
    profiles and communicators (for ledger inspection).  The first rank
    exception is re-raised with its original traceback.
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    machine = machine if machine is not None else LOCAL
    fabric = Fabric(nranks)
    profiles = [PhaseProfile() for _ in range(nranks)]
    comms = [SimComm(fabric, r, machine=machine, profile=profiles[r]) for r in range(nranks)]
    values: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def worker(rank: int) -> None:
        try:
            values[rank] = fn(comms[rank], *args, **kwargs)
        except SpmdAborted:
            pass  # secondary failure: the primary error is reported
        except BaseException as exc:  # noqa: BLE001 - must surface any rank failure
            with lock:
                errors.append((rank, exc))
            fabric.abort.set()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            fabric.abort.set()
            for t2 in threads:
                t2.join(timeout=5.0)
            raise TimeoutError(f"SPMD run exceeded {timeout}s (possible deadlock)")
    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return SpmdResult(values=values, profiles=profiles, comms=comms)
