"""Deterministic fault injection for the SPMD runtime (the chaos fabric).

The paper's target regime — 65K cores, 196K virtual ranks — is one where
rank failures, stragglers and corrupted transfers are routine, yet a
simulator that only ever runs the happy path proves nothing about them.
This module makes faults *first-class, seeded inputs* of a run:

* :class:`FaultPlan` — an explicit, fully deterministic schedule of
  :class:`Fault` injections (or a seeded random mixture via
  :meth:`FaultPlan.random`).  Identical plans produce identical per-rank
  injection sequences, so failures replay.
* :class:`ChaosFabric` — a drop-in :class:`~repro.mpi.comm.Fabric`
  subclass (selected via ``run_spmd(..., faults=plan)``) that executes
  the plan: rank crashes at the Nth send/recv or on phase entry,
  straggler delays (modelled seconds charged to the rank's profile, plus
  an optional *real* sleep for deadline tests), dropped and duplicated
  deliveries, payload bit-flips, and virtual-GPU device faults.
* :class:`RetryPolicy` — bounded whole-run retries on *typed transient*
  faults, used by :func:`repro.mpi.runtime.run_spmd_resilient`.  Each
  retry re-derives the plan (:meth:`FaultPlan.for_attempt`): a fault
  fires on its first ``attempts`` run attempts and then stops, so
  deterministic replays converge to a clean run.

Injection always happens **in the thread of the affected rank** (the
fabric's ``put`` runs in the sender, ``get`` in the receiver, the phase
hook in the phase-opening rank), so crashes surface exactly like organic
rank failures and the abort/deadline machinery of PR 1 applies unchanged.
Every injection is appended to a per-rank event log
(:attr:`ChaosFabric.fault_events` — deterministic order) and, when a
trace recorder is attached, emitted as a ``CHAOS:<kind>`` span so
``python -m repro trace`` shows what the chaos did and what recovery
cost.
"""

from __future__ import annotations

import random as _random
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.gpu.device import GpuDeviceFault
from repro.mpi.comm import CorruptMessage, Fabric

__all__ = [
    "ChaosFabric",
    "Fault",
    "FaultEvent",
    "FaultPlan",
    "InjectedFault",
    "RankCrash",
    "RetryPolicy",
    "TRANSIENT_ERRORS",
    "FAULT_KINDS",
]


class InjectedFault(RuntimeError):
    """Base class of errors raised *by* the chaos fabric."""


class RankCrash(InjectedFault):
    """A planned rank crash (models a node failure / OOM kill)."""


#: Error classes a :class:`RetryPolicy` treats as transient by default:
#: planned injections, integrity violations (corruption is re-rollable),
#: device faults, and deadline expiries (dropped messages surface as
#: timeouts when no later traffic exposes the sequence gap).
TRANSIENT_ERRORS = (InjectedFault, CorruptMessage, GpuDeviceFault, TimeoutError)

#: The supported fault classes of the matrix (``python -m repro chaos``).
FAULT_KINDS = ("crash", "straggle", "drop", "duplicate", "bitflip", "gpu")

_OPS = ("send", "recv", "phase", "launch", "wait")


@dataclass(frozen=True)
class Fault:
    """One planned injection.

    kind:
        ``crash`` (raise :class:`RankCrash` in the rank), ``straggle``
        (delay the rank), ``drop`` / ``duplicate`` (lose or repeat one
        delivery), ``bitflip`` (corrupt one payload bit), ``gpu``
        (virtual-device ECC/OOM fault).
    op:
        The trigger stream: ``send`` / ``recv`` fire at the ``index``-th
        point-to-point operation of ``rank`` (0-based, counted at the
        fabric); ``phase`` fires on the ``index``-th entry of phase
        ``phase`` on ``rank``; ``launch`` arms a GPU fault for phase
        ``phase`` (``None`` = first accelerated phase); ``wait`` fires at
        the ``index``-th nonblocking-request completion (``Request.wait``
        / successful ``test``) on ``rank`` — crashes land *inside* an
        in-flight ``wait_all``.  Note drops/duplicates/bit-flips already
        cover in-flight nonblocking traffic through op='send': an
        ``isend`` posts its (possibly sabotaged) delivery immediately and
        the damage surfaces as a typed error at the receiver's ``wait``.
    seconds / sleep:
        Straggler cost: modelled seconds charged to the rank's profile,
        and real seconds slept (for deadline tests).
    bit:
        Bit-flip position (modulo the payload length).
    attempts:
        The fault fires on run attempts ``0 .. attempts-1`` and is
        removed by :meth:`FaultPlan.for_attempt` afterwards, so bounded
        retries converge.  Use a large value for permanent faults.
    """

    kind: str
    rank: int
    op: str = "send"
    index: int = 0
    phase: str | None = None
    seconds: float = 0.0
    sleep: float = 0.0
    bit: int = 0
    attempts: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if self.op not in _OPS:
            raise ValueError(f"unknown fault op {self.op!r}; one of {_OPS}")
        if self.kind == "gpu" and self.op != "launch":
            raise ValueError("gpu faults use op='launch'")
        if self.kind in ("drop", "duplicate", "bitflip") and self.op != "send":
            raise ValueError(f"{self.kind} faults trigger on op='send'")
        if self.op == "wait" and self.kind not in ("crash", "straggle"):
            raise ValueError("op='wait' supports crash and straggle faults")
        if self.op == "phase" and not self.phase:
            raise ValueError("op='phase' needs a phase name")
        if self.rank < 0:
            raise ValueError("fault rank must be >= 0")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")


@dataclass(frozen=True)
class FaultEvent:
    """One injection that actually fired (deterministic replay record)."""

    rank: int
    kind: str
    op: str
    index: int
    phase: str
    attempt: int
    detail: str = ""


class FaultPlan:
    """A deterministic, seeded schedule of fault injections.

    The plan itself is pure data: the same plan drives the same
    injections in every run (triggers count per-rank operations in
    program order, so thread scheduling cannot reorder them).  ``seed``
    names the plan (and feeds :meth:`random`); ``attempt`` is the retry
    attempt this plan instance was derived for.
    """

    def __init__(self, faults: Iterable[Fault] = (), seed: int = 0, attempt: int = 0):
        self.faults: tuple[Fault, ...] = tuple(faults)
        self.seed = int(seed)
        self.attempt = int(attempt)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, attempt={self.attempt}, "
            f"faults={len(self.faults)})"
        )

    def __len__(self) -> int:
        return len(self.faults)

    def for_attempt(self, attempt: int) -> "FaultPlan":
        """The plan as seen by run attempt ``attempt`` (0-based).

        Faults whose ``attempts`` budget is exhausted are removed, so a
        bounded retry loop deterministically converges to a fault-free
        replay once every transient fault has fired its quota.
        """
        return FaultPlan(
            (f for f in self.faults if attempt < f.attempts),
            seed=self.seed,
            attempt=attempt,
        )

    def scaled_to(self, nranks: int) -> "FaultPlan":
        """Drop faults targeting ranks outside ``[0, nranks)``."""
        return FaultPlan(
            (f for f in self.faults if f.rank < nranks),
            seed=self.seed,
            attempt=self.attempt,
        )

    def remapped(self, mapping: dict) -> "FaultPlan":
        """Keep only faults targeting a key of ``mapping``, re-targeted.

        The distributed serving plane places replicas of a model on
        distinct fabric ranks but runs each replica on its own
        single-rank communicator; ``plan.remapped({i: 0})`` projects the
        fabric-wide plan onto replica ``i``'s local rank space so a
        fault aimed at "the replica on rank i" fires inside that
        replica's run and nowhere else.
        """
        from dataclasses import replace

        return FaultPlan(
            (
                replace(f, rank=int(mapping[f.rank]))
                for f in self.faults
                if f.rank in mapping
            ),
            seed=self.seed,
            attempt=self.attempt,
        )

    @classmethod
    def random(
        cls,
        seed: int,
        nranks: int,
        n_faults: int = 4,
        kinds: Sequence[str] = FAULT_KINDS,
        phases: Sequence[str] = ("tree", "let", "S2U", "U2U", "VLI", "D2T"),
        max_index: int = 24,
    ) -> "FaultPlan":
        """A seeded random mixture — same seed, same plan, always."""
        rng = _random.Random(int(seed))
        faults = []
        for _ in range(int(n_faults)):
            kind = rng.choice(list(kinds))
            rank = rng.randrange(nranks)
            if kind == "gpu":
                faults.append(
                    Fault(kind, rank, op="launch", phase=rng.choice(list(phases)))
                )
            elif kind == "crash":
                if rng.random() < 0.5:
                    faults.append(
                        Fault(kind, rank, op="phase", phase=rng.choice(list(phases)))
                    )
                else:
                    faults.append(
                        Fault(
                            kind,
                            rank,
                            op=rng.choice(("send", "recv")),
                            index=rng.randrange(max_index),
                        )
                    )
            elif kind == "straggle":
                faults.append(
                    Fault(
                        kind,
                        rank,
                        op="phase",
                        phase=rng.choice(list(phases)),
                        seconds=round(rng.uniform(0.5, 30.0), 3),
                    )
                )
            else:  # drop / duplicate / bitflip
                faults.append(
                    Fault(
                        kind,
                        rank,
                        op="send",
                        index=rng.randrange(max_index),
                        bit=rng.randrange(1 << 12),
                    )
                )
        return cls(faults, seed=seed)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded whole-run retry on typed transient faults.

    ``run_spmd_resilient`` retries a failed run while the *primary* rank
    error (or the launcher error itself) is an instance of ``retry_on``,
    up to ``max_attempts`` total attempts.  Anything not in ``retry_on``
    — an assertion, a ValueError, real logic bugs — re-raises
    immediately: retrying can only help faults that are transient *by
    type*.

    Between attempts the caller sleeps :meth:`delay` seconds —
    exponential backoff with *seeded deterministic jitter*: the ``k``-th
    retry waits ``backoff * backoff_factor**(k-1)`` seconds (capped at
    ``max_backoff``), stretched by up to ``jitter`` of itself using a
    uniform draw from ``Random(seed, k)``.  Jitter decorrelates a
    thundering herd of retrying clients, and seeding it keeps replays
    (and trace signatures) deterministic: same policy, same attempt,
    same delay — always.
    """

    max_attempts: int = 3
    retry_on: tuple[type[BaseException], ...] = TRANSIENT_ERRORS
    #: Base delay before the first retry (seconds; 0 = no backoff).
    backoff: float = 0.0
    #: Exponential growth of the delay per subsequent retry.
    backoff_factor: float = 2.0
    #: Upper bound on any single delay (pre-jitter), seconds.
    max_backoff: float = 30.0
    #: Jitter fraction in ``[0, 1]``: each delay is stretched by up to
    #: this fraction of itself (deterministic, derived from ``seed``).
    jitter: float = 0.1
    #: Seed of the deterministic jitter stream.
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff < 0.0 or self.max_backoff < 0.0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, retry: int) -> float:
        """Seconds to sleep before retry number ``retry`` (1-based).

        Deterministic: the jitter draw depends only on ``(seed, retry)``,
        so identical policies replay identical backoff histories.
        """
        if retry < 1 or self.backoff <= 0.0:
            return 0.0
        base = min(
            self.max_backoff, self.backoff * self.backoff_factor ** (retry - 1)
        )
        u = _random.Random(self.seed * 1_000_003 + retry).random()
        return base * (1.0 + self.jitter * u)


def _flip_bit(payload: bytes, bit: int) -> bytes:
    nbits = len(payload) * 8
    if nbits == 0:
        return payload
    b = bit % nbits
    buf = bytearray(payload)
    buf[b // 8] ^= 1 << (b % 8)
    return bytes(buf)


class ChaosFabric(Fabric):
    """A :class:`Fabric` that executes a :class:`FaultPlan`.

    All injection happens in the affected rank's own thread: ``put`` is
    called by the sender, ``get`` by the receiver, and the phase hook by
    the rank opening the phase — so crashes propagate out of ``send`` /
    ``recv`` / ``profile.phase(...)`` into the rank function and surface
    through the normal abort machinery.  Per-rank trigger counters are
    only ever touched by their owning thread, which is what makes the
    injection sequence deterministic under any thread schedule.
    """

    def __init__(self, size: int, plan: FaultPlan):
        super().__init__(size)
        self.plan = plan.scaled_to(size)
        self._by_trigger: dict[tuple[str, int], list[Fault]] = {}
        for f in self.plan.faults:
            self._by_trigger.setdefault((f.op, f.rank), []).append(f)
        self._send_idx = [0] * size  # touched only by the owner's thread
        self._recv_idx = [0] * size
        self._wait_idx = [0] * size
        self._phase_idx: dict[tuple[int, str], int] = {}
        self._events: list[list[FaultEvent]] = [[] for _ in range(size)]
        self._profiles: list | None = None
        self._trace = None

    def bind(self, profiles, trace=None) -> None:
        """Attach the per-rank profiles (straggler charging) and trace."""
        self._profiles = list(profiles)
        self._trace = trace

    @property
    def fault_events(self) -> list[FaultEvent]:
        """Every injection that fired, in deterministic (rank, order)."""
        return [ev for per_rank in self._events for ev in per_rank]

    # -- internals ----------------------------------------------------------

    def _fire(self, rank: int, f: Fault, index: int, phase: str, detail: str) -> None:
        self._events[rank].append(
            FaultEvent(rank, f.kind, f.op, index, phase, self.plan.attempt, detail)
        )
        if self._trace is not None:
            self._trace.record_span(
                rank, f"CHAOS:{f.kind}", 0.0, 0.0, 0, 0.0, f.seconds
            )

    def _matching(self, op: str, rank: int, index: int, phase: str | None = None):
        for f in self._by_trigger.get((op, rank), ()):
            if op == "phase":
                if f.phase == phase and f.index == index:
                    yield f
            elif f.index == index:
                yield f

    def _straggle(self, rank: int, f: Fault, phase: str | None) -> None:
        """Charge the delay to the rank's profile; optionally really sleep."""
        if self._profiles is not None:
            prof = self._profiles[rank]
            ev = prof.event(phase) if phase is not None else prof.current
            ev.comm_seconds += f.seconds
        if f.sleep > 0.0:
            time.sleep(f.sleep)

    # -- fabric hooks -------------------------------------------------------

    def put(self, dest: int, src: int, tag: int, payload: bytes) -> None:
        idx = self._send_idx[src]
        self._send_idx[src] = idx + 1
        deliveries = 1
        for f in self._matching("send", src, idx):
            if f.kind == "crash":
                self._fire(src, f, idx, "", f"crash at send #{idx} -> {dest}")
                raise RankCrash(f"rank {src}: injected crash at send #{idx}")
            if f.kind == "straggle":
                self._fire(src, f, idx, "", f"straggle {f.seconds}s at send #{idx}")
                self._straggle(src, f, None)
            elif f.kind == "drop":
                deliveries = 0
                self._fire(src, f, idx, "", f"dropped send #{idx} -> {dest}")
            elif f.kind == "duplicate":
                deliveries = 2
                self._fire(src, f, idx, "", f"duplicated send #{idx} -> {dest}")
            elif f.kind == "bitflip":
                payload = _flip_bit(payload, f.bit)
                self._fire(
                    src, f, idx, "", f"bit {f.bit} flipped in send #{idx} -> {dest}"
                )
        for _ in range(deliveries):
            super().put(dest, src, tag, payload)

    def get(self, rank: int, src: int, tag: int) -> bytes:
        idx = self._recv_idx[rank]
        self._recv_idx[rank] = idx + 1
        for f in self._matching("recv", rank, idx):
            if f.kind == "crash":
                self._fire(rank, f, idx, "", f"crash at recv #{idx} <- {src}")
                raise RankCrash(f"rank {rank}: injected crash at recv #{idx}")
            if f.kind == "straggle":
                self._fire(rank, f, idx, "", f"straggle {f.seconds}s at recv #{idx}")
                self._straggle(rank, f, None)
        return super().get(rank, src, tag)

    def on_wait(self, rank: int) -> None:
        """Request-completion hook: fires faults inside in-flight ops.

        Called once per ``Request.wait`` entry / successful ``test``, in
        per-rank program order, *before* the completion charges or blocks
        — so a planned crash lands mid-``wait_all`` and the surviving
        ranks' blocked waits are woken by the abort machinery.
        """
        idx = self._wait_idx[rank]
        self._wait_idx[rank] = idx + 1
        for f in self._matching("wait", rank, idx):
            if f.kind == "crash":
                self._fire(rank, f, idx, "", f"crash at request wait #{idx}")
                raise RankCrash(f"rank {rank}: injected crash at wait #{idx}")
            if f.kind == "straggle":
                self._fire(rank, f, idx, "", f"straggle {f.seconds}s at wait #{idx}")
                self._straggle(rank, f, None)

    def on_phase(self, rank: int, name: str, profile) -> None:
        """Phase-entry hook (bound via ``PhaseProfile.bind_chaos``)."""
        key = (rank, name)
        idx = self._phase_idx.get(key, 0)
        self._phase_idx[key] = idx + 1
        for f in self._matching("phase", rank, idx, phase=name):
            if f.kind == "crash":
                self._fire(rank, f, idx, name, f"crash entering phase {name}")
                raise RankCrash(
                    f"rank {rank}: injected crash entering phase {name!r}"
                )
            if f.kind == "straggle":
                self._fire(
                    rank, f, idx, name, f"straggle {f.seconds}s entering {name}"
                )
                self._straggle(rank, f, name)

    def arm_gpu(self, gpu, rank: int) -> None:
        """Arm this rank's virtual device with the plan's GPU faults.

        Called by :class:`~repro.dist.driver.DistributedFmm` during setup
        when it runs on a chaos fabric; the device raises
        :class:`~repro.gpu.device.GpuDeviceFault` at the entry of the
        targeted phase and the accelerated evaluator degrades to the CPU.
        """
        for f in self._by_trigger.get(("launch", rank), ()):
            def _on_fire(phase, f=f, rank=rank):
                self._fire(rank, f, 0, phase, f"device fault in phase {phase}")

            gpu.arm_fault(phase=f.phase or "*", kind="ecc", on_fire=_on_fire)
