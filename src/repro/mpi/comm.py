"""The simulated communicator: MPI semantics over an in-process fabric.

Point-to-point messages are pickled at ``send`` time — this both isolates
the receiver from sender-side mutation (threads share an address space)
and yields an honest byte count for the communication ledger.  Collectives
are built from point-to-point with the textbook algorithms so that the
per-rank message/byte ledgers match what a real MPI run would produce:

===============  ==========================================================
``barrier``       dissemination barrier, ``ceil(log2 p)`` rounds
``bcast``         binomial tree
``reduce``        binomial tree (commutative ``op``)
``allreduce``     reduce + bcast
``gather``        binomial tree
``allgather``     recursive doubling (power-of-two), ring otherwise
``alltoall``      pairwise exchange (XOR partners for power-of-two)
``exscan``        recursive doubling (power-of-two), chain otherwise
===============  ==========================================================

Every message charges ``t_s + nbytes * t_w`` to the *current phase* of
both endpoints' profiles (see :mod:`repro.mpi.machine` for the convention).
With a :class:`repro.perf.trace.TraceRecorder` attached, every send/recv
endpoint additionally logs one trace event (src, dst, tag, bytes, phase,
modelled seconds, logical order); tracing is opt-in and costs one ``is
None`` check per message when disabled.

Abort semantics: :meth:`Fabric.abort_all` sets the abort flag **and**
notifies every rank's condition variable, so ranks blocked in ``recv``
observe the abort immediately (``Fabric.get`` waits on the condition with
no poll timeout — a plain ``set()`` of the event alone will not wake
blocked receivers).

End-to-end integrity is opt-in (``SimComm(..., integrity=True)``, wired
through ``run_spmd(..., integrity=True)``): every pickled payload is
framed with a CRC32 checksum and a per-channel (src, dst, tag) sequence
number.  ``recv`` verifies the frame *after* charging the ledger and
recording the trace event, then raises a typed :class:`CorruptMessage`
instead of an unpickling crash — so injected bit-flips are *detected*
while the byte ledgers and traces still account for the corrupt bytes
that actually moved.  The sequence number turns dropped and duplicated
deliveries into typed errors too (a gap or a stale repeat on the
channel), instead of hangs or silent collective desyncs.
"""

from __future__ import annotations

import pickle
import struct
import threading
import zlib
from collections import defaultdict, deque
from typing import TYPE_CHECKING, Any, Callable

from repro.mpi.machine import LOCAL, MachineModel
from repro.util.timer import PhaseProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.trace import TraceRecorder

__all__ = ["SimComm", "Fabric", "SpmdAborted", "CorruptMessage"]

# Internal tag space: user tags must stay below this.
_TAG_COLL = 1 << 20
_TAG_BARRIER = _TAG_COLL + 1
_TAG_BCAST = _TAG_COLL + 2
_TAG_REDUCE = _TAG_COLL + 3
_TAG_GATHER = _TAG_COLL + 4
_TAG_ALLGATHER = _TAG_COLL + 5
_TAG_ALLTOALL = _TAG_COLL + 6
_TAG_SCAN = _TAG_COLL + 7

#: Integrity frame prepended to every payload when ``integrity=True``:
#: CRC32 of the pickled payload + per-(src, dst, tag) sequence number.
_INTEGRITY_HDR = struct.Struct("<II")


class SpmdAborted(RuntimeError):
    """Raised in surviving ranks when another rank died."""


class CorruptMessage(RuntimeError):
    """An integrity-framed message failed verification at ``recv``.

    Raised instead of letting a flipped bit crash (or silently corrupt)
    unpickling, and instead of letting a dropped/duplicated delivery hang
    or desync a collective.  The ledger and trace are charged *before*
    verification, so the bytes that moved are still accounted for.
    """

    def __init__(self, rank: int, src: int, tag: int, reason: str):
        super().__init__(
            f"rank {rank}: corrupt message from rank {src} (tag {tag}): {reason}"
        )
        self.rank = rank
        self.src = src
        self.tag = tag
        self.reason = reason


class Fabric:
    """Shared mailboxes of one SPMD run (one per communicator)."""

    def __init__(self, size: int):
        self.size = size
        self._cond = [threading.Condition() for _ in range(size)]
        self._boxes: list[dict[tuple[int, int], deque]] = [
            defaultdict(deque) for _ in range(size)
        ]
        self.abort = threading.Event()

    def put(self, dest: int, src: int, tag: int, payload: bytes) -> None:
        cond = self._cond[dest]
        with cond:
            self._boxes[dest][(src, tag)].append(payload)
            cond.notify_all()

    def abort_all(self) -> None:
        """Abort the run and wake every rank blocked in :meth:`get`.

        Setting the event alone is not enough: receivers wait on their
        per-rank condition with no timeout, so they must be notified.
        """
        self.abort.set()
        for cond in self._cond:
            with cond:
                cond.notify_all()

    def get(self, rank: int, src: int, tag: int) -> bytes:
        cond = self._cond[rank]
        with cond:
            while True:
                q = self._boxes[rank].get((src, tag))
                if q:
                    return q.popleft()
                if self.abort.is_set():
                    raise SpmdAborted(f"rank {rank}: peer failure during recv")
                cond.wait()


def _add(a, b):
    return a + b


class SimComm:
    """Communicator handle of one virtual rank.

    Mirrors the mpi4py surface the paper's algorithms need.  Every rank
    owns a :class:`PhaseProfile`; communication charges modelled seconds
    into whatever phase the rank currently has open.
    """

    def __init__(
        self,
        fabric: Fabric,
        rank: int,
        machine: MachineModel | None = None,
        profile: PhaseProfile | None = None,
        trace: "TraceRecorder | None" = None,
        integrity: bool = False,
    ):
        self.fabric = fabric
        self.rank = int(rank)
        self.size = fabric.size
        self.machine = machine if machine is not None else LOCAL
        self.profile = profile if profile is not None else PhaseProfile()
        #: Total traffic of this rank (all phases), for quick assertions.
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Optional per-message event recorder (shared across ranks).
        self.trace = trace
        #: CRC32 + sequence framing of every payload (both endpoints of a
        #: run must agree; ``run_spmd`` wires it uniformly).
        self.integrity = bool(integrity)
        self._seq = 0  # logical event order on this rank
        self._tx_seq: dict[tuple[int, int], int] = {}  # (dest, tag) -> next
        self._rx_seq: dict[tuple[int, int], int] = {}  # (src, tag) -> next
        if trace is not None:
            self.profile.bind_trace(trace, self.rank)

    # -- point to point -----------------------------------------------------

    def _charge(self, nbytes: int) -> None:
        self.profile.add_message(nbytes, self.machine.message_seconds(nbytes))

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _check_user_tag(self, tag: int) -> None:
        if not (0 <= tag < _TAG_COLL):
            raise ValueError(
                f"user tag {tag} outside the allowed range [0, {_TAG_COLL}): "
                f"tags >= {_TAG_COLL} are reserved for the internal "
                "collective tag space"
            )

    def _send(self, obj: Any, dest: int, tag: int) -> None:
        """Untagged-validated send used by collectives (internal tags)."""
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid dest {dest} for size {self.size}")
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if self.integrity:
            key = (dest, tag)
            chan_seq = self._tx_seq.get(key, 0)
            self._tx_seq[key] = chan_seq + 1
            payload = (
                _INTEGRITY_HDR.pack(zlib.crc32(payload), chan_seq & 0xFFFFFFFF)
                + payload
            )
        self.messages_sent += 1
        self.bytes_sent += len(payload)
        self._charge(len(payload))
        if self.trace is not None:
            self.trace.record_send(
                self.rank,
                dest,
                tag,
                len(payload),
                self.profile.current_name,
                self.machine.latency,
                len(payload) / self.machine.bandwidth,
                self._next_seq(),
            )
        self.fabric.put(dest, self.rank, tag, payload)

    def _recv(self, source: int, tag: int) -> Any:
        if not (0 <= source < self.size):
            raise ValueError(f"invalid source {source} for size {self.size}")
        payload = self.fabric.get(self.rank, source, tag)
        # ledger and trace first: the corrupt bytes really did move, and
        # the trace must balance even when verification fails below.
        self._charge(len(payload))
        if self.trace is not None:
            self.trace.record_recv(
                self.rank,
                source,
                tag,
                len(payload),
                self.profile.current_name,
                self.machine.latency,
                len(payload) / self.machine.bandwidth,
                self._next_seq(),
            )
        if self.integrity:
            if len(payload) < _INTEGRITY_HDR.size:
                raise CorruptMessage(self.rank, source, tag, "truncated frame")
            crc, chan_seq = _INTEGRITY_HDR.unpack_from(payload)
            payload = payload[_INTEGRITY_HDR.size :]
            key = (source, tag)
            want = self._rx_seq.get(key, 0)
            self._rx_seq[key] = want + 1
            if chan_seq != want & 0xFFFFFFFF:
                raise CorruptMessage(
                    self.rank,
                    source,
                    tag,
                    f"frame sequence {chan_seq} != expected {want} "
                    "(dropped or duplicated delivery)",
                )
            if zlib.crc32(payload) != crc:
                raise CorruptMessage(self.rank, source, tag, "payload CRC mismatch")
        return pickle.loads(payload)

    def _sendrecv(self, obj: Any, peer: int, tag: int) -> Any:
        self._send(obj, peer, tag)
        return self._recv(peer, tag)

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking-buffered send (never deadlocks in the simulator)."""
        self._check_user_tag(tag)
        self._send(obj, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive from a specific source and tag."""
        self._check_user_tag(tag)
        return self._recv(source, tag)

    def sendrecv(self, obj: Any, peer: int, tag: int = 0) -> Any:
        """Simultaneous exchange with a partner rank."""
        self._check_user_tag(tag)
        return self._sendrecv(obj, peer, tag)

    # -- collectives ----------------------------------------------------------

    def barrier(self) -> None:
        """Dissemination barrier: ceil(log2 p) rounds of tiny messages."""
        p, r = self.size, self.rank
        d = 1
        while d < p:
            self._send(None, (r + d) % p, _TAG_BARRIER)
            self._recv((r - d) % p, _TAG_BARRIER)
            d <<= 1

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast (MPICH pattern).

        Each non-root receives from the rank differing in its lowest set
        bit of the virtual rank, then forwards down the remaining bits.
        """
        p = self.size
        vr = (self.rank - root) % p  # virtual rank with root at 0
        got = obj
        mask = 1
        while mask < p:
            if vr & mask:
                got = self._recv(((vr - mask) + root) % p, _TAG_BCAST)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vr + mask < p:
                self._send(got, ((vr + mask) + root) % p, _TAG_BCAST)
            mask >>= 1
        return got

    def reduce(self, obj: Any, op: Callable = _add, root: int = 0) -> Any:
        """Binomial-tree reduction (``op`` must be commutative+associative)."""
        p = self.size
        vr = (self.rank - root) % p
        acc = obj
        mask = 1
        while mask < p:
            if vr & mask:
                self._send(acc, ((vr - mask) + root) % p, _TAG_REDUCE)
                break
            peer = vr + mask
            if peer < p:
                acc = op(acc, self._recv((peer + root) % p, _TAG_REDUCE))
            mask <<= 1
        return acc if self.rank == root else None

    def allreduce(self, obj: Any, op: Callable = _add) -> Any:
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)

    def gather(self, obj: Any, root: int = 0) -> list | None:
        """Binomial-tree gather; returns the rank-ordered list at root."""
        p = self.size
        vr = (self.rank - root) % p
        acc = {self.rank: obj}
        mask = 1
        while mask < p:
            if vr & mask:
                self._send(acc, ((vr - mask) + root) % p, _TAG_GATHER)
                break
            peer = vr + mask
            if peer < p:
                acc.update(self._recv((peer + root) % p, _TAG_GATHER))
            mask <<= 1
        if self.rank != root:
            return None
        return [acc[i] for i in range(p)]

    def allgather(self, obj: Any) -> list:
        """Recursive doubling (power-of-two) or ring allgather."""
        p, r = self.size, self.rank
        if p == 1:
            return [obj]
        if p & (p - 1) == 0:
            acc = {r: obj}
            d = 1
            while d < p:
                peer = r ^ d
                acc.update(self._sendrecv(acc, peer, _TAG_ALLGATHER))
                d <<= 1
            return [acc[i] for i in range(p)]
        items = {r: obj}
        block = obj
        for i in range(p - 1):
            self._send(block, (r + 1) % p, _TAG_ALLGATHER)
            block = self._recv((r - 1) % p, _TAG_ALLGATHER)
            items[(r - 1 - i) % p] = block
        return [items[i] for i in range(p)]

    def alltoall(self, blocks: list) -> list:
        """Personalised all-to-all via pairwise exchange.

        ``blocks[k]`` goes to rank ``k``; returns the list received, indexed
        by source.  XOR partners when ``p`` is a power of two.
        """
        p, r = self.size, self.rank
        if len(blocks) != p:
            raise ValueError(f"alltoall needs {p} blocks, got {len(blocks)}")
        out = [None] * p
        out[r] = blocks[r]
        pow2 = p & (p - 1) == 0
        for i in range(1, p):
            # Both partner formulas stay in range for every p: ``r ^ i < p``
            # when p is a power of two (i < p), and ``(r + i) % p < p``
            # otherwise — no skip needed.
            peer = (r ^ i) if pow2 else (r + i) % p
            src = peer if pow2 else (r - i) % p
            self._send(blocks[peer], peer, _TAG_ALLTOALL + i)
            out[src] = self._recv(src, _TAG_ALLTOALL + i)
        return out

    def exscan(self, obj: Any, op: Callable = _add) -> Any:
        """Exclusive prefix scan; rank 0 receives ``None``.

        Recursive doubling for power-of-two sizes, linear chain otherwise.
        ``op`` must be commutative and associative.
        """
        p, r = self.size, self.rank
        if p == 1:
            return None
        if p & (p - 1) == 0:
            acc = None  # exclusive prefix so far
            run = obj  # segment aggregate
            d = 1
            while d < p:
                peer = r ^ d
                other = self._sendrecv(run, peer, _TAG_SCAN)
                if peer < r:
                    acc = other if acc is None else op(other, acc)
                run = op(run, other) if peer > r else op(other, run)
                d <<= 1
            return acc
        if r > 0:
            acc = self._recv(r - 1, _TAG_SCAN)
        else:
            acc = None
        if r < p - 1:
            self._send(obj if acc is None else op(acc, obj), r + 1, _TAG_SCAN)
        return acc
