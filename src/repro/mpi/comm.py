"""The simulated communicator: MPI semantics over an in-process fabric.

Point-to-point messages are pickled at ``send`` time — this both isolates
the receiver from sender-side mutation (threads share an address space)
and yields an honest byte count for the communication ledger.  Collectives
are built from point-to-point with the textbook algorithms so that the
per-rank message/byte ledgers match what a real MPI run would produce:

===============  ==========================================================
``barrier``       dissemination barrier, ``ceil(log2 p)`` rounds
``bcast``         binomial tree
``reduce``        binomial tree (commutative ``op``)
``allreduce``     reduce + bcast
``gather``        binomial tree
``allgather``     recursive doubling (power-of-two), ring otherwise
``alltoall``      pairwise exchange (XOR partners for power-of-two)
``exscan``        recursive doubling (power-of-two), chain otherwise
===============  ==========================================================

Every message charges ``t_s + nbytes * t_w`` to the *current phase* of
both endpoints' profiles (see :mod:`repro.mpi.machine` for the convention).
With a :class:`repro.perf.trace.TraceRecorder` attached, every send/recv
endpoint additionally logs one trace event (src, dst, tag, bytes, phase,
modelled seconds, logical order); tracing is opt-in and costs one ``is
None`` check per message when disabled.

Abort semantics: :meth:`Fabric.abort_all` sets the abort flag **and**
notifies every rank's condition variable, so ranks blocked in ``recv``
observe the abort immediately (``Fabric.get`` waits on the condition with
no poll timeout — a plain ``set()`` of the event alone will not wake
blocked receivers).

End-to-end integrity is opt-in (``SimComm(..., integrity=True)``, wired
through ``run_spmd(..., integrity=True)``): every pickled payload is
framed with a CRC32 checksum and a per-channel (src, dst, tag) sequence
number.  ``recv`` verifies the frame *after* charging the ledger and
recording the trace event, then raises a typed :class:`CorruptMessage`
instead of an unpickling crash — so injected bit-flips are *detected*
while the byte ledgers and traces still account for the corrupt bytes
that actually moved.  The sequence number turns dropped and duplicated
deliveries into typed errors too (a gap or a stale repeat on the
channel), instead of hangs or silent collective desyncs.  On a sequence
anomaly the receiver *resyncs forward* (never backward), so one dropped
delivery yields exactly one typed error and the channel verifies clean
afterwards.

Nonblocking point-to-point (``isend``/``irecv``) returns :class:`Request`
handles completed with ``wait``/``test``/:func:`wait_all`.  The simulated
wire is eager — an ``isend`` is deliverable the moment it is posted, so
posted sends can never deadlock a peer — but the **ledger and trace are
charged at completion**, in whatever phase the rank has open when it
calls ``wait``, and integrity frames are verified at ``wait`` too.  This
mirrors real MPI, where the cost of a nonblocking operation lands where
the program finally synchronises with it, and it is what lets the
distributed driver post an exchange, compute through other phases, and
still account the traffic to the communication phase it reopens to
complete the requests.
"""

from __future__ import annotations

import pickle
import struct
import threading
import time
import zlib
from collections import defaultdict, deque
from typing import TYPE_CHECKING, Any, Callable

from repro.mpi.machine import LOCAL, MachineModel
from repro.util.timer import PhaseProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.trace import TraceRecorder

__all__ = [
    "SimComm",
    "Fabric",
    "Request",
    "AlltoallRequest",
    "SpmdAborted",
    "CorruptMessage",
    "wait_all",
]

# Internal tag space: user tags must stay below _TAG_COLL.  Each
# collective owns a block of _TAG_BLOCK tags so individual rounds can be
# round-stamped (e.g. ``_TAG_BARRIER + round``): with nonblocking ops in
# the mix, a fast rank may post round-k+1 traffic while a slow peer is
# still draining round k, and per-round tags keep those messages on
# distinct FIFO channels instead of relying on every channel staying
# strictly in lock-step.
_TAG_COLL = 1 << 20
_TAG_BLOCK = 1 << 16
_TAG_BARRIER = _TAG_COLL + 1 * _TAG_BLOCK
_TAG_BCAST = _TAG_COLL + 2 * _TAG_BLOCK
_TAG_REDUCE = _TAG_COLL + 3 * _TAG_BLOCK
_TAG_GATHER = _TAG_COLL + 4 * _TAG_BLOCK
_TAG_ALLGATHER = _TAG_COLL + 5 * _TAG_BLOCK
_TAG_ALLTOALL = _TAG_COLL + 6 * _TAG_BLOCK
_TAG_SCAN = _TAG_COLL + 7 * _TAG_BLOCK

#: Integrity frame prepended to every payload when ``integrity=True``:
#: CRC32 of the pickled payload + per-(src, dst, tag) sequence number.
_INTEGRITY_HDR = struct.Struct("<II")


class SpmdAborted(RuntimeError):
    """Raised in surviving ranks when another rank died."""


class CorruptMessage(RuntimeError):
    """An integrity-framed message failed verification at ``recv``.

    Raised instead of letting a flipped bit crash (or silently corrupt)
    unpickling, and instead of letting a dropped/duplicated delivery hang
    or desync a collective.  The ledger and trace are charged *before*
    verification, so the bytes that moved are still accounted for.
    """

    def __init__(self, rank: int, src: int, tag: int, reason: str):
        super().__init__(
            f"rank {rank}: corrupt message from rank {src} (tag {tag}): {reason}"
        )
        self.rank = rank
        self.src = src
        self.tag = tag
        self.reason = reason


class Fabric:
    """Shared mailboxes of one SPMD run (one per communicator)."""

    def __init__(self, size: int):
        self.size = size
        self._cond = [threading.Condition() for _ in range(size)]
        self._boxes: list[dict[tuple[int, int], deque]] = [
            defaultdict(deque) for _ in range(size)
        ]
        self.abort = threading.Event()

    def put(self, dest: int, src: int, tag: int, payload: bytes) -> None:
        cond = self._cond[dest]
        with cond:
            self._boxes[dest][(src, tag)].append(payload)
            cond.notify_all()

    def abort_all(self) -> None:
        """Abort the run and wake every rank blocked in :meth:`get`.

        Setting the event alone is not enough: receivers wait on their
        per-rank condition with no timeout, so they must be notified.
        """
        self.abort.set()
        for cond in self._cond:
            with cond:
                cond.notify_all()

    def get(self, rank: int, src: int, tag: int) -> bytes:
        cond = self._cond[rank]
        with cond:
            while True:
                q = self._boxes[rank].get((src, tag))
                if q:
                    return q.popleft()
                if self.abort.is_set():
                    raise SpmdAborted(f"rank {rank}: peer failure during recv")
                cond.wait()

    def try_get(self, rank: int, src: int, tag: int) -> bytes | None:
        """Nonblocking :meth:`get`: pop a pending payload or return None.

        Like :meth:`get`, raises :class:`SpmdAborted` when the run is
        aborted and nothing is pending, so ``Request.test`` polls fail
        fast on a dead run instead of spinning forever.
        """
        cond = self._cond[rank]
        with cond:
            q = self._boxes[rank].get((src, tag))
            if q:
                return q.popleft()
            if self.abort.is_set():
                raise SpmdAborted(f"rank {rank}: peer failure during recv")
            return None

    def on_wait(self, rank: int) -> None:
        """Hook fired once per ``Request`` completion (``wait`` entry or a
        successful ``test``), in per-rank program order.  The chaos fabric
        overrides this to fire crash/straggle faults *inside* in-flight
        nonblocking operations (e.g. mid-``wait_all``)."""


class Request:
    """Handle of one in-flight nonblocking operation (``isend``/``irecv``).

    MPI semantics at simulator scale: the operation is *posted*
    immediately, but the ledger/trace are charged at **completion**
    (``wait`` or a successful ``test``), in whatever phase the rank has
    open at that moment, and integrity frames are verified at ``wait``.
    ``wait`` is idempotent — after completion it returns the same value
    (``None`` for sends) without charging again.  :meth:`Fabric.abort_all`
    wakes ranks blocked in ``wait`` with :class:`SpmdAborted`.

    If integrity verification fails at ``wait``, the request is marked
    done (the corrupt bytes were charged — they really moved) and the
    typed :class:`CorruptMessage` propagates to the caller.

    Multiple outstanding ``irecv`` s on the *same* (source, tag) channel
    are matched to deliveries in the order their ``wait``/``test`` calls
    complete, not the order they were posted — post order is not recorded
    by the fabric, which delivers each channel FIFO.
    """

    __slots__ = ("comm", "peer", "tag", "done", "nbytes", "_value")

    def __init__(self, comm: "SimComm", peer: int, tag: int):
        self.comm = comm
        self.peer = peer
        self.tag = tag
        self.done = False
        #: Framed payload size; sends know it at post, recvs at completion.
        self.nbytes = 0
        self._value: Any = None

    def wait(self) -> Any:
        raise NotImplementedError

    def test(self) -> bool:
        raise NotImplementedError


class _SendRequest(Request):
    """A posted send: bytes are already on the (eager) wire; the ledger
    and trace entries land when the sender completes the request."""

    def wait(self) -> None:
        if self.done:
            return None
        comm = self.comm
        comm.fabric.on_wait(comm.rank)
        self.done = True
        comm.messages_sent += 1
        comm.bytes_sent += self.nbytes
        comm._charge(self.nbytes)
        if comm.trace is not None:
            comm.trace.record_send(
                comm.rank,
                self.peer,
                self.tag,
                self.nbytes,
                comm.profile.current_name,
                comm.machine.latency,
                self.nbytes / comm.machine.bandwidth,
                comm._next_seq(),
            )
        return None

    def test(self) -> bool:
        self.wait()  # the wire is eager: a posted send is always complete
        return True


class _RecvRequest(Request):
    def wait(self) -> Any:
        if self.done:
            return self._value
        comm = self.comm
        comm.fabric.on_wait(comm.rank)
        return self._finish(comm.fabric.get(comm.rank, self.peer, self.tag))

    def test(self) -> bool:
        if self.done:
            return True
        comm = self.comm
        payload = comm.fabric.try_get(comm.rank, self.peer, self.tag)
        if payload is None:
            return False
        comm.fabric.on_wait(comm.rank)
        self._finish(payload)
        return True

    def _finish(self, payload: bytes) -> Any:
        self.done = True  # even a failed verification consumed a delivery
        self.nbytes = len(payload)
        self._value = self.comm._complete_recv(self.peer, self.tag, payload)
        return self._value


def wait_all(requests) -> list:
    """Complete requests in order; returns their values (None for sends)."""
    return [req.wait() for req in requests]


class AlltoallRequest:
    """Handle of one in-flight :meth:`SimComm.ialltoall`."""

    __slots__ = ("_out", "_sends", "_recvs", "done")

    def __init__(self, out: list, sends: list, recvs: list):
        self._out = out
        self._sends = sends
        self._recvs = recvs  # (source, Request) pairs
        self.done = False

    @property
    def requests(self) -> list:
        """All member requests, for in-flight span accounting."""
        return self._sends + [req for _, req in self._recvs]

    def wait(self) -> list:
        """Complete the exchange; returns received blocks indexed by source."""
        if not self.done:
            for src, req in self._recvs:
                self._out[src] = req.wait()
            for req in self._sends:
                req.wait()
            self.done = True
        return self._out


def _add(a, b):
    return a + b


class SimComm:
    """Communicator handle of one virtual rank.

    Mirrors the mpi4py surface the paper's algorithms need.  Every rank
    owns a :class:`PhaseProfile`; communication charges modelled seconds
    into whatever phase the rank currently has open.
    """

    def __init__(
        self,
        fabric: Fabric,
        rank: int,
        machine: MachineModel | None = None,
        profile: PhaseProfile | None = None,
        trace: "TraceRecorder | None" = None,
        integrity: bool = False,
    ):
        self.fabric = fabric
        self.rank = int(rank)
        self.size = fabric.size
        self.machine = machine if machine is not None else LOCAL
        self.profile = profile if profile is not None else PhaseProfile()
        #: Total traffic of this rank (all phases), for quick assertions.
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Optional per-message event recorder (shared across ranks).
        self.trace = trace
        #: CRC32 + sequence framing of every payload (both endpoints of a
        #: run must agree; ``run_spmd`` wires it uniformly).
        self.integrity = bool(integrity)
        self._seq = 0  # logical event order on this rank
        self._tx_seq: dict[tuple[int, int], int] = {}  # (dest, tag) -> next
        self._rx_seq: dict[tuple[int, int], int] = {}  # (src, tag) -> next
        if trace is not None:
            self.profile.bind_trace(trace, self.rank)

    # -- point to point -----------------------------------------------------

    def _charge(self, nbytes: int) -> None:
        self.profile.add_message(nbytes, self.machine.message_seconds(nbytes))

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _check_user_tag(self, tag: int) -> None:
        if not (0 <= tag < _TAG_COLL):
            raise ValueError(
                f"user tag {tag} outside the allowed range [0, {_TAG_COLL}): "
                f"tags >= {_TAG_COLL} are reserved for the internal "
                "collective tag space"
            )

    def _send(self, obj: Any, dest: int, tag: int) -> None:
        """Untagged-validated send used by collectives (internal tags)."""
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid dest {dest} for size {self.size}")
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if self.integrity:
            key = (dest, tag)
            chan_seq = self._tx_seq.get(key, 0)
            self._tx_seq[key] = chan_seq + 1
            payload = (
                _INTEGRITY_HDR.pack(zlib.crc32(payload), chan_seq & 0xFFFFFFFF)
                + payload
            )
        self.messages_sent += 1
        self.bytes_sent += len(payload)
        self._charge(len(payload))
        if self.trace is not None:
            self.trace.record_send(
                self.rank,
                dest,
                tag,
                len(payload),
                self.profile.current_name,
                self.machine.latency,
                len(payload) / self.machine.bandwidth,
                self._next_seq(),
            )
        self.fabric.put(dest, self.rank, tag, payload)

    def _recv(self, source: int, tag: int) -> Any:
        if not (0 <= source < self.size):
            raise ValueError(f"invalid source {source} for size {self.size}")
        payload = self.fabric.get(self.rank, source, tag)
        return self._complete_recv(source, tag, payload)

    def _complete_recv(self, source: int, tag: int, payload: bytes) -> Any:
        """Charge, trace and verify one delivered payload.

        Shared by blocking ``recv`` and ``Request.wait``: verification
        happens at *completion* time in both cases.
        """
        # ledger and trace first: the corrupt bytes really did move, and
        # the trace must balance even when verification fails below.
        self._charge(len(payload))
        if self.trace is not None:
            self.trace.record_recv(
                self.rank,
                source,
                tag,
                len(payload),
                self.profile.current_name,
                self.machine.latency,
                len(payload) / self.machine.bandwidth,
                self._next_seq(),
            )
        if self.integrity:
            if len(payload) < _INTEGRITY_HDR.size:
                raise CorruptMessage(self.rank, source, tag, "truncated frame")
            crc, chan_seq = _INTEGRITY_HDR.unpack_from(payload)
            payload = payload[_INTEGRITY_HDR.size :]
            key = (source, tag)
            want = self._rx_seq.get(key, 0)
            if chan_seq != want & 0xFFFFFFFF:
                # Resync *forward*, never backward, so one anomaly yields
                # exactly one typed error: after a gap (dropped delivery)
                # the channel expects chan_seq + 1 next; after a stale
                # repeat (duplicate) it keeps expecting ``want``.  Moving
                # backward would poison the channel — every subsequent
                # in-order frame would mismatch too.
                self._rx_seq[key] = max(want, chan_seq + 1)
                raise CorruptMessage(
                    self.rank,
                    source,
                    tag,
                    f"frame sequence {chan_seq} != expected {want} "
                    "(dropped or duplicated delivery)",
                )
            self._rx_seq[key] = want + 1
            if zlib.crc32(payload) != crc:
                raise CorruptMessage(self.rank, source, tag, "payload CRC mismatch")
        return pickle.loads(payload)

    def _sendrecv(self, obj: Any, peer: int, tag: int) -> Any:
        self._send(obj, peer, tag)
        return self._recv(peer, tag)

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking-buffered send (never deadlocks in the simulator)."""
        self._check_user_tag(tag)
        self._send(obj, dest, tag)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive from a specific source and tag."""
        self._check_user_tag(tag)
        return self._recv(source, tag)

    def sendrecv(self, obj: Any, peer: int, tag: int = 0) -> Any:
        """Simultaneous exchange with a partner rank."""
        self._check_user_tag(tag)
        return self._sendrecv(obj, peer, tag)

    # -- nonblocking point to point ------------------------------------------

    def _isend(self, obj: Any, dest: int, tag: int) -> Request:
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid dest {dest} for size {self.size}")
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if self.integrity:
            # the frame sequence is consumed at *post* time, so blocking
            # and nonblocking sends interleaved on one channel keep the
            # program order the receiver will verify against.
            key = (dest, tag)
            chan_seq = self._tx_seq.get(key, 0)
            self._tx_seq[key] = chan_seq + 1
            payload = (
                _INTEGRITY_HDR.pack(zlib.crc32(payload), chan_seq & 0xFFFFFFFF)
                + payload
            )
        req = _SendRequest(self, dest, tag)
        req.nbytes = len(payload)
        # eager wire: the payload is deliverable the moment it is posted,
        # so a posted isend can never deadlock a peer's blocking recv.
        # Only the *charging* is deferred to completion.
        self.fabric.put(dest, self.rank, tag, payload)
        return req

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; complete with ``Request.wait``/``test``.

        The ledger/trace charge lands at completion, in whatever phase is
        open then — post in one phase, complete in another, and the cost
        is attributed to the completing phase.
        """
        self._check_user_tag(tag)
        return self._isend(obj, dest, tag)

    def _irecv(self, source: int, tag: int) -> Request:
        if not (0 <= source < self.size):
            raise ValueError(f"invalid source {source} for size {self.size}")
        return _RecvRequest(self, source, tag)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Nonblocking receive; ``Request.wait`` returns the payload.

        Integrity framing is verified at ``wait`` (completion), matching
        the blocking ``recv``'s charge-then-verify contract.
        """
        self._check_user_tag(tag)
        return self._irecv(source, tag)

    def wait_all(self, requests) -> list:
        """Complete requests in order; returns values (None for sends)."""
        return wait_all(requests)

    def ialltoall(self, blocks: list) -> AlltoallRequest:
        """Nonblocking :meth:`alltoall`.

        Same partner schedule, round-stamped tags and per-rank byte
        ledger as the blocking version — but all sends and receives are
        posted up front and charged when the returned handle's ``wait``
        completes them, so the whole exchange can stay in flight behind
        local compute.
        """
        p, r = self.size, self.rank
        if len(blocks) != p:
            raise ValueError(f"alltoall needs {p} blocks, got {len(blocks)}")
        out: list = [None] * p
        out[r] = blocks[r]
        pow2 = p & (p - 1) == 0
        sends, recvs = [], []
        for i in range(1, p):
            peer = (r ^ i) if pow2 else (r + i) % p
            src = peer if pow2 else (r - i) % p
            sends.append(self._isend(blocks[peer], peer, _TAG_ALLTOALL + i))
            recvs.append((src, self._irecv(src, _TAG_ALLTOALL + i)))
        return AlltoallRequest(out, sends, recvs)

    def record_inflight(self, label: str, t0: float, flops0: float, requests) -> None:
        """Emit one ``INFLIGHT:<label>`` span for a completed request group.

        The span's ``flops`` field carries the compute this rank performed
        while the group was in flight (profile delta since ``flops0``) and
        its comm fields carry the group's modelled cost; together they let
        :func:`repro.perf.model.achieved_overlap_seconds` compute how much
        communication was actually hidden behind compute.
        """
        if self.trace is None:
            return
        reqs = list(requests)
        self.trace.record_span(
            self.rank,
            f"INFLIGHT:{label}",
            time.perf_counter() - t0,
            self.profile.total_flops() - flops0,
            len(reqs),
            float(sum(req.nbytes for req in reqs)),
            sum(self.machine.message_seconds(req.nbytes) for req in reqs),
            precision=self.profile.precision,
        )

    # -- collectives ----------------------------------------------------------

    def barrier(self) -> None:
        """Dissemination barrier: ceil(log2 p) rounds of tiny messages.

        Each round uses its own tag (``_TAG_BARRIER + round``) so a fast
        rank's round-k+1 message can never be matched by a slow peer
        still draining round k.
        """
        p, r = self.size, self.rank
        d = 1
        rnd = 0
        while d < p:
            self._send(None, (r + d) % p, _TAG_BARRIER + rnd)
            self._recv((r - d) % p, _TAG_BARRIER + rnd)
            d <<= 1
            rnd += 1

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast (MPICH pattern).

        Each non-root receives from the rank differing in its lowest set
        bit of the virtual rank, then forwards down the remaining bits.
        Each tree edge is tag-stamped with the *receiver's* lowest-set-bit
        index — the sender's forwarding mask is exactly that bit, so both
        endpoints of every edge agree on the stamp.
        """
        p = self.size
        vr = (self.rank - root) % p  # virtual rank with root at 0
        got = obj
        mask = 1
        while mask < p:
            if vr & mask:
                got = self._recv(
                    ((vr - mask) + root) % p, _TAG_BCAST + mask.bit_length() - 1
                )
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vr + mask < p:
                self._send(
                    got, ((vr + mask) + root) % p, _TAG_BCAST + mask.bit_length() - 1
                )
            mask >>= 1
        return got

    def reduce(self, obj: Any, op: Callable = _add, root: int = 0) -> Any:
        """Binomial-tree reduction (``op`` must be commutative+associative)."""
        p = self.size
        vr = (self.rank - root) % p
        acc = obj
        mask = 1
        while mask < p:
            # tag stamp = the sender's lowest-set-bit index; the receiver
            # is at the same mask when it posts the matching recv.
            if vr & mask:
                self._send(
                    acc, ((vr - mask) + root) % p, _TAG_REDUCE + mask.bit_length() - 1
                )
                break
            peer = vr + mask
            if peer < p:
                acc = op(
                    acc,
                    self._recv((peer + root) % p, _TAG_REDUCE + mask.bit_length() - 1),
                )
            mask <<= 1
        return acc if self.rank == root else None

    def allreduce(self, obj: Any, op: Callable = _add) -> Any:
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)

    def gather(self, obj: Any, root: int = 0) -> list | None:
        """Binomial-tree gather; returns the rank-ordered list at root."""
        p = self.size
        vr = (self.rank - root) % p
        acc = {self.rank: obj}
        mask = 1
        while mask < p:
            if vr & mask:
                self._send(
                    acc, ((vr - mask) + root) % p, _TAG_GATHER + mask.bit_length() - 1
                )
                break
            peer = vr + mask
            if peer < p:
                acc.update(
                    self._recv((peer + root) % p, _TAG_GATHER + mask.bit_length() - 1)
                )
            mask <<= 1
        if self.rank != root:
            return None
        return [acc[i] for i in range(p)]

    def allgather(self, obj: Any) -> list:
        """Recursive doubling (power-of-two) or ring allgather."""
        p, r = self.size, self.rank
        if p == 1:
            return [obj]
        if p & (p - 1) == 0:
            acc = {r: obj}
            d = 1
            rnd = 0
            while d < p:
                peer = r ^ d
                acc.update(self._sendrecv(acc, peer, _TAG_ALLGATHER + rnd))
                d <<= 1
                rnd += 1
            return [acc[i] for i in range(p)]
        items = {r: obj}
        block = obj
        for i in range(p - 1):
            self._send(block, (r + 1) % p, _TAG_ALLGATHER + i)
            block = self._recv((r - 1) % p, _TAG_ALLGATHER + i)
            items[(r - 1 - i) % p] = block
        return [items[i] for i in range(p)]

    def alltoall(self, blocks: list) -> list:
        """Personalised all-to-all via pairwise exchange.

        ``blocks[k]`` goes to rank ``k``; returns the list received, indexed
        by source.  XOR partners when ``p`` is a power of two.
        """
        p, r = self.size, self.rank
        if len(blocks) != p:
            raise ValueError(f"alltoall needs {p} blocks, got {len(blocks)}")
        out = [None] * p
        out[r] = blocks[r]
        pow2 = p & (p - 1) == 0
        for i in range(1, p):
            # Both partner formulas stay in range for every p: ``r ^ i < p``
            # when p is a power of two (i < p), and ``(r + i) % p < p``
            # otherwise — no skip needed.
            peer = (r ^ i) if pow2 else (r + i) % p
            src = peer if pow2 else (r - i) % p
            self._send(blocks[peer], peer, _TAG_ALLTOALL + i)
            out[src] = self._recv(src, _TAG_ALLTOALL + i)
        return out

    def exscan(self, obj: Any, op: Callable = _add) -> Any:
        """Exclusive prefix scan; rank 0 receives ``None``.

        Recursive doubling for power-of-two sizes, linear chain otherwise.
        ``op`` must be commutative and associative.
        """
        p, r = self.size, self.rank
        if p == 1:
            return None
        if p & (p - 1) == 0:
            acc = None  # exclusive prefix so far
            run = obj  # segment aggregate
            d = 1
            rnd = 0
            while d < p:
                peer = r ^ d
                other = self._sendrecv(run, peer, _TAG_SCAN + rnd)
                if peer < r:
                    acc = other if acc is None else op(other, acc)
                run = op(run, other) if peer > r else op(other, run)
                d <<= 1
                rnd += 1
            return acc
        if r > 0:
            acc = self._recv(r - 1, _TAG_SCAN)
        else:
            acc = None
        if r < p - 1:
            self._send(obj if acc is None else op(acc, obj), r + 1, _TAG_SCAN)
        return acc
