"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``evaluate``  run a single-process FMM on a synthetic distribution and
              (optionally) verify against direct summation
``tune``      autotune the points-per-box parameter for CPU or GPU
``info``      print version, kernels, machine/device models
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _cmd_evaluate(args) -> int:
    from repro import Fmm, direct_sum, get_kernel
    from repro.datasets import make_distribution
    from repro.util.timer import PhaseProfile

    kernel = get_kernel(args.kernel)
    points = make_distribution(args.distribution, args.n, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    dens = rng.standard_normal(args.n * kernel.source_dim)

    fmm = Fmm(kernel, order=args.order, max_points_per_box=args.q)
    profile = PhaseProfile()
    t0 = time.perf_counter()
    pot = fmm.evaluate(points, dens, profile=profile)
    dt = time.perf_counter() - t0
    print(
        f"N={args.n} {args.distribution} {args.kernel} order={args.order} "
        f"q={args.q}: {dt:.2f}s, {profile.total_flops():.3g} flops"
    )
    for name, wall, flops, _, _ in profile.as_table():
        print(f"  {name:8s} {wall:7.2f}s  {flops:.3g} flops")
    if args.check:
        sample = rng.choice(args.n, min(args.n, args.check), replace=False)
        ref = direct_sum(kernel, points[sample], points, dens)
        kt = kernel.target_dim
        got = pot.reshape(-1, kt)[sample].reshape(-1)
        err = np.linalg.norm(got - ref) / np.linalg.norm(ref)
        print(f"spot check ({len(sample)} targets): rel err {err:.2e}")
    return 0


def _cmd_tune(args) -> int:
    from repro.core.autotune import autotune_points_per_box
    from repro.datasets import make_distribution

    points = make_distribution(args.distribution, args.n, seed=args.seed)
    res = autotune_points_per_box(
        points,
        kernel=args.kernel,
        order=args.order,
        target=args.target,
        sample=args.sample,
    )
    print(f"best q for {args.target}: {res.best_q}  (metric: {res.metric})")
    for q, cost in res.ranked():
        marker = " <-- best" if q == res.best_q else ""
        print(f"  q={q:5d}: {cost:.4f}s{marker}")
    return 0


def _cmd_info(args) -> int:
    import repro
    from repro.gpu.device import TESLA_S1070
    from repro.kernels import _REGISTRY
    from repro.mpi import KRAKEN, LINCOLN

    print(f"repro {repro.__version__} — SC'09 parallel adaptive KIFMM reproduction")
    print(f"kernels: {', '.join(sorted(_REGISTRY))}")
    for m in (KRAKEN, LINCOLN):
        print(
            f"machine {m.name}: {m.cpu_flops / 1e6:.0f} MFlop/s/core, "
            f"t_s={m.latency * 1e6:.0f}us, bw={m.bandwidth / 1e9:.1f} GB/s"
        )
    d = TESLA_S1070
    print(
        f"device {d.name}: {d.peak_flops / 1e9:.0f} GFlop/s, "
        f"{d.mem_bandwidth / 1e9:.0f} GB/s, PCIe {d.pcie_bandwidth / 1e9:.0f} GB/s"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel adaptive kernel-independent FMM (SC'09 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pe = sub.add_parser("evaluate", help="run an FMM evaluation")
    pe.add_argument("--kernel", default="laplace")
    pe.add_argument("--distribution", default="uniform",
                    choices=["uniform", "ellipsoid", "plummer",
                             "two_spheres", "filament"])
    pe.add_argument("--n", type=int, default=10_000)
    pe.add_argument("--order", type=int, default=6)
    pe.add_argument("--q", type=int, default=100,
                    help="max points per box")
    pe.add_argument("--seed", type=int, default=0)
    pe.add_argument("--check", type=int, nargs="?", const=200, default=0,
                    metavar="N_SAMPLES",
                    help="verify against direct summation on a sample")
    pe.set_defaults(fn=_cmd_evaluate)

    pt = sub.add_parser("tune", help="autotune points-per-box")
    pt.add_argument("--kernel", default="laplace")
    pt.add_argument("--distribution", default="uniform",
                    choices=["uniform", "ellipsoid", "plummer",
                             "two_spheres", "filament"])
    pt.add_argument("--n", type=int, default=20_000)
    pt.add_argument("--order", type=int, default=6)
    pt.add_argument("--target", default="cpu", choices=["cpu", "gpu"])
    pt.add_argument("--sample", type=int, default=20_000)
    pt.add_argument("--seed", type=int, default=0)
    pt.set_defaults(fn=_cmd_tune)

    pi = sub.add_parser("info", help="print build/config information")
    pi.set_defaults(fn=_cmd_info)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
