"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``evaluate``  run a single-process FMM on a synthetic distribution and
              (optionally) verify against direct summation
``trace``     run a distributed FMM with per-message tracing and print
              the communication matrices and critical-path estimates
``tune``      autotune the points-per-box parameter for CPU or GPU
``chaos``     run the fault-injection matrix: every fault class against
              a distributed FMM, checking typed failure or bit-identical
              recovery, plus seeded-determinism replay checks
``serve``     stand up the in-process evaluation service, drive it with
              closed-loop clients, and report latency/throughput/batching
              metrics (``--bench`` gates and writes BENCH_serving.json)
``info``      print version, kernels, machine/device models
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _cmd_evaluate(args) -> int:
    from repro import Fmm, direct_sum, get_kernel
    from repro.datasets import make_distribution
    from repro.util.timer import PhaseProfile

    kernel = get_kernel(args.kernel)
    points = make_distribution(args.distribution, args.n, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    dens = rng.standard_normal(args.n * kernel.source_dim)

    fmm = Fmm(kernel, order=args.order, max_points_per_box=args.q,
              precision=args.precision, threads=args.threads)
    if args.steps:
        return _cmd_evaluate_dynamic(args, fmm, kernel, points, dens)
    profile = PhaseProfile()
    recorder = None
    if args.trace:
        from repro.perf.trace import TraceRecorder

        recorder = TraceRecorder()
        profile.bind_trace(recorder, 0)
    t0 = time.perf_counter()
    plan = fmm.plan(points, profile=profile)
    pot = fmm.evaluate(points, dens, plan=plan, profile=profile,
                       use_plan=not args.no_plan)
    dt = time.perf_counter() - t0
    # --repeat: re-apply on the same tree (iterative-solver pattern); the
    # evaluator compiles its EvalPlan on the second call and amortises it
    for k in range(args.repeat - 1):
        t1 = time.perf_counter()
        pot = fmm.evaluate(points, dens, plan=plan, profile=profile,
                           use_plan=not args.no_plan)
        print(f"  repeat {k + 2}: {time.perf_counter() - t1:.2f}s")
    if recorder is not None:
        n = recorder.write_jsonl(args.trace)
        print(f"trace: {n} events -> {args.trace}")
    print(
        f"N={args.n} {args.distribution} {args.kernel} order={args.order} "
        f"q={args.q} precision={profile.precision}: {dt:.2f}s (first call), "
        f"{profile.total_flops():.3g} flops"
    )
    for name, wall, flops, _, _ in profile.as_table():
        print(f"  {name:8s} {wall:7.2f}s  {flops:.3g} flops")
    if args.check:
        sample = rng.choice(args.n, min(args.n, args.check), replace=False)
        ref = direct_sum(kernel, points[sample], points, dens)
        kt = kernel.target_dim
        got = pot.reshape(-1, kt)[sample].reshape(-1)
        err = np.linalg.norm(got - ref) / np.linalg.norm(ref)
        print(f"spot check ({len(sample)} targets): rel err {err:.2e}")
    return 0


def _blob_step(rng, pts, frac, eps):
    """One localized motion step: drift the ``frac`` fraction of points
    nearest a random center by ``eps`` (plus jitter).  Spatially compact
    motion stays compact in Morton order — the regime the incremental
    geometry path targets (uniform random motion dirties nearly every
    leaf and degenerates to a recompile)."""
    n = len(pts)
    m = max(1, int(round(frac * n)))
    center = pts[rng.integers(n)]
    d2 = ((pts - center) ** 2).sum(axis=1)
    moved = np.argpartition(d2, m - 1)[:m] if m < n else np.arange(n)
    new_pts = pts.copy()
    new_pts[moved] = np.clip(
        new_pts[moved]
        + rng.normal(scale=eps, size=3)
        + rng.normal(scale=eps / 4.0, size=(m, 3)),
        1e-9, 1.0 - 1e-9,
    )
    return new_pts, moved


def _cmd_evaluate_dynamic(args, fmm, kernel, points, dens) -> int:
    """``evaluate --steps K``: the dynamic-geometry patch-vs-recompile bench.

    Each step moves a Morton-localized blob of sources, rebuilds the
    geometry incrementally (delta-sort + dirty-subtree rebuild + plan
    patch) and from scratch, and bit-compares the two evaluations.  With
    ``--p`` the final geometry is additionally pushed through a p-rank
    sharded :class:`~repro.serve.dist_engine.DistServeEngine` via its
    ``update_geometry`` and checked against a freshly registered engine.
    """
    import json

    rng = np.random.default_rng(args.seed + 1)
    pts = points
    plan = fmm.plan(pts)
    t0 = time.perf_counter()
    eplan = fmm.compile_eval_plan(plan)
    compile0_s = time.perf_counter() - t0
    print(f"dynamic geometry: N={args.n} order={args.order} q={args.q} "
          f"{args.kernel}; initial plan compile {compile0_s:.2f}s")

    steps, all_bit = [], True
    for k in range(args.steps):
        new_pts, moved = _blob_step(rng, pts, args.moved_frac, args.perturb)

        t0 = time.perf_counter()
        new_plan, delta = fmm.update_plan(plan, new_pts, moved=moved)
        pe = fmm.patch_eval_plan(eplan, plan, new_plan, delta=delta)
        t_patch = time.perf_counter() - t0

        t0 = time.perf_counter()
        ref_plan = fmm.plan(new_pts)
        fe = fmm.compile_eval_plan(ref_plan)
        t_full = time.perf_counter() - t0

        out_p = fmm.evaluate(new_pts, dens, plan=new_plan, eval_plan=pe)
        out_f = fmm.evaluate(new_pts, dens, plan=ref_plan, eval_plan=fe)
        bit = bool(np.array_equal(out_p, out_f))
        all_bit &= bit
        st = pe.patch_stats
        reused = st.get("slots_reused", 0)
        fresh = st.get("slots_fresh", 0)
        steps.append({
            "step": k + 1,
            "n_moved": int(len(moved)),
            "patch_s": t_patch,
            "recompile_s": t_full,
            "speedup": t_full / t_patch if t_patch > 0 else None,
            "bit_identical": bit,
            "kmat_slots_reused": int(reused),
            "kmat_slots_fresh": int(fresh),
            "refinement_changed": bool(delta.refinement_changed),
        })
        print(f"  step {k + 1}: patch {t_patch:.3f}s vs recompile "
              f"{t_full:.3f}s ({t_full / max(t_patch, 1e-12):.1f}x), "
              f"kmat reuse {reused}/{reused + fresh}, "
              f"bit-identical={bit}")
        pts, plan, eplan = new_pts, new_plan, pe

    dist_bit = None
    if args.p > 0:
        from repro.serve.dist_engine import DistServeEngine

        eng = DistServeEngine(nranks=args.p)
        eng.register("dyn", points, placement="sharded", group=args.p,
                     kernel=kernel, order=args.order,
                     max_points_per_box=args.q)
        eng.update_geometry("dyn", pts)  # initial -> final geometry
        out_p = eng.evaluate("dyn", dens)
        ref = DistServeEngine(nranks=args.p)
        ref.register("dyn", pts, placement="sharded", group=args.p,
                     kernel=kernel, order=args.order,
                     max_points_per_box=args.q)
        dist_bit = bool(np.array_equal(out_p, ref.evaluate("dyn", dens)))
        all_bit &= dist_bit
        print(f"  sharded p={args.p} update_geometry bit-identical: "
              f"{dist_bit}")

    med_patch = float(np.median([s["patch_s"] for s in steps]))
    med_full = float(np.median([s["recompile_s"] for s in steps]))
    speedup = med_full / med_patch if med_patch > 0 else None
    result = {
        "bench": "dynamic_geometry",
        "config": {
            "kernel": args.kernel, "n": args.n, "order": args.order,
            "q": args.q, "precision": args.precision,
            "distribution": args.distribution, "steps": args.steps,
            "perturb": args.perturb, "moved_frac": args.moved_frac,
            "seed": args.seed, "p": args.p,
        },
        "initial_compile_s": compile0_s,
        "median_patch_s": med_patch,
        "median_recompile_s": med_full,
        "median_speedup": speedup,
        "bit_identical": all_bit,
        "dist_bit_identical": dist_bit,
        "steps": steps,
    }
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2)
    print(f"median: patch {med_patch:.3f}s vs recompile {med_full:.3f}s "
          f"-> {speedup:.1f}x; bit-identical={all_bit} -> {args.out}")
    if args.gate:
        ok = all_bit and med_patch < 0.5 * med_full
        if not ok:
            print("GATE FAILED: need bit-identity and patch < 0.5x recompile")
            return 1
        print("gate passed: bit-identical and patch < 0.5x recompile")
    return 0


def _cmd_trace(args) -> int:
    from repro.datasets import make_distribution
    from repro.dist.driver import distributed_fmm_rank
    from repro.mpi import KRAKEN, LINCOLN, LOCAL, run_spmd
    from repro.perf.commviz import render_matrix, render_phase_summary, phase_matrices
    from repro.perf.trace import TraceRecorder

    machine = {"kraken": KRAKEN, "lincoln": LINCOLN, "local": LOCAL}[args.machine]
    points = make_distribution(args.distribution, args.n, seed=args.seed)

    from repro import get_kernel

    ks = get_kernel(args.kernel).source_dim

    def density(pts):
        base = np.sin(17.0 * pts[:, 0]) + pts[:, 2] * np.cos(11.0 * pts[:, 1])
        return np.tile(base[:, None], (1, ks)).reshape(-1)

    recorder = TraceRecorder()
    result = run_spmd(
        args.p,
        distributed_fmm_rank,
        points,
        density,
        machine=machine,
        trace=recorder,
        kernel=args.kernel,
        order=args.order,
        max_points_per_box=args.q,
        comm_scheme=args.scheme,
    )
    # ledger/trace consistency is an invariant worth asserting on every run
    ledger = {c.rank: c.messages_sent for c in result.comms}
    traced = recorder.per_rank_send_counts()
    for r in range(args.p):
        if ledger.get(r, 0) != traced.get(r, 0):
            print(f"WARNING: rank {r} ledger={ledger.get(r)} trace={traced.get(r)}")
    print(render_phase_summary(recorder, machine, args.p))
    if args.matrices:
        for ph, cm in phase_matrices(recorder, args.p).items():
            if args.phase and ph != args.phase:
                continue
            print()
            print(render_matrix(cm))
    if args.out:
        n = recorder.write_jsonl(args.out)
        print(f"\ntrace: {n} events -> {args.out}")
    return 0


def _cmd_tune_q_sweep(args) -> int:
    """Legacy one-knob sweep: points-per-box for a CPU or modelled GPU."""
    from repro.core.autotune import autotune_points_per_box
    from repro.datasets import make_distribution

    n = args.n if args.n is not None else 20_000
    points = make_distribution(args.distribution, n, seed=args.seed)
    res = autotune_points_per_box(
        points,
        kernel=args.kernel,
        order=args.order,
        target=args.target,
        sample=args.sample,
    )
    print(f"best q for {args.target}: {res.best_q}  (metric: {res.metric})")
    for q, cost in res.ranked():
        marker = " <-- best" if q == res.best_q else ""
        print(f"  q={q:5d}: {cost:.4f}s{marker}")
    return 0


def _tune_grid_from_args(args, n):
    from repro.tune.search import default_grid

    orders = tuple(int(x) for x in args.orders.split(","))
    leafs = tuple(int(x) for x in args.leaf_sizes.split(","))
    precs = tuple(p.strip() for p in args.precisions.split(","))
    shapes = tuple(
        (int(b), float(w))
        for b, w in (s.split(":") for s in args.batch_shapes.split(","))
    )
    threads_opts = (
        tuple(int(x) for x in args.threads.split(","))
        if getattr(args, "threads", None) else None
    )
    return default_grid(n, orders=orders, leaf_sizes=leafs,
                        precisions=precs, batch_shapes=shapes,
                        threads_opts=threads_opts)


def _write_bench_json(path, key, payload) -> None:
    import json
    from pathlib import Path

    out = Path(path)
    data = {}
    if out.exists():
        try:
            data = json.loads(out.read_text())
        except (ValueError, OSError):
            data = {}
    data[key] = payload
    out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out}")


def _cmd_tune(args) -> int:
    """SLO-driven config search (default), CI gate, or acceptance bench.

    Default mode runs one budgeted search
    (:func:`repro.tune.search.tune`) on a synthetic distribution and
    prints/persists the chosen config.  ``--gate`` is CI's tiny-N smoke:
    it additionally measures the *whole* grid exhaustively and asserts
    the search landed within ``--gate-factor`` of the best measured grid
    point while probing at most ``--budget-frac`` of it, and that a
    same-seed replay picks the same config.  ``--bench`` runs the full
    acceptance: two (distribution, kernel) pairs plus the workload-shift
    re-tune drill (see :func:`_tune_shift_drill`); results land in
    ``BENCH_autotune.json``.
    """
    if args.q_sweep:
        return _cmd_tune_q_sweep(args)
    from repro.datasets import make_distribution
    from repro.tune.search import SLO, measure_grid, tune
    from repro.tune.store import TuneStore, geometry_fingerprint

    if args.bench:
        return _cmd_tune_bench(args)

    n = args.n if args.n is not None else (4_000 if args.gate else 20_000)
    latency_ms = (
        args.latency_ms if args.latency_ms is not None
        else (500.0 if args.gate else 250.0)
    )
    slo = SLO(latency_s=latency_ms / 1e3, percentile=args.percentile,
              precision_rtol=args.rtol)
    if args.gate and args.leaf_sizes == "64,144,400":
        args.leaf_sizes = "64,144"  # tiny-N gate: 8-config grid
    points = make_distribution(args.distribution, n, seed=args.seed)
    grid = _tune_grid_from_args(args, n)

    print(f"tune: N={n} {args.distribution} {args.kernel} "
          f"SLO {slo.key()} grid {len(grid)} configs "
          f"budget {args.budget_frac:.0%}")
    t0 = time.perf_counter()
    report = tune(
        points, kernel=args.kernel, slo=slo, grid=grid, seed=args.seed,
        budget_frac=args.budget_frac, sample=args.sample,
        measure=not args.no_measure, log=print,
    )
    wall = time.perf_counter() - t0
    cfg = report.config
    print(f"chosen: {cfg.key()}  (order={cfg.order} q={cfg.max_points} "
          f"{cfg.precision} batch={cfg.max_batch} "
          f"wait={cfg.max_wait_ms:g}ms)")
    print(f"  SLO {'met' if report.met_slo else 'MISSED'}; probed "
          f"{report.n_probed}/{report.grid_size} "
          f"({report.probe_fraction:.0%}) in {wall:.1f}s")

    if args.store:
        store = TuneStore(args.store)
        key = store.put(
            geometry_fingerprint(points), args.kernel, slo, cfg,
            report=report.to_dict(),
        )
        print(f"stored under {key} in {args.store}")

    if not args.gate:
        if args.out:
            _write_bench_json(args.out, "tune", {
                "config_cli": {
                    "n": n, "distribution": args.distribution,
                    "kernel": args.kernel, "seed": args.seed,
                },
                "wall_s": wall,
                "report": report.to_dict(),
            })
        return 0

    # -- gate: deterministic replay + exhaustive-grid reference ----------
    report2 = tune(
        points, kernel=args.kernel, slo=slo, grid=grid, seed=args.seed,
        budget_frac=args.budget_frac, sample=args.sample,
        measure=not args.no_measure,
    )
    deterministic = report2.config == cfg
    print(f"replay (same seed): {report2.config.key()} "
          f"{'== chosen' if deterministic else '!= chosen (NONDETERMINISTIC)'}")
    print(f"exhaustive reference: measuring all {len(grid)} configs ...")
    exhaustive = measure_grid(points, kernel=args.kernel, grid=grid,
                              seed=args.seed, reps=3, log=print)
    per_req = {c: t / max(c.max_batch, 1) for c, t in exhaustive.items()}
    best_cfg = min(per_req, key=per_req.get)
    ratio = per_req[cfg] / per_req[best_cfg]
    checks = [
        (f"tuned {per_req[cfg] * 1e3:.2f} ms/req within "
         f"{args.gate_factor:g}x best grid point "
         f"{per_req[best_cfg] * 1e3:.2f} ms/req ({best_cfg.key()}): "
         f"ratio {ratio:.3f}", ratio <= args.gate_factor),
        ("same-seed replay picks the same config", deterministic),
        (f"probed {report.probe_fraction:.0%} <= "
         f"{args.budget_frac:.0%} of the grid",
         report.n_probed <= max(1, int(np.ceil(
             args.budget_frac * len(grid))))),
        ("accuracy floor honoured (met_slo implies feasible cell)",
         not report.met_slo or report.feasible > 0),
    ]
    ok = True
    for label, passed in checks:
        print(f"  [{'PASS' if passed else 'FAIL'}] {label}")
        ok = ok and passed
    _write_bench_json(args.out or "BENCH_autotune.json", "gate", {
        "config_cli": {"n": n, "distribution": args.distribution,
                       "kernel": args.kernel, "seed": args.seed},
        "report": report.to_dict(),
        "deterministic_replay": deterministic,
        "exhaustive_per_request_s": {
            c.key(): per_req[c] for c in grid
        },
        "best_grid_config": best_cfg.key(),
        "tuned_over_best_ratio": ratio,
        "passed": ok,
    })
    return 0 if ok else 1


def _cmd_tune_bench(args) -> int:
    """Acceptance bench: tuned vs exhaustive on two (distribution, kernel)
    pairs, plus the online workload-shift re-tune drill."""
    from repro.datasets import make_distribution
    from repro.tune.search import SLO, measure_grid, tune

    n = args.n if args.n is not None else 20_000
    pairs = [("uniform", "laplace"), ("ellipsoid", "yukawa")]
    checks, results = [], {}
    for dist, kern in pairs:
        latency_ms = args.latency_ms if args.latency_ms is not None else 2_000.0
        slo = SLO(latency_s=latency_ms / 1e3, percentile=args.percentile,
                  precision_rtol=args.rtol)
        points = make_distribution(dist, n, seed=args.seed)
        grid = _tune_grid_from_args(args, n)
        print(f"\n=== pair ({dist}, {kern}): N={n}, grid {len(grid)}, "
              f"SLO {slo.key()} ===")
        t0 = time.perf_counter()
        report = tune(points, kernel=kern, slo=slo, grid=grid,
                      seed=args.seed, budget_frac=args.budget_frac,
                      sample=args.sample, log=print)
        tune_s = time.perf_counter() - t0
        print(f"exhaustive reference: measuring all {len(grid)} configs ...")
        exhaustive = measure_grid(points, kernel=kern, grid=grid,
                                  seed=args.seed, reps=2, log=print)
        per_req = {c: t / max(c.max_batch, 1) for c, t in exhaustive.items()}
        best_cfg = min(per_req, key=per_req.get)
        ratio = per_req[report.config] / per_req[best_cfg]
        key = f"{dist}/{kern}"
        results[key] = {
            "n": n,
            "tune_wall_s": tune_s,
            "report": report.to_dict(),
            "exhaustive_per_request_s": {
                c.key(): per_req[c] for c in grid
            },
            "best_grid_config": best_cfg.key(),
            "tuned_over_best_ratio": ratio,
        }
        checks += [
            (f"{key}: tuned config meets SLO", report.met_slo),
            (f"{key}: tuned within 1.1x best grid point "
             f"(ratio {ratio:.3f})", ratio <= 1.1),
            (f"{key}: probed {report.probe_fraction:.0%} <= 25% of grid",
             report.probe_fraction <= 0.25 + 1e-9),
        ]

    drill, drill_checks = _tune_shift_drill(args)
    checks += drill_checks

    ok = True
    print()
    for label, passed in checks:
        print(f"  [{'PASS' if passed else 'FAIL'}] {label}")
        ok = ok and passed
    _write_bench_json(args.out or "BENCH_autotune.json", "autotune", {
        "config_cli": {"n": n, "seed": args.seed,
                       "budget_frac": args.budget_frac},
        "pairs": results,
        "shift_drill": drill,
        "passed": ok,
    })
    return 0 if ok else 1


def _tune_shift_drill(args):
    """Induced workload shift -> exactly one online re-tune -> SLO back.

    Registers an autotuned model on a uniform cube (the tuner picks a
    mid-size leaf there), serves a window of requests, then swaps the
    geometry to an ellipsoid *surface* — a distribution whose U-list
    blows up at the uniform-tuned leaf size, so served latency drifts
    past the SLO band.  The monitor (polled manually for determinism)
    must fire exactly one bounded re-tune that swaps in a config meeting
    the SLO again, and answers must stay bit-identical per active config
    version.  The drill SLO is placed adaptively between the measured
    re-tuned and mis-tuned costs so the pass bands don't depend on the
    host machine's absolute speed.
    """
    from repro import Fmm
    from repro.datasets import make_distribution
    from repro.serve import ServeEngine
    from repro.tune.monitor import SloMonitor
    from repro.tune.search import SLO, default_grid, measure_grid, tune

    n, seed, kern = args.drill_n, args.seed, "laplace"
    rtol = 1e-3
    grid = default_grid(n, orders=(4,), leaf_sizes=(64, 144, 400),
                        precisions=("fp64", "fp32"),
                        batch_shapes=((8, 2.0),))
    pts_a = make_distribution("uniform", n, seed=seed)
    pts_b = make_distribution("ellipsoid", n, seed=seed)
    print(f"\n=== workload-shift drill: N={n} uniform -> ellipsoid ===")

    # offline reference optima on both distributions (same grid + seed
    # the engine will use), to place the drill SLO between the re-tuned
    # and mis-tuned latencies with machine-independent margins
    loose = SLO(latency_s=60.0, precision_rtol=rtol)
    cfg_a = tune(pts_a, kernel=kern, slo=loose, grid=grid,
                 seed=seed).config
    cfg_b = tune(pts_b, kernel=kern, slo=loose, grid=grid,
                 seed=seed).config
    m_a = measure_grid(pts_a, kernel=kern, grid=[cfg_a], seed=seed,
                       reps=2)[cfg_a]
    meas_b = measure_grid(pts_b, kernel=kern, grid=[cfg_a, cfg_b],
                          seed=seed, reps=2)
    m_mis, m_b = meas_b[cfg_a], meas_b[cfg_b]
    print(f"offline: tuned A {cfg_a.key()} ({m_a * 1e3:.0f} ms), "
          f"tuned B {cfg_b.key()} ({m_b * 1e3:.0f} ms), "
          f"A-config on B {m_mis * 1e3:.0f} ms "
          f"({m_mis / max(m_b, 1e-9):.2f}x worse)")
    band = 1.25
    lo = 1.15 * max(m_a, m_b)
    hi = m_mis / band / 1.1
    if not (cfg_a != cfg_b and lo < hi):
        drill = {"feasible": False, "cfg_a": cfg_a.key(),
                 "cfg_b": cfg_b.key(), "m_a_s": m_a, "m_b_s": m_b,
                 "m_mis_s": m_mis}
        return drill, [("shift drill feasible (distinct optima with a "
                        "latency gap)", False)]
    latency_s = float(np.sqrt(lo * hi))
    slo = SLO(latency_s=latency_s, precision_rtol=rtol,
              drift_band=band, min_window=8)
    print(f"drill SLO: {latency_s * 1e3:.0f} ms at p95 "
          f"(drift above {latency_s * band * 1e3:.0f} ms)")

    engine = ServeEngine(n_workers=1)
    template = Fmm(kern)
    engine.register("drill", template, pts_a, slo=slo, tune_grid=grid,
                    tune_seed=seed)
    model = engine._model("drill")
    v0 = model.tuned
    monitor = SloMonitor(
        engine.metrics, "drill", slo,
        retune=lambda m, p: engine.retune(m, observed_s=p),
        sustain=2, cooldown_s=60.0,
    )
    rng = np.random.default_rng(seed)
    probe = rng.standard_normal(model.expected)

    def drive(k):
        # submit full batches so served latencies match the batch-wide
        # measure_grid numbers the SLO band was placed from
        for _ in range(k):
            width = max(1, engine._model("drill").tuned.max_batch)
            reqs = [engine.submit("drill", probe) for _ in range(width)]
            for r in reqs:
                r.result(timeout=120.0)

    drill = {"feasible": True, "slo": slo.to_dict(),
             "cfg_a": cfg_a.key(), "cfg_b": cfg_b.key(),
             "m_a_s": m_a, "m_b_s": m_b, "m_mis_s": m_mis}
    with engine:
        drive(2 * slo.min_window)
        pre_fired = any(monitor.poll() for _ in range(3))
        drill["p95_baseline_s"] = engine.metrics.window_quantile(
            "drill", 95.0)
        bit_v0 = np.array_equal(
            engine.evaluate("drill", probe), engine.evaluate("drill", probe)
        )
        engine.update_geometry("drill", pts_b)
        drive(slo.min_window + 2)
        drill["p95_shifted_s"] = engine.metrics.window_quantile(
            "drill", 95.0)
        fired = sum(monitor.poll() for _ in range(4))
        drill["retunes"] = monitor.retunes
        v1 = engine._model("drill").tuned
        drill["retuned_config"] = v1.key()
        drive(slo.min_window + 2)
        drill["p95_restored_s"] = engine.metrics.window_quantile(
            "drill", 95.0)
        refired = any(monitor.poll() for _ in range(3))
        bit_v1 = np.array_equal(
            engine.evaluate("drill", probe), engine.evaluate("drill", probe)
        )
    drill["bit_identical_v0"] = bool(bit_v0)
    drill["bit_identical_v1"] = bool(bit_v1)
    print(f"drill: baseline p95 {drill['p95_baseline_s'] * 1e3:.0f} ms, "
          f"shifted {drill['p95_shifted_s'] * 1e3:.0f} ms, "
          f"restored {drill['p95_restored_s'] * 1e3:.0f} ms "
          f"({v0.key()} -> {v1.key()}, {monitor.retunes} retune)")
    checks = [
        ("drill: baseline meets SLO, no spurious retune",
         not pre_fired
         and drill["p95_baseline_s"] <= slo.latency_s),
        ("drill: shift drifts past the band and fires exactly one retune",
         fired == 1 and monitor.retunes == 1 and not refired),
        ("drill: retune swaps the config",
         v1 != v0),
        ("drill: post-retune p95 back inside the SLO",
         drill["p95_restored_s"] is not None
         and drill["p95_restored_s"] <= slo.latency_s),
        ("drill: answers bit-identical per active config version",
         bit_v0 and bit_v1),
    ]
    return drill, checks


def _cmd_chaos(args) -> int:
    """Fault-matrix smoke: each fault class either recovers bit-identically
    (retry / checkpoint resume / CPU fallback) or fails with a typed error
    before the deadline — never a hang — and seeded plans replay exactly."""
    from repro.datasets import make_distribution
    from repro.dist.driver import DistributedFmm
    from repro.mpi import SpmdError, run_spmd_resilient
    from repro.mpi.faults import (
        Fault,
        FaultPlan,
        RetryPolicy,
        TRANSIENT_ERRORS,
    )

    p = args.p
    points = make_distribution("ellipsoid", args.n, seed=args.seed)

    def body(comm, state, use_gpu=False):
        if "fmm" not in state:
            fmm = DistributedFmm(
                order=args.order, max_points_per_box=args.q, use_gpu=use_gpu
            )
            fmm.setup(comm, points[comm.rank :: comm.size])
            state["fmm"] = fmm
            pts = fmm.owned_points
            state["dens"] = np.sin(17.0 * pts[:, 0]) + pts[:, 2] * np.cos(
                11.0 * pts[:, 1]
            )
        else:
            fmm = state["fmm"]
            fmm.rebind(comm)
        return fmm.evaluate(state["dens"], resume=True)

    def run(plan=None, use_gpu=False, timeout=None, trace=False):
        return run_spmd_resilient(
            p,
            body,
            policy=RetryPolicy(max_attempts=3),
            faults=plan,
            rank_state=True,
            integrity=True,
            timeout=timeout if timeout is not None else args.timeout,
            trace=trace,
            use_gpu=use_gpu,
        )

    t_start = time.perf_counter()
    base = run()
    print(f"baseline: p={p} n={args.n} ok ({time.perf_counter() - t_start:.1f}s)")

    def identical(res) -> bool:
        return all(
            np.array_equal(res.values[r], base.values[r]) for r in range(p)
        )

    s = args.seed
    plans = {
        "crash": FaultPlan(
            [Fault("crash", rank=(1 + s) % p, op="phase", phase="VLI", attempts=1)],
            seed=s,
        ),
        "straggle": FaultPlan(
            [Fault("straggle", rank=(2 + s) % p, op="phase", phase="S2U",
                   seconds=5.0)],
            seed=s,
        ),
        "drop": FaultPlan(
            [Fault("drop", rank=s % p, op="send", index=5, attempts=1)], seed=s
        ),
        "duplicate": FaultPlan(
            [Fault("duplicate", rank=s % p, op="send", index=5, attempts=1)],
            seed=s,
        ),
        "bitflip": FaultPlan(
            [Fault("bitflip", rank=(3 + s) % p, op="send", index=4,
                   bit=97 + s, attempts=1)],
            seed=s,
        ),
        "gpu": FaultPlan(
            [Fault("gpu", rank=r, op="launch", phase="*") for r in range(p)],
            seed=s,
        ),
    }

    failures = 0
    rows = []
    for kind, plan in plans.items():
        t0 = time.perf_counter()
        # a dropped delivery usually wedges a collective until the deadline
        # (no later traffic exposes the sequence gap), so give that class a
        # short per-attempt timeout: the retry converges either way
        timeout = min(args.timeout, 20.0) if kind == "drop" else None
        try:
            res = run(plan=plan, use_gpu=(kind == "gpu"), timeout=timeout,
                      trace=bool(args.out) and kind == "crash")
        except TRANSIENT_ERRORS + (SpmdError,) as exc:
            cause = exc.__cause__ if exc.__cause__ is not None else exc
            if isinstance(cause, TRANSIENT_ERRORS):
                rows.append((kind, f"typed {type(cause).__name__} "
                                   f"({time.perf_counter() - t0:.1f}s)", True))
            else:
                rows.append((kind, f"FAIL untyped {cause!r}", False))
                failures += 1
            continue
        ok = identical(res)
        n_inj = len(res.fault_events)
        rows.append(
            (kind,
             f"{'bit-identical' if ok else 'FAIL result mismatch'} "
             f"(attempts={res.attempts}, injections={n_inj}, "
             f"{time.perf_counter() - t0:.1f}s)",
             ok),
        )
        if not ok:
            failures += 1
        if args.out and kind == "crash" and res.trace is not None:
            n = res.trace.write_jsonl(args.out)
            print(f"crash-class trace: {n} events -> {args.out}")

    # seeded determinism: identical plans replay identical event sequences
    # (crash class) and identical completed-run traces (straggle class)
    e1 = run(plan=plans["crash"]).fault_events
    e2 = run(plan=plans["crash"]).fault_events
    det_events = e1 == e2
    t1 = run(plan=plans["straggle"], trace=True).trace.signature()
    t2 = run(plan=plans["straggle"], trace=True).trace.signature()
    det_trace = t1 == t2
    rows.append(("determinism",
                 f"events {'replay' if det_events else 'DIVERGE'}, "
                 f"trace signature {'replay' if det_trace else 'DIVERGE'}",
                 det_events and det_trace))
    if not (det_events and det_trace):
        failures += 1

    width = max(len(k) for k, _, _ in rows)
    for kind, msg, ok in rows:
        print(f"  {kind:{width}s}  {'PASS' if ok else 'FAIL'}  {msg}")
    print(
        f"chaos matrix: {len(rows) - failures}/{len(rows)} passed "
        f"({time.perf_counter() - t_start:.1f}s)"
    )
    return 1 if failures else 0


#: `serve` flag defaults; the distributed plane runs whole SPMD FMM
#: evaluations per request, so its defaults are one notch smaller.
_SERVE_DEFAULTS = {"n": 8_000, "order": 6, "q": 400, "duration": 5.0,
                   "clients": 8}
_DIST_SERVE_DEFAULTS = {"n": 2_000, "order": 4, "q": 64, "duration": 4.0,
                        "clients": 6}


def _cmd_serve_dist(args) -> int:
    """Distributed serving bench: router + rank-sharded/replicated models.

    Registers one rank-sharded model (with a fallback replica, on the
    simulated GPU so device faults are exercised) and one replicated
    model, runs closed-loop load twice — clean, then under a seeded
    fault plan covering crash / wait-crash / straggler / in-flight
    corruption / GPU device fault — and gates (``--bench``):

    * zero untyped errors in both runs (faults surface only as typed
      rejections or recovered answers),
    * a probe request evaluated under a fresh crash plan returns the
      **bit-identical** answer of the fault-free reference,
    * chaos p99 stays within a bounded factor of the clean p99 (recovery
      costs retries, not meltdowns).

    Writes both summaries plus the fabric-wide merged metrics snapshot
    to ``BENCH_dist_serving.json``.
    """
    import json
    from pathlib import Path

    from repro.datasets import make_distribution
    from repro.mpi.faults import Fault, FaultPlan, RetryPolicy
    from repro.serve.dist_engine import DistServeEngine
    from repro.serve.loadgen import run_load
    from repro.serve.metrics import ServeMetrics
    from repro.serve.router import Router

    p = args.shards
    engine = DistServeEngine(
        nranks=p,
        retry=RetryPolicy(max_attempts=3, backoff=0.05, seed=args.seed),
        integrity=True,
        run_timeout_s=args.timeout,
        threads=args.threads,
    )
    print(
        f"registering 3 models on {p} ranks: N={args.n} {args.kernel} "
        f"order={args.order} box={args.q} (m0 sharded+fallback, "
        f"m1 replicated x{args.replicas}, g0 sharded on gpu) ..."
    )
    pts0 = make_distribution(args.distribution, args.n, seed=args.seed)
    engine.register(
        "m0", pts0, placement="sharded", fallback_replica=True,
        kernel=args.kernel, order=args.order, max_points_per_box=args.q,
    )
    pts1 = make_distribution(args.distribution, args.n, seed=args.seed + 1)
    engine.register(
        "m1", pts1, placement="replicated", replicas=args.replicas,
        kernel=args.kernel, order=args.order, max_points_per_box=args.q,
    )
    # g0 shares m0's geometry and parameters but runs on the simulated
    # GPU: the device-fault drill degrades it to the CPU path, which
    # must then match m0's (CPU) answer bitwise (the PR 2 contract)
    engine.register(
        "g0", pts0, placement="sharded",
        kernel=args.kernel, order=args.order, max_points_per_box=args.q,
        use_gpu=True,
    )
    names = ["m0", "m1"]

    rng = np.random.default_rng(args.seed)
    probes = {m: rng.standard_normal(engine._model(m).expected)
              for m in names}
    refs = {m: engine.evaluate(m, probes[m]) for m in names}

    def drive(label):
        with Router(engine, n_dispatchers=args.dispatchers,
                    max_queue=args.max_queue) as router:
            print(
                f"{label} load: {args.clients} closed-loop clients for "
                f"{args.duration:.0f}s ..."
            )
            summary = run_load(
                router, names,
                duration_s=args.duration, clients=args.clients,
                timeout_s=args.timeout, seed=args.seed,
            )
        return summary

    clean = drive("clean")

    # the chaos drill: one representative of every fault class the plane
    # must absorb, spread over the rank space, each with a bounded budget
    faults = FaultPlan(
        [
            Fault("crash", rank=1 % p, op="phase", phase="D2T", attempts=1),
            Fault("crash", rank=0, op="wait", attempts=1),
            Fault("bitflip", rank=(p - 1) % p, op="send", index=3,
                  attempts=1),
            Fault("straggle", rank=2 % p, op="phase", phase="S2U",
                  seconds=1.0, sleep=True, attempts=1),
        ],
        seed=args.seed,
    )
    engine.set_faults(faults)
    chaos = drive("chaos")
    engine.set_faults(None)

    # bit-identity probe: a fresh crash plan against a single request —
    # the recovered answer must equal the fault-free reference bitwise
    engine.set_faults(FaultPlan(
        [Fault("crash", rank=0, op="phase", phase="D2T", attempts=1)],
        seed=args.seed,
    ))
    probe_ok = all(
        np.array_equal(engine.evaluate(m, probes[m]), refs[m])
        for m in names
    )
    engine.set_faults(None)

    # GPU drill: device faults on every rank of g0's group at the first
    # accelerated phase degrade the whole evaluation to the CPU path —
    # which must match m0's (same geometry, CPU) answer bit-for-bit
    engine.set_faults(FaultPlan(
        [Fault("gpu", rank=r, op="launch", phase="*", attempts=1)
         for r in range(p)],
        seed=args.seed,
    ))
    gpu_ok = np.array_equal(
        engine.evaluate("g0", probes["m0"]), refs["m0"]
    )
    engine.set_faults(None)

    fabric = {
        "rank_metrics": ServeMetrics.merge(engine.rank_metrics),
        "health": engine.health.snapshot(),
        "breakers": engine.breaker_snapshot(),
        "suspect_ranks": engine.health.suspect_ranks(),
    }

    def report(label, s):
        lg = s["loadgen"]
        print(
            f"{label}: {lg['ok']} ok, {lg['overloaded']} overloaded, "
            f"{lg['deadline']} deadline, {lg['shard_unavailable']} "
            f"shard-unavailable, {lg['errors']} untyped errors "
            f"({s.get('throughput_rps', 0.0):.1f} req/s); "
            f"retries {s['retried']}"
        )
        for m in names:
            mm = s["models"].get(m)
            if mm and mm["completed"]:
                lat = mm["latency_s"]
                print(
                    f"  {m}: {mm['completed']} done, {mm['failed']} failed "
                    f"| latency p50 {lat['p50'] * 1e3:.0f} "
                    f"p95 {lat['p95'] * 1e3:.0f} p99 {lat['p99'] * 1e3:.0f} ms"
                )

    report("clean", clean)
    report("chaos", chaos)
    retried_by_cause = fabric["rank_metrics"]["retried_by_cause"]
    print(f"fabric retries by cause: {retried_by_cause or '{}'}")
    print(f"breakers: { {k: v['state'] for k, v in fabric['breakers'].items()} }")
    print(f"bit-identity probe under crash plan: "
          f"{'PASS' if probe_ok else 'FAIL'}")
    print(f"gpu device fault -> bit-identical CPU degrade: "
          f"{'PASS' if gpu_ok else 'FAIL'}")

    out = Path(args.out) if args.out else Path("BENCH_dist_serving.json")
    data = {}
    if out.exists():
        try:
            data = json.loads(out.read_text())
        except (ValueError, OSError):
            data = {}
    data["dist_serving"] = {
        "config": {
            "n": args.n, "order": args.order, "q": args.q,
            "kernel": args.kernel, "shards": p,
            "replicas": args.replicas, "dispatchers": args.dispatchers,
            "clients": args.clients, "duration_s": args.duration,
            "timeout_s": args.timeout, "seed": args.seed,
            "chaos_factor": args.chaos_factor,
        },
        "clean": clean,
        "chaos": chaos,
        "fabric": fabric,
        "probe_bit_identical": probe_ok,
        "gpu_degrade_bit_identical": gpu_ok,
    }
    out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out}")

    if args.bench:
        clean_p99s = [clean["models"][m]["latency_s"]["p99"] for m in names
                      if clean["models"].get(m, {}).get("completed")]
        chaos_p99s = [chaos["models"][m]["latency_s"]["p99"] for m in names
                      if chaos["models"].get(m, {}).get("completed")]
        clean_p99 = max(clean_p99s) if clean_p99s else float("inf")
        chaos_p99 = max(chaos_p99s) if chaos_p99s else float("inf")
        # recovery costs bounded retries (backoff + re-evaluation + the
        # injected straggle), never a meltdown: the chaos p99 must stay
        # within --chaos-factor of clean (with a small absolute floor so
        # tiny clean p99s don't make the gate spuriously tight)
        p99_bound = max(args.chaos_factor * clean_p99, 3.0)
        checks = [
            ("clean: 0 failed requests",
             clean["failed"] == 0 and clean["loadgen"]["errors"] == 0),
            ("clean: every model completed requests",
             len(clean_p99s) == len(names)),
            ("chaos: 0 untyped errors (typed-only contract)",
             chaos["loadgen"]["errors"] == 0),
            ("chaos: requests still complete", chaos["completed"] > 0),
            ("chaos: faults actually injected + retried",
             sum(retried_by_cause.values()) > 0),
            ("probe under crash plan is bit-identical", probe_ok),
            ("gpu device fault degrades to the bit-identical CPU path",
             gpu_ok),
            (f"chaos p99 {chaos_p99:.2f}s within bound {p99_bound:.2f}s",
             chaos_p99 < p99_bound),
        ]
        ok = True
        for label, passed in checks:
            print(f"  [{'PASS' if passed else 'FAIL'}] {label}")
            ok = ok and passed
        return 0 if ok else 1
    return 0


def _cmd_serve(args) -> int:
    """Serving smoke/bench: register models, run closed-loop load, report.

    With ``--bench`` the run is gated (CI's serving-smoke step): every
    accepted request must complete (0 failed), p99 latency must beat the
    request timeout, and the mean batch size must exceed 1 (batching
    actually engaged); the metrics snapshot lands under the ``serving``
    key of ``BENCH_serving.json``.

    With ``--dist`` the distributed serving plane runs instead: a router
    in front of rank-sharded / replicated models (see
    :func:`_cmd_serve_dist`).
    """
    defaults = _DIST_SERVE_DEFAULTS if args.dist else _SERVE_DEFAULTS
    for key, val in defaults.items():
        if getattr(args, key) is None:
            setattr(args, key, val)
    if args.dist:
        return _cmd_serve_dist(args)

    import json
    from pathlib import Path

    from repro import Fmm
    from repro.datasets import make_distribution
    from repro.serve import ServeEngine
    from repro.serve.loadgen import run_load

    faults = None
    retry = None
    if args.chaos:
        from repro.mpi.faults import Fault, FaultPlan, RetryPolicy

        # one phase-crash per worker early in the run: every accepted
        # request must still complete bit-identically via retry
        faults = FaultPlan(
            [Fault("crash", rank=r, op="phase", phase="S2U", attempts=1)
             for r in range(args.workers)],
            seed=args.seed,
        )
        retry = RetryPolicy(max_attempts=3)

    engine = ServeEngine(
        n_workers=args.workers,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        faults=faults,
        retry=retry,
        matrix_budget=args.matrix_budget_mb * 2**20,
        threads=args.threads,
    )
    print(
        f"registering {args.models} model(s): N={args.n} {args.kernel} "
        f"order={args.order} box={args.q} (tree + warm plan) ..."
    )
    slo = store = None
    if args.autotune:
        from repro.tune.search import SLO
        from repro.tune.store import TuneStore

        slo = SLO(latency_s=args.slo_ms / 1e3, precision_rtol=1e-3)
        store = TuneStore(args.store) if args.store else None
    names = []
    for i in range(args.models):
        name = f"m{i}"
        pts = make_distribution(args.distribution, args.n, seed=args.seed + i)
        fmm = Fmm(args.kernel, order=args.order, max_points_per_box=args.q)
        if slo is not None:
            engine.register(name, fmm, pts, warm=True, slo=slo, store=store)
            engine.start_monitor(name)
            tuned = engine._model(name).tuned
            print(f"  {name}: autotuned {tuned.key()} "
                  f"against SLO {slo.key()}")
        else:
            engine.register(name, fmm, pts, warm=True,
                            precision=args.precision)
        names.append(name)

    with engine:
        print(
            f"load: {args.clients} closed-loop clients for "
            f"{args.duration:.0f}s (timeout {args.timeout:.0f}s/request)"
        )
        summary = run_load(
            engine,
            names,
            duration_s=args.duration,
            clients=args.clients,
            timeout_s=args.timeout,
            seed=args.seed,
        )
    summary["config"] = {
        "n": args.n, "order": args.order, "q": args.q,
        "kernel": args.kernel, "models": args.models,
        "workers": args.workers, "clients": args.clients,
        "max_batch": args.max_batch, "max_wait_ms": args.max_wait_ms,
        "timeout_s": args.timeout, "chaos": bool(args.chaos),
        "matrix_budget_mb": args.matrix_budget_mb,
        "threads": args.threads,
        "precision": args.precision,
        "autotune": bool(args.autotune),
        "slo_ms": args.slo_ms if args.autotune else None,
    }
    # per-model served precision + cached plan bytes (dtype-honest)
    summary["plans"] = engine.plan_stats()
    for name, info in summary["plans"].items():
        if name in summary.get("models", {}):
            summary["models"][name]["precision"] = info["precision"]
    if args.chaos:
        summary["fault_injections"] = len(engine.fault_events)

    lg = summary["loadgen"]
    print(
        f"\nrequests: {lg['ok']} ok, {lg['overloaded']} overloaded, "
        f"{lg['errors']} errors in {lg['elapsed_s']:.1f}s "
        f"({summary['throughput_rps']:.1f} req/s)"
    )
    for name in names:
        m = summary["models"][name]
        lat = m["latency_s"]
        if m["completed"]:
            print(
                f"  {name}: {m['completed']} done, {m['failed']} failed | "
                f"latency p50 {lat['p50'] * 1e3:.0f} p95 {lat['p95'] * 1e3:.0f} "
                f"p99 {lat['p99'] * 1e3:.0f} ms | "
                f"batch mean {m['batch_size']['mean']:.2f}"
            )
        else:
            print(f"  {name}: 0 done, {m['failed']} failed")
    pc = summary["plan_cache"]
    print(
        f"plan cache: {pc['hits']} hits / {pc['misses']} misses "
        f"(hit rate {pc['hit_rate']:.3f}); retries {summary['retried']}, "
        f"rejected {summary['rejected']}, expired {summary['expired']}"
    )
    for name, info in summary["plans"].items():
        nb = sum(info["plan_bytes"].values())
        print(
            f"  {name}: precision {info['precision']}, "
            f"cached plan bytes {nb / 2**20:.1f} MiB "
            f"({', '.join(f'{p}={b / 2**20:.1f}' for p, b in info['plan_bytes'].items())})"
        )
    if args.chaos:
        print(f"chaos: {summary['fault_injections']} injected fault(s)")
    for err in lg["error_samples"]:
        print(f"  error: {err}")

    if args.out or args.bench:
        out = Path(args.out) if args.out else Path("BENCH_serving.json")
        data = {}
        if out.exists():
            try:
                data = json.loads(out.read_text())
            except (ValueError, OSError):
                data = {}
        data["serving"] = summary
        out.write_text(json.dumps(data, indent=2) + "\n")
        print(f"wrote {out}")

    if args.bench:
        failed_total = sum(
            summary["models"][m]["failed"] for m in names
        ) + lg["errors"]
        p99s = [summary["models"][m]["latency_s"]["p99"] for m in names
                if summary["models"][m]["completed"]]
        batch_means = [summary["models"][m]["batch_size"]["mean"]
                       for m in names if summary["models"][m]["completed"]]
        checks = [
            ("0 failed requests", failed_total == 0),
            ("every model completed requests", len(p99s) == len(names)),
            (f"p99 < timeout ({args.timeout:.0f}s)",
             bool(p99s) and max(p99s) < args.timeout),
            ("mean batch size > 1 (batching engaged)",
             bool(batch_means) and max(batch_means) > 1.0),
        ]
        ok = True
        for label, passed in checks:
            print(f"  [{'PASS' if passed else 'FAIL'}] {label}")
            ok = ok and passed
        return 0 if ok else 1
    return 0


def _cmd_info(args) -> int:
    import repro
    from repro.gpu.device import TESLA_S1070
    from repro.kernels import _REGISTRY
    from repro.mpi import KRAKEN, LINCOLN

    print(f"repro {repro.__version__} — SC'09 parallel adaptive KIFMM reproduction")
    print(f"kernels: {', '.join(sorted(_REGISTRY))}")
    for m in (KRAKEN, LINCOLN):
        print(
            f"machine {m.name}: {m.cpu_flops / 1e6:.0f} MFlop/s/core, "
            f"t_s={m.latency * 1e6:.0f}us, bw={m.bandwidth / 1e9:.1f} GB/s"
        )
    d = TESLA_S1070
    print(
        f"device {d.name}: {d.peak_flops / 1e9:.0f} GFlop/s, "
        f"{d.mem_bandwidth / 1e9:.0f} GB/s, PCIe {d.pcie_bandwidth / 1e9:.0f} GB/s"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel adaptive kernel-independent FMM (SC'09 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pe = sub.add_parser("evaluate", help="run an FMM evaluation")
    pe.add_argument("--kernel", default="laplace")
    pe.add_argument("--distribution", default="uniform",
                    choices=["uniform", "ellipsoid", "plummer",
                             "two_spheres", "filament"])
    pe.add_argument("--n", type=int, default=10_000)
    pe.add_argument("--order", type=int, default=6)
    pe.add_argument("--q", type=int, default=100,
                    help="max points per box")
    pe.add_argument("--seed", type=int, default=0)
    pe.add_argument("--check", type=int, nargs="?", const=200, default=0,
                    metavar="N_SAMPLES",
                    help="verify against direct summation on a sample")
    pe.add_argument("--trace", default=None, metavar="OUT_JSONL",
                    help="record phase span events to a JSONL trace file")
    pe.add_argument("--repeat", type=int, default=1, metavar="K",
                    help="apply K times on the fixed tree (amortised plan "
                         "path kicks in from the second call)")
    pe.add_argument("--no-plan", action="store_true",
                    help="disable EvalPlan compilation (legacy per-call path)")
    pe.add_argument("--precision", default="fp64",
                    choices=["fp64", "fp32", "auto"],
                    help="plan precision: fp64 (bit-identical baseline), "
                         "fp32 (float32 GEMM/FFT phases), or auto "
                         "(calibrated pick meeting the error target)")
    pe.add_argument("--steps", type=int, default=0, metavar="K",
                    help="dynamic-geometry mode: perturb a localized blob "
                         "of sources K times, patching the plan each step "
                         "and comparing against a full recompile "
                         "(writes BENCH_dynamic_geometry.json)")
    pe.add_argument("--perturb", type=float, default=0.01, metavar="EPS",
                    help="per-step displacement scale for --steps")
    pe.add_argument("--moved-frac", type=float, default=0.05,
                    help="fraction of points moved per --steps step")
    pe.add_argument("--p", type=int, default=0, metavar="RANKS",
                    help="with --steps: also verify a p-rank sharded "
                         "geometry update bit-identically (0 = skip)")
    pe.add_argument("--out", default="BENCH_dynamic_geometry.json",
                    help="result file for --steps mode")
    pe.add_argument("--gate", action="store_true",
                    help="with --steps: exit nonzero unless every step is "
                         "bit-identical and the median patch time beats "
                         "0.5x the median recompile time")
    pe.add_argument("--threads", type=int, default=None, metavar="T",
                    help="intra-rank parallelism: run plan phase tiles on "
                         "a T-thread pool (bit-identical to serial; "
                         "default: single-threaded)")
    pe.set_defaults(fn=_cmd_evaluate)

    pr = sub.add_parser(
        "trace",
        help="trace a distributed run: comm matrices + critical path",
    )
    pr.add_argument("--kernel", default="laplace")
    pr.add_argument("--distribution", default="ellipsoid",
                    choices=["uniform", "ellipsoid", "plummer",
                             "two_spheres", "filament"])
    pr.add_argument("--n", type=int, default=4_000)
    pr.add_argument("--p", type=int, default=4, help="virtual rank count")
    pr.add_argument("--order", type=int, default=4)
    pr.add_argument("--q", type=int, default=50, help="max points per box")
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--machine", default="kraken",
                    choices=["kraken", "lincoln", "local"])
    pr.add_argument("--scheme", default="hypercube",
                    choices=["hypercube", "owner"],
                    help="shared-density reduction scheme")
    pr.add_argument("--phase", default=None,
                    help="only print the matrix of this phase")
    pr.add_argument("--no-matrices", dest="matrices", action="store_false",
                    help="skip the per-phase matrix dump")
    pr.add_argument("--out", default=None, metavar="OUT_JSONL",
                    help="write the full event trace to a JSONL file")
    pr.set_defaults(fn=_cmd_trace)

    pt = sub.add_parser(
        "tune",
        help="SLO-driven config search (cost-model-guided); "
             "--q-sweep for the legacy points-per-box sweep",
    )
    pt.add_argument("--kernel", default="laplace")
    pt.add_argument("--distribution", default="uniform",
                    choices=["uniform", "ellipsoid", "plummer",
                             "two_spheres", "filament"])
    pt.add_argument("--n", type=int, default=None,
                    help="point count (default 20000; 4000 with --gate)")
    pt.add_argument("--seed", type=int, default=0)
    pt.add_argument("--sample", type=int, default=2_000,
                    help="subsample-probe size for calibration/accuracy")
    pt.add_argument("--latency-ms", type=float, default=None,
                    help="SLO latency target in ms (default 250; "
                         "500 with --gate, 2000 with --bench)")
    pt.add_argument("--percentile", type=float, default=95.0,
                    help="SLO latency percentile")
    pt.add_argument("--rtol", type=float, default=1e-3,
                    help="SLO accuracy floor (relative error)")
    pt.add_argument("--budget-frac", type=float, default=0.25,
                    help="fraction of the grid measured probes may touch")
    pt.add_argument("--orders", default="4,6",
                    help="comma list of expansion orders in the grid")
    pt.add_argument("--leaf-sizes", default="64,144,400",
                    help="comma list of max points-per-box in the grid")
    pt.add_argument("--precisions", default="fp64,fp32",
                    help="comma list of plan precisions in the grid")
    pt.add_argument("--batch-shapes", default="8:2",
                    help="comma list of max_batch:max_wait_ms pairs")
    pt.add_argument("--threads", default=None, metavar="T1,T2,...",
                    help="comma list of intra-rank thread counts in the "
                         "grid (default: auto from the host core count)")
    pt.add_argument("--store", default=None, metavar="PATH",
                    help="persist the chosen config in this TuneStore JSON")
    pt.add_argument("--no-measure", action="store_true",
                    help="cost-model-only selection (no measured probes; "
                         "fully deterministic)")
    pt.add_argument("--gate", action="store_true",
                    help="CI gate: assert tuned <= --gate-factor x the "
                         "best exhaustively measured grid point, "
                         "deterministic replay, probe budget respected; "
                         "writes BENCH_autotune.json")
    pt.add_argument("--gate-factor", type=float, default=1.05)
    pt.add_argument("--bench", action="store_true",
                    help="full acceptance: two (distribution, kernel) "
                         "pairs + the workload-shift re-tune drill; "
                         "writes BENCH_autotune.json")
    pt.add_argument("--drill-n", type=int, default=4_000,
                    help="point count of the --bench workload-shift drill")
    pt.add_argument("--out", default=None, metavar="OUT_JSON")
    pt.add_argument("--q-sweep", action="store_true",
                    help="legacy mode: sweep points-per-box only")
    pt.add_argument("--order", type=int, default=6,
                    help="expansion order (--q-sweep only)")
    pt.add_argument("--target", default="cpu", choices=["cpu", "gpu"],
                    help="architecture the --q-sweep tunes for")
    pt.set_defaults(fn=_cmd_tune)

    pc = sub.add_parser(
        "chaos",
        help="fault-injection matrix: typed failure or bit-identical recovery",
    )
    pc.add_argument("--seed", type=int, default=0,
                    help="fault-plan seed (same seed = same injections)")
    pc.add_argument("--p", type=int, default=8, help="virtual rank count")
    pc.add_argument("--n", type=int, default=1200)
    pc.add_argument("--order", type=int, default=4)
    pc.add_argument("--q", type=int, default=50, help="max points per box")
    pc.add_argument("--timeout", type=float, default=120.0,
                    help="per-attempt deadline in seconds")
    pc.add_argument("--out", default=None, metavar="OUT_JSONL",
                    help="write the crash-class recovery trace to JSONL")
    pc.set_defaults(fn=_cmd_chaos)

    ps = sub.add_parser(
        "serve",
        help="run the in-process evaluation service under closed-loop load",
    )
    ps.add_argument("--kernel", default="laplace")
    ps.add_argument("--distribution", default="uniform",
                    choices=["uniform", "ellipsoid", "plummer",
                             "two_spheres", "filament"])
    ps.add_argument("--n", type=int, default=None,
                    help="points per registered model "
                         "(default 8000; 2000 with --dist)")
    ps.add_argument("--order", type=int, default=None,
                    help="expansion order (default 6; 4 with --dist)")
    ps.add_argument("--q", type=int, default=None,
                    help="max points per box (large: shifts work into the "
                         "GEMM-batched U-list, where batching pays; "
                         "default 400; 64 with --dist)")
    ps.add_argument("--models", type=int, default=1,
                    help="number of models to register (m0..mK-1)")
    ps.add_argument("--workers", type=int, default=2)
    ps.add_argument("--clients", type=int, default=None,
                    help="closed-loop client threads "
                         "(default 8; 6 with --dist)")
    ps.add_argument("--duration", type=float, default=None,
                    help="load-generation window in seconds "
                         "(default 5; 4 with --dist)")
    ps.add_argument("--timeout", type=float, default=30.0,
                    help="per-request deadline in seconds")
    ps.add_argument("--max-batch", type=int, default=8)
    ps.add_argument("--max-wait-ms", type=float, default=2.0)
    ps.add_argument("--max-queue", type=int, default=64)
    ps.add_argument("--matrix-budget-mb", type=int, default=2048,
                    help="kernel-matrix cache budget per compiled plan")
    ps.add_argument("--precision", default="fp64",
                    choices=["fp64", "fp32", "auto"],
                    help="plan precision the models are registered at "
                         "(auto calibrates once per model at registration)")
    ps.add_argument("--autotune", action="store_true",
                    help="register models via the SLO-driven autotuner "
                         "(cost-model search + online drift monitor) "
                         "instead of the fixed --order/--q/--precision")
    ps.add_argument("--slo-ms", type=float, default=250.0,
                    help="autotune SLO: p95 latency target in ms")
    ps.add_argument("--store", default=None, metavar="PATH",
                    help="TuneStore JSON consulted/updated by --autotune")
    ps.add_argument("--threads", type=int, default=None, metavar="T",
                    help="intra-rank parallelism: all models share one "
                         "T-thread tile pool (bit-identical results; "
                         "default: single-threaded applies)")
    ps.add_argument("--chaos", action="store_true",
                    help="inject one phase-crash per worker; accepted "
                         "requests must still complete via retry")
    ps.add_argument("--dist", action="store_true",
                    help="run the distributed serving plane: router + "
                         "rank-sharded/replicated models, chaos failover")
    ps.add_argument("--shards", type=int, default=4,
                    help="virtual rank count of the serving fabric (--dist)")
    ps.add_argument("--replicas", type=int, default=2,
                    help="replica count of the replicated model (--dist)")
    ps.add_argument("--dispatchers", type=int, default=2,
                    help="router dispatcher threads (--dist)")
    ps.add_argument("--chaos-factor", type=float, default=10.0,
                    help="bound: chaos p99 must stay within this factor "
                         "of the clean p99 (--dist --bench)")
    ps.add_argument("--bench", action="store_true",
                    help="gate the run (0 failed, p99 < timeout, batching "
                         "engaged) and write BENCH_serving.json")
    ps.add_argument("--out", default=None, metavar="OUT_JSON",
                    help="write the metrics summary JSON here")
    ps.add_argument("--seed", type=int, default=0)
    ps.set_defaults(fn=_cmd_serve)

    pi = sub.add_parser("info", help="print build/config information")
    pi.set_defaults(fn=_cmd_info)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
