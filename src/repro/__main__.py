"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``evaluate``  run a single-process FMM on a synthetic distribution and
              (optionally) verify against direct summation
``trace``     run a distributed FMM with per-message tracing and print
              the communication matrices and critical-path estimates
``tune``      autotune the points-per-box parameter for CPU or GPU
``info``      print version, kernels, machine/device models
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _cmd_evaluate(args) -> int:
    from repro import Fmm, direct_sum, get_kernel
    from repro.datasets import make_distribution
    from repro.util.timer import PhaseProfile

    kernel = get_kernel(args.kernel)
    points = make_distribution(args.distribution, args.n, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    dens = rng.standard_normal(args.n * kernel.source_dim)

    fmm = Fmm(kernel, order=args.order, max_points_per_box=args.q)
    profile = PhaseProfile()
    recorder = None
    if args.trace:
        from repro.perf.trace import TraceRecorder

        recorder = TraceRecorder()
        profile.bind_trace(recorder, 0)
    t0 = time.perf_counter()
    pot = fmm.evaluate(points, dens, profile=profile)
    dt = time.perf_counter() - t0
    if recorder is not None:
        n = recorder.write_jsonl(args.trace)
        print(f"trace: {n} events -> {args.trace}")
    print(
        f"N={args.n} {args.distribution} {args.kernel} order={args.order} "
        f"q={args.q}: {dt:.2f}s, {profile.total_flops():.3g} flops"
    )
    for name, wall, flops, _, _ in profile.as_table():
        print(f"  {name:8s} {wall:7.2f}s  {flops:.3g} flops")
    if args.check:
        sample = rng.choice(args.n, min(args.n, args.check), replace=False)
        ref = direct_sum(kernel, points[sample], points, dens)
        kt = kernel.target_dim
        got = pot.reshape(-1, kt)[sample].reshape(-1)
        err = np.linalg.norm(got - ref) / np.linalg.norm(ref)
        print(f"spot check ({len(sample)} targets): rel err {err:.2e}")
    return 0


def _cmd_trace(args) -> int:
    from repro.datasets import make_distribution
    from repro.dist.driver import distributed_fmm_rank
    from repro.mpi import KRAKEN, LINCOLN, LOCAL, run_spmd
    from repro.perf.commviz import render_matrix, render_phase_summary, phase_matrices
    from repro.perf.trace import TraceRecorder

    machine = {"kraken": KRAKEN, "lincoln": LINCOLN, "local": LOCAL}[args.machine]
    points = make_distribution(args.distribution, args.n, seed=args.seed)

    from repro import get_kernel

    ks = get_kernel(args.kernel).source_dim

    def density(pts):
        base = np.sin(17.0 * pts[:, 0]) + pts[:, 2] * np.cos(11.0 * pts[:, 1])
        return np.tile(base[:, None], (1, ks)).reshape(-1)

    recorder = TraceRecorder()
    result = run_spmd(
        args.p,
        distributed_fmm_rank,
        points,
        density,
        machine=machine,
        trace=recorder,
        kernel=args.kernel,
        order=args.order,
        max_points_per_box=args.q,
        comm_scheme=args.scheme,
    )
    # ledger/trace consistency is an invariant worth asserting on every run
    ledger = {c.rank: c.messages_sent for c in result.comms}
    traced = recorder.per_rank_send_counts()
    for r in range(args.p):
        if ledger.get(r, 0) != traced.get(r, 0):
            print(f"WARNING: rank {r} ledger={ledger.get(r)} trace={traced.get(r)}")
    print(render_phase_summary(recorder, machine, args.p))
    if args.matrices:
        for ph, cm in phase_matrices(recorder, args.p).items():
            if args.phase and ph != args.phase:
                continue
            print()
            print(render_matrix(cm))
    if args.out:
        n = recorder.write_jsonl(args.out)
        print(f"\ntrace: {n} events -> {args.out}")
    return 0


def _cmd_tune(args) -> int:
    from repro.core.autotune import autotune_points_per_box
    from repro.datasets import make_distribution

    points = make_distribution(args.distribution, args.n, seed=args.seed)
    res = autotune_points_per_box(
        points,
        kernel=args.kernel,
        order=args.order,
        target=args.target,
        sample=args.sample,
    )
    print(f"best q for {args.target}: {res.best_q}  (metric: {res.metric})")
    for q, cost in res.ranked():
        marker = " <-- best" if q == res.best_q else ""
        print(f"  q={q:5d}: {cost:.4f}s{marker}")
    return 0


def _cmd_info(args) -> int:
    import repro
    from repro.gpu.device import TESLA_S1070
    from repro.kernels import _REGISTRY
    from repro.mpi import KRAKEN, LINCOLN

    print(f"repro {repro.__version__} — SC'09 parallel adaptive KIFMM reproduction")
    print(f"kernels: {', '.join(sorted(_REGISTRY))}")
    for m in (KRAKEN, LINCOLN):
        print(
            f"machine {m.name}: {m.cpu_flops / 1e6:.0f} MFlop/s/core, "
            f"t_s={m.latency * 1e6:.0f}us, bw={m.bandwidth / 1e9:.1f} GB/s"
        )
    d = TESLA_S1070
    print(
        f"device {d.name}: {d.peak_flops / 1e9:.0f} GFlop/s, "
        f"{d.mem_bandwidth / 1e9:.0f} GB/s, PCIe {d.pcie_bandwidth / 1e9:.0f} GB/s"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel adaptive kernel-independent FMM (SC'09 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pe = sub.add_parser("evaluate", help="run an FMM evaluation")
    pe.add_argument("--kernel", default="laplace")
    pe.add_argument("--distribution", default="uniform",
                    choices=["uniform", "ellipsoid", "plummer",
                             "two_spheres", "filament"])
    pe.add_argument("--n", type=int, default=10_000)
    pe.add_argument("--order", type=int, default=6)
    pe.add_argument("--q", type=int, default=100,
                    help="max points per box")
    pe.add_argument("--seed", type=int, default=0)
    pe.add_argument("--check", type=int, nargs="?", const=200, default=0,
                    metavar="N_SAMPLES",
                    help="verify against direct summation on a sample")
    pe.add_argument("--trace", default=None, metavar="OUT_JSONL",
                    help="record phase span events to a JSONL trace file")
    pe.set_defaults(fn=_cmd_evaluate)

    pr = sub.add_parser(
        "trace",
        help="trace a distributed run: comm matrices + critical path",
    )
    pr.add_argument("--kernel", default="laplace")
    pr.add_argument("--distribution", default="ellipsoid",
                    choices=["uniform", "ellipsoid", "plummer",
                             "two_spheres", "filament"])
    pr.add_argument("--n", type=int, default=4_000)
    pr.add_argument("--p", type=int, default=4, help="virtual rank count")
    pr.add_argument("--order", type=int, default=4)
    pr.add_argument("--q", type=int, default=50, help="max points per box")
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--machine", default="kraken",
                    choices=["kraken", "lincoln", "local"])
    pr.add_argument("--scheme", default="hypercube",
                    choices=["hypercube", "owner"],
                    help="shared-density reduction scheme")
    pr.add_argument("--phase", default=None,
                    help="only print the matrix of this phase")
    pr.add_argument("--no-matrices", dest="matrices", action="store_false",
                    help="skip the per-phase matrix dump")
    pr.add_argument("--out", default=None, metavar="OUT_JSONL",
                    help="write the full event trace to a JSONL file")
    pr.set_defaults(fn=_cmd_trace)

    pt = sub.add_parser("tune", help="autotune points-per-box")
    pt.add_argument("--kernel", default="laplace")
    pt.add_argument("--distribution", default="uniform",
                    choices=["uniform", "ellipsoid", "plummer",
                             "two_spheres", "filament"])
    pt.add_argument("--n", type=int, default=20_000)
    pt.add_argument("--order", type=int, default=6)
    pt.add_argument("--target", default="cpu", choices=["cpu", "gpu"])
    pt.add_argument("--sample", type=int, default=20_000)
    pt.add_argument("--seed", type=int, default=0)
    pt.set_defaults(fn=_cmd_tune)

    pi = sub.add_parser("info", help="print build/config information")
    pi.set_defaults(fn=_cmd_info)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
