"""Budgeted, seeded config search against a typed SLO.

The search is successive-halving over a discrete grid, pruned by the
:class:`~repro.tune.cost.CostModel`:

1. **Calibrate + accuracy ladder** — one subsample probe per
   (order, precision) cell of the grid measures both the cost-model
   coefficients and the relative error against the direct-sum reference.
   Cells breaking the SLO's ``precision_rtol`` floor (fp32 with the
   probe safety factor) are filtered out before anything expensive runs.
2. **Predict** — the cost model scores every surviving config from the
   *full-N* tree/list structure (trees are built once per candidate leaf
   size and shared across orders/precisions).  No evaluation yet.
3. **Shortlist + measure** — only the top ``budget_frac`` of the grid by
   predicted objective gets measured probes (compile the candidate plan
   at full N, time warm multi-RHS applies, successive halving).  The
   probed fraction is reported and gated in CI.
4. **Select** — the cheapest measured config meeting the SLO wins;
   configs within 10% of each other are ties, broken deterministically
   by (predicted cost, config key), so measurement noise cannot flip the
   choice between near-equals.

Everything is seeded: the probe subsample, the density draws and the
grid order are all functions of ``seed``, and with ``measure=False`` the
search is exactly reproducible (this pure-model mode is also what the
distributed collective vote runs, so every rank proposes from the same
arithmetic).
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.autotune import _FP32_SAFETY, SubsampleProbe
from repro.core.evaluator import FmmEvaluator
from repro.core.lists import build_lists
from repro.core.plan import MATRIX_BUDGET, EvalPlan
from repro.core.tree import build_tree
from repro.kernels import get_kernel
from repro.tune.cost import CostModel, plan_bytes_estimate
from repro.util.timer import PhaseProfile

__all__ = [
    "SLO",
    "TuneConfig",
    "TuneReport",
    "default_grid",
    "tune",
    "propose_config",
    "measure_grid",
]

#: Measured times within this factor of each other are ties, broken by
#: (predicted cost, config key) — determinism beats a sub-noise win.
_TIE_RTOL = 0.10


@dataclass(frozen=True)
class SLO:
    """A serving objective: a latency target plus an accuracy floor.

    ``latency_s`` bounds the per-request latency at ``percentile`` (the
    monitor watches the serving sliding window at this percentile);
    ``precision_rtol`` is the relative-error floor every tuned config
    must clear on the probe.  ``drift_band`` is the tolerated overshoot
    factor before the online monitor declares drift.
    """

    latency_s: float = 0.25
    percentile: float = 95.0
    precision_rtol: float = 1e-4
    drift_band: float = 1.25
    min_window: int = 16

    def key(self) -> str:
        return (
            f"lat{self.latency_s:g}s@p{self.percentile:g}"
            f"+rtol{self.precision_rtol:g}"
        )

    def to_dict(self) -> dict:
        return {
            "latency_s": self.latency_s,
            "percentile": self.percentile,
            "precision_rtol": self.precision_rtol,
            "drift_band": self.drift_band,
            "min_window": self.min_window,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SLO":
        return cls(**{k: d[k] for k in (
            "latency_s", "percentile", "precision_rtol", "drift_band",
            "min_window",
        ) if k in d})


@dataclass(frozen=True)
class TuneConfig:
    """One point of the serving config space."""

    order: int = 6
    max_points: int = 64
    precision: str = "fp64"
    max_batch: int = 8
    max_wait_ms: float = 2.0
    vli_multi_bytes: int = EvalPlan.VLI_MULTI_BYTES
    matrix_budget: int = MATRIX_BUDGET
    threads: int = 1

    def key(self) -> str:
        return (
            f"o{self.order}q{self.max_points}{self.precision}"
            f"b{self.max_batch}w{self.max_wait_ms:g}"
            f"v{self.vli_multi_bytes // 2**20}m{self.matrix_budget // 2**20}"
            f"t{self.threads}"
        )

    def fmm_kwargs(self) -> dict:
        """Constructor kwargs for :class:`repro.core.fmm.Fmm`."""
        return {
            "order": self.order,
            "max_points_per_box": self.max_points,
            "precision": self.precision,
            "threads": self.threads if self.threads > 1 else None,
        }

    def to_dict(self) -> dict:
        return {
            "order": self.order,
            "max_points": self.max_points,
            "precision": self.precision,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "vli_multi_bytes": self.vli_multi_bytes,
            "matrix_budget": self.matrix_budget,
            "threads": self.threads,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TuneConfig":
        return cls(**{k: d[k] for k in (
            "order", "max_points", "precision", "max_batch", "max_wait_ms",
            "vli_multi_bytes", "matrix_budget", "threads",
        ) if k in d})


@dataclass
class TuneReport:
    """Everything one search run did, for gating and operator forensics."""

    config: TuneConfig
    slo: SLO
    seed: int
    grid_size: int = 0
    n_probed: int = 0
    feasible: int = 0
    met_slo: bool = False
    accuracy: dict[str, float] = field(default_factory=dict)
    predicted: dict[str, dict] = field(default_factory=dict)
    measured: dict[str, dict] = field(default_factory=dict)
    cost_model: dict = field(default_factory=dict)

    @property
    def probe_fraction(self) -> float:
        return self.n_probed / max(self.grid_size, 1)

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "slo": self.slo.to_dict(),
            "seed": self.seed,
            "grid_size": self.grid_size,
            "n_probed": self.n_probed,
            "probe_fraction": self.probe_fraction,
            "feasible": self.feasible,
            "met_slo": self.met_slo,
            "accuracy": self.accuracy,
            "predicted": self.predicted,
            "measured": self.measured,
            "cost_model": self.cost_model,
        }


def default_grid(
    n: int,
    orders=(4, 6, 8),
    leaf_sizes=(64, 144, 400),
    precisions=("fp64", "fp32"),
    batch_shapes=((8, 2.0), (16, 4.0)),
    threads_opts=None,
    matrix_budgets=(MATRIX_BUDGET,),
) -> list[TuneConfig]:
    """The discrete grid the search walks; deterministic order.

    Leaf sizes larger than ``n // 4`` are dropped (a near-degenerate
    tree defeats both the cost model and the point of an FMM).
    ``threads_opts`` defaults to the host shape: ``(1,)`` on a
    single-core box, else ``(1, min(4, cores))`` — the intra-rank pool
    only helps when there are cores to spread the tiles over.
    """
    if threads_opts is None:
        cores = os.cpu_count() or 1
        threads_opts = (1,) if cores < 2 else (1, min(4, cores))
    leaf_sizes = [q for q in leaf_sizes if q <= max(n // 4, min(leaf_sizes))]
    grid = [
        TuneConfig(
            order=o, max_points=q, precision=p,
            max_batch=b, max_wait_ms=w, threads=t, matrix_budget=m,
        )
        for o in orders
        for q in leaf_sizes
        for p in precisions
        for (b, w) in batch_shapes
        for t in threads_opts
        for m in matrix_budgets
    ]
    return grid


def _measure_one(
    ev: FmmEvaluator, tree, lists, cfg: TuneConfig, rng, reps: int
) -> float:
    """Min warm multi-RHS apply time of one config at full N (seconds)."""
    plan = ev.compile_plan(
        tree, lists, precision=cfg.precision,
        matrix_budget=cfg.matrix_budget,
    )
    plan.VLI_MULTI_BYTES = cfg.vli_multi_bytes
    block = rng.standard_normal(
        (tree.n_points * ev.kernel.source_dim, cfg.max_batch)
    )
    prev_threads = ev.threads
    ev.configure_threads(cfg.threads if cfg.threads > 1 else None)
    try:
        ev.evaluate_multi(tree, lists, block, PhaseProfile(), plan=plan)
        best = np.inf
        for _ in range(max(1, reps)):
            t0 = time.perf_counter()
            ev.evaluate_multi(tree, lists, block, PhaseProfile(), plan=plan)
            best = min(best, time.perf_counter() - t0)
    finally:
        ev.configure_threads(prev_threads)
    return float(best)


def measure_grid(
    points: np.ndarray,
    kernel: str = "laplace",
    grid: list[TuneConfig] | None = None,
    seed: int = 0,
    reps: int = 2,
    log=None,
) -> dict[TuneConfig, float]:
    """Exhaustively measure every grid config's warm batch apply at full N.

    This is the gate's reference, not part of the search: the search must
    land within a small factor of the *best measured grid point* while
    probing only a fraction of the grid.  Returns
    ``{config: batch_apply_seconds}`` (min over ``reps`` warm applies).
    """
    pts = np.asarray(points, dtype=np.float64)
    kern = get_kernel(kernel) if isinstance(kernel, str) else kernel
    grid = grid if grid is not None else default_grid(len(pts))
    say = log or (lambda s: None)
    rng = np.random.default_rng(seed + 2)
    evs: dict[tuple[int, str], FmmEvaluator] = {}
    geoms: dict[int, tuple] = {}
    out: dict[TuneConfig, float] = {}
    for cfg in grid:
        if cfg.max_points not in geoms:
            tree = build_tree(pts, cfg.max_points)
            geoms[cfg.max_points] = (tree, build_lists(tree))
        tree, lists = geoms[cfg.max_points]
        key = (cfg.order, cfg.precision)
        if key not in evs:
            evs[key] = FmmEvaluator(kern, cfg.order, precision=cfg.precision)
        out[cfg] = _measure_one(evs[key], tree, lists, cfg, rng, reps)
        say(f"  grid {cfg.key()}: {out[cfg] * 1e3:.1f} ms/batch")
    return out


def _latency_s(cfg: TuneConfig, batch_apply_s: float) -> float:
    """Worst-case request latency: full batching wait + the batch apply."""
    return cfg.max_wait_ms / 1e3 + batch_apply_s


def _per_request_s(cfg: TuneConfig, batch_apply_s: float) -> float:
    """Throughput cost: batch apply amortised over its columns."""
    return batch_apply_s / max(cfg.max_batch, 1)


def tune(
    points: np.ndarray,
    kernel: str = "laplace",
    slo: SLO | None = None,
    grid: list[TuneConfig] | None = None,
    seed: int = 0,
    budget_frac: float = 0.25,
    sample: int | None = 2_000,
    measure: bool = True,
    model: CostModel | None = None,
    log=None,
) -> TuneReport:
    """Search the grid for the cheapest config meeting ``slo``.

    ``measure=False`` skips the full-N measured probes and selects purely
    on the calibrated cost model — fully deterministic for a fixed seed,
    and the mode the distributed collective vote runs.  ``log`` is an
    optional ``callable(str)`` for progress lines.
    """
    slo = slo or SLO()
    pts = np.asarray(points, dtype=np.float64)
    grid = grid if grid is not None else default_grid(len(pts))
    if not grid:
        raise ValueError("empty tuning grid")
    say = log or (lambda s: None)

    probe = SubsampleProbe(pts, kernel=kernel, sample=sample, seed=seed)
    model = model or CostModel()
    report = TuneReport(config=grid[0], slo=slo, seed=int(seed),
                        grid_size=len(grid))

    # -- 1. accuracy ladder doubles as cost-model calibration ------------
    evs: dict[tuple[int, str], FmmEvaluator] = {}

    def ev_for(order: int, precision: str) -> FmmEvaluator:
        key = (order, precision)
        if key not in evs:
            evs[key] = FmmEvaluator(probe.kernel, order, precision=precision)
        return evs[key]

    ladder_q = min(64, min(c.max_points for c in grid))
    cells = sorted({(c.order, c.precision) for c in grid})
    batch_probe_done: set[str] = set()
    accuracy: dict[tuple[int, str], float] = {}
    cal_tree, cal_lists, _ = probe.geometry(ladder_q)
    for order, prec in cells:
        ev = ev_for(order, prec)
        t1, pot, prof = probe.timed_apply(
            ev, ladder_q, precision=prec, warmups=1, reps=1
        )
        err = probe.error(pot, ladder_q)
        accuracy[(order, prec)] = err
        report.accuracy[f"o{order}/{prec}"] = err
        model.ingest_probe(ev, cal_tree, cal_lists, prof, prec)
        if prec not in batch_probe_done:
            bq = max(c.max_batch for c in grid)
            tq, _, _ = probe.timed_apply(
                ev, ladder_q, precision=prec, warmups=1, reps=1, batch=bq
            )
            eff = (tq / max(t1, 1e-9) - 1.0) / max(bq - 1, 1)
            model.batch_eff[prec] = float(min(max(eff, 0.02), 1.0))
            batch_probe_done.add(prec)
    say(f"calibrated {len(cells)} (order, precision) cells on "
        f"{probe.n}-point probe")

    def floor_ok(order: int, prec: str) -> bool:
        safety = _FP32_SAFETY if prec == "fp32" else 1.0
        return accuracy[(order, prec)] * safety <= slo.precision_rtol

    candidates = [c for c in grid if floor_ok(c.order, c.precision)]
    floor_met = bool(candidates)
    if not candidates:
        # nothing clears the floor: keep the most accurate cell's configs
        # so the search still returns the least-bad config (met_slo False)
        best_cell = min(accuracy, key=accuracy.get)
        candidates = [
            c for c in grid
            if (c.order, c.precision) == best_cell
        ]
    say(f"{len(candidates)}/{len(grid)} configs clear the accuracy floor")

    # -- 2. cost-model prediction over the full-N structure --------------
    geoms: dict[int, tuple] = {}

    def geom_for(q: int):
        if q not in geoms:
            tree = build_tree(pts, q)
            geoms[q] = (tree, build_lists(tree))
        return geoms[q]

    predicted: dict[TuneConfig, float] = {}  # per-request objective
    pred_lat: dict[TuneConfig, float] = {}
    for cfg in candidates:
        tree, lists = geom_for(cfg.max_points)
        ev = ev_for(cfg.order, cfg.precision)
        batch_s = model.predict_apply(
            ev, tree, lists, precision=cfg.precision, batch=cfg.max_batch,
            threads=cfg.threads,
        )
        predicted[cfg] = _per_request_s(cfg, batch_s)
        pred_lat[cfg] = _latency_s(cfg, batch_s)
        report.predicted[cfg.key()] = {
            "per_request_s": predicted[cfg],
            "latency_s": pred_lat[cfg],
            "plan_bytes": plan_bytes_estimate(
                ev, tree, lists, cfg.precision, cfg.matrix_budget
            ),
        }

    def pred_rank(cfg: TuneConfig):
        # SLO-violating predictions sort after meeting ones
        return (pred_lat[cfg] > slo.latency_s, predicted[cfg], cfg.key())

    ranked = sorted(candidates, key=pred_rank)
    report.feasible = sum(
        1 for c in candidates if pred_lat[c] <= slo.latency_s
    )

    if not measure:
        best = ranked[0]
        report.config = best
        report.met_slo = floor_met and pred_lat[best] <= slo.latency_s
        report.cost_model = model.to_dict()
        return report

    # -- 3. measured probes for the shortlist (successive halving) -------
    shortlist = ranked[: max(1, math.ceil(budget_frac * len(grid)))]
    say(f"measuring {len(shortlist)}/{len(grid)} shortlisted configs "
        f"at N={len(pts)}")
    rng = np.random.default_rng(seed + 2)
    measured: dict[TuneConfig, float] = {}  # batch apply seconds

    def measure_cfg(cfg: TuneConfig, reps: int) -> float:
        tree, lists = geom_for(cfg.max_points)
        ev = ev_for(cfg.order, cfg.precision)
        return _measure_one(ev, tree, lists, cfg, rng, reps)

    # round 1: one timed rep each; round 2: top half again with 2 reps
    for cfg in shortlist:
        measured[cfg] = measure_cfg(cfg, reps=1)
    report.n_probed = len(shortlist)
    if len(shortlist) > 2:
        half = sorted(
            shortlist, key=lambda c: _per_request_s(c, measured[c])
        )[: max(2, len(shortlist) // 2)]
        for cfg in half:
            measured[cfg] = min(measured[cfg], measure_cfg(cfg, reps=2))

    for cfg, batch_s in measured.items():
        report.measured[cfg.key()] = {
            "batch_apply_s": batch_s,
            "per_request_s": _per_request_s(cfg, batch_s),
            "latency_s": _latency_s(cfg, batch_s),
        }

    # -- 4. deterministic selection with a measured-tie tolerance --------
    meeting = [
        c for c in measured if _latency_s(c, measured[c]) <= slo.latency_s
    ]
    pool = meeting or list(measured)
    best_t = min(_per_request_s(c, measured[c]) for c in pool)
    ties = [
        c for c in pool
        if _per_request_s(c, measured[c]) <= best_t * (1 + _TIE_RTOL)
    ]
    best = min(ties, key=lambda c: (predicted[c], c.key()))
    report.config = best
    report.met_slo = floor_met and bool(meeting)
    report.cost_model = model.to_dict()
    say(f"chose {best.key()} "
        f"(measured {_per_request_s(best, measured[best]) * 1e3:.2f} ms/req, "
        f"SLO {'met' if report.met_slo else 'MISSED'})")
    return report


def propose_config(
    points: np.ndarray,
    kernel: str = "laplace",
    slo: SLO | None = None,
    grid: list[TuneConfig] | None = None,
    seed: int = 0,
    sample: int | None = 2_000,
) -> TuneConfig:
    """Cheap, fully deterministic cost-model-only pick (no measured probes).

    This is what each rank of the distributed collective vote runs on its
    local point slice — deterministic arithmetic per rank, reduced to one
    agreed config by the vote.
    """
    return tune(
        points, kernel=kernel, slo=slo, grid=grid, seed=seed,
        sample=sample, measure=False,
    ).config
