"""Persistent store of tuned configs.

A :class:`TuneStore` is a single JSON file mapping
``(geometry fingerprint, kernel, SLO, backend)`` keys to tuned
:class:`~repro.tune.search.TuneConfig` entries (plus the search report
that produced them).  The fingerprint is the structural
:func:`~repro.core.plan.tree_fingerprint` of a *canonical* tree built at
a fixed leaf size, so two registrations of the same point set hit the
same entry regardless of what leaf size the tuner eventually picks —
and any geometry change (points moved, added, removed) changes the key,
which is the cache-invalidation story: stale entries are simply never
looked up again, and :meth:`TuneStore.invalidate` garbage-collects them.

Writes are atomic (temp file + ``os.replace``) and the store is
versioned: a file with an unknown version or undecodable JSON is treated
as empty rather than trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.plan import tree_fingerprint
from repro.core.tree import build_tree
from repro.tune.search import SLO, TuneConfig

__all__ = ["TuneStore", "geometry_fingerprint", "STORE_VERSION"]

STORE_VERSION = 1

#: Leaf size of the canonical fingerprint tree — fixed so the store key
#: does not depend on the (tuned, hence variable) production leaf size.
_FINGERPRINT_Q = 64


def geometry_fingerprint(points: np.ndarray) -> str:
    """Structural fingerprint of a point set for store keying."""
    pts = np.asarray(points, dtype=np.float64)
    return tree_fingerprint(build_tree(pts, _FINGERPRINT_Q))


class TuneStore:
    """Thread-safe JSON store of tuned configs; safe against corruption."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._lock = threading.Lock()

    # -- keying ------------------------------------------------------------

    @staticmethod
    def key(fingerprint: str, kernel: str, slo: SLO, backend: str) -> str:
        raw = f"{fingerprint}|{kernel}|{slo.key()}|{backend}"
        return hashlib.sha256(raw.encode()).hexdigest()[:24]

    # -- IO ----------------------------------------------------------------

    def _load(self) -> dict:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {"version": STORE_VERSION, "entries": {}}
        if not isinstance(data, dict) or data.get("version") != STORE_VERSION:
            return {"version": STORE_VERSION, "entries": {}}
        if not isinstance(data.get("entries"), dict):
            data["entries"] = {}
        return data

    def _save(self, data: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(data, indent=1, sort_keys=True))
        os.replace(tmp, self.path)

    # -- API ---------------------------------------------------------------

    def get(
        self, fingerprint: str, kernel: str, slo: SLO, backend: str = "cpu"
    ) -> TuneConfig | None:
        with self._lock:
            entry = self._load()["entries"].get(
                self.key(fingerprint, kernel, slo, backend)
            )
        if entry is None:
            return None
        try:
            return TuneConfig.from_dict(entry["config"])
        except (KeyError, TypeError):
            return None

    def put(
        self,
        fingerprint: str,
        kernel: str,
        slo: SLO,
        config: TuneConfig,
        backend: str = "cpu",
        report: dict | None = None,
    ) -> str:
        """Insert/overwrite one tuned entry; returns its store key."""
        key = self.key(fingerprint, kernel, slo, backend)
        with self._lock:
            data = self._load()
            data["entries"][key] = {
                "fingerprint": fingerprint,
                "kernel": kernel,
                "slo": slo.to_dict(),
                "backend": backend,
                "config": config.to_dict(),
                "report": report or {},
                "created_s": time.time(),
            }
            self._save(data)
        return key

    def invalidate(self, fingerprint: str | None = None) -> int:
        """Drop entries for one fingerprint (or every entry); returns count."""
        with self._lock:
            data = self._load()
            if fingerprint is None:
                n = len(data["entries"])
                data["entries"] = {}
            else:
                victims = [
                    k for k, e in data["entries"].items()
                    if e.get("fingerprint") == fingerprint
                ]
                n = len(victims)
                for k in victims:
                    del data["entries"][k]
            if n:
                self._save(data)
        return n

    def entries(self) -> list[dict]:
        with self._lock:
            return list(self._load()["entries"].values())
