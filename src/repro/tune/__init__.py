"""Online autotuning: cost model, budgeted search, store, SLO monitor.

The config space the serving stack exposes is wide — expansion order,
leaf ``max_points``, precision, batch shape, ``VLI_MULTI_BYTES``, matrix
budget — and the right point depends on geometry, kernel and hardware
(paper Table III; Holm et al., PAPERS.md).  This package picks it
automatically:

* :mod:`repro.tune.cost` — a structural per-phase cost model calibrated
  from cheap subsample probes (:class:`repro.core.autotune.SubsampleProbe`).
* :mod:`repro.tune.search` — a seeded, budgeted search over the discrete
  config grid against a typed :class:`~repro.tune.search.SLO`; the cost
  model prunes, measured probes decide only among the shortlist.
* :mod:`repro.tune.store` — persistent JSON store of tuned configs keyed
  by (geometry fingerprint, kernel, SLO, backend).
* :mod:`repro.tune.monitor` — watches serving sliding-window percentiles
  and triggers a bounded off-hot-path re-tune when p95 drifts out of the
  SLO band.
"""

from repro.tune.cost import CostModel, phase_flops, plan_bytes_estimate
from repro.tune.monitor import SloMonitor
from repro.tune.search import (
    SLO,
    TuneConfig,
    TuneReport,
    default_grid,
    propose_config,
    tune,
)
from repro.tune.store import TuneStore, geometry_fingerprint

__all__ = [
    "CostModel",
    "phase_flops",
    "plan_bytes_estimate",
    "SLO",
    "TuneConfig",
    "TuneReport",
    "default_grid",
    "propose_config",
    "tune",
    "TuneStore",
    "geometry_fingerprint",
    "SloMonitor",
]
