"""Online SLO monitor: watch windowed percentiles, re-tune on drift.

The monitor closes the autotuning loop: :mod:`repro.tune.search` picks a
config at registration time, and :class:`SloMonitor` keeps it honest
under live traffic.  It polls the serving metrics' *sliding-window*
latency percentile (lifetime percentiles dilute drift away — see
``serve/metrics.py``) and, when the observed percentile stays above the
SLO band for ``sustain`` consecutive polls, fires exactly one re-tune
callback.

Anti-flapping is structural, not probabilistic:

* drift must *sustain* — one bad poll resets nothing, ``sustain``
  consecutive bad polls are required;
* the re-tune runs under an in-progress guard (a second trigger cannot
  start while one runs);
* after a re-tune the window is reset (stale pre-swap samples would
  immediately re-trigger) and a ``cooldown_s`` refractory period starts.

The re-tune callback itself is supplied by the engine
(:meth:`repro.serve.engine.ServeEngine.retune`): probes run off the hot
path on a worker-independent thread, and the new config is published
with the same atomic batch-boundary snapshot swap the dynamic-geometry
path uses, so in-flight batches keep their config version's bit-exact
answers.
"""

from __future__ import annotations

import threading
import time

from repro.tune.search import SLO

__all__ = ["SloMonitor"]


class SloMonitor:
    """Watches one model's windowed latency percentile against an SLO.

    Parameters
    ----------
    metrics:
        A :class:`~repro.serve.metrics.ServeMetrics` (anything with
        ``window_quantile``/``window_count``/``reset_window``).
    model:
        Registered model name to watch.
    slo:
        The :class:`SLO`; drift means the windowed ``slo.percentile``
        latency exceeds ``slo.latency_s * slo.drift_band``.
    retune:
        ``callable(model_name, observed_p_s) -> None`` run (synchronously
        from :meth:`poll`) when sustained drift is detected.
    """

    def __init__(
        self,
        metrics,
        model: str,
        slo: SLO,
        retune,
        interval_s: float = 1.0,
        sustain: int = 3,
        cooldown_s: float = 30.0,
    ):
        self.metrics = metrics
        self.model = model
        self.slo = slo
        self.retune = retune
        self.interval_s = float(interval_s)
        self.sustain = max(1, int(sustain))
        self.cooldown_s = float(cooldown_s)
        self.retunes = 0
        self.last_observed_s: float | None = None
        self._hits = 0
        self._cooldown_until = 0.0
        self._in_progress = False
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- core --------------------------------------------------------------

    def poll(self, now: float | None = None) -> bool:
        """One monitoring step; returns True iff a re-tune fired.

        ``now`` is injectable for tests (defaults to ``time.monotonic``).
        """
        now = time.monotonic() if now is None else now
        if self.metrics.window_count(self.model) < self.slo.min_window:
            return False
        p = self.metrics.window_quantile(self.model, self.slo.percentile)
        if p is None:
            return False
        self.last_observed_s = p
        if p <= self.slo.latency_s * self.slo.drift_band:
            self._hits = 0
            return False
        self._hits += 1
        if self._hits < self.sustain:
            return False
        with self._lock:
            if self._in_progress or now < self._cooldown_until:
                return False
            self._in_progress = True
        try:
            self.retune(self.model, p)
            self.retunes += 1
        finally:
            with self._lock:
                self._in_progress = False
                self._cooldown_until = now + self.cooldown_s
            self._hits = 0
            # stale pre-retune samples must not re-trigger instantly
            self.metrics.reset_window(self.model)
        return True

    # -- background thread -------------------------------------------------

    def start(self) -> "SloMonitor":
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop():
            while not self._stop.wait(self.interval_s):
                try:
                    self.poll()
                except Exception:  # monitor must never kill the engine
                    pass

        self._thread = threading.Thread(
            target=loop, name=f"slo-monitor-{self.model}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        t, self._thread = self._thread, None
        if t is not None:
            t.join(timeout=5.0)

    def snapshot(self) -> dict:
        return {
            "model": self.model,
            "slo": self.slo.to_dict(),
            "retunes": self.retunes,
            "observed_s": self.last_observed_s,
            "sustain_hits": self._hits,
        }
