"""Structural cost model: per-phase apply seconds and plan bytes.

The model has two halves, kept deliberately separate:

* **Structure** (:func:`phase_flops`, :func:`plan_bytes_estimate`) — the
  flop and byte counts of each of the eight phases, computed from the
  tree and interaction lists alone.  Nothing is evaluated: ULI work is
  the U-list pair-count sum, V-list work is pair translations plus
  per-box FFTs, and so on.  These counts are exact consequences of the
  plan's GEMM schedules, so they extrapolate from a 2k-point probe tree
  to a 20M-point production tree.
* **Calibration** (:meth:`CostModel.calibrate`) — secs-per-flop
  coefficients per (phase, precision), measured by timing a handful of
  :class:`~repro.core.autotune.SubsampleProbe` applies and dividing each
  phase's wall seconds by its *structural* flops on the probe tree.
  Using structural (not profiled) flops on both sides means systematic
  model error cancels in the ratio.

Predictions are therefore ``coeff[phase, precision] x structural_flops``
plus a fixed per-apply overhead, scaled by a multi-RHS batch-efficiency
factor (also measured).  :meth:`CostModel.observe` folds observed
``SERVE:apply`` span times back in as an EWMA correction, so a model
calibrated on an idle machine tracks a loaded one.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.autotune import SubsampleProbe

__all__ = ["CostModel", "phase_flops", "plan_bytes_estimate", "PHASES"]

PHASES = ("S2U", "U2U", "VLI", "XLI", "D2D", "WLI", "D2T", "ULI")

#: Marginal per-extra-column cost fraction assumed before the batch probe
#: runs (GEMM batching amortises most of the work; measured values on the
#: reference host land around 0.2-0.5).
_DEFAULT_BATCH_EFF = 0.5

#: EWMA weight of each new observed-vs-predicted correction sample.
_OBSERVE_ALPHA = 0.3

#: Fraction of an apply's phase time that the tile executor can spread
#: over threads.  The remainder (plan bookkeeping, serial combines, the
#: D2D conversion GEMM, flop-ledger replay) stays on the coordinator —
#: the Amdahl serial term.  Matches achieved busy/elapsed ratios on the
#: reference host to ~10%.
_PARALLEL_FRACTION = 0.9


def _pair_sum(csr, counts_t, counts_s) -> float:
    """Sum over CSR pairs (i, j) of ``counts_t[i] * counts_s[j]``."""
    if csr.indices.size == 0:
        return 0.0
    rows = np.repeat(np.arange(csr.offsets.size - 1), csr.counts)
    return float(np.sum(counts_t[rows] * counts_s[csr.indices]))


def phase_flops(ev, tree, lists) -> dict[str, float]:
    """Structural flop count of each phase for ``(tree, lists)``.

    ``ev`` supplies the kernel dims, surface size and M2L mode; the tree
    and lists supply every count.  No evaluation happens — this is pure
    arithmetic over the CSR adjacency, cheap even for production trees.
    """
    ks = ev.kernel.source_dim
    kt = ev.eval_kernel.target_dim
    ns = ev.ns
    fpp = ev.kernel.pair_flops(1, 1)
    fpp_eval = ev.eval_kernel.pair_flops(1, 1)
    counts = tree.point_counts().astype(np.float64)
    leaf = tree.leaf_indices
    n_leaf_pts = float(counts[leaf].sum())
    n_nodes = tree.n_nodes
    surf_dofs = float(ns * ks)
    # one equivalent-from-check solve (uc2ue / dc2de pseudo-inverse matvec)
    solve = 2.0 * surf_dofs * surf_dofs

    out: dict[str, float] = {}
    # S2U: leaf sources -> upward check (pair eval) + uc2ue solve per leaf
    out["S2U"] = fpp * ns * n_leaf_pts + solve * len(leaf)
    # U2U: child up -> parent check (ns x ns pair eval) + solve, per edge
    edges = max(n_nodes - 1, 0)
    out["U2U"] = (fpp * ns * ns + solve) * edges
    # D2D: parent down -> child check + solve per edge, plus the
    # check-to-down conversion charged once per node
    out["D2D"] = (fpp * ns * ns + solve) * edges + solve * n_nodes
    # VLI: translations per pair; FFT mode adds per-box forward/inverse
    # transforms for every box that participates on either side
    v = lists.v
    if ev.fft is not None:
        n_tgt = int(np.count_nonzero(v.counts))
        n_src = int(np.count_nonzero(np.bincount(
            v.indices, minlength=n_nodes
        ))) if v.indices.size else 0
        out["VLI"] = (
            v.total() * ev.fft.translate_flops_per_pair()
            + ev.fft.fft_flops_per_box() * (n_src * ks + n_tgt * kt)
        )
    else:
        out["VLI"] = v.total() * 2.0 * surf_dofs * (ns * kt)
    # XLI: x-list sources evaluated at the target's check surface
    out["XLI"] = fpp * ns * _pair_sum(lists.x, np.ones(n_nodes), counts)
    # WLI: w-list up densities evaluated directly at leaf target points
    out["WLI"] = fpp_eval * ns * _pair_sum(
        lists.w, counts, np.ones(n_nodes)
    )
    # D2T: leaf down densities -> leaf target points
    out["D2T"] = fpp_eval * ns * n_leaf_pts
    # ULI: exact near field over the U list
    out["ULI"] = fpp_eval * _pair_sum(lists.u, counts, counts)
    return out


def plan_bytes_estimate(
    ev, tree, lists, precision: str = "fp64",
    matrix_budget: int | None = None,
) -> float:
    """Rough resident bytes of a compiled plan for this geometry.

    Counts the cached kernel-matrix entries of the GEMM phases (the
    dominant term) at the precision's itemsize, capped at the matrix
    budget, plus a small per-node index overhead.  Good to ~2x — enough
    to decide whether a candidate fits a plan-cache byte budget.
    """
    ks = ev.kernel.source_dim
    kt = ev.eval_kernel.target_dim
    ns = ev.ns
    counts = tree.point_counts().astype(np.float64)
    leaf = tree.leaf_indices
    n_leaf_pts = float(counts[leaf].sum())
    n_nodes = tree.n_nodes
    itemsize = 4 if precision == "fp32" else 8
    entries = (
        ns * ks * n_leaf_pts * ks  # s2u check matrices
        + n_leaf_pts * kt * ns * ks  # d2t
        + kt * ks * _pair_sum(lists.u, counts, counts)  # uli
        + ns * ks * kt * _pair_sum(lists.x, np.ones(n_nodes), counts)
        + kt * ks * ns * _pair_sum(lists.w, counts, np.ones(n_nodes))
    )
    mat = entries * itemsize
    if matrix_budget is not None:
        mat = min(mat, float(matrix_budget))
    # index/schedule arrays: a few int64/float64 words per point and node
    return mat + 64.0 * (tree.n_points + n_nodes)


class CostModel:
    """Calibrated secs-per-flop coefficients plus batch/overhead terms.

    Serialisable (:meth:`to_dict` / :meth:`from_dict`) so tuned stores
    can persist the calibration next to the chosen config.
    """

    def __init__(self):
        # (phase, precision) -> seconds per structural flop
        self.coeffs: dict[tuple[str, str], float] = {}
        # precision -> fixed per-apply overhead seconds
        self.overhead: dict[str, float] = {}
        # precision -> marginal per-extra-column fraction in [0, 1]
        self.batch_eff: dict[str, float] = {}
        # EWMA observed/predicted ratio from live SERVE:apply spans
        self.correction: float = 1.0

    # -- calibration -------------------------------------------------------

    def ingest_probe(self, ev, tree, lists, profile, precision: str) -> None:
        """Fold one timed probe apply into the coefficients.

        ``profile`` is the :class:`PhaseProfile` of a *timed* apply on
        ``(tree, lists)``; coefficients average (flop-weighted) across
        every probe ingested for the same (phase, precision).
        """
        flops = phase_flops(ev, tree, lists)
        total_phase = 0.0
        for ph in PHASES:
            e = profile.events.get(ph)
            if e is None or flops[ph] <= 0:
                continue
            total_phase += e.wall_seconds
            key = (ph, precision)
            old = self.coeffs.get(key)
            new = e.wall_seconds / flops[ph]
            # flop-weighted running mean collapses to plain averaging of
            # per-probe coefficients; keep it simple and robust
            self.coeffs[key] = new if old is None else 0.5 * (old + new)
        wall = sum(
            e.wall_seconds for e in profile.events.values()
        )
        over = max(wall - total_phase, 0.0)
        prev = self.overhead.get(precision)
        self.overhead[precision] = (
            over if prev is None else 0.5 * (prev + over)
        )

    def calibrate(
        self,
        probe: SubsampleProbe,
        ev_factory,
        precisions=("fp64", "fp32"),
        max_points: int = 64,
        order: int | None = None,
        batch: int = 8,
    ) -> None:
        """Run one timed probe apply per precision (plus a batch probe).

        ``ev_factory(precision)`` returns a fresh evaluator; the same
        :class:`SubsampleProbe` instance should be shared with the
        accuracy ladder so trees and references are built once.
        """
        tree, lists, _ = probe.geometry(max_points)
        for prec in precisions:
            ev = ev_factory(prec)
            t1, _, prof = probe.timed_apply(
                ev, max_points, precision=prec, warmups=1, reps=1
            )
            self.ingest_probe(ev, tree, lists, prof, prec)
            if batch > 1:
                tq, _, _ = probe.timed_apply(
                    ev, max_points, precision=prec, warmups=1, reps=1,
                    batch=batch,
                )
                eff = (tq / max(t1, 1e-9) - 1.0) / max(batch - 1, 1)
                self.batch_eff[prec] = float(min(max(eff, 0.02), 1.0))

    # -- prediction --------------------------------------------------------

    def predict_phases(
        self, ev, tree, lists, precision: str = "fp64"
    ) -> dict[str, float]:
        """Predicted seconds per phase for one single-RHS apply."""
        flops = phase_flops(ev, tree, lists)
        out = {}
        for ph in PHASES:
            c = self.coeffs.get((ph, precision))
            if c is None:  # fall back to the other precision's coefficient
                other = "fp64" if precision == "fp32" else "fp32"
                c = self.coeffs.get((ph, other), 0.0)
            out[ph] = c * flops[ph]
        return out

    def predict_apply(
        self, ev, tree, lists, precision: str = "fp64", batch: int = 1,
        threads: int = 1,
    ) -> float:
        """Predicted wall seconds of one (possibly multi-RHS) apply.

        ``threads > 1`` applies Amdahl's law over the phase-time sum:
        the parallelisable fraction (:data:`_PARALLEL_FRACTION` of the
        tile GEMM/translate work) divides by the *effective* thread
        count — capped at the host's cores, because a 4-thread pool on
        one core is pure scheduling overhead — while the serial
        remainder and the fixed per-apply overhead do not shrink.
        """
        base = sum(self.predict_phases(ev, tree, lists, precision).values())
        eff_t = min(max(int(threads), 1), os.cpu_count() or 1)
        if eff_t > 1:
            base = base * (
                (1.0 - _PARALLEL_FRACTION) + _PARALLEL_FRACTION / eff_t
            )
        base += self.overhead.get(precision, 0.0)
        if batch > 1:
            eff = self.batch_eff.get(precision, _DEFAULT_BATCH_EFF)
            base *= 1.0 + eff * (batch - 1)
        return base * self.correction

    # -- online correction -------------------------------------------------

    def observe(self, observed_s: float, predicted_s: float) -> float:
        """EWMA-fold an observed apply span against its prediction.

        Returns the updated correction factor.  Bounded to [0.1, 10] so a
        single pathological span cannot poison the model.
        """
        if predicted_s > 0 and observed_s > 0:
            ratio = observed_s / predicted_s
            ratio = min(max(ratio, 0.1), 10.0)
            self.correction = (
                (1 - _OBSERVE_ALPHA) * self.correction
                + _OBSERVE_ALPHA * ratio
            )
        return self.correction

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "coeffs": {
                f"{ph}@{prec}": c for (ph, prec), c in self.coeffs.items()
            },
            "overhead": dict(self.overhead),
            "batch_eff": dict(self.batch_eff),
            "correction": self.correction,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CostModel":
        m = cls()
        for key, c in d.get("coeffs", {}).items():
            ph, _, prec = key.partition("@")
            m.coeffs[(ph, prec)] = float(c)
        m.overhead = {k: float(v) for k, v in d.get("overhead", {}).items()}
        m.batch_eff = {k: float(v) for k, v in d.get("batch_eff", {}).items()}
        m.correction = float(d.get("correction", 1.0))
        return m
