"""The in-process FMM evaluation service.

:class:`ServeEngine` turns the plan-compiled evaluator into a
long-running service for the paper's repeated-apply workloads (time
steppers, iterative solvers, many tenants sharing one machine): register
a *model* — geometry + kernel + built tree — once, then submit density
vectors from any thread and get potentials back.

The engine composes four pieces, each its own module:

* a **plan cache** (here): compiled :class:`~repro.core.plan.EvalPlan`
  objects keyed by ``model@precision``, LRU-evicted under a byte budget
  (the plan's actual, dtype-honest ``plan.nbytes`` — an fp32 plan
  charges roughly half an fp64 one), recompiled transparently on miss.
  Warm plans are what make serving cheap — an apply on a warm plan
  skips all setup.
* a **micro-batcher** (:mod:`repro.serve.batcher`): concurrent
  single-density requests for the same model coalesce into one
  multi-RHS apply.  Each column of the batched result is bit-identical
  to a solo evaluation (see :mod:`repro.core.contract`), so batching is
  invisible to callers except in latency.
* a **scheduler** (:mod:`repro.serve.scheduler`): bounded admission
  (typed :class:`~repro.serve.scheduler.Overloaded`), per-request
  deadlines, weighted-fair dequeue across tenants, and a plain-thread
  worker pool.
* **metrics** (:mod:`repro.serve.metrics`): latency quantiles,
  throughput, batch-size distribution, plan-cache hit rate.

Degraded mode: construct with a :class:`~repro.mpi.faults.FaultPlan` and
worker applies run on the chaos fabric's phase hooks — injected faults
surface as typed transient errors inside the worker, which retries the
whole batch under a :class:`~repro.mpi.faults.RetryPolicy` (re-entering
a phase advances the per-(worker, phase) trigger counter, so planned
faults fire their quota and the retry converges).  Accepted requests
either complete bit-identically or fail with a typed error — never
silently wrong, never hung.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

import numpy as np

from repro.core.parallel import shared_pool
from repro.core.plan import PrecisionError
from repro.mpi.faults import ChaosFabric, FaultPlan, RetryPolicy, TRANSIENT_ERRORS
from repro.serve.batcher import MicroBatcher
from repro.serve.metrics import ServeMetrics
from repro.serve.scheduler import (
    DeadlineExceeded,
    FairQueue,
    Overloaded,
    Request,
    UnknownModel,
    WorkerPool,
    retry_after_hint,
)
from repro.util.timer import PhaseProfile

__all__ = ["PlanCache", "RegisteredModel", "ServeEngine"]

#: Default plan-cache budget: enough for a handful of mid-size models.
PLAN_BUDGET = 2 * 2**30


class ModelGeometry:
    """Immutable (points, tree+lists, fmm, version) snapshot of one model.

    Workers read ``model.geometry`` exactly once per batch and use only
    that snapshot, so :meth:`ServeEngine.update_geometry` and
    :meth:`ServeEngine.apply_tuned_config` can swap the attribute
    between batches without a reader ever seeing points from one step
    paired with a plan from another.  The ``fmm`` rides in the snapshot
    for the same reason: a tuned-config swap replaces the kernel
    configuration (order, leaf size, precision) together with the tree it
    built, and a worker must never pair an old fmm with a new tree.
    """

    __slots__ = ("points", "plan", "version", "fmm", "tuned")

    def __init__(self, points, plan, version=0, fmm=None, tuned=None):
        self.points = points
        self.plan = plan  # FmmPlan (tree + lists)
        self.version = int(version)
        self.fmm = fmm
        # The TuneConfig active for this snapshot (None untuned).  It
        # rides here — not only on the model — because its knobs
        # (VLI_MULTI_BYTES chunking, matrix budget) shape the compiled
        # plan: a worker recompiling a cache-evicted plan for an *old*
        # snapshot must use the old knobs, or answers under one geometry
        # version could differ bit-wise across recompiles.
        self.tuned = tuned


class RegisteredModel:
    """One served model: geometry, kernel configuration, built tree.

    ``precision`` is the model's default plan precision; ``"auto"`` is
    resolved to a concrete choice at registration time (one calibration
    probe on the model's own tree), so every submit sees ``"fp64"`` or
    ``"fp32"``.  ``allowed`` is the set of precisions per-request
    overrides may pick; anything else is rejected at submit with a typed
    :class:`~repro.core.plan.PrecisionError`.

    ``geometry`` holds the current :class:`ModelGeometry`; ``points`` and
    ``plan`` delegate to it so existing callers keep working, but any
    code pairing the two must snapshot ``geometry`` once instead.
    """

    __slots__ = ("name", "geometry", "expected", "precision",
                 "allowed", "compile_s", "update_lock", "tuned", "slo")

    @property
    def points(self):
        return self.geometry.points

    @property
    def plan(self):
        return self.geometry.plan

    @property
    def fmm(self):
        # lives on the geometry snapshot: a tuned-config swap replaces
        # fmm and tree together, so pairing code must snapshot geometry
        return self.geometry.fmm

    def __init__(self, name, fmm, points, precision="fp64", allowed=None):
        if precision not in ("fp64", "fp32", "auto"):
            raise PrecisionError(
                f"model {name!r}: precision must be 'fp64', 'fp32' or "
                f"'auto', got {precision!r}"
            )
        self.allowed = (
            frozenset(("fp64", "fp32")) if allowed is None
            else frozenset(allowed)
        )
        if not self.allowed or not self.allowed <= {"fp64", "fp32"}:
            raise PrecisionError(
                f"model {name!r}: allowed must be a non-empty subset of "
                f"{{'fp64', 'fp32'}}, got {sorted(self.allowed)}"
            )
        self.name = name
        pts = np.asarray(points, dtype=np.float64)
        self.geometry = ModelGeometry(pts, fmm.plan(pts), version=0, fmm=fmm)
        self.expected = self.plan.tree.n_points * fmm.kernel.source_dim
        self.compile_s = None  # from-scratch plan-compile baseline
        self.update_lock = threading.Lock()  # serialises update_geometry
        self.tuned = None  # active TuneConfig (autotuned models only)
        self.slo = None  # the SLO the model was tuned against
        if precision == "auto":
            from repro.util.timer import PhaseProfile

            precision = fmm.evaluator._resolve_auto(
                self.plan.tree, PhaseProfile()
            )
            if precision not in self.allowed:
                # the calibrated pick is disallowed: snap to what is
                # (fp64 wins ties — it always meets the error target)
                precision = "fp64" if "fp64" in self.allowed else "fp32"
        elif precision not in self.allowed:
            raise PrecisionError(
                f"model {name!r}: default precision {precision!r} is not "
                f"in allowed {sorted(self.allowed)}"
            )
        self.precision = precision


class PlanCache:
    """LRU cache of compiled :class:`~repro.core.plan.EvalPlan` objects.

    Entries are charged their ``plan.nbytes`` at insert (the lazily
    compiled W-list section can grow a plan afterwards; the snapshot is
    deliberate — eviction is a budget heuristic, not an allocator).
    Compilation runs outside the cache lock under a per-model lock, so
    two workers missing on the same model produce one compile while other
    models stay servable; eviction never removes the entry being
    inserted, so a single over-budget plan still serves (the cache just
    holds nothing else).
    """

    def __init__(self, budget_bytes: int = PLAN_BUDGET, metrics=None):
        self.budget = int(budget_bytes)
        self._metrics = metrics
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[object, int]] = OrderedDict()
        self._compile_locks: dict[str, threading.Lock] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    @property
    def nbytes(self) -> int:
        with self._lock:
            return sum(nb for _, nb in self._entries.values())

    def entries(self) -> dict[str, int]:
        """Charged bytes per cached key (a point-in-time snapshot)."""
        with self._lock:
            return {k: nb for k, (_, nb) in self._entries.items()}

    def invalidate(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)

    def invalidate_prefix(self, prefix: str) -> None:
        """Drop every entry whose key starts with ``prefix`` (all stale
        geometry versions / precisions of one model at once)."""
        with self._lock:
            for key in [k for k in self._entries if k.startswith(prefix)]:
                del self._entries[key]

    def peek(self, name: str):
        """The cached plan for ``name`` or ``None`` — no compile, no
        metrics (geometry patching inspects the old version this way)."""
        with self._lock:
            hit = self._entries.get(name)
            return None if hit is None else hit[0]

    def put(self, name: str, plan) -> None:
        """Insert ``plan`` under ``name``, evicting LRU entries over
        budget (never the fresh insert itself)."""
        nb = plan.nbytes
        with self._lock:
            self._entries[name] = (plan, nb)
            self._entries.move_to_end(name)
            total = sum(b for _, b in self._entries.values())
            while total > self.budget and len(self._entries) > 1:
                evicted, (_, eb) = self._entries.popitem(last=False)
                if evicted == name:  # never evict the fresh insert
                    self._entries[name] = (plan, nb)
                    self._entries.move_to_end(name, last=False)
                    break
                total -= eb

    def get(self, name: str, compile_fn):
        """The cached plan for ``name``, compiling via ``compile_fn`` on miss."""
        with self._lock:
            hit = self._entries.get(name)
            if hit is not None:
                self._entries.move_to_end(name)
                if self._metrics is not None:
                    self._metrics.record_plan_lookup(True)
                return hit[0]
            if self._metrics is not None:
                self._metrics.record_plan_lookup(False)
            clock = self._compile_locks.setdefault(name, threading.Lock())
        with clock:
            with self._lock:  # a racing worker may have compiled meanwhile
                hit = self._entries.get(name)
                if hit is not None:
                    self._entries.move_to_end(name)
                    return hit[0]
            plan = compile_fn()
            self.put(name, plan)
            return plan


class ServeEngine:
    """Batching, admission-controlled FMM evaluation service.

    Parameters
    ----------
    n_workers:
        Worker threads.  On one core they overlap queue waits with
        compute; throughput comes from batching, not parallelism.
    max_queue:
        Admission bound; :meth:`submit` raises
        :class:`~repro.serve.scheduler.Overloaded` beyond it.
    max_batch / max_wait_ms:
        Micro-batching flush triggers (see
        :class:`~repro.serve.batcher.MicroBatcher`).
    plan_budget:
        Byte budget of the :class:`PlanCache`.
    tenant_weights:
        Weighted-fair shares for :class:`~repro.serve.scheduler.FairQueue`.
    faults / retry:
        Optional :class:`~repro.mpi.faults.FaultPlan` (degraded-mode
        chaos on the worker applies) and the
        :class:`~repro.mpi.faults.RetryPolicy` bounding recovery.
    trace:
        Optional :class:`~repro.perf.trace.TraceRecorder`; workers emit
        ``SERVE:apply:<model>`` spans plus the usual per-phase spans.
    threads:
        Intra-rank parallelism for the worker applies: every registered
        model's evaluator routes its plan tiles through **one**
        process-wide :func:`~repro.core.parallel.shared_pool` of this
        width — workers coordinate on the shared executor instead of
        nesting per-model pools, so total compute threads stay bounded
        at ``threads`` no matter how many workers are mid-apply.
        Results remain bit-identical to serial.  ``None`` (default)
        keeps single-threaded applies.
    """

    def __init__(
        self,
        n_workers: int = 2,
        max_queue: int = 64,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        plan_budget: int = PLAN_BUDGET,
        tenant_weights: dict | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        trace=None,
        matrix_budget: int | None = None,
        threads: int | None = None,
    ):
        self.metrics = ServeMetrics()
        self.n_workers = int(n_workers)
        self.threads = None if threads is None else max(1, int(threads))
        self.task_pool = (
            shared_pool(self.threads) if self.threads is not None else None
        )
        self.max_batch = int(max_batch)
        self.queue = FairQueue(max_depth=max_queue, weights=tenant_weights)
        self.plans = PlanCache(plan_budget, metrics=self.metrics)
        #: Per-model (max_batch, max_wait_ms) overrides — the autotuner
        #: owns a model's batch shape; untouched models use the engine
        #: defaults.
        self._batch_limits: dict[str, tuple[int, float]] = {}
        self.batcher = MicroBatcher(
            self.queue, max_batch=max_batch, max_wait_ms=max_wait_ms,
            limits=self._batch_limits.get,
        )
        self.retry = retry if retry is not None else RetryPolicy()
        #: Kernel-matrix cache budget per compiled plan (None = the
        #: compiler default).  Serving throughput lives on fully cached
        #: near-field blocks, so benches raise this well past the
        #: single-shot default.
        self.matrix_budget = matrix_budget
        self._models: dict[str, RegisteredModel] = {}
        self._models_lock = threading.Lock()
        # per-model tuning context (grid/seed/store/...) for online re-tunes
        self._tune_ctx: dict[str, dict] = {}
        self._monitors: dict[str, object] = {}
        self._trace = trace
        self._fabric = (
            ChaosFabric(n_workers, faults) if faults is not None else None
        )
        self._profiles = [PhaseProfile() for _ in range(n_workers)]
        for rank, prof in enumerate(self._profiles):
            if trace is not None:
                prof.bind_trace(trace, rank=rank)
            if self._fabric is not None:
                prof.bind_chaos(self._fabric.on_phase, rank=rank)
        if self._fabric is not None:
            self._fabric.bind(self._profiles, trace)
        self.pool = WorkerPool(n_workers, self._worker)
        self.metrics.bind_pools(
            task_pool=(
                self.task_pool.stats if self.task_pool is not None else None
            ),
            workers=self.pool.stats,
        )
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServeEngine":
        if not self._started:
            self._started = True
            self.pool.start()
        return self

    def stop(self) -> None:
        """Stop accepting work and join the workers (queued requests that
        no worker picks up before shutdown fail with ``Overloaded``)."""
        for mon in self._monitors.values():
            mon.stop()
        self.queue.close()
        self.pool.stop()
        while True:  # drain: nothing may be left hanging
            req = self.queue.pop(timeout=0.0)
            if req is None:
                break
            req.set_error(Overloaded("engine stopped before request ran"))

    def __enter__(self) -> "ServeEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def fault_events(self):
        """Injected-fault log (empty when no FaultPlan was configured)."""
        return self._fabric.fault_events if self._fabric is not None else []

    # -- models ------------------------------------------------------------

    def register(
        self,
        name: str,
        fmm,
        points,
        warm: bool = True,
        precision: str = "fp64",
        allowed=None,
        slo=None,
        store=None,
        tune_grid=None,
        tune_seed: int = 0,
        tune_measure: bool = True,
    ):
        """Register ``name`` as (kernel config, geometry); builds the tree
        now and, with ``warm``, compiles its evaluation plan into the
        cache so the first request already runs at amortised speed.

        ``precision`` sets the model's default plan precision (``"auto"``
        calibrates once, now); ``allowed`` restricts the per-request
        overrides (e.g. ``{"fp32"}`` for an fp32-only model — fp64
        requests then fail typed at submit).

        ``slo`` (a :class:`repro.tune.search.SLO`) turns the autotuner
        on: ``fmm`` becomes a *template* (kernel, M2L mode, eval kernel)
        and the search picks order, leaf size, precision and batch shape
        against the SLO, consulting ``store`` (a
        :class:`repro.tune.store.TuneStore`) first and persisting a fresh
        result into it.  ``tune_grid`` / ``tune_seed`` / ``tune_measure``
        forward to :func:`repro.tune.search.tune`; the same context is
        reused by online re-tunes (:meth:`retune`).
        """
        report = None
        if slo is not None:
            fmm, report = self._tune_at_register(
                name, fmm, points, allowed, slo, store,
                tune_grid, tune_seed, tune_measure,
            )
            precision = fmm.evaluator.precision
        self._bind_pool(fmm)
        model = RegisteredModel(
            name, fmm, points, precision=precision, allowed=allowed
        )
        if slo is not None:
            model.slo = slo
            model.tuned = report.config if report is not None else None
            # not yet published to _models: safe to stamp the snapshot
            model.geometry.tuned = model.tuned
            if model.tuned is not None:
                self._batch_limits[name] = (
                    model.tuned.max_batch, model.tuned.max_wait_ms
                )
        with self._models_lock:
            self._models[name] = model
        # stale plans of a replaced model, all precisions and versions
        self.plans.invalidate_prefix(f"{name}@")
        self.plans.invalidate_prefix(f"{name}#g")
        if warm:
            t0 = time.perf_counter()
            self._plan_for(model)
            # the from-scratch compile baseline patch_fraction divides by
            model.compile_s = time.perf_counter() - t0
        return model

    def _tune_at_register(
        self, name, template, points, allowed, slo, store,
        tune_grid, tune_seed, tune_measure,
    ):
        """Resolve the tuned config for a new model (store hit or search)
        and build the tuned Fmm from the template's kernel setup."""
        from repro.tune.search import default_grid
        from repro.tune.search import tune as tune_search
        from repro.tune.store import geometry_fingerprint

        pts = np.asarray(points, dtype=np.float64)
        grid = tune_grid if tune_grid is not None else default_grid(len(pts))
        if allowed is not None:  # the tuner must honour the precision policy
            grid = [c for c in grid if c.precision in set(allowed)]
            if not grid:
                raise PrecisionError(
                    f"model {name!r}: tuning grid has no config with an "
                    f"allowed precision ({sorted(set(allowed))})"
                )
        fingerprint = geometry_fingerprint(pts)
        kernel_name = getattr(template.kernel, "name", "kernel")
        config = (
            store.get(fingerprint, kernel_name, slo)
            if store is not None else None
        )
        report = None
        if config is None:
            report = tune_search(
                pts, kernel=template.kernel, slo=slo, grid=grid,
                seed=tune_seed, measure=tune_measure,
            )
            config = report.config
            if store is not None:
                store.put(
                    fingerprint, kernel_name, slo, config,
                    report=report.to_dict(),
                )
        else:
            from repro.tune.search import TuneReport

            report = TuneReport(config=config, slo=slo, seed=tune_seed)
        self._tune_ctx[name] = {
            "grid": grid,
            "seed": int(tune_seed),
            "store": store,
            "measure": bool(tune_measure),
            "fingerprint": fingerprint,
            "kernel_name": kernel_name,
        }
        return self._fmm_like(template, config), report

    def _bind_pool(self, fmm) -> None:
        """Route ``fmm``'s plan applies through the engine's shared tile
        pool (no-op when the engine was built without ``threads=``)."""
        if self.task_pool is not None:
            fmm.evaluator.set_pool(self.task_pool)

    @staticmethod
    def _fmm_like(template, config):
        """A fresh :class:`~repro.core.fmm.Fmm` with ``config``'s knobs and
        ``template``'s kernel setup (kernel, M2L mode, eval kernel)."""
        from repro.core.fmm import Fmm

        ev = template.evaluator
        return Fmm(
            template.kernel,
            order=config.order,
            max_points_per_box=config.max_points,
            m2l_mode=ev.m2l_mode,
            max_depth=template.max_depth,
            eval_kernel=(
                None if ev.eval_kernel is ev.kernel else ev.eval_kernel
            ),
            balance_tree=template.balance_tree,
            precision=config.precision,
        )

    def models(self) -> list[str]:
        with self._models_lock:
            return sorted(self._models)

    def _model(self, name: str) -> RegisteredModel:
        with self._models_lock:
            model = self._models.get(name)
        if model is None:
            raise UnknownModel(
                f"model {name!r} is not registered (have: {self.models()})"
            )
        return model

    @staticmethod
    def _plan_key(name: str, version: int, precision: str) -> str:
        """Cache key for one (model, geometry version, precision)."""
        base = name if version == 0 else f"{name}#g{version}"
        return f"{base}@{precision}"

    def _plan_for(
        self,
        model: RegisteredModel,
        precision: str | None = None,
        geom: ModelGeometry | None = None,
    ):
        geom = model.geometry if geom is None else geom
        tuned = geom.tuned
        if tuned is not None:
            kwargs = {"matrix_budget": tuned.matrix_budget}
        elif self.matrix_budget is not None:
            kwargs = {"matrix_budget": self.matrix_budget}
        else:
            kwargs = {}
        precision = model.precision if precision is None else precision

        def compile_fn():
            ep = geom.fmm.compile_eval_plan(
                geom.plan, precision=precision, **kwargs
            )
            if tuned is not None:  # instance override of the class knob
                ep.VLI_MULTI_BYTES = tuned.vli_multi_bytes
            return ep

        # plans of the same model at different precisions (and geometry
        # versions) are distinct cache entries, each charged its own
        # (dtype-honest) byte count
        return self.plans.get(
            self._plan_key(model.name, geom.version, precision),
            compile_fn,
        )

    def plan_stats(self) -> dict:
        """Per-model active config and cached plan bytes (metrics export)."""
        with self._models_lock:
            models = dict(self._models)
        cached = self.plans.entries()
        out = {}
        for name, model in models.items():
            geom = model.geometry
            version = geom.version
            batch, wait = self._batch_limits.get(
                name, (self.max_batch, self.batcher.max_wait_s * 1e3)
            )
            out[name] = {
                "precision": model.precision,
                "allowed": sorted(model.allowed),
                "geometry_version": version,
                # the active config: what the tuner (or the caller) chose
                "config": {
                    "order": geom.fmm.order,
                    "max_points": geom.fmm.max_points_per_box,
                    "precision": model.precision,
                    "max_batch": int(batch),
                    "max_wait_ms": float(wait),
                    "tuned": (
                        model.tuned.to_dict()
                        if model.tuned is not None else None
                    ),
                    "slo": (
                        model.slo.to_dict() if model.slo is not None
                        else None
                    ),
                },
                "plan_bytes": {
                    prec: cached[self._plan_key(name, version, prec)]
                    for prec in ("fp64", "fp32")
                    if self._plan_key(name, version, prec) in cached
                },
            }
        return out

    # -- dynamic geometry ----------------------------------------------------

    def update_geometry(self, name: str, new_points, moved=None) -> dict:
        """Move ``name``'s sources and patch its plans off the hot path.

        ``new_points`` is the full point array in the model's original
        point order (same shape — rebuild via :meth:`register` for
        insertions or deletions); ``moved`` optionally names the rows
        that changed.  The tree is delta-sorted and locally rebuilt, the
        interaction lists are patched around the dirty subtrees, and
        every cached evaluation plan is re-derived by
        :func:`~repro.core.plan.patch_plan` — bit-identical to a fresh
        compile but reusing each kernel-matrix block whose boxes
        survived untouched.  All of that happens *here*, concurrently
        with serving: workers keep evaluating on the old geometry
        snapshot until the atomic swap, so in-flight batches finish on
        the plan they started with and the next batch sees the new
        geometry.  Returns a summary dict (patch seconds, reuse stats,
        new version).
        """
        model = self._model(name)
        new_points = np.asarray(new_points, dtype=np.float64)
        with model.update_lock:  # one geometry update at a time per model
            old = model.geometry
            t0 = time.perf_counter()
            new_plan, delta = model.fmm.update_plan(
                old.plan, new_points, moved=moved
            )
            version = old.version + 1
            kwargs = (
                {} if self.matrix_budget is None
                else {"matrix_budget": self.matrix_budget}
            )
            patched = {}
            stats = {}
            for prec in ("fp64", "fp32"):
                old_eval = self.plans.peek(
                    self._plan_key(name, old.version, prec)
                )
                if old_eval is None:
                    continue  # cold precision: recompiles lazily on demand
                ep = model.fmm.patch_eval_plan(
                    old_eval, old.plan, new_plan, delta=delta,
                    precision=prec, **kwargs,
                )
                patched[prec] = ep
                stats[prec] = dict(ep.patch_stats)
            # Publication order matters: insert the new-version plans,
            # then swap the geometry snapshot, then drop the old keys.
            # A worker racing this sees either (old geom, old plan) or
            # (new geom, new plan) — never a torn pair — and an evicted
            # new-version plan merely recompiles on first use.
            for prec, ep in patched.items():
                self.plans.put(self._plan_key(name, version, prec), ep)
            patch_s = time.perf_counter() - t0
            model.geometry = ModelGeometry(
                new_points, new_plan, version, fmm=old.fmm, tuned=old.tuned
            )
            self.plans.invalidate_prefix(
                self._plan_key(name, old.version, "")
            )
            fraction = (
                patch_s / model.compile_s if model.compile_s else None
            )
            self.metrics.record_geometry_update(name, patch_s, fraction)
        return {
            "version": version,
            "patch_s": patch_s,
            "patch_fraction": fraction,
            "n_moved": int(delta.n_moved) if delta.n_moved >= 0 else None,
            "refinement_changed": bool(delta.refinement_changed),
            "plans_patched": sorted(patched),
            "patch_stats": stats,
        }

    # -- online autotuning ---------------------------------------------------

    def apply_tuned_config(self, name: str, config, report=None) -> dict:
        """Swap ``name`` onto ``config`` atomically, off the hot path.

        Builds the tuned Fmm, its tree and its evaluation plan *before*
        publishing anything, then performs the same batch-boundary
        snapshot swap as :meth:`update_geometry`: plans for the new
        version enter the cache first, the geometry snapshot (which
        carries the new fmm) swaps second, stale keys drop last.  Workers
        mid-batch keep the old snapshot — their answers stay bit-exact
        for the config version they started under — and the next batch
        sees the new config.
        """
        model = self._model(name)
        with model.update_lock:
            old = model.geometry
            if model.tuned is not None and config == model.tuned:
                return {"version": old.version, "swapped": False}
            t0 = time.perf_counter()
            new_fmm = self._fmm_like(old.fmm, config)
            self._bind_pool(new_fmm)
            new_plan = new_fmm.plan(old.points)
            version = old.version + 1
            ep = new_fmm.compile_eval_plan(
                new_plan, precision=config.precision,
                matrix_budget=config.matrix_budget,
            )
            ep.VLI_MULTI_BYTES = config.vli_multi_bytes
            # Publication order (see update_geometry): new plan in cache,
            # then the snapshot swap, then stale-key cleanup.
            self.plans.put(
                self._plan_key(name, version, config.precision), ep
            )
            model.geometry = ModelGeometry(
                old.points, new_plan, version, fmm=new_fmm, tuned=config
            )
            model.tuned = config
            model.precision = config.precision
            self._batch_limits[name] = (
                config.max_batch, config.max_wait_ms
            )
            self.plans.invalidate_prefix(
                self._plan_key(name, old.version, "")
            )
            swap_s = time.perf_counter() - t0
            self.metrics.record_config_swap(name, swap_s)
        return {
            "version": version,
            "swapped": True,
            "tune_s": swap_s,
            "config": config.to_dict(),
            "report": report.to_dict() if report is not None else None,
        }

    def retune(self, name: str, observed_s: float | None = None) -> dict:
        """Bounded off-hot-path re-tune of ``name`` against its SLO.

        The monitor calls this on sustained drift; operators can call it
        directly.  Probes run in the calling thread (never a worker), the
        swap is atomic, and the tuned store — if one was given at
        registration — is refreshed under the model's *current* geometry
        fingerprint.
        """
        from repro.tune.search import tune as tune_search
        from repro.tune.store import geometry_fingerprint

        model = self._model(name)
        if model.slo is None:
            raise ValueError(
                f"model {name!r} was not registered with an SLO; "
                f"nothing to retune against"
            )
        ctx = self._tune_ctx.get(name, {})
        geom = model.geometry
        report = tune_search(
            geom.points,
            kernel=geom.fmm.kernel,
            slo=model.slo,
            grid=ctx.get("grid"),
            seed=ctx.get("seed", 0),
            measure=ctx.get("measure", True),
        )
        result = self.apply_tuned_config(name, report.config, report=report)
        store = ctx.get("store")
        if store is not None:
            fingerprint = geometry_fingerprint(geom.points)
            ctx["fingerprint"] = fingerprint
            store.put(
                fingerprint, ctx.get("kernel_name", "kernel"), model.slo,
                report.config, report=report.to_dict(),
            )
        result["observed_s"] = observed_s
        return result

    def start_monitor(
        self,
        name: str,
        interval_s: float = 1.0,
        sustain: int = 3,
        cooldown_s: float = 30.0,
    ):
        """Attach (and start) an SLO drift monitor for ``name``.

        Returns the :class:`repro.tune.monitor.SloMonitor`; it polls the
        sliding-window latency percentile and calls :meth:`retune` on
        sustained drift.  Stopped automatically by :meth:`stop`.
        """
        from repro.tune.monitor import SloMonitor

        model = self._model(name)
        if model.slo is None:
            raise ValueError(
                f"model {name!r} was not registered with an SLO"
            )
        mon = self._monitors.get(name)
        if mon is not None:
            mon.stop()
        mon = SloMonitor(
            self.metrics, name, model.slo,
            retune=lambda m, p: self.retune(m, observed_s=p),
            interval_s=interval_s, sustain=sustain, cooldown_s=cooldown_s,
        )
        self._monitors[name] = mon
        return mon.start()

    # -- submission --------------------------------------------------------

    def submit(
        self,
        model: str,
        density: np.ndarray,
        tenant: str = "default",
        timeout_s: float | None = None,
        precision: str | None = None,
    ) -> Request:
        """Enqueue one density vector; returns a :class:`Request` future.

        Raises :class:`UnknownModel` / :class:`ValueError` on bad input
        and :class:`Overloaded` when the queue is full.  ``timeout_s``
        sets the request deadline: requests a worker cannot reach in time
        fail with :class:`DeadlineExceeded` instead of completing late.

        ``precision`` overrides the model's default plan precision for
        this request (``"auto"`` defers to the model's calibrated
        choice); a precision outside the model's ``allowed`` set raises
        :class:`~repro.core.plan.PrecisionError` at submit — e.g. an
        fp64 request against an fp32-only model is rejected typed, never
        silently evaluated at the wrong precision.
        """
        m = self._model(model)
        if precision is None or precision == "auto":
            precision = m.precision
        elif precision not in ("fp64", "fp32"):
            raise PrecisionError(
                f"precision must be 'fp64', 'fp32' or 'auto', "
                f"got {precision!r}"
            )
        if precision not in m.allowed:
            raise PrecisionError(
                f"model {model!r} does not allow precision {precision!r} "
                f"(allowed: {sorted(m.allowed)})"
            )
        dens = np.asarray(density, dtype=np.float64).reshape(-1)
        if dens.size != m.expected:
            raise ValueError(
                f"model {model!r}: densities shape "
                f"{np.asarray(density).shape} has {dens.size} values, "
                f"expected n_points*source_dim = {m.expected}"
            )
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        req = Request(
            model, dens, tenant=tenant, deadline=deadline, precision=precision
        )
        try:
            self.queue.push(req)
        except Overloaded as err:
            self.metrics.record_rejected()
            # annotate the rejection with a backpressure estimate: queued
            # depth x observed p95 service time / (workers x batch width)
            err.retry_after_s = retry_after_hint(
                self.queue.depth,
                self.metrics.service_p95(),
                self.n_workers * self.max_batch,
            )
            raise
        self.metrics.record_queue_depth(self.queue.depth)
        return req

    def evaluate(
        self,
        model: str,
        density: np.ndarray,
        tenant: str = "default",
        timeout_s: float | None = None,
        precision: str | None = None,
    ) -> np.ndarray:
        """Blocking :meth:`submit` + result."""
        return self.submit(
            model, density, tenant, timeout_s, precision=precision
        ).result(timeout=None if timeout_s is None else timeout_s + 60.0)

    # -- workers -----------------------------------------------------------

    def _worker(self, worker_id: int) -> None:
        batch = self.batcher.collect()
        if not batch:
            return
        now = time.monotonic()
        live = []
        for req in batch:
            if req.expired(now):
                self.metrics.record_expired(req.model)
                req.set_error(
                    DeadlineExceeded(
                        f"request for model {req.model!r} expired after "
                        f"{now - req.enqueued:.3f}s in queue"
                    )
                )
            else:
                live.append(req)
        if not live:
            return
        model = self._model(live[0].model)
        precision = live[0].precision  # batches never mix precisions
        profile = self._profiles[worker_id]
        q = len(live)
        for req in live:
            req.batch_size = q
            req.wait_s = now - req.enqueued
        dens_block = np.stack([r.density for r in live], axis=1)
        attempts = 0
        causes: list[str] = []
        # One geometry snapshot for the whole batch: points, tree/lists,
        # the fmm and the compiled plan all come from it, so a concurrent
        # update_geometry or tuned-config swap cannot tear the set
        # mid-batch.
        geom = model.geometry
        while True:
            attempts += 1
            try:
                eval_plan = self._plan_for(model, precision, geom)
                with profile.phase(f"SERVE:apply:{model.name}"):
                    pot = geom.fmm.evaluate(
                        geom.points,
                        dens_block,
                        plan=geom.plan,
                        eval_plan=eval_plan,
                        profile=profile,
                    )
                break
            except TRANSIENT_ERRORS as err:
                if (
                    attempts >= self.retry.max_attempts
                    or not isinstance(err, self.retry.retry_on)
                ):
                    for req in live:
                        self.metrics.record_failed(req.model)
                        req.set_error(err)
                    return
                causes.append(type(err).__name__)
                delay = self.retry.delay(attempts)
                if delay > 0.0:
                    time.sleep(delay)
            except Exception as err:  # non-transient: fail fast, typed
                for req in live:
                    self.metrics.record_failed(req.model)
                    req.set_error(err)
                return
        done = time.monotonic()
        for cause in causes:
            self.metrics.record_retry(cause)
        for j, req in enumerate(live):
            req.set_result(np.ascontiguousarray(pot[:, j]))
            self.metrics.record_completed(
                req.model, done - req.enqueued, req.wait_s, q
            )
