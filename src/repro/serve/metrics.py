"""Serving observability: latency histograms, throughput, cache hit rates.

The serving engine is judged on tail latency and batching efficiency, so
:class:`ServeMetrics` keeps exactly the counters needed to see both:

* per-model **latency samples** (end-to-end: enqueue to completion) with
  p50 / p95 / p99 quantiles,
* per-model **batch-size distribution** — the mean is the direct measure
  of how much multi-RHS coalescing the batcher achieved,
* engine-wide counters: completed / rejected / failed / retried requests,
  plan-cache hits and misses, and a queue-depth gauge sampled at submit.

Everything is a plain counter under one lock — cheap enough to update per
request — and exports to a JSON-friendly dict (``python -m repro serve``
writes it as ``BENCH_serving.json``).  Workers additionally emit
``SERVE:*`` spans through the existing :class:`~repro.perf.trace.
TraceRecorder` machinery, so serving runs are inspectable with the same
``python -m repro trace`` tooling as SPMD runs.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["ServeMetrics"]

#: Retain at most this many latency / batch samples per model (newest
#: win); bounds memory for long-running engines while keeping quantile
#: estimates sharp at bench scale.
MAX_SAMPLES = 100_000


class _ModelStats:
    __slots__ = ("latencies", "waits", "batch_sizes", "completed", "failed")

    def __init__(self):
        self.latencies: list[float] = []
        self.waits: list[float] = []
        self.batch_sizes: list[int] = []
        self.completed = 0
        self.failed = 0


def _quantiles(samples: list[float]) -> dict:
    if not samples:
        return {"p50": None, "p95": None, "p99": None, "mean": None}
    arr = np.asarray(samples)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "mean": float(arr.mean()),
    }


class ServeMetrics:
    """Thread-safe counters for one :class:`~repro.serve.engine.ServeEngine`."""

    def __init__(self):
        self._lock = threading.Lock()
        self._models: dict[str, _ModelStats] = {}
        self.rejected = 0  # Overloaded at admission
        self.expired = 0  # DeadlineExceeded at dequeue
        self.retried = 0  # transient-fault retries that later succeeded
        self.plan_hits = 0
        self.plan_misses = 0
        self.queue_depth_sum = 0
        self.queue_depth_samples = 0
        self.queue_depth_peak = 0

    def _stats(self, model: str) -> _ModelStats:
        st = self._models.get(model)
        if st is None:
            st = self._models[model] = _ModelStats()
        return st

    # -- recording ---------------------------------------------------------

    def record_completed(
        self, model: str, latency_s: float, wait_s: float, batch_size: int
    ) -> None:
        with self._lock:
            st = self._stats(model)
            st.completed += 1
            st.latencies.append(latency_s)
            st.waits.append(wait_s)
            st.batch_sizes.append(int(batch_size))
            if len(st.latencies) > MAX_SAMPLES:
                del st.latencies[: MAX_SAMPLES // 2]
                del st.waits[: MAX_SAMPLES // 2]
                del st.batch_sizes[: MAX_SAMPLES // 2]

    def record_failed(self, model: str) -> None:
        with self._lock:
            self._stats(model).failed += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_expired(self, model: str) -> None:
        with self._lock:
            self.expired += 1
            self._stats(model).failed += 1

    def record_retry(self) -> None:
        with self._lock:
            self.retried += 1

    def record_plan_lookup(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.plan_hits += 1
            else:
                self.plan_misses += 1

    def record_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth_sum += depth
            self.queue_depth_samples += 1
            self.queue_depth_peak = max(self.queue_depth_peak, depth)

    # -- export ------------------------------------------------------------

    def snapshot(self, elapsed_s: float | None = None) -> dict:
        """JSON-friendly summary of everything recorded so far."""
        with self._lock:
            total_completed = sum(st.completed for st in self._models.values())
            total_failed = sum(st.failed for st in self._models.values())
            lookups = self.plan_hits + self.plan_misses
            out = {
                "completed": total_completed,
                "failed": total_failed,
                "rejected": self.rejected,
                "expired": self.expired,
                "retried": self.retried,
                "plan_cache": {
                    "hits": self.plan_hits,
                    "misses": self.plan_misses,
                    "hit_rate": (
                        self.plan_hits / lookups if lookups else None
                    ),
                },
                "queue_depth": {
                    "mean": (
                        self.queue_depth_sum / self.queue_depth_samples
                        if self.queue_depth_samples
                        else None
                    ),
                    "peak": self.queue_depth_peak,
                },
                "models": {},
            }
            if elapsed_s is not None and elapsed_s > 0:
                out["throughput_rps"] = total_completed / elapsed_s
            for name, st in self._models.items():
                bs = np.asarray(st.batch_sizes) if st.batch_sizes else None
                out["models"][name] = {
                    "completed": st.completed,
                    "failed": st.failed,
                    "latency_s": _quantiles(st.latencies),
                    "queue_wait_s": _quantiles(st.waits),
                    "batch_size": {
                        "mean": float(bs.mean()) if bs is not None else None,
                        "max": int(bs.max()) if bs is not None else None,
                        "hist": (
                            {
                                int(v): int(c)
                                for v, c in zip(
                                    *np.unique(bs, return_counts=True)
                                )
                            }
                            if bs is not None
                            else {}
                        ),
                    },
                }
            return out
