"""Serving observability: latency histograms, throughput, cache hit rates.

The serving engine is judged on tail latency and batching efficiency, so
:class:`ServeMetrics` keeps exactly the counters needed to see both:

* per-model **latency samples** (end-to-end: enqueue to completion) with
  p50 / p95 / p99 quantiles, plus queue-wait and service-time samples
  (service = latency minus wait: the time actually spent applying),
* per-model **batch-size distribution** — the mean is the direct measure
  of how much multi-RHS coalescing the batcher achieved,
* engine-wide counters: completed / rejected / failed / retried requests
  (retries broken down by typed cause), plan-cache hits and misses, and
  a queue-depth gauge sampled at submit.

Everything is a plain counter under one lock — cheap enough to update per
request — and exports to a JSON-friendly dict (``python -m repro serve``
writes it as ``BENCH_serving.json``).  Workers additionally emit
``SERVE:*`` spans through the existing :class:`~repro.perf.trace.
TraceRecorder` machinery, so serving runs are inspectable with the same
``python -m repro trace`` tooling as SPMD runs.

**Merge safety.**  The distributed serving plane keeps one
:class:`ServeMetrics` per fabric rank plus one on the router.  Percentiles
do not compose — the mean of per-rank p95s is not the fabric p95 — so
each instance keeps its raw (bounded) sample reservoirs and
:meth:`ServeMetrics.merge` concatenates the reservoirs *at snapshot time*
and computes the quantiles over the union.  Counters sum; the queue-depth
peak is the max of peaks.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

__all__ = ["ServeMetrics"]

#: Retain at most this many latency / batch samples per model (newest
#: win); bounds memory for long-running engines while keeping quantile
#: estimates sharp at bench scale.
MAX_SAMPLES = 100_000

#: Default sliding-window size (last-K completed requests per model).
#: Lifetime reservoirs answer "how did this run go"; the window answers
#: "how is it going *now*" — the SLO monitor's drift detector reads the
#: window, because a latency regression is invisible in a lifetime p95
#: until it has outnumbered the history.
WINDOW_K = 256


class _ModelStats:
    __slots__ = ("latencies", "waits", "services", "batch_sizes",
                 "completed", "failed", "geometry_updates",
                 "patch_seconds", "patch_fractions",
                 "window_latencies", "window_services", "config_swaps")

    def __init__(self, window_k: int = WINDOW_K):
        self.latencies: list[float] = []
        self.waits: list[float] = []
        self.services: list[float] = []
        self.batch_sizes: list[int] = []
        self.completed = 0
        self.failed = 0
        self.geometry_updates = 0
        self.patch_seconds: list[float] = []
        self.patch_fractions: list[float] = []
        # last-K samples only; deque maxlen keeps them recency-bounded
        self.window_latencies: deque[float] = deque(maxlen=window_k)
        self.window_services: deque[float] = deque(maxlen=window_k)
        self.config_swaps = 0


def _quantiles(samples: list[float]) -> dict:
    if not samples:
        return {"p50": None, "p95": None, "p99": None, "mean": None}
    arr = np.asarray(samples)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "mean": float(arr.mean()),
    }


class ServeMetrics:
    """Thread-safe counters for one serving engine (or one fabric rank)."""

    def __init__(self, window_k: int = WINDOW_K):
        self._lock = threading.Lock()
        self._window_k = int(window_k)
        self._models: dict[str, _ModelStats] = {}
        self.rejected = 0  # Overloaded at admission
        self.expired = 0  # DeadlineExceeded at dequeue
        self.retried = 0  # transient-fault retries that later succeeded
        self.retried_by_cause: dict[str, int] = {}
        self.plan_hits = 0
        self.plan_misses = 0
        self.queue_depth_sum = 0
        self.queue_depth_samples = 0
        self.queue_depth_peak = 0
        # live gauge callables (task pool / worker pool) sampled at raw()
        self._pool_stats = None
        self._worker_stats = None

    def bind_pools(self, task_pool=None, workers=None) -> None:
        """Attach live pool-stats callables, sampled at snapshot time.

        ``task_pool`` returns the shared tile executor's gauges (queue
        depth, active tiles — see :meth:`repro.core.parallel.TaskPool.
        stats`); ``workers`` returns the serve
        :class:`~repro.serve.scheduler.WorkerPool` gauges.  Either may be
        ``None``; snapshots then omit that section.
        """
        with self._lock:
            if task_pool is not None:
                self._pool_stats = task_pool
            if workers is not None:
                self._worker_stats = workers

    def _sample_pools(self) -> dict:
        with self._lock:
            pool_fn, worker_fn = self._pool_stats, self._worker_stats
        out = {}
        for key, fn in (("task_pool", pool_fn), ("workers", worker_fn)):
            if fn is None:
                continue
            try:
                out[key] = fn()
            except Exception:
                out[key] = None
        return out

    def _stats(self, model: str) -> _ModelStats:
        st = self._models.get(model)
        if st is None:
            st = self._models[model] = _ModelStats(self._window_k)
        return st

    # -- recording ---------------------------------------------------------

    def record_completed(
        self, model: str, latency_s: float, wait_s: float, batch_size: int
    ) -> None:
        with self._lock:
            st = self._stats(model)
            st.completed += 1
            st.latencies.append(latency_s)
            st.waits.append(wait_s)
            st.services.append(max(latency_s - wait_s, 0.0))
            st.batch_sizes.append(int(batch_size))
            st.window_latencies.append(latency_s)
            st.window_services.append(max(latency_s - wait_s, 0.0))
            if len(st.latencies) > MAX_SAMPLES:
                del st.latencies[: MAX_SAMPLES // 2]
                del st.waits[: MAX_SAMPLES // 2]
                del st.services[: MAX_SAMPLES // 2]
                del st.batch_sizes[: MAX_SAMPLES // 2]

    def record_failed(self, model: str) -> None:
        with self._lock:
            self._stats(model).failed += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_expired(self, model: str) -> None:
        with self._lock:
            self.expired += 1
            self._stats(model).failed += 1

    def record_retry(self, cause: str = "unknown") -> None:
        with self._lock:
            self.retried += 1
            self.retried_by_cause[cause] = (
                self.retried_by_cause.get(cause, 0) + 1
            )

    def record_geometry_update(
        self, model: str, patch_s: float, fraction: float | None = None
    ) -> None:
        """One :meth:`ServeEngine.update_geometry` call on ``model``.

        ``patch_s`` is the off-hot-path plan-patch (or fallback
        recompile) wall time; ``fraction`` is patch time over the
        model's from-scratch compile time — the headline number for the
        dynamic-geometry bench (``None`` when the baseline is unknown).
        """
        with self._lock:
            st = self._stats(model)
            st.geometry_updates += 1
            st.patch_seconds.append(float(patch_s))
            if fraction is not None:
                st.patch_fractions.append(float(fraction))
            if len(st.patch_seconds) > MAX_SAMPLES:
                del st.patch_seconds[: MAX_SAMPLES // 2]
                del st.patch_fractions[: MAX_SAMPLES // 2]

    def record_config_swap(self, model: str, tune_s: float | None = None) -> None:
        """One online re-tune + atomic config swap on ``model``."""
        with self._lock:
            self._stats(model).config_swaps += 1

    def record_plan_lookup(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.plan_hits += 1
            else:
                self.plan_misses += 1

    def record_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth_sum += depth
            self.queue_depth_samples += 1
            self.queue_depth_peak = max(self.queue_depth_peak, depth)

    # -- queries -----------------------------------------------------------

    def service_p95(self, model: str | None = None) -> float | None:
        """Observed p95 service time (seconds) — the retry-after basis."""
        with self._lock:
            if model is not None:
                samples = list(self._models[model].services) \
                    if model in self._models else []
            else:
                samples = [
                    s for st in self._models.values() for s in st.services
                ]
        if not samples:
            return None
        return float(np.percentile(np.asarray(samples), 95.0))

    def window_count(self, model: str) -> int:
        """Samples currently in ``model``'s sliding window."""
        with self._lock:
            st = self._models.get(model)
            return 0 if st is None else len(st.window_latencies)

    def window_quantile(
        self, model: str, pct: float, kind: str = "latencies"
    ) -> float | None:
        """Windowed (last-K) latency or service quantile — the drift
        signal the SLO monitor watches; ``kind`` is ``"latencies"``
        (end-to-end) or ``"services"`` (apply only)."""
        with self._lock:
            st = self._models.get(model)
            if st is None:
                return None
            samples = list(
                st.window_services if kind == "services"
                else st.window_latencies
            )
        if not samples:
            return None
        return float(np.percentile(np.asarray(samples), float(pct)))

    def reset_window(self, model: str) -> None:
        """Drop ``model``'s window samples (after a config swap: pre-swap
        latencies must not re-trigger the monitor against the new
        config).  Lifetime reservoirs are untouched."""
        with self._lock:
            st = self._models.get(model)
            if st is not None:
                st.window_latencies.clear()
                st.window_services.clear()

    # -- export ------------------------------------------------------------

    def raw(self) -> dict:
        """A point-in-time copy of reservoirs and counters, for merging.

        Raw samples — not precomputed percentiles — travel to the
        merge point, so fabric-wide quantiles are computed over the
        union of per-rank reservoirs (percentiles of percentiles would
        be wrong; see the module docstring).
        """
        pools = self._sample_pools()
        with self._lock:
            return {
                "pools": pools,
                "models": {
                    name: {
                        "latencies": list(st.latencies),
                        "waits": list(st.waits),
                        "services": list(st.services),
                        "batch_sizes": list(st.batch_sizes),
                        "completed": st.completed,
                        "failed": st.failed,
                        "geometry_updates": st.geometry_updates,
                        "patch_seconds": list(st.patch_seconds),
                        "patch_fractions": list(st.patch_fractions),
                        "window_latencies": list(st.window_latencies),
                        "window_services": list(st.window_services),
                        "config_swaps": st.config_swaps,
                    }
                    for name, st in self._models.items()
                },
                "rejected": self.rejected,
                "expired": self.expired,
                "retried": self.retried,
                "retried_by_cause": dict(self.retried_by_cause),
                "plan_hits": self.plan_hits,
                "plan_misses": self.plan_misses,
                "queue_depth_sum": self.queue_depth_sum,
                "queue_depth_samples": self.queue_depth_samples,
                "queue_depth_peak": self.queue_depth_peak,
            }

    @classmethod
    def merge(cls, parts, elapsed_s: float | None = None) -> dict:
        """One snapshot over many instances (or :meth:`raw` dicts).

        Sample reservoirs concatenate per model, counters sum, the
        queue-depth peak is the max of peaks — so the merged p99 is the
        p99 of the union of per-rank samples, exactly what a single
        engine observing all the traffic would have reported.
        """
        raws = [p.raw() if isinstance(p, ServeMetrics) else p for p in parts]
        models: dict[str, dict] = {}
        counters = {
            "rejected": 0, "expired": 0, "retried": 0,
            "plan_hits": 0, "plan_misses": 0,
            "queue_depth_sum": 0, "queue_depth_samples": 0,
            "queue_depth_peak": 0,
        }
        by_cause: dict[str, int] = {}
        pools: dict = {}
        for raw in raws:
            # live gauges: first non-None wins per section (the task pool
            # is process-wide shared, so every rank reports the same one)
            for key, val in (raw.get("pools") or {}).items():
                if val is not None and key not in pools:
                    pools[key] = val
            for key in ("rejected", "expired", "retried", "plan_hits",
                        "plan_misses", "queue_depth_sum",
                        "queue_depth_samples"):
                counters[key] += raw[key]
            counters["queue_depth_peak"] = max(
                counters["queue_depth_peak"], raw["queue_depth_peak"]
            )
            for cause, n in raw.get("retried_by_cause", {}).items():
                by_cause[cause] = by_cause.get(cause, 0) + n
            for name, st in raw["models"].items():
                acc = models.setdefault(name, {
                    "latencies": [], "waits": [], "services": [],
                    "batch_sizes": [], "completed": 0, "failed": 0,
                    "geometry_updates": 0, "patch_seconds": [],
                    "patch_fractions": [],
                    "window_latencies": [], "window_services": [],
                    "config_swaps": 0,
                })
                for key in ("latencies", "waits", "services", "batch_sizes"):
                    acc[key].extend(st[key])
                acc["completed"] += st["completed"]
                acc["failed"] += st["failed"]
                acc["geometry_updates"] += st.get("geometry_updates", 0)
                acc["patch_seconds"].extend(st.get("patch_seconds", []))
                acc["patch_fractions"].extend(st.get("patch_fractions", []))
                # raw window samples concatenate across ranks exactly like
                # the lifetime reservoirs — the merged windowed p95 is the
                # p95 of the union, never a percentile of percentiles
                acc["window_latencies"].extend(
                    st.get("window_latencies", [])
                )
                acc["window_services"].extend(st.get("window_services", []))
                acc["config_swaps"] += st.get("config_swaps", 0)

        total_completed = sum(st["completed"] for st in models.values())
        total_failed = sum(st["failed"] for st in models.values())
        lookups = counters["plan_hits"] + counters["plan_misses"]
        out = {
            "completed": total_completed,
            "failed": total_failed,
            "rejected": counters["rejected"],
            "expired": counters["expired"],
            "retried": counters["retried"],
            "retried_by_cause": by_cause,
            "plan_cache": {
                "hits": counters["plan_hits"],
                "misses": counters["plan_misses"],
                "hit_rate": (
                    counters["plan_hits"] / lookups if lookups else None
                ),
            },
            "queue_depth": {
                "mean": (
                    counters["queue_depth_sum"]
                    / counters["queue_depth_samples"]
                    if counters["queue_depth_samples"]
                    else None
                ),
                "peak": counters["queue_depth_peak"],
            },
            "models": {},
        }
        if pools:
            out["pools"] = pools
        if elapsed_s is not None and elapsed_s > 0:
            out["throughput_rps"] = total_completed / elapsed_s
        for name, st in models.items():
            bs = np.asarray(st["batch_sizes"]) if st["batch_sizes"] else None
            out["models"][name] = {
                "completed": st["completed"],
                "failed": st["failed"],
                "latency_s": _quantiles(st["latencies"]),
                "queue_wait_s": _quantiles(st["waits"]),
                "service_s": _quantiles(st["services"]),
                "batch_size": {
                    "mean": float(bs.mean()) if bs is not None else None,
                    "max": int(bs.max()) if bs is not None else None,
                    "hist": (
                        {
                            int(v): int(c)
                            for v, c in zip(
                                *np.unique(bs, return_counts=True)
                            )
                        }
                        if bs is not None
                        else {}
                    ),
                },
                "geometry": {
                    "updates": st["geometry_updates"],
                    "patch_s": _quantiles(st["patch_seconds"]),
                    "patch_fraction": _quantiles(st["patch_fractions"]),
                },
                "window": {
                    "count": len(st["window_latencies"]),
                    "latency_s": _quantiles(st["window_latencies"]),
                    "service_s": _quantiles(st["window_services"]),
                },
                "config_swaps": st["config_swaps"],
            }
        return out

    def snapshot(self, elapsed_s: float | None = None) -> dict:
        """JSON-friendly summary of everything recorded so far."""
        return ServeMetrics.merge([self], elapsed_s=elapsed_s)
