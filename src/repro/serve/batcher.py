"""Micro-batching: coalesce concurrent requests into multi-RHS applies.

A serving engine that evaluates queued densities one at a time pays the
full per-apply cost — kernel-matrix streaming, FFT grids, translation
tables — once *per request*.  Those costs are density-independent, so a
batch of ``q`` densities for the same model rides through one multi-RHS
apply in barely more time than a single density (the GEMMs stream the
same matrices either way; see DESIGN.md).  The batcher's job is to find
those batches without hurting latency:

* a worker blocks on the fair queue for the next request, then
* waits at most ``max_wait_ms`` for more *same-model* requests to
  arrive, flushing early as soon as ``max_batch`` are in hand (or the
  head request's deadline leaves no slack to keep waiting).

Requests for *other* models stay queued untouched (per-tenant FIFO order
is preserved by :meth:`~repro.serve.scheduler.FairQueue.take_matching`),
so one hot model cannot starve the rest — the fair queue hands them to
the next worker.
"""

from __future__ import annotations

import time

from repro.serve.scheduler import FairQueue, Request

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Collects per-model batches from a :class:`FairQueue`."""

    def __init__(
        self,
        queue: FairQueue,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        poll_s: float = 0.05,
        limits=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.queue = queue
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1e3
        #: How long one collect() blocks waiting for a first request
        #: before returning empty (lets worker loops observe shutdown).
        self.poll_s = float(poll_s)
        #: Optional ``callable(model_name) -> (max_batch, max_wait_ms)``
        #: or ``None`` — per-model overrides of the flush triggers.  The
        #: autotuner owns a tuned model's batch shape through this hook.
        self.limits = limits

    def _limits_for(self, model: str) -> tuple[int, float]:
        """(max_batch, max_wait_s) for one model, engine defaults if none."""
        if self.limits is not None:
            override = self.limits(model)
            if override is not None:
                b, wait_ms = override
                return max(1, int(b)), float(wait_ms) / 1e3
        return self.max_batch, self.max_wait_s

    def collect(self) -> list[Request]:
        """One batch: all for the same model, ``1..max_batch`` requests.

        Empty list on idle timeout or queue shutdown.
        """
        head = self.queue.pop(timeout=self.poll_s)
        if head is None:
            return []
        batch = [head]
        max_batch, max_wait_s = self._limits_for(head.model)
        if max_batch == 1:
            return batch
        flush_at = time.monotonic() + max_wait_s
        if head.deadline is not None:
            # Leave the apply its share: never batch-wait past the point
            # where the head would expire before a typical apply starts.
            flush_at = min(flush_at, head.deadline)
        while len(batch) < max_batch:
            batch.extend(
                self.queue.take_matching(
                    head.model,
                    max_batch - len(batch),
                    precision=head.precision,
                )
            )
            if len(batch) >= max_batch:
                break
            remaining = flush_at - time.monotonic()
            if remaining <= 0:
                break
            self.queue.wait_for_arrival(min(remaining, self.poll_s))
            if time.monotonic() >= flush_at:
                break
        return batch
