"""The router rank: admission, dispatch and fabric-wide observability.

The router is the control plane sitting in front of a
:class:`~repro.serve.dist_engine.DistServeEngine`.  It reuses the typed
serving machinery PR 5 built — :class:`~repro.serve.scheduler.FairQueue`
weighted-fair admission with :class:`~repro.serve.scheduler.Overloaded`
backpressure, absolute deadlines, a plain-thread
:class:`~repro.serve.scheduler.WorkerPool` of dispatchers — and adds the
fault-tolerance surface:

* **Fast-fail admission.**  A request for a model whose every serving
  path is circuit-broken is rejected *at submit* with
  :class:`~repro.serve.scheduler.ShardUnavailable` rather than queueing
  work that cannot be served.
* **Typed-only outcomes.**  A dispatched request either completes with
  the model's bit-identical answer (the engine's checkpoint-resume /
  replica-failover machinery absorbed any injected fault) or its future
  raises one of the typed errors — ``Overloaded`` (with a
  ``retry_after_s`` hint derived from queue depth and observed p95
  service time), ``DeadlineExceeded``, ``ShardUnavailable``,
  ``UnknownModel``.  Faults never leak to callers raw.
* **Fabric-wide metrics.**  :meth:`Router.metrics_snapshot` merges the
  router's own :class:`~repro.serve.metrics.ServeMetrics` with every
  rank's reservoir via :meth:`~repro.serve.metrics.ServeMetrics.merge`
  — quantiles over the union of samples, never averages of per-rank
  percentiles — and attaches rank-health and breaker snapshots.

In trace terms the router *is* a rank: it records
``SERVE:dispatch:<model>`` spans at rank index ``engine.nranks`` (one
past the compute ranks), so ``python -m repro trace`` shows admission
and dispatch alongside per-rank heartbeats and ``RECOVERY:*`` spans.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.serve.dist_engine import DistServeEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.scheduler import (
    DeadlineExceeded,
    FairQueue,
    Overloaded,
    Request,
    ShardUnavailable,
    UnknownModel,
    WorkerPool,
    retry_after_hint,
)

__all__ = ["Router"]

#: Typed errors a request future may raise; anything else escaping the
#: engine is a bug and is re-raised to the caller wrapped untyped (tests
#: assert this never happens under the chaos matrix).
TYPED_ERRORS = (Overloaded, DeadlineExceeded, ShardUnavailable,
                UnknownModel, ValueError)


class Router:
    """Admission + dispatch front-end over a :class:`DistServeEngine`.

    ``n_dispatchers`` bounds the number of concurrently in-flight
    dispatches (a sharded model serialises on its group lock anyway;
    replicated models genuinely serve ``min(n_dispatchers, replicas)``
    requests in parallel).  ``max_queue`` and ``tenant_weights``
    parameterise the fair queue exactly as in the single-process engine.
    """

    def __init__(
        self,
        engine: DistServeEngine,
        n_dispatchers: int = 2,
        max_queue: int = 64,
        tenant_weights: dict | None = None,
    ):
        self.engine = engine
        self.n_dispatchers = int(n_dispatchers)
        self.metrics = ServeMetrics()
        self.queue = FairQueue(max_depth=max_queue, weights=tenant_weights)
        self._pool = WorkerPool(self.n_dispatchers, self._dispatch)
        self._started = False
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Router":
        with self._lock:
            if not self._started:
                self._pool.start()
                self._started = True
        return self

    def stop(self) -> None:
        with self._lock:
            if not self._started:
                return
            self._started = False
        self.queue.close()
        self._pool.stop()
        # drain: everything still queued rejects typed, nothing hangs
        while True:
            req = self.queue.pop(timeout=0.0)
            if req is None:
                break
            self.metrics.record_failed(req.model)
            req.set_error(Overloaded("router stopped before dispatch"))

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- registration / introspection (delegated) ---------------------------

    def register(self, name: str, points, **kwargs):
        """Register a model on the engine (see
        :meth:`DistServeEngine.register` for placement options)."""
        return self.engine.register(name, points, **kwargs)

    def models(self) -> list[str]:
        return self.engine.models()

    def _model(self, name: str):
        # duck-compatibility with ServeEngine for the load generator:
        # run_load reads ._model(name).expected to size densities
        return self.engine._model(name)

    # -- admission ----------------------------------------------------------

    def submit(
        self,
        model: str,
        density,
        tenant: str = "default",
        timeout_s: float | None = None,
    ) -> Request:
        """Admit one request; returns a future-like :class:`Request`.

        Raises typed: :class:`UnknownModel` / :class:`ValueError` on bad
        input, :class:`ShardUnavailable` when no serving path for the
        model is currently admissible (fast-fail, no queueing), and
        :class:`Overloaded` — carrying ``retry_after_s`` — on a full
        queue.
        """
        m = self.engine._model(model)  # raises UnknownModel
        dens = np.asarray(density, dtype=np.float64).reshape(-1)
        if dens.size != m.expected:
            raise ValueError(
                f"model {model!r}: densities have {dens.size} values, "
                f"expected {m.expected}"
            )
        if not self.engine.available(model):
            self.metrics.record_rejected()
            raise ShardUnavailable(
                f"model {model!r}: no shard group or replica is currently "
                f"admitting requests (circuit breakers open)"
            )
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        req = Request(model, dens, tenant=tenant, deadline=deadline)
        self.metrics.record_queue_depth(self.queue.depth)
        try:
            self.queue.push(req)
        except Overloaded as err:
            self.metrics.record_rejected()
            err.retry_after_s = retry_after_hint(
                self.queue.depth,
                self.metrics.service_p95(),
                self.n_dispatchers,
            )
            raise
        return req

    def evaluate(
        self,
        model: str,
        density,
        tenant: str = "default",
        timeout_s: float | None = None,
    ) -> np.ndarray:
        """Blocking convenience wrapper: submit and wait for the result."""
        req = self.submit(model, density, tenant=tenant, timeout_s=timeout_s)
        # the dispatcher enforces the deadline; the extra slack only
        # guards against a wedged dispatcher thread
        wait = None if timeout_s is None else timeout_s + 2.0
        return req.result(timeout=wait)

    # -- dispatch -----------------------------------------------------------

    def _dispatch(self, worker_id: int) -> None:
        req = self.queue.pop(timeout=0.05)
        if req is None:
            return
        now = time.monotonic()
        if req.expired(now):
            self.metrics.record_expired(req.model)
            req.set_error(DeadlineExceeded(
                f"model {req.model!r}: deadline expired after "
                f"{now - req.enqueued:.3f}s in queue"
            ))
            return
        req.wait_s = now - req.enqueued
        req.batch_size = 1
        t0 = now
        try:
            out = self.engine.evaluate(
                req.model, req.density, deadline=req.deadline
            )
        except TYPED_ERRORS as err:
            if isinstance(err, DeadlineExceeded):
                self.metrics.record_expired(req.model)
            else:
                self.metrics.record_failed(req.model)
            req.set_error(err)
        except BaseException as err:  # noqa: BLE001 - contract violation path
            # an untyped escape is a bug in the failover machinery; the
            # caller still gets an answer-or-error (never a hang)
            self.metrics.record_failed(req.model)
            req.set_error(err)
        else:
            done = time.monotonic()
            self.metrics.record_completed(
                req.model, done - req.enqueued, req.wait_s, 1
            )
            trace = self.engine._trace
            if trace is not None:
                trace.record_span(
                    self.engine.nranks,  # the router rank
                    f"SERVE:dispatch:{req.model}",
                    done - t0, 0.0, 0, 0.0, 0.0,
                )
            req.set_result(out)

    # -- observability ------------------------------------------------------

    def metrics_snapshot(self, elapsed_s: float | None = None) -> dict:
        """Fabric-wide snapshot: router + all rank reservoirs merged.

        Per-rank service samples join the union the quantiles are
        computed over (never percentile-of-percentiles), and the
        rank-health and circuit-breaker states ride along under
        ``"health"`` and ``"breakers"``.
        """
        snap = ServeMetrics.merge(
            [self.metrics, *self.engine.rank_metrics], elapsed_s=elapsed_s
        )
        snap["health"] = self.engine.health.snapshot()
        snap["breakers"] = self.engine.breaker_snapshot()
        snap["suspect_ranks"] = self.engine.health.suspect_ranks()
        snap["tuned"] = self.tuned_configs()
        return snap

    def tuned_configs(self) -> dict:
        """Per-model active tuned config (collective-vote winners only)."""
        out = {}
        for name in self.engine.models():
            m = self.engine._model(name)
            if m.tuned is None:
                continue
            out[name] = {
                "config": m.tuned.to_dict(),
                "slo": m.slo.to_dict() if m.slo is not None else None,
            }
        return out
