"""Admission control, fair queueing and the worker pool.

The serving queue is the contention point of the whole engine, so its
behaviour is typed and explicit:

* **Bounded admission.**  :meth:`FairQueue.push` raises :class:`Overloaded`
  once the queue holds ``max_depth`` requests — callers see backpressure
  as a typed rejection at submit time instead of unbounded latency.
* **Weighted fair dequeue.**  Tenants are scheduled by stride scheduling:
  each tenant carries a *pass* value advanced by ``stride = K / weight``
  per dequeue, and the non-empty tenant with the smallest pass goes next.
  A tenant with weight 2 drains twice as fast as a weight-1 tenant under
  contention; an idle tenant re-enters at the current global pass so it
  cannot hoard credit while away.
* **Deadlines.**  Every request may carry an absolute deadline; expired
  requests are dropped at dequeue time with :class:`DeadlineExceeded`
  (never silently evaluated late).

Workers are plain threads owned by :class:`WorkerPool`; each loops
``collect -> process`` until stopped.  On a single core the pool mostly
overlaps queue waiting with compute — the throughput win comes from the
batcher turning queued requests into multi-RHS applies, not from thread
parallelism (see DESIGN.md).
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = [
    "DeadlineExceeded",
    "FairQueue",
    "Overloaded",
    "Request",
    "ShardUnavailable",
    "UnknownModel",
    "WorkerPool",
    "retry_after_hint",
]

#: Stride normalisation constant (any positive value works; this keeps
#: passes readable in debuggers).
_STRIDE_K = 1024.0


class Overloaded(RuntimeError):
    """The queue is full: the request was rejected at admission.

    ``retry_after_s``, when set, is the engine's estimate of how long the
    caller should wait before retrying — the queued work ahead of the
    rejected request divided by the engine's observed service rate (queue
    depth x p95 service time / parallelism).  Load generators honour it
    instead of hammering a saturated engine (see
    :func:`repro.serve.loadgen.run_load`).
    """

    def __init__(self, message: str = "queue full",
                 retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DeadlineExceeded(TimeoutError):
    """The request's deadline passed before a worker could serve it."""


class UnknownModel(KeyError):
    """The request names a model the engine has not registered."""


class ShardUnavailable(RuntimeError):
    """The model's shard group (and any fallback replica) cannot serve.

    Raised by the distributed serving plane when a sharded model's
    circuit breaker is open — its rank group failed repeatedly or wedged
    — and no surviving replica can take the request.  A typed rejection,
    never a hang: callers may retry after the breaker's cooldown.
    """


def retry_after_hint(
    depth: int,
    service_p95_s: float | None,
    parallelism: int,
    floor_s: float = 0.01,
    cap_s: float = 60.0,
) -> float:
    """Backpressure hint: seconds until the queue likely has room.

    ``depth`` requests are ahead, each costing ~``service_p95_s`` (the
    observed p95 service time; a conservative default is assumed before
    any request completed), served ``parallelism`` at a time (workers x
    max batch).  Clamped to ``[floor_s, cap_s]`` so the hint is never
    zero (busy-loop) nor absurd (one straggler's p95).
    """
    if service_p95_s is None:
        service_p95_s = 0.05
    est = (depth + 1) * service_p95_s / max(parallelism, 1)
    return float(min(cap_s, max(floor_s, est)))


class Request:
    """One queued density evaluation.

    Completion is a one-shot event: exactly one of :meth:`set_result` /
    :meth:`set_error` fires, after which :meth:`result` returns the
    potential column or raises the typed error.
    """

    __slots__ = (
        "model",
        "density",
        "tenant",
        "deadline",
        "precision",
        "enqueued",
        "attempts",
        "batch_size",
        "wait_s",
        "_done",
        "_result",
        "_error",
    )

    def __init__(
        self, model, density, tenant="default", deadline=None,
        precision="fp64",
    ):
        self.model = model
        self.density = density
        self.tenant = tenant
        #: Absolute ``time.monotonic()`` deadline (``None`` = no deadline).
        self.deadline = deadline
        #: Concrete plan precision this request evaluates at ("fp64" /
        #: "fp32"); resolved at submit time, batched only with equals.
        self.precision = precision
        self.enqueued = time.monotonic()
        self.attempts = 0
        self.batch_size = 0
        self.wait_s = 0.0
        self._done = threading.Event()
        self._result = None
        self._error = None

    def expired(self, now=None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline

    def done(self) -> bool:
        return self._done.is_set()

    @property
    def error(self):
        return self._error

    def set_result(self, value) -> None:
        self._result = value
        self._done.set()

    def set_error(self, err: BaseException) -> None:
        self._error = err
        self._done.set()

    def result(self, timeout=None):
        """Block for completion; return the potential or raise the error."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request for model {self.model!r} not completed "
                f"within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._result


class FairQueue:
    """Bounded multi-tenant queue with weighted-fair stride dequeue."""

    def __init__(self, max_depth: int = 64, weights: dict | None = None):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = int(max_depth)
        self._weights = dict(weights or {})
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._queues: dict[str, deque] = {}
        self._passes: dict[str, float] = {}
        self._global_pass = 0.0
        self._depth = 0
        self._closed = False

    def _stride(self, tenant: str) -> float:
        return _STRIDE_K / float(self._weights.get(tenant, 1.0))

    @property
    def depth(self) -> int:
        return self._depth

    def close(self) -> None:
        """Wake all waiters; subsequent pops drain then return ``None``."""
        with self._lock:
            self._closed = True
            self._arrived.notify_all()

    def push(self, req: Request) -> None:
        with self._lock:
            if self._depth >= self.max_depth:
                raise Overloaded(
                    f"queue full ({self._depth}/{self.max_depth} requests); "
                    f"retry later or raise max_queue"
                )
            dq = self._queues.get(req.tenant)
            if dq is None:
                dq = self._queues[req.tenant] = deque()
            if not dq:
                # (Re-)entering tenants start at the current global pass:
                # time spent idle earns no backlog credit.
                self._passes[req.tenant] = max(
                    self._passes.get(req.tenant, 0.0), self._global_pass
                )
            dq.append(req)
            self._depth += 1
            self._arrived.notify()

    def _pick_tenant(self):
        best, best_pass = None, None
        for tenant, dq in self._queues.items():
            if not dq:
                continue
            p = self._passes[tenant]
            if best_pass is None or p < best_pass:
                best, best_pass = tenant, p
        return best

    def pop(self, timeout: float | None = None) -> Request | None:
        """Next request by weighted fairness, or ``None`` on timeout/close.

        ``timeout`` may be zero or negative — callers compute it as
        ``deadline - time.monotonic()`` and the deadline may already have
        passed — in which case the pop returns immediately (queued work is
        still served; only the *wait* is skipped).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._depth == 0:
                if self._closed:
                    return None
                if deadline is None:
                    self._arrived.wait(None)
                    continue
                # clamp at zero: Condition.wait must never see a negative
                # timeout, and an expired deadline means give up now
                remaining = max(0.0, deadline - time.monotonic())
                if remaining == 0.0:
                    return None
                self._arrived.wait(remaining)
            tenant = self._pick_tenant()
            self._passes[tenant] += self._stride(tenant)
            self._global_pass = max(self._global_pass, self._passes[tenant])
            self._depth -= 1
            return self._queues[tenant].popleft()

    def take_matching(
        self, model, limit: int, precision: str | None = None
    ) -> list[Request]:
        """Dequeue up to ``limit`` queued requests for ``model``.

        Used by the batcher to coalesce a multi-RHS batch: tenants are
        visited in pass order and charged their stride per taken request,
        so batching still respects the weighted shares; within a tenant
        only the *head* run of matching requests is taken (per-tenant
        FIFO order is never reordered).  ``precision`` additionally
        restricts matches — requests at different plan precisions cannot
        share one multi-RHS apply.
        """

        def _match(req: Request) -> bool:
            return req.model == model and (
                precision is None or req.precision == precision
            )

        taken: list[Request] = []
        with self._lock:
            while len(taken) < limit:
                candidates = sorted(
                    (
                        (self._passes[t], t)
                        for t, dq in self._queues.items()
                        if dq and _match(dq[0])
                    ),
                )
                if not candidates:
                    break
                _, tenant = candidates[0]
                dq = self._queues[tenant]
                while len(taken) < limit and dq and _match(dq[0]):
                    taken.append(dq.popleft())
                    self._depth -= 1
                    self._passes[tenant] += self._stride(tenant)
                self._global_pass = max(
                    self._global_pass, self._passes[tenant]
                )
        return taken

    def wait_for_arrival(self, timeout: float) -> None:
        """Sleep until a new request arrives (or ``timeout`` elapses)."""
        with self._lock:
            if self._depth == 0 and not self._closed:
                self._arrived.wait(max(timeout, 0.0))


class WorkerPool:
    """Plain-thread worker pool running ``target(worker_id)`` loops."""

    def __init__(self, n_workers: int, target):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self._target = target
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(
                target=self._run, args=(i,), name=f"serve-worker-{i}",
                daemon=True,
            )
            for i in range(n_workers)
        ]

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def stats(self) -> dict:
        """Worker-thread gauges for ``ServeMetrics`` snapshots."""
        return {
            "workers": len(self._threads),
            "alive": sum(t.is_alive() for t in self._threads),
        }

    def _run(self, worker_id: int) -> None:
        while not self._stop.is_set():
            self._target(worker_id)

    def start(self) -> None:
        for t in self._threads:
            t.start()

    def stop(self, join_timeout: float = 10.0) -> None:
        self._stop.set()
        for t in self._threads:
            if t.ident is not None:  # join() before start() raises
                t.join(join_timeout)
