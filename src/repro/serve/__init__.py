"""In-process FMM evaluation service (engine, batching, admission, metrics).

Public surface::

    from repro.serve import ServeEngine, Overloaded, DeadlineExceeded

    engine = ServeEngine(max_batch=8).start()
    engine.register("vortex", Fmm("laplace", order=6), points)
    pot = engine.evaluate("vortex", densities)

See :mod:`repro.serve.engine` for the architecture overview and
TUTORIAL.md §11 for a walkthrough.
"""

from repro.serve.engine import PlanCache, RegisteredModel, ServeEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.scheduler import (
    DeadlineExceeded,
    FairQueue,
    Overloaded,
    Request,
    UnknownModel,
    WorkerPool,
)

__all__ = [
    "DeadlineExceeded",
    "FairQueue",
    "Overloaded",
    "PlanCache",
    "RegisteredModel",
    "Request",
    "ServeEngine",
    "ServeMetrics",
    "UnknownModel",
    "WorkerPool",
]
