"""In-process FMM evaluation service (engine, batching, admission, metrics).

Public surface::

    from repro.serve import ServeEngine, Overloaded, DeadlineExceeded

    engine = ServeEngine(max_batch=8).start()
    engine.register("vortex", Fmm("laplace", order=6), points)
    pot = engine.evaluate("vortex", densities)

See :mod:`repro.serve.engine` for the architecture overview and
TUTORIAL.md §11 for a walkthrough.
"""

from repro.serve.dist_engine import (
    CircuitBreaker,
    DistServeEngine,
    RankHealth,
)
from repro.serve.engine import PlanCache, RegisteredModel, ServeEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.router import Router
from repro.serve.scheduler import (
    DeadlineExceeded,
    FairQueue,
    Overloaded,
    Request,
    ShardUnavailable,
    UnknownModel,
    WorkerPool,
)

__all__ = [
    "CircuitBreaker",
    "DeadlineExceeded",
    "DistServeEngine",
    "FairQueue",
    "Overloaded",
    "PlanCache",
    "RankHealth",
    "RegisteredModel",
    "Request",
    "Router",
    "ServeEngine",
    "ServeMetrics",
    "ShardUnavailable",
    "UnknownModel",
    "WorkerPool",
]
