"""Closed-loop load generator for the serving engine.

Drives a :class:`~repro.serve.engine.ServeEngine` with a configurable
number of concurrent closed-loop clients (each submits, waits for the
result, submits again), which is the access pattern of the paper's
repeated-apply consumers — a time stepper per tenant, an iterative
solver per tenant — and exactly what gives the micro-batcher material
to coalesce.  Produces the summary dict that ``python -m repro serve
--bench`` writes to ``BENCH_serving.json``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.serve.engine import ServeEngine
from repro.serve.scheduler import Overloaded

__all__ = ["run_load"]


def run_load(
    engine: ServeEngine,
    models: list[str],
    duration_s: float = 5.0,
    clients: int = 8,
    timeout_s: float = 30.0,
    seed: int = 0,
) -> dict:
    """Run closed-loop clients against ``engine`` for ``duration_s``.

    Client ``i`` drives model ``models[i % len(models)]`` as tenant
    ``t{i}`` with fresh random densities each round.  Returns the
    engine's metrics snapshot plus loadgen-side counters (successes,
    typed rejections, unexpected errors, wall time).
    """
    stop_at = time.monotonic() + duration_s
    counters = {"ok": 0, "overloaded": 0, "errors": 0}
    errors: list[str] = []
    lock = threading.Lock()

    def client(i: int) -> None:
        model = models[i % len(models)]
        expected = engine._model(model).expected
        rng = np.random.default_rng(seed + i)
        while time.monotonic() < stop_at:
            dens = rng.standard_normal(expected)
            try:
                engine.evaluate(model, dens, tenant=f"t{i}", timeout_s=timeout_s)
                with lock:
                    counters["ok"] += 1
            except Overloaded:
                with lock:
                    counters["overloaded"] += 1
                time.sleep(0.005)
            except Exception as err:  # typed failures are data, not crashes
                with lock:
                    counters["errors"] += 1
                    if len(errors) < 10:
                        errors.append(f"{type(err).__name__}: {err}")

    t0 = time.monotonic()
    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(duration_s + timeout_s + 60.0)
    elapsed = time.monotonic() - t0

    out = engine.metrics.snapshot(elapsed_s=elapsed)
    out["loadgen"] = {
        "clients": clients,
        "duration_s": duration_s,
        "elapsed_s": elapsed,
        "ok": counters["ok"],
        "overloaded": counters["overloaded"],
        "errors": counters["errors"],
        "error_samples": errors,
    }
    return out
