"""Load generators for the serving engine and the distributed router.

Two arrival models, matching the two ways the paper's consumers behave:

* **Closed loop** (default): each client submits, waits for the result,
  submits again — a time stepper or iterative solver per tenant.  Demand
  adapts to service rate, which is what gives the micro-batcher material
  to coalesce.
* **Open loop** (``mode="open"``): arrivals come off a fixed-rate clock
  (``rate_rps``) regardless of completions — an external workload that
  does not slow down just because the engine is struggling.  This is the
  arrival model that exposes tail-latency and backpressure behaviour:
  when the engine saturates, the queue fills and admission rejects typed
  instead of latency growing without bound.

Both modes honour backpressure: a typed
:class:`~repro.serve.scheduler.Overloaded` rejection carrying
``retry_after_s`` makes the client *wait that long* (capped) before
retrying — closed-loop clients sleep, open-loop arrivals shift forward —
instead of hammering a saturated queue.  Typed rejections are counted by
class (``overloaded`` / ``deadline`` / ``shard_unavailable``); only
untyped escapes count as ``errors``.

The driver for both is :func:`run_load`, which works against anything
with the engine duck type (``evaluate`` / ``submit`` / ``_model`` /
``metrics``): the single-process :class:`~repro.serve.engine.ServeEngine`
and the distributed :class:`~repro.serve.router.Router`.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.serve.scheduler import (
    DeadlineExceeded,
    Overloaded,
    ShardUnavailable,
)

__all__ = ["run_load"]

#: Never sleep longer than this on a retry_after hint — bench runs are
#: short and a saturated engine's estimate can exceed the whole run.
MAX_RETRY_AFTER_S = 1.0


def _retry_after(err: Overloaded) -> float:
    hint = getattr(err, "retry_after_s", None)
    if hint is None or hint <= 0.0:
        return 0.005
    return min(float(hint), MAX_RETRY_AFTER_S)


def run_load(
    engine,
    models: list[str],
    duration_s: float = 5.0,
    clients: int = 8,
    timeout_s: float = 30.0,
    seed: int = 0,
    mode: str = "closed",
    rate_rps: float | None = None,
) -> dict:
    """Drive ``engine`` for ``duration_s``; return the bench summary dict.

    Closed loop: client ``i`` drives model ``models[i % len(models)]`` as
    tenant ``t{i}`` with fresh random densities each round.  Open loop:
    each client is an arrival clock submitting every
    ``clients / rate_rps`` seconds (total arrival rate ``rate_rps``),
    collecting its in-flight futures as they complete.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if mode == "open" and (rate_rps is None or rate_rps <= 0):
        raise ValueError("open-loop mode needs rate_rps > 0")
    stop_at = time.monotonic() + duration_s
    counters = {
        "ok": 0, "overloaded": 0, "deadline": 0,
        "shard_unavailable": 0, "errors": 0,
    }
    errors: list[str] = []
    lock = threading.Lock()

    def _count(key: str) -> None:
        with lock:
            counters[key] += 1

    def _record_failure(err: BaseException) -> None:
        if isinstance(err, Overloaded):
            _count("overloaded")
        elif isinstance(err, DeadlineExceeded):
            _count("deadline")
        elif isinstance(err, ShardUnavailable):
            _count("shard_unavailable")
        else:  # untyped escape: a bug, not backpressure
            with lock:
                counters["errors"] += 1
                if len(errors) < 10:
                    errors.append(f"{type(err).__name__}: {err}")

    def closed_client(i: int) -> None:
        model = models[i % len(models)]
        expected = engine._model(model).expected
        rng = np.random.default_rng(seed + i)
        while time.monotonic() < stop_at:
            dens = rng.standard_normal(expected)
            try:
                engine.evaluate(
                    model, dens, tenant=f"t{i}", timeout_s=timeout_s
                )
                _count("ok")
            except Overloaded as err:
                _count("overloaded")
                time.sleep(_retry_after(err))
            except BaseException as err:  # noqa: BLE001 - data, not crash
                _record_failure(err)

    def open_client(i: int) -> None:
        model = models[i % len(models)]
        expected = engine._model(model).expected
        rng = np.random.default_rng(seed + i)
        period = clients / float(rate_rps)
        next_arrival = time.monotonic() + (i % clients) * period / clients
        pending: list = []

        def _drain(block: bool) -> None:
            still = []
            for req in pending:
                if not block and not req.done():
                    still.append(req)
                    continue
                try:
                    req.result(timeout=timeout_s if block else None)
                    _count("ok")
                except BaseException as err:  # noqa: BLE001
                    _record_failure(err)
            pending[:] = still

        while True:
            now = time.monotonic()
            if now >= stop_at:
                break
            if now < next_arrival:
                time.sleep(min(next_arrival - now, stop_at - now))
                continue
            dens = rng.standard_normal(expected)
            try:
                pending.append(engine.submit(
                    model, dens, tenant=f"t{i}", timeout_s=timeout_s
                ))
            except Overloaded as err:
                _count("overloaded")
                # shift the arrival clock by the engine's hint: an
                # open-loop source honouring backpressure
                next_arrival = time.monotonic() + _retry_after(err)
                _drain(block=False)
                continue
            except BaseException as err:  # noqa: BLE001
                _record_failure(err)
            next_arrival += period
            _drain(block=False)
        _drain(block=True)

    client = closed_client if mode == "closed" else open_client
    t0 = time.monotonic()
    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(duration_s + timeout_s + 60.0)
    elapsed = time.monotonic() - t0

    out = engine.metrics.snapshot(elapsed_s=elapsed)
    out["loadgen"] = {
        "mode": mode,
        "rate_rps": rate_rps,
        "clients": clients,
        "duration_s": duration_s,
        "elapsed_s": elapsed,
        "ok": counters["ok"],
        "overloaded": counters["overloaded"],
        "deadline": counters["deadline"],
        "shard_unavailable": counters["shard_unavailable"],
        "errors": counters["errors"],
        "error_samples": errors,
    }
    return out
