"""The distributed serving data plane: rank-sharded and replicated models.

This module merges the two worlds the ROADMAP kept apart — the
single-process serving engine (:mod:`repro.serve.engine`) and the SPMD
distributed FMM (:mod:`repro.dist`) — into one fault-tolerant plane.  A
:class:`DistServeEngine` owns a virtual rank space of ``nranks`` ranks
and places each registered model on it one of two ways, chosen at
:meth:`~DistServeEngine.register`:

* ``placement="sharded"`` — the geometry is partitioned across a rank
  group via the existing LET/load-balance path (`dist/build.py`,
  `dist/loadbalance.py`): each rank holds a set-up
  :class:`~repro.dist.driver.DistributedFmm` (LET, ownership masks,
  compiled plan) plus the routing indices mapping global density rows to
  its owned points.  One request = one SPMD evaluation over the group.
* ``placement="replicated"`` — R independent single-rank copies, each a
  full model; requests round-robin across the surviving replicas, so
  small models buy throughput instead of capacity.

**The robustness contract** is the point of the merge: under a seeded
:class:`~repro.mpi.faults.FaultPlan` (rank crash, straggler, in-flight
corruption, GPU device fault, ``op="wait"`` faults inside the pipelined
schedule), a request never observes a fault.  It observes either

* a **bit-identical answer** — produced by bounded retry with
  exponential seeded backoff (:class:`~repro.mpi.faults.RetryPolicy`),
  restarting from the shard group's post-upward checkpoint when one
  committed (``evaluate(..., resume=True)``), or by failing over to a
  surviving replica of a replicated model — or
* a **typed rejection**: :class:`~repro.serve.scheduler.ShardUnavailable`
  when the shard's circuit breaker is open and no fallback replica
  survives, :class:`~repro.serve.scheduler.DeadlineExceeded` when the
  deadline expires mid-recovery.

Failover never mixes evaluation paths inside one request: retries stay
on the *same* shard group (resuming its committed checkpoint), and a
request is handed to the fallback replica only when the shard group was
unavailable *before* dispatch.  Re-dispatching a request whose shard
checkpoint committed onto a differently-partitioned replica would return
an answer with a different floating-point summation order — correct to
FMM accuracy but not bit-identical, and bit-determinism is the contract
(see DESIGN.md, "Failover protocol").

Health is tracked two ways: :class:`RankHealth` accumulates heartbeats
(one per rank per completed dispatch, emitted as
``SERVE:heartbeat:<model>`` trace spans) and failure signals from the
PR 1 abort machinery (:class:`~repro.mpi.runtime.SpmdError` ``.rank`` /
``.wedged``), and a per-shard / per-replica :class:`CircuitBreaker`
turns repeated failures into fast typed rejections instead of repeated
timeouts.  Per-rank :class:`~repro.serve.metrics.ServeMetrics`
reservoirs are merged fabric-wide at snapshot time by the router.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.dist.driver import DistributedFmm, match_owned_rows
from repro.kernels import get_kernel
from repro.mpi.faults import FaultPlan, RetryPolicy
from repro.mpi.runtime import run_spmd
from repro.serve.metrics import ServeMetrics
from repro.serve.scheduler import (
    DeadlineExceeded,
    ShardUnavailable,
    UnknownModel,
)

__all__ = ["CircuitBreaker", "DistModel", "DistServeEngine", "RankHealth"]


class RankHealth:
    """Liveness/failure bookkeeping over the engine's virtual rank space.

    Successful dispatches beat every participating rank; failures are
    attributed to the failing rank (``SpmdError.rank``) and every rank
    the abort left wedged (``SpmdError.wedged``).  ``consecutive``
    failure counts reset on the next successful dispatch touching the
    rank, so a transient injection does not permanently stain a rank.
    """

    def __init__(self, nranks: int):
        self.nranks = int(nranks)
        self._lock = threading.Lock()
        self._stats = [
            {
                "beats": 0,
                "ok": 0,
                "failures": 0,
                "wedged": 0,
                "consecutive": 0,
                "last_beat_s": None,
                "last_error": None,
            }
            for _ in range(self.nranks)
        ]

    def beat(self, ranks) -> None:
        """Heartbeat: these ranks completed a dispatch just now."""
        now = time.monotonic()
        with self._lock:
            for r in ranks:
                st = self._stats[r]
                st["beats"] += 1
                st["ok"] += 1
                st["consecutive"] = 0
                st["last_beat_s"] = now

    def record_failure(
        self, rank: int | None, wedged=(), cause: str = ""
    ) -> None:
        with self._lock:
            if rank is not None and 0 <= rank < self.nranks:
                st = self._stats[rank]
                st["failures"] += 1
                st["consecutive"] += 1
                st["last_error"] = cause
            for w in wedged:
                if 0 <= w < self.nranks and w != rank:
                    st = self._stats[w]
                    st["wedged"] += 1
                    st["consecutive"] += 1
                    st["last_error"] = f"wedged past abort ({cause})"

    def suspect_ranks(self, threshold: int = 3) -> list[int]:
        """Ranks with ``threshold`` or more consecutive failures."""
        with self._lock:
            return [
                r
                for r, st in enumerate(self._stats)
                if st["consecutive"] >= threshold
            ]

    def snapshot(self) -> dict:
        with self._lock:
            return {r: dict(st) for r, st in enumerate(self._stats)}


class CircuitBreaker:
    """Closed -> open -> half-open breaker over one shard or replica.

    ``threshold`` consecutive failures open the breaker: :meth:`allow`
    returns ``False`` (callers reject typed instead of dispatching into
    a group that keeps crashing or wedging — the anti-hang half of the
    robustness contract).  After ``cooldown_s`` the breaker half-opens:
    dispatches probe the group again; one success closes it, one failure
    re-opens it for another cooldown.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 5.0):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            if (
                self._state == "open"
                and time.monotonic() - self._opened_at >= self.cooldown_s
            ):
                self._state = "half-open"
            return self._state

    def allow(self) -> bool:
        return self.state != "open"

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._failures >= self.threshold:
                self._state = "open"
                self._opened_at = time.monotonic()

    def snapshot(self) -> dict:
        state = self.state  # may transition open -> half-open
        with self._lock:
            return {"state": state, "failures": self._failures}


class DistModel:
    """One registered distributed model (placement + per-rank state)."""

    __slots__ = (
        "name", "placement", "group", "points", "n_points", "ks", "kt",
        "expected", "shards", "replicas", "fallback", "lock",
        "tuned", "slo",
    )

    def __init__(self, name, placement, group, points, ks, kt):
        self.name = name
        self.placement = placement
        #: Shard width (sharded) or replica count (replicated).
        self.group = int(group)
        self.points = points
        self.n_points = len(points)
        self.ks, self.kt = ks, kt
        self.expected = self.n_points * ks
        #: Collectively voted TuneConfig (autotuned models only) + SLO.
        self.tuned = None
        self.slo = None
        #: Per-rank shard state: {"fmm": DistributedFmm, "src": row idx}.
        self.shards: list[dict] | None = None
        #: Replica states (each with its own lock for concurrent serving).
        self.replicas: list[dict] = []
        #: Optional single-rank fallback of a sharded model.
        self.fallback: dict | None = None
        self.lock = threading.Lock()


class DistServeEngine:
    """Rank-sharded / replicated model execution with chaos failover.

    Parameters
    ----------
    nranks:
        Width of the virtual rank space.  Sharded models occupy the
        prefix ``[0, group)`` of it; replica ``i`` of a replicated model
        is pinned to rank ``i`` (fault plans target these rank numbers).
    faults / retry:
        Optional :class:`~repro.mpi.faults.FaultPlan` executed by the
        chaos fabric on every dispatch, and the
        :class:`~repro.mpi.faults.RetryPolicy` bounding recovery.  Fault
        ``attempts`` budgets count *engine-wide dispatch attempts*: a
        fault with ``attempts=1`` fires during the engine's first
        dispatch and is spent afterwards, so retried requests converge.
    integrity:
        CRC32 + sequence framing on every message (in-flight corruption
        surfaces as typed :class:`~repro.mpi.comm.CorruptMessage`).
    run_timeout_s:
        Per-dispatch SPMD deadline (the anti-hang bound; a request's own
        deadline tightens it further).
    breaker_threshold / breaker_cooldown_s:
        Circuit-breaker tuning, shared by all shards and replicas.
    trace:
        Optional :class:`~repro.perf.trace.TraceRecorder` shared by
        every dispatch (heartbeat + ``RECOVERY:*`` spans land here).
    threads:
        Default intra-rank parallelism for registered models: forwarded
        as ``threads=`` to every :class:`~repro.dist.driver.
        DistributedFmm` (which sizes each rank's pool as
        ``min(threads, host_cpus // group)`` so a ``group``-wide shard
        never oversubscribes the host).  Per-model ``fmm_kwargs`` may
        override.  ``None`` keeps single-threaded applies.
    """

    def __init__(
        self,
        nranks: int = 4,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        integrity: bool = True,
        run_timeout_s: float = 120.0,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
        trace=None,
        threads: int | None = None,
    ):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = int(nranks)
        self.threads = None if threads is None else max(1, int(threads))
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        self.integrity = bool(integrity)
        self.run_timeout_s = float(run_timeout_s)
        self.health = RankHealth(self.nranks)
        self.rank_metrics = [ServeMetrics() for _ in range(self.nranks)]
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_cooldown = float(breaker_cooldown_s)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._trace = trace
        self._models: dict[str, DistModel] = {}
        self._models_lock = threading.Lock()
        self._attempt_lock = threading.Lock()
        self._attempt = 0
        self._rr: dict[str, int] = {}  # replica round-robin cursors

    # -- fault-plan control -------------------------------------------------

    def set_faults(self, faults: FaultPlan | None) -> None:
        """Swap the fault plan and restart the dispatch-attempt counter.

        Chaos drills on a live engine: each new plan sees a fresh
        attempt stream, so its ``attempts`` budgets count from the next
        dispatch.
        """
        with self._attempt_lock:
            self.faults = faults
            self._attempt = 0

    def _next_attempt(self) -> int:
        with self._attempt_lock:
            a = self._attempt
            self._attempt += 1
            return a

    def _plan_for_attempt(self, attempt: int, remap=None) -> FaultPlan | None:
        plan = self.faults
        if plan is None:
            return None
        plan = plan.for_attempt(attempt)
        if remap is not None:
            plan = plan.remapped(remap)
        return plan if len(plan) else None

    # -- breakers -----------------------------------------------------------

    def breaker(self, key: str) -> CircuitBreaker:
        with self._breakers_lock:
            br = self._breakers.get(key)
            if br is None:
                br = self._breakers[key] = CircuitBreaker(
                    self._breaker_threshold, self._breaker_cooldown
                )
            return br

    def breaker_snapshot(self) -> dict:
        with self._breakers_lock:
            keys = list(self._breakers)
        return {k: self.breaker(k).snapshot() for k in keys}

    # -- registration -------------------------------------------------------

    def _model(self, name: str) -> DistModel:
        with self._models_lock:
            model = self._models.get(name)
        if model is None:
            raise UnknownModel(
                f"model {name!r} is not registered (have: {self.models()})"
            )
        return model

    def models(self) -> list[str]:
        with self._models_lock:
            return sorted(self._models)

    def register(
        self,
        name: str,
        points,
        placement: str = "sharded",
        group: int | None = None,
        replicas: int = 2,
        fallback_replica: bool = False,
        warm: bool = True,
        slo=None,
        store=None,
        tune_grid=None,
        tune_seed: int = 0,
        **fmm_kwargs,
    ) -> DistModel:
        """Register ``name`` on the fabric; builds all shard/replica state
        now (tree, LET, lists — the full :meth:`DistributedFmm.setup`)
        on a clean fabric (registration is control-plane work; the chaos
        plan targets serving dispatches).

        ``placement="sharded"`` partitions the geometry over ``group``
        ranks (default: the whole fabric); ``fallback_replica=True``
        additionally builds one single-rank replica the router degrades
        to when the shard breaker opens.  ``placement="replicated"``
        builds ``replicas`` independent single-rank copies.
        ``fmm_kwargs`` pass through to
        :class:`~repro.dist.driver.DistributedFmm` (kernel, order,
        max_points_per_box, load_balance, use_gpu, precision, ...).
        With ``warm`` (default) each shard group / replica evaluates one
        zero density now, so plans are compiled before the first request.
        """
        if placement not in ("sharded", "replicated"):
            raise ValueError(
                f"placement must be 'sharded' or 'replicated', "
                f"got {placement!r}"
            )
        points = np.asarray(points, dtype=np.float64)
        if self.threads is not None and "threads" not in fmm_kwargs:
            fmm_kwargs = dict(fmm_kwargs, threads=self.threads)
        kern = fmm_kwargs.get("kernel", "laplace")
        kern = get_kernel(kern) if isinstance(kern, str) else kern
        if placement == "sharded":
            width = self.nranks if group is None else int(group)
        else:
            width = int(replicas) if group is None else int(group)
        if not 1 <= width <= self.nranks:
            raise ValueError(
                f"model {name!r}: group {width} exceeds the fabric "
                f"({self.nranks} ranks)"
            )
        tuned = None
        if slo is not None:
            vote_width = width if placement == "sharded" else 1
            tuned = self._vote_config(
                points, kern, vote_width, slo, tune_grid, tune_seed, store,
            )
            fmm_kwargs = dict(fmm_kwargs)
            fmm_kwargs.update(
                order=tuned.order,
                max_points_per_box=tuned.max_points,
                precision=tuned.precision,
            )
        model = DistModel(
            name, placement, width, points,
            kern.source_dim, kern.target_dim,
        )
        model.tuned = tuned
        model.slo = slo
        if placement == "sharded":
            model.shards = self._setup_shards(model, fmm_kwargs)
            if fallback_replica:
                model.fallback = self._setup_replica(model, fmm_kwargs)
        else:
            model.replicas = [
                self._setup_replica(model, fmm_kwargs) for _ in range(width)
            ]
        with self._models_lock:
            self._models[name] = model
        if warm:
            zeros = np.zeros(model.expected)
            if placement == "sharded":
                self._run_shard(model, zeros, plan=None, deadline=None)
                if model.fallback is not None:
                    self._run_replica(model, model.fallback, zeros,
                                      plan=None, deadline=None)
            else:
                for i, rep in enumerate(model.replicas):
                    self._run_replica(model, rep, zeros, plan=None,
                                      deadline=None, fabric_rank=i)
            self._clear_checkpoints(model)
        return model

    def _vote_config(
        self, points, kern, width: int, slo, grid, seed: int, store,
    ):
        """Collective config vote: one agreed tuned config for the group.

        Mirrors the distributed precision vote: every rank runs the
        *deterministic* cost-model-only search
        (:func:`~repro.tune.search.propose_config`) on its own point
        slice, allgathers the proposals, and applies the same reduction —
        the modal config wins, ties broken by the lexicographically
        smallest config key — so all ranks adopt one config without a
        coordinator.  Per-rank seeds differ (``seed + rank``) so the vote
        aggregates genuinely independent probes rather than ``width``
        copies of one probe.
        """
        from collections import Counter

        from repro.tune.search import default_grid, propose_config
        from repro.tune.search import TuneConfig as _TC
        from repro.tune.store import geometry_fingerprint

        kname = getattr(kern, "name", "kernel")
        backend = f"dist{width}"
        fingerprint = geometry_fingerprint(points)
        if store is not None:
            hit = store.get(fingerprint, kname, slo, backend)
            if hit is not None:
                return hit
        if grid is None:
            grid = default_grid(len(points))
        winners: list = [None] * width

        def body(comm):
            local = points[comm.rank :: comm.size]
            cfg = propose_config(
                local, kernel=kern, slo=slo, grid=grid,
                seed=seed + comm.rank,
            )
            proposals = comm.allgather(cfg.to_dict())
            keys = [_TC.from_dict(d).key() for d in proposals]
            counts = Counter(keys)
            win = sorted(keys, key=lambda k: (-counts[k], k))[0]
            winners[comm.rank] = next(
                _TC.from_dict(d)
                for d, k in zip(proposals, keys)
                if k == win
            )

        run_spmd(
            width, body,
            timeout=self.run_timeout_s,
            integrity=self.integrity,
            trace=self._trace,
        )
        config = winners[0]
        if store is not None:
            store.put(fingerprint, kname, slo, config, backend=backend)
        return config

    def _setup_shards(self, model: DistModel, fmm_kwargs: dict) -> list[dict]:
        points = model.points
        states: list[dict | None] = [None] * model.group

        def body(comm):
            fmm = DistributedFmm(**fmm_kwargs)
            fmm.setup(comm, points[comm.rank :: comm.size])
            states[comm.rank] = {
                "fmm": fmm,
                "src": match_owned_rows(points, fmm.owned_points),
            }

        run_spmd(
            model.group, body,
            timeout=self.run_timeout_s,
            integrity=self.integrity,
            trace=self._trace,
        )
        return states  # type: ignore[return-value]

    def _setup_replica(self, model: DistModel, fmm_kwargs: dict) -> dict:
        points = model.points
        state: dict = {"lock": threading.Lock()}

        def body(comm):
            fmm = DistributedFmm(**fmm_kwargs)
            fmm.setup(comm, points)
            state["fmm"] = fmm
            state["src"] = match_owned_rows(points, fmm.owned_points)

        run_spmd(1, body, timeout=self.run_timeout_s,
                 integrity=self.integrity, trace=self._trace)
        return state

    # -- dynamic geometry ---------------------------------------------------

    def update_geometry(self, name: str, new_points) -> dict:
        """Move ``name``'s sources; every shard/replica re-patches its plan.

        ``new_points`` is the full global point array in the original
        order (same shape — re-register for insertions or deletions).
        Sharded models re-run the collective
        :meth:`~repro.dist.driver.DistributedFmm.update_geometry` across
        the group — each rank patches its own LET-bound plan, with the
        collective precision vote inside — then recompute their density
        routing indices.  The swap happens under the model/replica
        locks, which already serialise dispatches, so in-flight requests
        finish against the old geometry and the next dispatch sees the
        new one.  Runs on a clean fabric (geometry updates are
        control-plane work, like :meth:`register`; the chaos plan
        targets serving dispatches).
        """
        model = self._model(name)
        new_points = np.asarray(new_points, dtype=np.float64)
        if new_points.shape != model.points.shape:
            raise ValueError(
                f"model {name!r}: update_geometry requires the original "
                f"point shape {model.points.shape}, got {new_points.shape}; "
                f"re-register for insertions/deletions"
            )
        t0 = time.monotonic()
        infos: list[dict] = []

        def patch_group(states, width):
            def body(comm):
                st = states[comm.rank]
                fmm = st["fmm"]
                fmm.rebind(comm)
                info = fmm.update_geometry(new_points[comm.rank :: comm.size])
                st["src"] = match_owned_rows(new_points, fmm.owned_points)
                infos.append(info)

            run_spmd(
                width, body,
                timeout=self.run_timeout_s,
                integrity=self.integrity,
                trace=self._trace,
            )

        with model.lock:
            if model.placement == "sharded":
                patch_group(model.shards, model.group)
                if model.fallback is not None:
                    patch_group([model.fallback], 1)
            for rep in model.replicas:
                with rep["lock"]:
                    patch_group([rep], 1)
            model.points = new_points
            self._clear_checkpoints(model)
        patch_s = time.monotonic() - t0
        self.rank_metrics[0].record_geometry_update(name, patch_s)
        return {
            "patch_s": patch_s,
            "ranks_patched": sum(1 for i in infos if i.get("patched")),
            "ranks": len(infos),
        }

    # -- evaluation ---------------------------------------------------------

    def available(self, name: str) -> bool:
        """Can a dispatch for ``name`` be admitted right now?"""
        model = self._model(name)
        if model.placement == "sharded":
            if self.breaker(f"{name}/shard").allow():
                return True
            return model.fallback is not None and self.breaker(
                f"{name}/fallback"
            ).allow()
        return any(
            self.breaker(f"{name}/r{i}").allow()
            for i in range(len(model.replicas))
        )

    def evaluate(
        self, name: str, density, deadline: float | None = None
    ) -> np.ndarray:
        """One request: potentials in global point order, or typed error.

        ``deadline`` is absolute ``time.monotonic()`` (``None`` = only
        the engine's per-dispatch timeout applies).
        """
        model = self._model(name)
        dens = np.asarray(density, dtype=np.float64).reshape(-1)
        if dens.size != model.expected:
            raise ValueError(
                f"model {name!r}: densities have {dens.size} values, "
                f"expected n_points*source_dim = {model.expected}"
            )
        if model.placement == "sharded":
            return self._eval_sharded(model, dens, deadline)
        return self._eval_replicated(model, dens, deadline)

    def _check_deadline(self, deadline: float | None, name: str) -> None:
        if deadline is not None and time.monotonic() > deadline:
            raise DeadlineExceeded(
                f"model {name!r}: request deadline expired before a "
                f"dispatch could complete"
            )

    def _run_timeout(self, deadline: float | None) -> float:
        if deadline is None:
            return self.run_timeout_s
        return max(0.05, min(self.run_timeout_s,
                             deadline - time.monotonic()))

    def _record_recovery(self, rank: int, retry_no: int, cause: str,
                         delay: float) -> None:
        self.rank_metrics[rank if 0 <= rank < self.nranks else 0].record_retry(
            cause
        )
        if self._trace is not None:
            self._trace.record_span(
                rank, f"RECOVERY:retry#{retry_no}:{cause}"
                f":backoff={delay:.3f}s",
                0.0, 0.0, 0, 0.0, delay,
            )

    def _heartbeat(self, model: DistModel, ranks, wall_s: float) -> None:
        self.health.beat(ranks)
        if self._trace is not None:
            for r in ranks:
                self._trace.record_span(
                    r, f"SERVE:heartbeat:{model.name}", wall_s,
                    0.0, 0, 0.0, 0.0,
                )

    def _clear_checkpoints(self, model: DistModel) -> None:
        for st in (model.shards or []):
            st["fmm"].clear_checkpoint()
        for st in model.replicas + ([model.fallback] if model.fallback else []):
            st["fmm"].clear_checkpoint()

    # -- sharded path -------------------------------------------------------

    def _eval_sharded(
        self, model: DistModel, dens: np.ndarray, deadline: float | None
    ) -> np.ndarray:
        name = model.name
        breaker = self.breaker(f"{name}/shard")
        if not breaker.allow():
            # degrade, never hang: the shard group keeps failing, so the
            # request goes whole to the fallback replica (bit-identical
            # to the *replica's* fault-free answer) or rejects typed
            if model.fallback is not None:
                return self._eval_on_replica(
                    model, model.fallback, f"{name}/fallback", 0,
                    dens, deadline,
                )
            raise ShardUnavailable(
                f"model {name!r}: shard circuit breaker is "
                f"{breaker.state} after repeated failures "
                f"(retry after {breaker.cooldown_s:.1f}s)"
            )
        with model.lock:
            last: BaseException | None = None
            for k in range(self.retry.max_attempts):
                self._check_deadline(deadline, name)
                attempt = self._next_attempt()
                plan = self._plan_for_attempt(attempt)
                try:
                    out = self._run_shard(model, dens, plan, deadline)
                except BaseException as exc:  # noqa: BLE001 - typed filter below
                    cause = exc.__cause__ if exc.__cause__ is not None else exc
                    rank = getattr(exc, "rank", None)
                    self.health.record_failure(
                        rank, getattr(exc, "wedged", ()),
                        type(cause).__name__,
                    )
                    breaker.record_failure()
                    last = exc
                    transient = isinstance(cause, self.retry.retry_on) or \
                        isinstance(exc, self.retry.retry_on)
                    if not transient:
                        raise
                    if k + 1 >= self.retry.max_attempts or not breaker.allow():
                        break
                    delay = self.retry.delay(k + 1)
                    self._record_recovery(
                        rank if rank is not None else 0, k + 1,
                        type(cause).__name__, delay,
                    )
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                else:
                    breaker.record_success()
                    self._clear_checkpoints(model)
                    return out
        # bounded retry exhausted (or the breaker opened mid-request):
        # degrade to the fallback replica for the *next* requests; this
        # one rejects typed — its shard checkpoint may have committed,
        # and re-dispatching it onto a differently-partitioned replica
        # would break bit-determinism (DESIGN.md, "Failover protocol")
        self._check_deadline(deadline, name)
        err = ShardUnavailable(
            f"model {name!r}: shard group failed "
            f"{self.retry.max_attempts} attempt(s); last error: {last!r}"
        )
        err.__cause__ = last
        raise err

    def _run_shard(
        self,
        model: DistModel,
        dens: np.ndarray,
        plan: FaultPlan | None,
        deadline: float | None,
    ) -> np.ndarray:
        states = model.shards
        name, ks, kt = model.name, model.ks, model.kt
        rank_metrics = self.rank_metrics

        def body(comm):
            st = states[comm.rank]
            fmm = st["fmm"]
            fmm.rebind(comm)
            t0 = time.monotonic()
            dens_owned = dens.reshape(-1, ks)[st["src"]].reshape(-1)
            # resume=True: if this rank's post-upward checkpoint for this
            # exact density committed on a previous (crashed) attempt,
            # the communication-bearing upward phases are skipped — the
            # decision is collective, so no rank resumes alone
            pot = fmm.evaluate(dens_owned, resume=True)
            # rank-local apply stats live under a per-rank key so the
            # fabric-wide merge never mixes them into the router's
            # request-level latency reservoir for the bare model name
            rank_metrics[comm.rank].record_completed(
                f"{name}@rank{comm.rank}", time.monotonic() - t0, 0.0, 1
            )
            return pot

        t0 = time.monotonic()
        res = run_spmd(
            model.group, body,
            faults=plan,
            integrity=self.integrity,
            timeout=self._run_timeout(deadline),
            trace=self._trace,
        )
        out = np.empty((model.n_points, kt))
        for st, pot in zip(states, res.values):
            out[st["src"]] = pot.reshape(-1, kt)
        self._heartbeat(model, range(model.group), time.monotonic() - t0)
        return out.reshape(-1)

    # -- replicated path ----------------------------------------------------

    def _eval_replicated(
        self, model: DistModel, dens: np.ndarray, deadline: float | None
    ) -> np.ndarray:
        name = model.name
        last: BaseException | None = None
        tried_any = False
        for k in range(self.retry.max_attempts):
            self._check_deadline(deadline, name)
            idx = self._pick_replica(model)
            if idx is None:
                break  # every replica breaker is open
            tried_any = True
            try:
                return self._eval_on_replica(
                    model, model.replicas[idx], f"{name}/r{idx}", idx,
                    dens, deadline, _single_attempt=True,
                )
            except BaseException as exc:  # noqa: BLE001 - typed filter below
                cause = exc.__cause__ if exc.__cause__ is not None else exc
                transient = isinstance(cause, self.retry.retry_on) or \
                    isinstance(exc, self.retry.retry_on)
                if not transient:
                    raise
                last = exc
                delay = self.retry.delay(k + 1)
                self._record_recovery(idx, k + 1, type(cause).__name__, delay)
                if delay > 0.0:
                    time.sleep(delay)
                # failover: the next loop iteration picks the next
                # surviving replica (the failed one's breaker counted
                # the failure and round-robin moves on)
        self._check_deadline(deadline, name)
        detail = f"last error: {last!r}" if tried_any else \
            "every replica circuit breaker is open"
        err = ShardUnavailable(
            f"model {name!r}: no replica could serve the request; {detail}"
        )
        err.__cause__ = last
        raise err

    def _pick_replica(self, model: DistModel) -> int | None:
        """Next surviving replica by round robin (load spread + failover)."""
        n = len(model.replicas)
        with self._attempt_lock:
            start = self._rr.get(model.name, 0)
            self._rr[model.name] = (start + 1) % max(n, 1)
        for off in range(n):
            i = (start + off) % n
            if self.breaker(f"{model.name}/r{i}").allow():
                return i
        return None

    def _eval_on_replica(
        self,
        model: DistModel,
        replica: dict,
        breaker_key: str,
        fabric_rank: int,
        dens: np.ndarray,
        deadline: float | None,
        _single_attempt: bool = False,
    ) -> np.ndarray:
        """Evaluate on one replica; retries stay on this replica unless
        ``_single_attempt`` (the replicated path fails over instead)."""
        breaker = self.breaker(breaker_key)
        if not breaker.allow():
            raise ShardUnavailable(
                f"model {model.name!r}: replica {breaker_key} breaker is open"
            )
        attempts = 1 if _single_attempt else self.retry.max_attempts
        last: BaseException | None = None
        for k in range(attempts):
            self._check_deadline(deadline, model.name)
            attempt = self._next_attempt()
            # project the fabric-wide plan onto this replica's local
            # rank 0: faults aimed at other ranks stay with their owners
            plan = self._plan_for_attempt(attempt, remap={fabric_rank: 0})
            try:
                out = self._run_replica(model, replica, dens, plan, deadline,
                                        fabric_rank=fabric_rank)
            except BaseException as exc:  # noqa: BLE001 - typed filter below
                cause = exc.__cause__ if exc.__cause__ is not None else exc
                self.health.record_failure(
                    fabric_rank, getattr(exc, "wedged", ()),
                    type(cause).__name__,
                )
                breaker.record_failure()
                last = exc
                transient = isinstance(cause, self.retry.retry_on) or \
                    isinstance(exc, self.retry.retry_on)
                if not transient:
                    raise
                if _single_attempt:
                    raise
                if k + 1 >= attempts or not breaker.allow():
                    break
                delay = self.retry.delay(k + 1)
                self._record_recovery(fabric_rank, k + 1,
                                      type(cause).__name__, delay)
                if delay > 0.0:
                    time.sleep(delay)
                continue
            else:
                breaker.record_success()
                replica["fmm"].clear_checkpoint()
                return out
        self._check_deadline(deadline, model.name)
        err = ShardUnavailable(
            f"model {model.name!r}: replica {breaker_key} failed "
            f"{attempts} attempt(s); last error: {last!r}"
        )
        err.__cause__ = last
        raise err

    def _run_replica(
        self,
        model: DistModel,
        replica: dict,
        dens: np.ndarray,
        plan: FaultPlan | None,
        deadline: float | None,
        fabric_rank: int = 0,
    ) -> np.ndarray:
        name, ks, kt = model.name, model.ks, model.kt
        rank_metrics = self.rank_metrics
        with replica["lock"]:
            fmm, src = replica["fmm"], replica["src"]

            def body(comm):
                fmm.rebind(comm)
                t0 = time.monotonic()
                dens_owned = dens.reshape(-1, ks)[src].reshape(-1)
                pot = fmm.evaluate(dens_owned, resume=True)
                rank_metrics[fabric_rank].record_completed(
                    f"{name}@rank{fabric_rank}",
                    time.monotonic() - t0, 0.0, 1,
                )
                return pot

            t0 = time.monotonic()
            res = run_spmd(
                1, body,
                faults=plan,
                integrity=self.integrity,
                timeout=self._run_timeout(deadline),
                trace=self._trace,
            )
        out = np.empty((model.n_points, kt))
        out[src] = res.values[0].reshape(-1, kt)
        self._heartbeat(model, (fabric_rank,), time.monotonic() - t0)
        return out.reshape(-1)
