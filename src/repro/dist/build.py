"""Distributed ``Points2Octree`` (paper §III-A, DENDRO substrate).

Steps:

1. Parallel sample sort of the point Morton keys (points travel as
   payload) — each rank ends with a contiguous chunk of the global order.
2. Cell-boundary repair: points sharing a Morton cell must live on one
   rank; trailing duplicates are shifted right.
3. Each rank covers its cell range with the coarsest *seed* octants
   (``fill_cell_range``) and refines every seed holding more than ``q``
   local points.  Seeds never cross rank boundaries, so all refinement is
   purely local.

The union of all ranks' leaves is a complete linear octree whose non-empty
leaves hold at most ``q`` points.  As the paper notes of DENDRO, the
result "can be finer than necessary" near rank boundaries (an octant is
never allowed to span two ranks); this does not affect correctness and is
the same trade the original code made.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dist.geometry import RankGeometry
from repro.mpi.comm import SimComm
from repro.octree.build import build_leaves
from repro.octree.linear import fill_cell_range
from repro.sort import parallel_sample_sort
from repro.util import morton

__all__ = ["distributed_points_to_octree", "DistOctree"]

_TAG_SHIFT = 7100


@dataclass
class DistOctree:
    """Per-rank result of the distributed tree construction."""

    leaves: np.ndarray  # owned leaves (complete union across ranks)
    points: np.ndarray  # owned points, Morton sorted
    point_keys: np.ndarray
    geometry: RankGeometry


def _repair_cell_boundaries(comm: SimComm, keys: np.ndarray, payload: np.ndarray):
    """Move trailing points sharing a cell with the next rank's head right.

    After the sample sort, ties (points in the same Morton cell) may be
    split across a rank boundary; octree leaves cannot span ranks, so the
    left rank forwards its trailing duplicates to the right.
    """
    p, r = comm.size, comm.rank
    for _ in range(p):
        first = int(keys[0]) if keys.size else None
        firsts = comm.allgather(first)
        send_keys = np.empty(0, dtype=np.uint64)
        send_pay = payload[:0]
        if r + 1 < p and keys.size and firsts[r + 1] is not None:
            cut = np.searchsorted(keys, np.uint64(firsts[r + 1]), side="left")
            if cut < keys.size:
                send_keys, send_pay = keys[cut:], payload[cut:]
                keys, payload = keys[:cut], payload[:cut]
        moved = 0
        if r + 1 < p:
            comm.send((send_keys, send_pay), r + 1, _TAG_SHIFT)
        if r > 0:
            rk, rp = comm.recv(r - 1, _TAG_SHIFT)
            moved = rk.size
            if rk.size:
                keys = np.concatenate([rk, keys])
                payload = np.concatenate([rp, payload])
        if comm.allreduce(moved) == 0:
            break
    return keys, payload


def _snap_boundary(prev_last_cell: int, first_cell: int) -> int:
    """Coarsest octant-aligned cell in ``(prev_last_cell, first_cell]``.

    The returned boundary keeps the neighbour's points to its left and
    this rank's points to its right while aligning to the largest
    possible octant block, so domain-cover seeds stay as coarse as the
    inter-rank point gap allows.
    """
    a, c = int(prev_last_cell), int(first_cell)
    if not a < c:
        raise ValueError("rank boundary requires a point gap")
    for k in range(morton.MAX_DEPTH, 0, -1):
        size = 1 << (3 * k)
        b = (a // size + 1) * size
        if b <= c:
            return b
    return a + 1


def distributed_points_to_octree(
    comm: SimComm,
    local_points: np.ndarray,
    max_points_per_box: int,
    max_depth: int = morton.MAX_DEPTH,
) -> DistOctree:
    """Distributed adaptive octree over points scattered across ranks."""
    pts = np.asarray(local_points, dtype=np.float64)
    keys = morton.encode_points(pts)
    keys, pts = parallel_sample_sort(comm, keys, pts)
    keys, pts = _repair_cell_boundaries(comm, keys, pts)
    if keys.size == 0:
        raise ValueError(
            f"rank {comm.rank} received no points; "
            "use fewer ranks or more points per rank"
        )

    # Domain decomposition: rank k covers a cell range that contains its
    # points.  Boundaries are *snapped to the coarsest octant alignment*
    # that fits in the gap between neighbouring ranks' points — DENDRO's
    # block partitioning.  A raw first-point cell would sit at an
    # arbitrary 57-bit position and force chains of near-MAX_DEPTH seed
    # octants along every rank boundary.
    n_cells = 1 << (3 * morton.MAX_DEPTH)
    my_first = int(keys[0] >> np.uint64(morton.LEVEL_BITS))
    my_last = int(keys[-1] >> np.uint64(morton.LEVEL_BITS))
    edges = comm.allgather((my_first, my_last))
    bounds = np.empty(comm.size + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[comm.size] = n_cells
    for k in range(1, comm.size):
        bounds[k] = _snap_boundary(edges[k - 1][1], edges[k][0])
    lo, hi = bounds[comm.rank], bounds[comm.rank + 1]

    seeds = fill_cell_range(int(lo), int(hi))
    leaves = build_leaves(keys, max_points_per_box, max_depth, roots=seeds)
    # Refinement work estimate: two binary searches over the local points
    # per candidate octant (leaves ~ visited octants up to a constant).
    comm.profile.current.flops += 16.0 * leaves.size * np.log2(max(keys.size, 2))
    return DistOctree(
        leaves=leaves,
        points=pts,
        point_keys=keys,
        geometry=RankGeometry(bounds),
    )
