"""End-to-end distributed FMM (paper §III): setup + evaluation per rank.

Usage (inside an SPMD function, one instance per rank)::

    def rank_main(comm, my_points):
        fmm = DistributedFmm(kernel="laplace", order=6, max_points_per_box=60)
        fmm.setup(comm, my_points)
        dens = make_densities(fmm.owned_points)   # post-redistribution!
        pot = fmm.evaluate(dens)
        return fmm.owned_points, pot

    result = run_spmd(8, rank_main, points_chunk)

Setup redistributes points (parallel sample sort), builds the distributed
octree, optionally load-balances by leaf work weights, constructs the LET
and the interaction lists.  Evaluation then runs the three communication
steps of §III-C (ghost density exchange; hypercube reduce-scatter of
shared upward densities — which also covers the broadcast-to-users step)
interleaved with the local Algorithm-1 phases, restricted by ownership
masks so nothing is double-counted.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluator import FmmEvaluator
from repro.core.lists import build_lists
from repro.dist.build import distributed_points_to_octree
from repro.dist.geometry import RankGeometry
from repro.dist.let import LocalEssentialTree, build_let
from repro.dist.loadbalance import leaf_work_weights, repartition_leaves
from repro.dist.reduce_scatter import (
    hypercube_reduce_scatter,
    owner_reduce_scatter,
)
from repro.kernels import Kernel, get_kernel
from repro.mpi.comm import SimComm
from repro.octree.build import leaf_point_counts
from repro.util import morton
from repro.util.timer import PhaseProfile

__all__ = ["DistributedFmm", "distributed_fmm_rank", "match_owned_rows"]


def match_owned_rows(all_points: np.ndarray, owned_points: np.ndarray) -> np.ndarray:
    """Row indices of ``owned_points`` inside ``all_points`` (exact match).

    Setup redistributes points by Morton order, losing their original
    positions; this recovers them by coordinate identity so callers can
    route global density rows to the owning rank and scatter owned
    potentials back into global order (the serving plane computes this
    once per shard at registration).  Coincident points would be matched
    arbitrarily; a missing point raises ``ValueError``.
    """
    dt = np.dtype([("x", "f8"), ("y", "f8"), ("z", "f8")])
    glob = np.ascontiguousarray(all_points, dtype=np.float64).view(dt).ravel()
    own = np.ascontiguousarray(owned_points, dtype=np.float64).view(dt).ravel()
    glob_order = np.argsort(glob)
    pos = np.searchsorted(glob[glob_order], own)
    src = glob_order[np.clip(pos, 0, len(glob) - 1)]
    if not np.array_equal(all_points[src], owned_points):
        raise ValueError("owned points not found among the global points")
    return src


class DistributedFmm:
    """Distributed kernel-independent FMM on a (simulated) communicator.

    Parameters mirror :class:`repro.core.Fmm`, plus:

    comm_scheme:
        ``"hypercube"`` (paper Algorithm 3, default) or ``"owner"`` (the
        retired baseline) for the shared-density reduction.
    load_balance:
        Repartition leaves by work weights after the first list build
        (paper §III-B).
    partition_level:
        With ``load_balance``, repartition whole level-``L`` blocks
        instead of single leaves — the coarser partitioning the paper
        suggests but did not try.  ``None`` (default) = per-leaf.
    use_gpu:
        Attach a virtual GPU to this rank and run the accelerated
        evaluator (each MPI process owns one accelerator, as on Lincoln).
    use_plan:
        Compile an :class:`~repro.core.plan.EvalPlan` (with this rank's
        ownership masks baked in) on the first ``evaluate()`` and reuse
        it for every subsequent call on the same setup — including
        resilient retries and checkpoint resumes, which rebind
        communicators but keep the LET, and with it the plan.
    precision:
        Plan precision (``"fp64"`` / ``"fp32"`` / ``"auto"``; see
        :class:`repro.core.Fmm`).  With ``"auto"``, every rank probes its
        own subsample and the decision is made *collectively* (allgather
        of the per-rank votes; fp32 only if every rank voted fp32), so
        ranks never evaluate at disagreeing precisions.  fp32 requires
        ``use_plan=True``.
    precision_rtol:
        Relative-error target for ``precision="auto"``.
    pipeline:
        Overlap communication with computation during ``evaluate`` (the
        paper's own "asynchronous communication" future-work item): the
        ghost-density exchange stays in flight through S2U/U2U, and the
        first (largest) round of the shared-density reduction stays in
        flight through the X-list GEMMs.  Bit-identical to the sequential
        schedule — the overlapped work never reads what the in-flight
        messages deliver, and the X-list adds are deferred to their
        sequential position — with identical per-rank ledgers.  Active
        only at ``comm.size > 1`` on non-resumed evaluations; the X-list
        half is skipped when the evaluator cannot defer it (device WX
        path).
    threads:
        Intra-rank parallelism: each rank runs its plan phase tiles on a
        task pool (see :mod:`repro.core.parallel`).  The per-rank pool is
        sized at :meth:`setup` as ``min(threads, host_cpus // comm.size)``
        so ``p`` ranks never land more than ``host_cpus`` compute threads
        on the host.  Bit-identical to serial at any setting; ``None``
        (default) keeps the single-threaded apply path.
    """

    def __init__(
        self,
        kernel: Kernel | str = "laplace",
        order: int = 6,
        max_points_per_box: int = 64,
        m2l_mode: str = "fft",
        comm_scheme: str = "hypercube",
        load_balance: bool = False,
        partition_level: int | None = None,
        rcond: float | None = None,
        use_gpu: bool = False,
        gpu=None,
        gpu_wx: bool = False,
        use_plan: bool = True,
        precision: str = "fp64",
        precision_rtol: float | None = None,
        pipeline: bool = True,
        threads: int | None = None,
    ):
        from repro.core.plan import PrecisionError

        if comm_scheme not in ("hypercube", "owner"):
            raise ValueError("comm_scheme must be 'hypercube' or 'owner'")
        if not use_plan and precision != "fp64":
            raise PrecisionError(
                f"precision={precision!r} requires use_plan=True: the "
                "plan-free distributed path is float64-only"
            )
        self.kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
        self.order = int(order)
        self.max_points_per_box = int(max_points_per_box)
        self.comm_scheme = comm_scheme
        self.load_balance = bool(load_balance)
        self.partition_level = partition_level
        if use_gpu or gpu is not None:
            from repro.gpu.accel import GpuFmmEvaluator

            self.evaluator = GpuFmmEvaluator(
                self.kernel,
                self.order,
                gpu=gpu,
                m2l_mode=m2l_mode,
                rcond=rcond,
                accelerate_wx=gpu_wx,
                precision=precision,
                precision_rtol=precision_rtol,
            )
        else:
            self.evaluator = FmmEvaluator(
                self.kernel,
                self.order,
                m2l_mode=m2l_mode,
                rcond=rcond,
                precision=precision,
                precision_rtol=precision_rtol,
            )
        self.use_plan = bool(use_plan)
        self.pipeline = bool(pipeline)
        self.threads = None if threads is None else max(1, int(threads))
        self.comm: SimComm | None = None
        self.let: LocalEssentialTree | None = None
        self.lists = None
        self._own_point_keys: np.ndarray | None = None
        self._own_counts: np.ndarray | None = None
        self._ckpt: dict | None = None
        self._plan = None

    # -- setup ---------------------------------------------------------------

    @property
    def profile(self) -> PhaseProfile:
        return self.comm.profile

    @property
    def trace(self):
        """The communicator's trace recorder (``None`` unless tracing)."""
        return self.comm.trace if self.comm is not None else None

    @property
    def owned_points(self) -> np.ndarray:
        """This rank's points after redistribution (Morton sorted)."""
        return self.let.tree.points[self.let.own_positions]

    @property
    def checkpoint_phase(self) -> str | None:
        """Deepest completed checkpoint: ``None``, ``"setup"``, ``"upward"``.

        ``"setup"`` means the LET and lists exist (a crashed evaluation can
        restart without rebuilding the tree); ``"upward"`` additionally
        means the ghost exchange, S2U/U2U sweeps, and the shared-density
        reduction completed for the last density vector, so
        ``evaluate(dens, resume=True)`` restarts from the local downward
        phases.
        """
        if self._ckpt is not None:
            return "upward"
        if self.let is not None:
            return "setup"
        return None

    def clear_checkpoint(self) -> None:
        """Drop the post-upward checkpoint (keeps the LET and the plan).

        The serving plane cuts one checkpoint per request (densities
        change every request, so a stale checkpoint can never be resumed
        from anyway); clearing it after the request completes bounds the
        memory a long-lived shard holds to the setup state.
        """
        self._ckpt = None

    def rebind(self, comm: SimComm) -> None:
        """Attach a fresh communicator to already-built setup state.

        Retried SPMD attempts get new communicators (new fabric, new
        ledgers); a :class:`DistributedFmm` checkpointed in a per-rank
        state dict (``run_spmd_resilient(..., rank_state=True)``) calls
        this before ``evaluate(..., resume=True)`` on the new attempt.
        The rank must be unchanged — the LET encodes the rank geometry.
        """
        if self.comm is not None and comm.rank != self.comm.rank:
            raise ValueError(
                f"rebind across ranks ({self.comm.rank} -> {comm.rank}): "
                "the LET is rank-specific"
            )
        self.comm = comm
        self._arm_chaos_gpu()

    def _arm_chaos_gpu(self) -> None:
        """Hand this rank's virtual GPU to the chaos fabric, if both exist."""
        gpu = getattr(self.evaluator, "gpu", None)
        if gpu is None or self.comm is None:
            return
        from repro.mpi.faults import ChaosFabric

        if isinstance(self.comm.fabric, ChaosFabric):
            self.comm.fabric.arm_gpu(gpu, self.comm.rank)

    def setup(self, comm: SimComm, local_points: np.ndarray) -> None:
        """Sort, build the tree, (re)balance, build LET and lists."""
        self.comm = comm
        if self.threads is not None:
            from repro.core.parallel import rank_pool_size

            self.evaluator.configure_threads(
                rank_pool_size(self.threads, comm.size)
            )
        profile = comm.profile
        with profile.phase("tree"):
            dist = distributed_points_to_octree(
                comm, local_points, self.max_points_per_box
            )
        leaves, points, point_keys = dist.leaves, dist.points, dist.point_keys
        geometry = dist.geometry

        with profile.phase("let"):
            let = build_let(comm, geometry, leaves, points, point_keys)
            profile.current.flops += 60.0 * let.tree.n_nodes
        with profile.phase("lists"):
            lists = build_lists(let.tree)
            profile.current.flops += 30.0 * sum(
                lists.work_summary().values()
            ) + 52.0 * let.tree.n_nodes * np.log2(max(let.tree.n_nodes, 2))

        if self.load_balance and comm.size > 1:
            with profile.phase("balance"):
                leaf_nodes = let.tree.find(leaves)
                weights = leaf_work_weights(
                    let.tree, lists, self.kernel, self.evaluator.ns, leaf_nodes
                )
                begin, end = leaf_point_counts(point_keys, leaves)
                new = repartition_leaves(
                    comm, leaves, weights, points, point_keys, begin, end,
                    partition_level=self.partition_level,
                )
                counts = comm.allgather(int(new[0].size))
                if min(counts) > 0:  # degenerate splits fall back
                    leaves, points, point_keys = new
                    geometry = RankGeometry.from_leaves(comm, leaves)
                    with profile.phase("let"):
                        let = build_let(comm, geometry, leaves, points, point_keys)
                        profile.current.flops += 60.0 * let.tree.n_nodes
                    with profile.phase("lists"):
                        lists = build_lists(let.tree)
                        profile.current.flops += 30.0 * sum(
                            lists.work_summary().values()
                        ) + 52.0 * let.tree.n_nodes * np.log2(
                            max(let.tree.n_nodes, 2)
                        )

        self.let = let
        self.lists = lists
        self._own_point_keys = point_keys
        # owned points per node (partial-sum scope needs owned counts, not
        # merged counts that include ghosts)
        tree = let.tree
        lo = morton.deepest_first_descendant(tree.keys)
        hi = morton.deepest_last_descendant(tree.keys)
        b = np.searchsorted(point_keys, lo, side="left")
        e = np.searchsorted(point_keys, hi, side="right")
        self._own_counts = (e - b).astype(np.int64)
        self._ckpt = None  # densities from an old tree are meaningless
        self._plan = None  # plans are bound to the LET built above
        self._arm_chaos_gpu()

    def update_geometry(self, new_local_points: np.ndarray) -> dict:
        """Re-setup on moved points, patching the compiled plan in place.

        All ranks must call this together with their new local chunks
        (same identity split as :meth:`setup`) — the re-sort, LET build
        and the precision vote below are collective.  The tree, LET and
        lists are rebuilt through the normal setup path (per-rank LET
        trees can gain or lose ghost octants, so the rebuild is not
        purely local), but the compiled plan — by far the dominant setup
        cost — is *patched*: :func:`~repro.core.plan.patch_plan` diffs
        the old and new LET trees by content and reuses every
        kernel-matrix block whose boxes survived, charged to a
        ``setup:patch`` span.  The patched plan is bit-identical to the
        plan a fresh :meth:`setup` + evaluate would compile.

        Returns a per-rank summary (patched flag, reuse stats).  Raises
        ``RuntimeError`` if the collective vote disagrees on precision —
        ranks patching plans at different precisions would break bitwise
        determinism across the fabric.
        """
        if self.let is None:
            raise RuntimeError("call setup() before update_geometry()")
        comm = self.comm
        old_let, old_lists, old_plan = self.let, self.lists, self._plan
        self.setup(comm, new_local_points)

        stats: dict = {}
        patched = False
        if self.use_plan and old_plan is not None:
            from repro.core.plan import PlanScopes, patch_plan
            from repro.core.tree import diff_trees

            let, lists = self.let, self.lists
            profile = comm.profile
            own_leaf = let.owned_leaf
            contrib = let.owned_contrib & (self._own_counts > 0)
            with profile.phase("setup:patch"):
                delta = diff_trees(old_let.tree, let.tree)
                self._plan = patch_plan(
                    self.evaluator, old_plan, old_let.tree, old_lists,
                    let.tree, lists, delta=delta,
                    scopes=PlanScopes(
                        s2u=own_leaf,
                        u2u=contrib,
                        vli=let.owned_contrib,
                        xli=let.owned_contrib,
                        d2d=let.owned_contrib,
                        wli=own_leaf,
                        d2t=own_leaf,
                        uli=own_leaf,
                    ),
                    cache_matrices=self.evaluator.PLAN_CACHE_MATRICES,
                    precision=old_plan.precision,
                )
            stats = dict(self._plan.patch_stats)
            patched = True

        # Collective fingerprint vote: per-rank LET trees legitimately
        # differ, but the plan precision must be unanimous — one rank at
        # fp32 against fp64 peers would evaluate a different answer.
        if comm.size > 1:
            prec = self._plan.precision if self._plan is not None else "none"
            votes = comm.allgather(prec)
            if len(set(votes)) != 1:
                raise RuntimeError(
                    f"update_geometry precision vote disagrees: {votes}"
                )
        return {"patched": patched, "patch_stats": stats}

    # -- evaluation --------------------------------------------------------------

    def evaluate(
        self,
        densities_owned: np.ndarray,
        resume: bool = False,
        pipeline: bool | None = None,
    ) -> np.ndarray:
        """Potentials at this rank's owned points (same layout as input).

        After the upward sweep completes (ghost exchange, S2U, U2U, and
        the shared-density reduction), a checkpoint of the merged
        densities and upward state is kept on the instance.  Passing
        ``resume=True`` with the *same* density vector restarts from that
        checkpoint, skipping the communication-bearing upward phases —
        all ranks of a run must resume together, since skipping
        ``COMM_exchange``/``COMM_reduce`` on one rank would deadlock the
        others.  A ``RECOVERY:resume`` span marks the restart in the
        trace.  ``resume=True`` without a matching checkpoint silently
        runs the full pipeline (so a retry loop can pass it
        unconditionally).

        ``pipeline`` overrides the constructor's overlap setting for this
        call (``None`` keeps it).  The schedule choice must be uniform
        across ranks — both schedules move the same messages, but the
        overlapped one posts them earlier.  A resumed evaluation skips
        the communication-bearing phases entirely, so it runs sequential
        regardless (and stays bit-identical: the deferred X-list adds
        land in the same order as the sequential schedule's).
        """
        if self.let is None:
            raise RuntimeError("call setup() before evaluate()")
        comm, let, lists = self.comm, self.let, self.lists
        tree = let.tree
        ks, kt = self.kernel.source_dim, self.kernel.target_dim
        profile = comm.profile
        ev = self.evaluator

        dens_owned = np.asarray(densities_owned, dtype=np.float64).reshape(-1)
        if dens_owned.size != let.n_owned_points * ks:
            raise ValueError(
                f"densities size {dens_owned.size} != owned_points*source_dim "
                f"{let.n_owned_points * ks}"
            )
        resumable = (
            resume
            and self._ckpt is not None
            and np.array_equal(dens_owned, self._ckpt["dens_owned"])
        )
        if resume and comm.size > 1:
            # the resume decision must be collective: a rank aborted before
            # its checkpoint was cut would otherwise run COMM_exchange /
            # COMM_reduce alone against ranks that skip them — a deadlock
            resumable = all(comm.allgather(bool(resumable)))
        state = ev.allocate(tree)
        own_leaf = let.owned_leaf
        contrib = let.owned_contrib & (self._own_counts > 0)

        plan = self._plan
        if self.use_plan and plan is None:
            from repro.core.plan import PlanScopes

            precision = ev.precision
            if precision == "auto":
                # Every rank probes its own subsample, then the decision is
                # made collectively: one disagreeing rank would otherwise
                # evaluate a different plan and break bitwise determinism
                # across partitionings.  fp32 only on a unanimous vote.
                local = ev._resolve_auto(tree, profile)
                if comm.size > 1:
                    with profile.phase("setup:precision"):
                        votes = comm.allgather(local)
                    precision = (
                        "fp32" if all(v == "fp32" for v in votes) else "fp64"
                    )
                else:
                    precision = local
                # pin the collective choice so lazy evaluator paths agree
                ev._auto_choice = precision

            # Compiled once per setup(): the ownership masks are baked in,
            # and the plan survives rebind()/resume, so retried attempts
            # and every later evaluate() skip straight to the apply.
            with profile.phase("setup:plan"):
                plan = self._plan = ev.compile_plan(
                    tree,
                    lists,
                    scopes=PlanScopes(
                        s2u=own_leaf,
                        u2u=contrib,
                        vli=let.owned_contrib,
                        xli=let.owned_contrib,
                        d2d=let.owned_contrib,
                        wli=own_leaf,
                        d2t=own_leaf,
                        uli=own_leaf,
                    ),
                    cache_matrices=ev.PLAN_CACHE_MATRICES,
                    precision=precision,
                )

        profile.precision = plan.precision if plan is not None else "fp64"
        pipelined = (
            (self.pipeline if pipeline is None else bool(pipeline))
            and comm.size > 1
            and not resumable
        )
        xli_deferred: list | None = None
        if resumable:
            dens = self._ckpt["dens"].copy()
            state["up"] = self._ckpt["up"].copy()
            with profile.phase("RECOVERY:resume"):
                pass  # span marks the phases skipped via the checkpoint
        else:
            dens = let.scatter_own_densities(dens_owned, ks)
            if pipelined:
                # Post the ghost exchange and let it fly through S2U/U2U:
                # the upward pass is scoped to owned leaves/contributors
                # and never reads the ghost density slots being filled.
                with profile.phase("COMM_exchange"):
                    inflight = let.exchange_densities_start(comm, dens, ks)
            else:
                with profile.phase("COMM_exchange"):
                    let.exchange_densities(comm, dens, ks)
            with profile.phase("S2U"):
                ev.s2u(tree, dens, state, profile, scope=own_leaf, plan=plan)
            with profile.phase("U2U"):
                ev.u2u(tree, state, profile, scope=contrib, plan=plan)
            if pipelined:
                # Complete before the reduce: charges land in this phase,
                # and ghost densities must be in place for X/U-lists.
                with profile.phase("COMM_exchange"):
                    inflight.finish()
            if pipelined and ev.xli_deferrable():
                # X-list reads only input densities (now complete) and
                # writes nothing yet, so its GEMMs hide behind the first
                # reduce round; the adds replay at the sequential XLI
                # position below, keeping bit-identity.
                deferred: list = []

                def _overlap() -> None:
                    with profile.phase("XLI"):
                        deferred.append(
                            ev.xli_compute(
                                tree, lists, dens, profile,
                                scope=let.owned_contrib, plan=plan,
                            )
                        )

                with profile.phase("COMM_reduce"):
                    self._reduce_shared(state, overlap=_overlap)
                if deferred:
                    xli_deferred = deferred[0]
            else:
                with profile.phase("COMM_reduce"):
                    self._reduce_shared(state)
            self._ckpt = {
                "dens_owned": dens_owned.copy(),
                "dens": dens.copy(),
                "up": state["up"].copy(),
            }
            if comm.size > 1:
                # Commit the checkpoint collectively: without this, a
                # crash early in one rank's downward sweep can abort a
                # peer still blocked in COMM_reduce (before its cut), and
                # the next attempt's collective resume decision degrades
                # to a full re-run depending on thread schedule.  After
                # the barrier, every rank holds its checkpoint before any
                # rank enters the abortable downward phases, so recovery
                # behaviour is deterministic.  (A rank aborted *inside*
                # the barrier has already cut its checkpoint — still
                # resumable.)
                with profile.phase("COMM_ckpt"):
                    comm.barrier()
        with profile.phase("VLI"):
            ev.vli(tree, lists, state, profile, scope=let.owned_contrib, plan=plan)
        with profile.phase("XLI"):
            if xli_deferred is not None:
                ev.xli_apply(state, xli_deferred)
            else:
                ev.xli(
                    tree, lists, dens, state, profile,
                    scope=let.owned_contrib, plan=plan,
                )
        with profile.phase("D2D"):
            ev.d2d(tree, state, profile, scope=let.owned_contrib, plan=plan)
        with profile.phase("WLI"):
            ev.wli(tree, lists, state, profile, scope=own_leaf, plan=plan)
        with profile.phase("D2T"):
            ev.d2t(tree, state, profile, scope=own_leaf, plan=plan)
        with profile.phase("ULI"):
            ev.uli(tree, lists, dens, state, profile, scope=own_leaf, plan=plan)
        return let.gather_own_values(state["pot"], kt)

    def _reduce_shared(self, state: dict, overlap=None) -> None:
        """Communication steps 2+3: complete the shared upward densities.

        ``overlap`` (optional zero-arg callback) runs once while the
        largest exchange of the reduction is in flight; it must not read
        or write upward densities.
        """
        comm, let = self.comm, self.let
        tree, geometry = let.tree, let.geometry
        if comm.size == 1:
            if overlap is not None:
                overlap()
            return
        shared = geometry.is_shared(tree.keys, comm.rank)
        mine = shared & let.owned_contrib & (self._own_counts > 0)
        keys = tree.keys[mine]
        dens = state["up"][mine]
        # Algorithm 3 assumes a power-of-two communicator (as the paper
        # states); odd sizes fall back to the owner-based scheme, which
        # is correct at any size.
        pow2 = comm.size & (comm.size - 1) == 0
        reduce_fn = (
            hypercube_reduce_scatter
            if self.comm_scheme == "hypercube" and pow2
            else owner_reduce_scatter
        )
        rkeys, rdens = reduce_fn(comm, geometry, keys, dens, overlap=overlap)
        idx = tree.find(rkeys)
        ok = idx >= 0
        state["up"][idx[ok]] = rdens[ok]


def distributed_fmm_rank(
    comm: SimComm,
    all_points: np.ndarray,
    densities: np.ndarray,
    **fmm_kwargs,
):
    """Convenience SPMD body: scatter, evaluate, return owned results.

    ``all_points``/``densities`` are the *global* arrays (every rank slices
    its strided chunk, modelling the paper's "equally-distributed randomly
    across all processes" input).  Returns ``(owned_points, potentials)``
    per rank; concatenating across ranks covers every input point once.
    """
    mine = all_points[comm.rank :: comm.size]
    fmm = DistributedFmm(**fmm_kwargs)
    fmm.setup(comm, mine)
    ks = fmm.kernel.source_dim
    own_pts = fmm.owned_points
    if callable(densities):
        dens_owned = np.asarray(densities(own_pts), dtype=np.float64).reshape(-1)
    else:
        src = match_owned_rows(all_points, own_pts)
        dens_rows = np.asarray(densities, dtype=np.float64).reshape(-1, ks)
        dens_owned = dens_rows[src].reshape(-1)
    pot = fmm.evaluate(dens_owned)
    return own_pts, pot, fmm
