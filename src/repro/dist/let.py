"""Local Essential Tree construction (paper Algorithm 2).

Each rank starts from its owned leaves ``L_k`` plus their ancestors
``B_k = L_k ∪ A(L_k)``.  Octants are then exchanged by the
contributor/user rule: rank ``k`` sends ``β ∈ B_k`` to every rank whose
domain overlaps the (inclusive) colleague region of ``P(β)`` —
``I_kk' = {β ∈ B_k : N(P(β)) ∩ Ω_k' ≠ ∅}``.  Leaf octants travel with
their point coordinates so the receiver can later evaluate U- and X-list
(direct) interactions; densities are exchanged separately at evaluation
time along exactly the same routes.

The received octants (plus locally fabricated ancestors, which need no
communication) are merged with ``B_k`` into the LET; ghost points are
merged into the rank's Morton-sorted point array so the resulting
:class:`FmmTree` serves owned and ghost leaves uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.tree import FmmTree
from repro.dist.geometry import RankGeometry, cell_range
from repro.mpi.comm import SimComm
from repro.util import geometry as ugeom
from repro.util import morton

__all__ = ["GhostDensityExchange", "LocalEssentialTree", "build_let"]

_TAG_DENS = 7300


@dataclass
class GhostDensityExchange:
    """An in-flight ghost-density exchange.

    Started by :meth:`LocalEssentialTree.exchange_densities_start`; the
    traffic is posted (nonblocking) and stays in flight while the caller
    computes.  :meth:`finish` completes the requests — charging the
    ledger/trace in the phase open at that point — fills the ghost-leaf
    density slots exactly like the blocking exchange, and emits one
    ``INFLIGHT:COMM_exchange`` trace span recording how much compute
    happened while the exchange was airborne.
    """

    let: "LocalEssentialTree"
    comm: SimComm
    merged_dens: np.ndarray
    source_dim: int
    handle: object  # AlltoallRequest
    t0: float
    flops0: float

    def finish(self) -> None:
        received = self.handle.wait()
        self.let._fill_ghost_densities(received, self.merged_dens, self.source_dim)
        self.comm.record_inflight(
            "COMM_exchange", self.t0, self.flops0, self.handle.requests
        )


@dataclass
class LocalEssentialTree:
    """Per-rank LET: tree + ownership masks + density-exchange routing."""

    tree: FmmTree
    geometry: RankGeometry
    #: Leaves owned by this rank (potentials are computed here).
    owned_leaf: np.ndarray
    #: Nodes overlapping this rank's domain: the scope of S2U/U2U partial
    #: sums and of the local downward pass.
    owned_contrib: np.ndarray
    #: Positions of the rank's own points inside the merged point array.
    own_positions: np.ndarray
    #: Per destination rank: node indices of own leaves whose densities
    #: must be shipped before the direct phases (order fixed at setup).
    send_leaves: list[np.ndarray]
    #: Per source rank: node indices of ghost leaves whose densities
    #: arrive, in the sender's order.
    recv_leaves: list[np.ndarray]

    @property
    def n_owned_points(self) -> int:
        return self.own_positions.size

    def scatter_own_densities(self, dens_own: np.ndarray, source_dim: int) -> np.ndarray:
        """Place owned-point densities into a merged-array density vector."""
        merged = np.zeros(self.tree.n_points * source_dim)
        merged.reshape(-1, source_dim)[self.own_positions] = dens_own.reshape(
            -1, source_dim
        )
        return merged

    def gather_own_values(self, merged: np.ndarray, dim: int) -> np.ndarray:
        """Extract owned-point values from a merged-array vector."""
        return merged.reshape(-1, dim)[self.own_positions].reshape(-1)

    def _density_blocks(
        self, size: int, merged_dens: np.ndarray, source_dim: int
    ) -> list:
        """Per-destination density payloads along the Algorithm-2 routes."""
        tree = self.tree
        blocks = []
        for dest in range(size):
            nodes = self.send_leaves[dest]
            if nodes.size == 0:
                blocks.append(np.empty(0))
                continue
            parts = [
                merged_dens[tree.pt_begin[i] * source_dim : tree.pt_end[i] * source_dim]
                for i in nodes
            ]
            blocks.append(np.concatenate(parts) if parts else np.empty(0))
        return blocks

    def _fill_ghost_densities(
        self, received: list, merged_dens: np.ndarray, source_dim: int
    ) -> None:
        """Scatter received per-source buffers into ghost-leaf slots."""
        tree = self.tree
        for src in range(len(received)):
            nodes = self.recv_leaves[src]
            if nodes.size == 0:
                continue
            buf = received[src]
            pos = 0
            for i in nodes:
                n = (tree.pt_end[i] - tree.pt_begin[i]) * source_dim
                merged_dens[
                    tree.pt_begin[i] * source_dim : tree.pt_end[i] * source_dim
                ] = buf[pos : pos + n]
                pos += n
            assert pos == buf.size, "density exchange length mismatch"

    def exchange_densities(
        self, comm: SimComm, merged_dens: np.ndarray, source_dim: int
    ) -> None:
        """Fill ghost-leaf density slots via the Algorithm-2 routes.

        The paper's "first communication step ... to communicate the exact
        densities for the direct calculation" (§III-C).
        """
        blocks = self._density_blocks(comm.size, merged_dens, source_dim)
        received = comm.alltoall(blocks)
        self._fill_ghost_densities(received, merged_dens, source_dim)

    def exchange_densities_start(
        self, comm: SimComm, merged_dens: np.ndarray, source_dim: int
    ) -> GhostDensityExchange:
        """Nonblocking :meth:`exchange_densities`: post and return.

        Sends the exact same blocks over the exact same pairwise schedule
        (so per-rank ledgers match the blocking exchange), but returns
        while the traffic is in flight; the caller runs the upward pass
        (which touches no ghost density slots) and then calls
        :meth:`GhostDensityExchange.finish` before the first direct phase
        that reads ghosts.
        """
        blocks = self._density_blocks(comm.size, merged_dens, source_dim)
        t0 = time.perf_counter()
        flops0 = comm.profile.total_flops()
        handle = comm.ialltoall(blocks)
        return GhostDensityExchange(
            self, comm, merged_dens, source_dim, handle, t0, flops0
        )


def _let_tree(
    keys: np.ndarray,
    leaf_flags: np.ndarray,
    sorted_points: np.ndarray,
    sorted_point_keys: np.ndarray,
) -> FmmTree:
    """Assemble an :class:`FmmTree` over an explicit (incomplete) node set."""
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    leaf_flags = leaf_flags[order]
    levels = morton.level(keys)

    parent_keys = morton.parent(keys)
    parent = np.searchsorted(keys, parent_keys).astype(np.int64)
    parent[0] = -1
    # every non-root parent must be present (ancestors were fabricated)
    assert np.all(keys[np.clip(parent[1:], 0, None)] == parent_keys[1:]), (
        "LET is missing ancestors"
    )

    shift = np.uint64(morton.LEVEL_BITS) + 3 * (morton.MAX_DEPTH - levels).astype(
        np.uint64
    )
    child_pos = ((keys >> shift) & np.uint64(7)).astype(np.int64)
    child_pos[0] = 0
    children = np.full((keys.size, 8), -1, dtype=np.int64)
    nz = np.arange(1, keys.size)
    children[parent[nz], child_pos[nz]] = nz

    lo = morton.deepest_first_descendant(keys)
    hi = morton.deepest_last_descendant(keys)
    pt_begin = np.searchsorted(sorted_point_keys, lo, side="left").astype(np.int64)
    pt_end = np.searchsorted(sorted_point_keys, hi, side="right").astype(np.int64)

    return FmmTree(
        keys=keys,
        levels=levels,
        is_leaf=leaf_flags,
        parent=parent,
        children=children,
        child_pos=child_pos,
        points=sorted_points,
        order=np.arange(len(sorted_points)),
        pt_begin=pt_begin,
        pt_end=pt_end,
        centers=ugeom.box_center(keys),
        half_widths=ugeom.box_half_width(levels),
    )


def build_let(
    comm: SimComm,
    geometry: RankGeometry,
    owned_leaves: np.ndarray,
    sorted_points: np.ndarray,
    sorted_point_keys: np.ndarray,
) -> LocalEssentialTree:
    """Algorithm 2: exchange ghost octants and assemble the LET."""
    p, r = comm.size, comm.rank

    own_keys = np.union1d(owned_leaves, morton.ancestors_of(owned_leaves))
    own_is_leaf = np.isin(own_keys, owned_leaves, assume_unique=True)
    leaf_pos = {int(k): i for i, k in enumerate(own_keys)}

    # Point ranges of own leaves in the (pre-merge) own point array.
    lo = morton.deepest_first_descendant(own_keys)
    hi = morton.deepest_last_descendant(own_keys)
    own_begin = np.searchsorted(sorted_point_keys, lo, side="left")
    own_end = np.searchsorted(sorted_point_keys, hi, side="right")

    # I_kk' membership: octant row -> user rank.
    rows, ranks = geometry.user_pairs(own_keys)
    send_specs: list[dict] = []
    send_leaf_keys: list[np.ndarray] = []
    for dest in range(p):
        sel = rows[ranks == dest]
        if dest == r:
            send_specs.append(None)
            send_leaf_keys.append(np.empty(0, dtype=np.uint64))
            continue
        keys_d = own_keys[sel]
        flags_d = own_is_leaf[sel]
        leaf_sel = sel[flags_d]
        counts = (own_end - own_begin)[leaf_sel]
        pts = (
            np.concatenate(
                [sorted_points[own_begin[i] : own_end[i]] for i in leaf_sel]
            )
            if leaf_sel.size
            else np.empty((0, 3))
        )
        send_specs.append(
            {"keys": keys_d, "is_leaf": flags_d, "counts": counts, "points": pts}
        )
        send_leaf_keys.append(own_keys[leaf_sel])
    received = comm.alltoall(send_specs)

    # Merge ghosts into the node set; fabricate missing ancestors locally.
    ghost_keys_parts, ghost_flag_parts = [], []
    ghost_pts_parts, ghost_pt_keys_parts = [], []
    recv_leaf_keys: list[np.ndarray] = [np.empty(0, dtype=np.uint64)] * p
    for src in range(p):
        msg = received[src]
        if msg is None:
            continue
        ghost_keys_parts.append(msg["keys"])
        ghost_flag_parts.append(msg["is_leaf"])
        leaf_keys = msg["keys"][msg["is_leaf"]]
        recv_leaf_keys[src] = leaf_keys
        if msg["points"].size:
            ghost_pts_parts.append(msg["points"])
            ghost_pt_keys_parts.append(
                np.repeat(leaf_keys, msg["counts"])
            )

    if ghost_keys_parts:
        ghost_keys = np.concatenate(ghost_keys_parts)
        ghost_flags = np.concatenate(ghost_flag_parts)
    else:
        ghost_keys = np.empty(0, dtype=np.uint64)
        ghost_flags = np.empty(0, dtype=bool)

    all_keys = np.concatenate([own_keys, ghost_keys])
    all_flags = np.concatenate([own_is_leaf, ghost_flags])
    uniq, first = np.unique(all_keys, return_index=True)
    flags = np.zeros(uniq.size, dtype=bool)
    # a key is a leaf iff any copy says leaf (owners are authoritative and
    # internal copies agree, but ghosts of own ancestors may arrive too)
    leaf_keys_any = np.unique(all_keys[all_flags])
    flags[np.isin(uniq, leaf_keys_any, assume_unique=True)] = True
    anc = morton.ancestors_of(uniq)
    extra = np.setdiff1d(anc, uniq, assume_unique=False)
    let_keys = np.concatenate([uniq, extra])
    let_flags = np.concatenate([flags, np.zeros(extra.size, dtype=bool)])

    # Merge ghost points with own points (Morton order).
    if ghost_pts_parts:
        g_pts = np.concatenate(ghost_pts_parts)
        # point keys of ghost points: encode directly (cheap, exact)
        g_keys = morton.encode_points(g_pts)
        m_keys = np.concatenate([sorted_point_keys, g_keys])
        m_pts = np.concatenate([sorted_points, g_pts])
        order = np.argsort(m_keys, kind="stable")
        m_keys, m_pts = m_keys[order], m_pts[order]
        # positions of the original (owned) points in the merged order
        own_positions = np.argsort(order, kind="stable")[: len(sorted_points)]
    else:
        m_keys, m_pts = sorted_point_keys, sorted_points
        own_positions = np.arange(len(sorted_points))

    tree = _let_tree(let_keys, let_flags, m_pts, m_keys)

    # Ownership masks.
    dom_lo, dom_hi = geometry.bounds[r], geometry.bounds[r + 1]
    n_lo, n_hi = cell_range(tree.keys)
    overlap = (n_lo < dom_hi) & (n_hi > dom_lo)
    owned_leaf = tree.is_leaf & (n_lo >= dom_lo) & (n_hi <= dom_hi)
    owned_contrib = overlap

    # Density-exchange routing in tree-node indices.
    send_leaves = [tree.find(k) for k in send_leaf_keys]
    recv_leaves = [tree.find(k) for k in recv_leaf_keys]
    for arr in (*send_leaves, *recv_leaves):
        assert np.all(arr >= 0), "exchange leaf missing from LET"

    return LocalEssentialTree(
        tree=tree,
        geometry=geometry,
        owned_leaf=owned_leaf,
        owned_contrib=owned_contrib,
        own_positions=own_positions,
        send_leaves=send_leaves,
        recv_leaves=recv_leaves,
    )
