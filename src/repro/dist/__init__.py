"""Distributed-memory FMM (paper §III) on the simulated MPI runtime.

Components:

* :mod:`repro.dist.geometry` — rank domains Ω_k as Morton cell ranges and
  contributor/user rank resolution.
* :mod:`repro.dist.build` — distributed ``Points2Octree`` (parallel sample
  sort + per-rank refinement of seed octants).
* :mod:`repro.dist.let` — Local Essential Tree construction (Algorithm 2).
* :mod:`repro.dist.reduce_scatter` — the hypercube REDUCE-AND-SCATTER of
  shared upward densities (Algorithm 3), plus the owner-based baseline the
  paper retired.
* :mod:`repro.dist.loadbalance` — work-weighted Morton repartitioning
  (§III-B).
* :mod:`repro.dist.driver` — the end-to-end :class:`DistributedFmm`.
"""

from repro.dist.geometry import RankGeometry
from repro.dist.build import distributed_points_to_octree

__all__ = [
    "DistributedFmm",
    "distributed_fmm_rank",
    "RankGeometry",
    "distributed_points_to_octree",
    "hypercube_reduce_scatter",
    "owner_reduce_scatter",
]


def __getattr__(name):  # lazy: submodules appear as they are implemented
    if name in ("DistributedFmm", "distributed_fmm_rank"):
        from repro.dist import driver

        return getattr(driver, name)
    if name in ("hypercube_reduce_scatter", "owner_reduce_scatter"):
        from repro.dist import reduce_scatter

        return getattr(reduce_scatter, name)
    raise AttributeError(name)
