"""Work-based load balancing (paper §III-B).

After a first LET + interaction-list build, every leaf is assigned a
weight estimating the evaluation flops implied by its U/V/W/X lists; the
Morton-sorted leaf array is then repartitioned so per-rank total weights
are approximately equal (Algorithm 1 of Sundar et al., reduced here to a
global prefix scan + alltoall of whole leaves with their points).  As in
the paper, communication costs are ignored by the partitioner — "such an
approach is suboptimal, but is not expensive to compute and works
reasonably well in practice".
"""

from __future__ import annotations

import numpy as np

from repro.core.lists import InteractionLists
from repro.core.tree import FmmTree
from repro.kernels.base import Kernel
from repro.mpi.comm import SimComm

__all__ = ["leaf_work_weights", "repartition_leaves"]


def _block_targets(
    comm: SimComm,
    leaves: np.ndarray,
    weights: np.ndarray,
    total: float,
    partition_level: int,
) -> np.ndarray:
    """Per-leaf target ranks constrained to whole level-``L`` blocks.

    Block ids (the leaves' ancestors at the partition level, or the leaf
    itself where coarser) and their weights are aggregated globally via a
    small allgather; all leaves of a block get one target rank computed
    from the block's global prefix weight.
    """
    from repro.util import morton

    p = comm.size
    lev = np.minimum(morton.level(leaves), partition_level)
    blocks = morton.ancestor_at(leaves, lev)
    uniq, inv = np.unique(blocks, return_inverse=True)
    local_sums = np.zeros(uniq.size)
    np.add.at(local_sums, inv, weights)
    merged: dict[int, float] = {}
    for part in comm.allgather(
        {int(k): float(v) for k, v in zip(uniq, local_sums)}
    ):
        for k, v in part.items():
            merged[k] = merged.get(k, 0.0) + v
    order = np.array(sorted(merged), dtype=np.uint64)
    w = np.array([merged[int(k)] for k in order])
    prefix = np.cumsum(w) - w
    block_target = np.minimum((prefix * p / total).astype(np.int64), p - 1)
    pos = np.searchsorted(order, blocks)
    return block_target[pos]


def leaf_work_weights(
    tree: FmmTree,
    lists: InteractionLists,
    kernel: Kernel,
    n_surf: int,
    leaf_nodes: np.ndarray,
) -> np.ndarray:
    """Estimated evaluation flops attributable to each given leaf.

    U-list work counts point-pair interactions; V/W/X and the up/down
    passes are charged per list entry at surface-point granularity.  The
    estimate only needs to *rank* leaves consistently, so the per-pair
    constants reuse the kernel flop model.
    """
    counts = tree.point_counts()
    fpp = float(kernel.flops_per_pair)
    # surface degrees of freedom: vector kernels carry source_dim/target_dim
    # values per surface point, scaling the V-list matvecs accordingly
    ns_src = float(n_surf) * kernel.source_dim
    ns_tgt = float(n_surf) * kernel.target_dim
    w = np.zeros(leaf_nodes.size, dtype=np.float64)
    for j, i in enumerate(leaf_nodes):
        npts = counts[i]
        u_src = lists.u.of(i)
        w[j] = fpp * npts * counts[u_src].sum()  # ULI
        w[j] += 2.0 * ns_src * ns_tgt * lists.v.counts[i]  # VLI
        w[j] += fpp * npts * n_surf * lists.w.counts[i]  # WLI
        w[j] += fpp * n_surf * counts[lists.x.of(i)].sum()  # XLI
        w[j] += fpp * npts * n_surf * 2 + 4.0 * ns_src * ns_tgt  # S2U/D2T/up/down
    return w


def repartition_leaves(
    comm: SimComm,
    leaves: np.ndarray,
    weights: np.ndarray,
    points: np.ndarray,
    point_keys: np.ndarray,
    leaf_begin: np.ndarray,
    leaf_end: np.ndarray,
    partition_level: int | None = None,
):
    """Redistribute whole leaves so per-rank weights balance.

    Every leaf (with its points) moves to rank
    ``floor(global_prefix_weight / (total/p))``; prefixes are monotone so
    each rank receives a contiguous Morton chunk.

    ``partition_level`` enables the paper's suggested-but-untried coarser
    partitioning (§III-B): leaves sharing an ancestor at that level move
    as one block (one target rank per block).  Coarser blocks mean less
    precise balance but cheaper repartitioning and coarser rank
    boundaries (fewer boundary octants in the rebuilt LET).

    Returns ``(leaves, points, point_keys)`` after the exchange.
    """
    p = comm.size
    local_total = float(weights.sum())
    before = comm.exscan(local_total)
    before = 0.0 if before is None else before
    total = comm.allreduce(local_total)
    if total <= 0.0:
        return leaves, points, point_keys
    if partition_level is None:
        prefix = before + np.cumsum(weights) - weights  # exclusive per leaf
        target = np.minimum((prefix * p / total).astype(np.int64), p - 1)
    else:
        target = _block_targets(
            comm, leaves, weights, total, int(partition_level)
        )
    target = np.maximum.accumulate(target)  # monotone guard

    blocks = []
    for dest in range(p):
        sel = np.flatnonzero(target == dest)
        if sel.size:
            pt_sel = np.concatenate(
                [np.arange(leaf_begin[i], leaf_end[i]) for i in sel]
            )
        else:
            pt_sel = np.empty(0, dtype=np.int64)
        blocks.append(
            (leaves[sel], points[pt_sel], point_keys[pt_sel])
        )
    received = comm.alltoall(blocks)
    new_leaves = np.concatenate([b[0] for b in received])
    new_points = np.concatenate([b[1] for b in received])
    new_keys = np.concatenate([b[2] for b in received])
    order = np.argsort(new_keys, kind="stable")
    leaf_order = np.argsort(new_leaves, kind="stable")
    return new_leaves[leaf_order], new_points[order], new_keys[order]
