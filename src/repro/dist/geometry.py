"""Rank domains and contributor/user resolution.

Each rank owns a contiguous range of Morton *cells* (``MAX_DEPTH``-level
lattice positions): Ω_k = ``[bounds[k], bounds[k+1])``.  Because leaves are
distributed as whole units of the Morton-sorted array, every leaf is wholly
inside one rank's range, and every geometric region of interest (an octant,
or the 3x3x3 neighbourhood of an octant's parent) is a short list of cell
intervals whose overlapping ranks form contiguous rank intervals — so all
contributor/user queries reduce to ``searchsorted`` on the (p+1) bounds.

Definitions (paper §III-A):

* contributors ``P_c(β)`` — ranks whose Ω overlaps β's own region;
* users ``P_u(β)`` — ranks whose Ω overlaps the colleague region of
  ``P(β)``.  We take the *inclusive* 3x3x3 block around ``P(β)`` (the
  parent box itself plus its 26 same-level neighbours): the parent's own
  region covers same-parent U/V partners, which the bare colleague set
  would miss for ranks nested strictly inside ``P(β)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.comm import SimComm
from repro.util import morton

__all__ = ["RankGeometry", "cell_range"]


def cell_range(octs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Half-open Morton cell interval ``[lo, hi)`` of each octant."""
    octs = np.asarray(octs, dtype=np.uint64)
    lo = morton.deepest_first_descendant(octs) >> np.uint64(morton.LEVEL_BITS)
    hi = (morton.deepest_last_descendant(octs) >> np.uint64(morton.LEVEL_BITS)) + np.uint64(1)
    return lo.astype(np.int64), hi.astype(np.int64)


def _parent_neighborhood_ranges(octs: np.ndarray):
    """Cell intervals of the inclusive 3x3x3 block around each parent.

    Returns ``(lo, hi)`` arrays of shape ``(n, 27)``; invalid (out of
    domain) slots carry an empty interval.
    """
    octs = np.atleast_1d(np.asarray(octs, dtype=np.uint64))
    parents = morton.parent(octs)
    nb, valid = morton.neighbors(parents)
    lo = np.zeros((octs.size, 27), dtype=np.int64)
    hi = np.zeros((octs.size, 27), dtype=np.int64)
    plo, phi = cell_range(parents)
    lo[:, 0], hi[:, 0] = plo, phi
    nlo, nhi = cell_range(nb.ravel())
    nlo = nlo.reshape(octs.size, 26)
    nhi = nhi.reshape(octs.size, 26)
    lo[:, 1:] = np.where(valid, nlo, 0)
    hi[:, 1:] = np.where(valid, nhi, 0)
    return lo, hi


@dataclass
class RankGeometry:
    """Global domain decomposition: cell-range bounds per rank."""

    bounds: np.ndarray  # (p+1,) int64 cell starts, monotone

    @property
    def size(self) -> int:
        return self.bounds.size - 1

    @classmethod
    def from_leaves(cls, comm: SimComm, leaves: np.ndarray) -> "RankGeometry":
        """Allgather per-rank first-cell boundaries from owned leaf sets.

        Requires every rank to own at least one leaf and the global leaf
        set to tile the unit cube contiguously in Morton order.
        """
        if leaves.size == 0:
            raise ValueError(f"rank {comm.rank} owns no leaves")
        lo, _ = cell_range(leaves[:1])
        firsts = comm.allgather(int(lo[0]))
        n_cells = 1 << (3 * morton.MAX_DEPTH)
        bounds = np.array(firsts + [n_cells], dtype=np.int64)
        if not np.all(np.diff(bounds) > 0):
            raise ValueError("rank domains must be non-empty and ordered")
        return cls(bounds)

    # -- queries -----------------------------------------------------------

    def rank_interval(self, lo, hi) -> tuple[np.ndarray, np.ndarray]:
        """Ranks overlapping cell interval(s) ``[lo, hi)`` as ``[r0, r1)``."""
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        r0 = np.searchsorted(self.bounds, lo, side="right") - 1
        r1 = np.searchsorted(self.bounds, hi, side="left")
        r0 = np.clip(r0, 0, self.size)
        r1 = np.clip(r1, 0, self.size)
        return r0, np.maximum(r1, r0)

    def owner_of_octants(self, octs: np.ndarray) -> np.ndarray:
        """Rank owning each octant's *first* cell (the paper's owner rule)."""
        lo, _ = cell_range(octs)
        return np.clip(
            np.searchsorted(self.bounds, lo, side="right") - 1, 0, self.size - 1
        )

    def contributor_intervals(self, octs: np.ndarray):
        """Contiguous contributor rank interval ``[r0, r1)`` per octant."""
        lo, hi = cell_range(octs)
        return self.rank_interval(lo, hi)

    def user_pairs(self, octs: np.ndarray):
        """(octant index, user rank) pairs, deduplicated.

        Users are ranks overlapping the inclusive parent neighbourhood.
        """
        octs = np.atleast_1d(np.asarray(octs, dtype=np.uint64))
        lo, hi = _parent_neighborhood_ranges(octs)
        nonempty = hi > lo
        r0, r1 = self.rank_interval(lo, hi)
        counts = np.where(nonempty, r1 - r0, 0)
        total = int(counts.sum())
        rows = np.repeat(
            np.broadcast_to(np.arange(octs.size)[:, None], counts.shape)[nonempty.nonzero()],
            counts[nonempty],
        )
        head = np.repeat(np.cumsum(counts[nonempty]) - counts[nonempty], counts[nonempty])
        ranks = np.arange(total, dtype=np.int64) - head + np.repeat(r0[nonempty], counts[nonempty])
        code = rows * np.int64(self.size) + ranks
        code = np.unique(code)
        return code // self.size, code % self.size

    def user_overlaps_range(
        self, octs: np.ndarray, cell_lo: int, cell_hi: int
    ) -> np.ndarray:
        """True per octant when its user region overlaps ``[cell_lo, cell_hi)``.

        This is the filter of Algorithm 3 (steps 4 and 7): "octants whose
        interaction region touches the domain of ranks us..ue".
        """
        lo, hi = _parent_neighborhood_ranges(octs)
        overlap = (lo < cell_hi) & (hi > cell_lo) & (hi > lo)
        return overlap.any(axis=1)

    def is_shared(self, octs: np.ndarray, rank: int) -> np.ndarray:
        """True when contributors ∪ users contains a rank other than ``rank``.

        This is the paper's "shared octant" predicate for Algorithm 3.
        """
        octs = np.atleast_1d(np.asarray(octs, dtype=np.uint64))
        c0, c1 = self.contributor_intervals(octs)
        multi = (c1 - c0) > 1
        solo_other = (c1 - c0 == 1) & (c0 != rank)
        out = multi | solo_other
        # users beyond this rank?
        rows, ranks = self.user_pairs(octs)
        other = ranks != rank
        out[np.unique(rows[other])] = True
        return out
