"""Upward-density reduction for shared octants.

Two implementations of the paper's second+third communication steps
("sum up the upward densities of all the contributors of each octant ...
then broadcast the complete densities to the users"):

* :func:`hypercube_reduce_scatter` — paper **Algorithm 3**: ``log2 p``
  rounds over the hypercube dimensions; at round ``i`` each rank exchanges
  with ``r XOR 2^i`` the shared octants whose *user region* can still
  reach the partner's half of the address space, summing duplicates.
  Communication complexity ``O(t_s log p + t_w m (3 sqrt(p) - 2))``.

* :func:`owner_reduce_scatter` — the retired baseline: every shared octant
  has an owner rank; contributors send partials to the owner, the owner
  sums and sends the result to every user.  Near the root an octant can
  have O(p) users, which is exactly why this "worked well on up to 32K
  processes, but failed in the 64K case".

Both take and return ``(keys, densities)`` arrays of this rank's shared
octants and are interchangeable; equality is tested against each other and
against a serial reduction.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.dist.geometry import RankGeometry
from repro.mpi.comm import SimComm

__all__ = ["hypercube_reduce_scatter", "owner_reduce_scatter"]

# Hypercube rounds are tag-stamped (_TAG_HC + round) so an overlapped
# round's in-flight traffic can never be matched by a later round.
_TAG_HC = 7400
_TAG_OWN_CNT = 7500
_TAG_OWN = 7501
_TAG_USR = 7502


def _merge_sum(keys: np.ndarray, dens: np.ndarray):
    """Combine duplicate octants by summing their density vectors."""
    uniq, inv = np.unique(keys, return_inverse=True)
    if uniq.size == keys.size:
        order = np.argsort(keys, kind="stable")
        return keys[order], dens[order]
    out = np.zeros((uniq.size, dens.shape[1]), dtype=dens.dtype)
    np.add.at(out, inv, dens)
    return uniq, out


def hypercube_reduce_scatter(
    comm: SimComm,
    geometry: RankGeometry,
    keys: np.ndarray,
    dens: np.ndarray,
    overlap: Callable[[], None] | None = None,
):
    """Paper Algorithm 3 (REDUCE AND SCATTER).

    Parameters
    ----------
    keys / dens:
        This rank's *partial* upward densities of its shared octants
        (one row per octant).
    overlap:
        Optional callback run once while the *first* round's exchange
        (the largest: round ``d-1`` moves the most octants) is in
        flight.  The callback must not touch upward densities; the
        driver uses it to run the X-list GEMMs.  An
        ``INFLIGHT:COMM_reduce`` span records the hidden interval.
    Returns
    -------
    (keys, dens):
        Complete (fully summed) densities of every shared octant whose
        user region overlaps this rank's domain.
    """
    p, r = comm.size, comm.rank
    if p & (p - 1) != 0:
        raise ValueError("Algorithm 3 requires a power-of-two communicator")
    keys = np.asarray(keys, dtype=np.uint64)
    dens = np.asarray(dens, dtype=np.float64)
    if dens.ndim != 2 or dens.shape[0] != keys.size:
        raise ValueError("dens must be (n_octants, width)")
    keys, dens = _merge_sum(keys, dens)
    d = p.bit_length() - 1
    bounds = geometry.bounds
    for i in range(d - 1, -1, -1):
        s = r ^ (1 << i)
        # ranks reachable through s in the remaining rounds
        us = s & (p - (1 << i))
        ue = s | ((1 << i) - 1)
        send_mask = geometry.user_overlaps_range(
            keys, int(bounds[us]), int(bounds[ue + 1])
        ) if keys.size else np.empty(0, dtype=bool)
        # ranks this copy can still serve locally
        qs = r & (p - (1 << i))
        qe = r | ((1 << i) - 1)
        keep_mask = geometry.user_overlaps_range(
            keys, int(bounds[qs]), int(bounds[qe + 1])
        ) if keys.size else np.empty(0, dtype=bool)

        payload = (keys[send_mask], dens[send_mask])
        if overlap is not None:
            t0 = time.perf_counter()
            flops0 = comm.profile.total_flops()
            sreq = comm.isend(payload, s, _TAG_HC + i)
            rreq = comm.irecv(s, _TAG_HC + i)
            overlap()
            overlap = None
            other_keys, other_dens = rreq.wait()
            sreq.wait()
            comm.record_inflight("COMM_reduce", t0, flops0, (sreq, rreq))
        else:
            other_keys, other_dens = comm.sendrecv(payload, s, _TAG_HC + i)
        keys = np.concatenate([keys[keep_mask], other_keys])
        dens = np.concatenate([dens[keep_mask], other_dens])
        keys, dens = _merge_sum(keys, dens)
    if overlap is not None:
        overlap()  # p == 1 runs no rounds; the deferred work must still run
    return keys, dens


def owner_reduce_scatter(
    comm: SimComm,
    geometry: RankGeometry,
    keys: np.ndarray,
    dens: np.ndarray,
    overlap: Callable[[], None] | None = None,
):
    """Owner-based baseline (the scheme the paper replaced).

    Every shared octant is reduced at its owner (the rank holding its
    first Morton cell) and then sent to each user rank individually.
    ``overlap`` (if given) runs once while the contributors-to-owners
    exchange is in flight, as in :func:`hypercube_reduce_scatter`.
    """
    p, r = comm.size, comm.rank
    keys = np.asarray(keys, dtype=np.uint64)
    dens = np.asarray(dens, dtype=np.float64)
    keys, dens = _merge_sum(keys, dens)

    # contributors -> owners
    owners = geometry.owner_of_octants(keys) if keys.size else np.empty(0, np.int64)
    blocks = []
    for dest in range(p):
        sel = owners == dest
        blocks.append((keys[sel], dens[sel]))
    if overlap is not None:
        t0 = time.perf_counter()
        flops0 = comm.profile.total_flops()
        handle = comm.ialltoall(blocks)
        overlap()
        received = handle.wait()
        comm.record_inflight("COMM_reduce", t0, flops0, handle.requests)
    else:
        received = comm.alltoall(blocks)
    okeys = np.concatenate([blk[0] for blk in received])
    odens = np.concatenate([blk[1] for blk in received])
    okeys, odens = _merge_sum(okeys, odens)

    # owners -> users, point-to-point per user rank (the scaling problem:
    # root-level octants have up to p users)
    if okeys.size:
        rows, ranks = geometry.user_pairs(okeys)
    else:
        rows = np.empty(0, np.int64)
        ranks = np.empty(0, np.int64)
    out_counts = np.zeros(p, dtype=np.int64)
    for dest in range(p):
        out_counts[dest] = int(np.sum(ranks == dest))
    in_counts = comm.alltoall(list(out_counts))
    for dest in range(p):
        sel = rows[ranks == dest]
        if dest == r:
            continue
        if out_counts[dest]:
            comm.send((okeys[sel], odens[sel]), dest, _TAG_USR)
    fkeys = [okeys[rows[ranks == r]]]
    fdens = [odens[rows[ranks == r]]]
    for src in range(p):
        if src == r or in_counts[src] == 0:
            continue
        k2, d2 = comm.recv(src, _TAG_USR)
        fkeys.append(k2)
        fdens.append(d2)
    keys = np.concatenate(fkeys)
    dens = np.concatenate(fdens)
    # users may receive duplicates only if an octant reduced at multiple
    # owners — impossible — so this is a plain sort.
    order = np.argsort(keys, kind="stable")
    return keys[order], dens[order]
