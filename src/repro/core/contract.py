"""The shared dense-contraction primitive of the evaluation phases.

Every kernel-matrix phase (S2U, XLI, WLI, D2T, ULI) reduces to
``out[b] = k[b] @ den[b]`` over a batch of padded blocks.  Three code
paths must produce **bit-identical** columns from this contraction — the
legacy per-call phases, the plan applies, and the multi-RHS (serving
batch) applies — so they all funnel through :func:`gemm_cols`, which
fixes the floating-point operation sequence by construction:

* The right-hand side is always materialised as a fresh C-contiguous
  ``(b, j, Q_PAD)`` block, zero-padded to a **fixed column width**.
  BLAS GEMM results depend on the operand shapes and memory layout (a
  ``(b, j, 1)`` matmul takes a different kernel than ``(b, j, 8)``, and
  a strided operand can change the blocking), but with the shape and
  layout pinned, each output column is an independent FMA chain over the
  same ``k`` elements: column ``c`` depends only on input column ``c``,
  not on its position's neighbours or on how many real columns there
  are.  Verified properties on this BLAS (see tests/test_multirhs.py):
  position-independence, other-column-value-independence.
* A single-RHS caller therefore pads its one column to ``Q_PAD`` and
  reads column 0; a ``q``-column batch runs ``ceil(q / Q_PAD)`` GEMM
  groups of the identical shape.  The padding columns cost almost
  nothing: GEMM at these sizes is bound by streaming ``k``, which is
  read once per group either way — that is the whole multi-RHS batching
  win.

This replaces the previous ``np.einsum("bij,bj->bi")`` formulation,
which never dispatched to BLAS (2-3x slower) and whose batched
``"bij,bqj->bqi"`` form only amortised the Python overhead, not the
``k`` traffic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Q_PAD", "gemm_cols"]

#: Fixed GEMM column-group width.  Changing this changes result bits
#: (legally — all paths change together), so it is a constant, not a
#: tuning knob.
Q_PAD = 8


def gemm_cols(k: np.ndarray, den_cols: np.ndarray) -> np.ndarray:
    """Batched ``k @ den_cols`` with a pinned GEMM shape per column group.

    ``k``: ``(b, i, j)`` kernel blocks (C-contiguous — cached plan
    matrices and ``matrix_batch`` outputs both are).
    ``den_cols``: ``(b, j, q)`` density columns, any layout.
    Returns ``(b, i, q)``; column ``c`` is bit-identical for any ``q``,
    any column position, and any values in the other columns.

    Arithmetic runs in ``np.result_type(k, den_cols)``: all-float32
    operands stay in float32 (the mixed-precision plans depend on this),
    while float64 inputs take exactly the pre-dtype-parameterised path.
    """
    b, jdim, q = den_cols.shape
    dt = np.result_type(k, den_cols)
    out = np.empty((b, k.shape[1], q), dtype=dt)
    for g0 in range(0, q, Q_PAD):
        g1 = min(g0 + Q_PAD, q)
        blk = np.zeros((b, jdim, Q_PAD), dtype=dt)
        blk[:, :, : g1 - g0] = den_cols[:, :, g0:g1]
        out[:, :, g0:g1] = np.matmul(k, blk)[:, :, : g1 - g0]
    return out
