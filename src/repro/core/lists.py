"""Construction of the FMM interaction lists (U, V, W, X).

Definitions (paper Table I), for octants of a complete adaptive tree:

* ``U(B)`` — leaves only: all leaves adjacent to leaf ``B``, including
  ``B`` itself.  Direct (exact) interactions.
* ``V(B)`` — all octants: children of the colleagues of ``P(B)`` that are
  not adjacent to ``B``.  Multipole-to-local translations.
* ``W(B)`` — leaves only: descendants ``A`` of colleagues of ``B`` with
  ``P(A)`` adjacent to ``B`` but ``A`` itself not adjacent (``A`` need not
  be a leaf).  Source-box multipole evaluated directly at ``B``'s targets.
* ``X(B)`` — all octants: the duals of W — leaves ``A`` with
  ``B ∈ W(A)``.  ``A``'s sources evaluated onto ``B``'s downward check
  surface.

The paper relies on the symmetry of U/V and of W∪X to prove LET
correctness; `tests/test_lists.py` checks those symmetries directly.

Everything here is built from vectorised passes over the sorted key array:
colleague resolution is a batched neighbour lookup, V a batched
gather+adjacency filter, U/W a breadth-first frontier over (leaf, node)
pairs, and X a direct formula (leaves adjacent to the parent but not to
the node itself, at coarser-or-parent level).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tree import FmmTree
from repro.octree import linear
from repro.util import morton

__all__ = ["CsrList", "InteractionLists", "build_lists"]


@dataclass
class CsrList:
    """Compressed adjacency: ``indices[offsets[i]:offsets[i+1]]`` per node."""

    offsets: np.ndarray
    indices: np.ndarray

    @classmethod
    def from_pairs(cls, rows: np.ndarray, cols: np.ndarray, n: int) -> "CsrList":
        """Build from (row, col) pair arrays; sorts and de-duplicates."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.size:
            code = rows * np.int64(n) + cols
            code = np.unique(code)
            rows = code // n
            cols = code % n
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.add.at(offsets, rows + 1, 1)
        np.cumsum(offsets, out=offsets)
        return cls(offsets, cols)

    def of(self, i: int) -> np.ndarray:
        return self.indices[self.offsets[i] : self.offsets[i + 1]]

    @property
    def counts(self) -> np.ndarray:
        return np.diff(self.offsets)

    def total(self) -> int:
        return int(self.indices.size)

    def invert(self, n: int | None = None) -> "CsrList":
        """Transpose of the adjacency (``j in inv.of(i)`` iff ``i in of(j)``)."""
        n = self.offsets.size - 1 if n is None else n
        rows = np.repeat(np.arange(self.offsets.size - 1), self.counts)
        return CsrList.from_pairs(self.indices, rows, n)


@dataclass
class InteractionLists:
    """The four FMM lists plus the colleague table, all as :class:`CsrList`."""

    u: CsrList
    v: CsrList
    w: CsrList
    x: CsrList
    colleagues: CsrList

    def work_summary(self) -> dict[str, int]:
        return {
            "u_pairs": self.u.total(),
            "v_pairs": self.v.total(),
            "w_pairs": self.w.total(),
            "x_pairs": self.x.total(),
        }


def _colleague_table(tree: FmmTree, chunk: int = 16384) -> np.ndarray:
    """(n_nodes, 26) node indices of same-level adjacent octants (-1 absent)."""
    n = tree.n_nodes
    out = np.full((n, 26), -1, dtype=np.int64)
    for s in range(0, n, chunk):
        e = min(s + chunk, n)
        ids, valid = morton.neighbors(tree.keys[s:e])
        found = tree.find(ids.ravel()).reshape(ids.shape)
        out[s:e] = np.where(valid, found, -1)
    return out


def _build_v(tree: FmmTree, coll: np.ndarray, chunk: int = 8192):
    """V-list pairs: children of parent's colleagues, not adjacent."""
    rows_parts, cols_parts = [], []
    cand_nodes = np.flatnonzero(tree.levels >= 2)
    for s in range(0, cand_nodes.size, chunk):
        nodes = cand_nodes[s : s + chunk]
        pc = coll[tree.parent[nodes]]  # (m, 26)
        kids = np.where(pc[..., None] >= 0, tree.children[pc.clip(0)], -1)
        kids = kids.reshape(len(nodes), -1)  # (m, 208)
        ok = kids >= 0
        bkeys = np.broadcast_to(tree.keys[nodes][:, None], kids.shape)
        adj = np.zeros_like(ok)
        adj[ok] = morton.adjacent(bkeys[ok], tree.keys[kids[ok]])
        take = ok & ~adj
        rows_parts.append(np.broadcast_to(nodes[:, None], kids.shape)[take])
        cols_parts.append(kids[take])
    rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, np.int64)
    cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, np.int64)
    return rows, cols


def _adjacent_candidates(tree: FmmTree, nodes: np.ndarray):
    """For each node: same-level neighbour resolution.

    Returns (pair_node, pair_cand_node, pair_is_exact) where missing
    neighbours are replaced by the coarser leaf covering their region
    (``pair_is_exact`` False).  All returned candidates touch the node.
    """
    leaf_idx = tree.leaf_indices
    leaf_keys = tree.keys[leaf_idx]
    ids, valid = morton.neighbors(tree.keys[nodes])
    found = tree.find(ids.ravel()).reshape(ids.shape)
    rows = np.broadcast_to(nodes[:, None], ids.shape)

    exact = valid & (found >= 0)
    missing = valid & (found < 0)
    # Missing neighbours are strictly inside a coarser leaf.
    cover_rows = rows[missing]
    cover = linear.covering_leaf_indices(leaf_keys, ids[missing])
    okc = cover >= 0
    return (
        rows[exact],
        found[exact],
        cover_rows[okc],
        leaf_idx[cover[okc]],
    )


def _build_u_w(tree: FmmTree):
    """U and W pairs via a frontier sweep from each leaf's colleagues."""
    leaves = tree.leaf_indices
    en_rows, en_nodes, cv_rows, cv_leaves = _adjacent_candidates(tree, leaves)

    u_rows = [leaves, cv_rows]  # self + coarser adjacent leaves
    u_cols = [leaves, cv_leaves]
    w_rows, w_cols = [], []

    is_leaf = tree.is_leaf
    lf = is_leaf[en_nodes]
    u_rows.append(en_rows[lf])
    u_cols.append(en_nodes[lf])

    fr_rows = en_rows[~lf]
    fr_nodes = en_nodes[~lf]
    while fr_rows.size:
        kids = tree.children[fr_nodes]  # (m, 8)
        ok = kids >= 0
        rows8 = np.broadcast_to(fr_rows[:, None], kids.shape)
        adj = np.zeros_like(ok)
        adj[ok] = morton.adjacent(tree.keys[rows8[ok]], tree.keys[kids[ok]])
        far = ok & ~adj
        w_rows.append(rows8[far])
        w_cols.append(kids[far])
        near = ok & adj
        near_rows = rows8[near]
        near_nodes = kids[near]
        nl = is_leaf[near_nodes]
        u_rows.append(near_rows[nl])
        u_cols.append(near_nodes[nl])
        fr_rows = near_rows[~nl]
        fr_nodes = near_nodes[~nl]

    return (
        np.concatenate(u_rows),
        np.concatenate(u_cols),
        np.concatenate(w_rows) if w_rows else np.empty(0, np.int64),
        np.concatenate(w_cols) if w_cols else np.empty(0, np.int64),
    )


def _build_x(tree: FmmTree):
    """X pairs: leaves adjacent to the parent but not to the node itself."""
    nodes = np.flatnonzero(tree.levels >= 1)
    parents = tree.parent[nodes]
    uniq_parents, inv = np.unique(parents, return_inverse=True)
    en_rows, en_nodes, cv_rows, cv_leaves = _adjacent_candidates(tree, uniq_parents)
    lf = tree.is_leaf[en_nodes]
    # Per unique parent: candidate leaves (same level as parent, or coarser).
    cand_rows = np.concatenate([en_rows[lf], cv_rows])
    cand_leaves = np.concatenate([en_nodes[lf], cv_leaves])
    # Expand back to children: every node whose parent is cand_rows[k].
    order = np.argsort(cand_rows, kind="stable")
    cand_rows = cand_rows[order]
    cand_leaves = cand_leaves[order]
    # counts per unique parent
    pos = np.searchsorted(uniq_parents, cand_rows)
    counts = np.bincount(pos, minlength=uniq_parents.size)
    starts = np.concatenate([[0], np.cumsum(counts)])

    node_counts = counts[inv]
    rows_rep = np.repeat(nodes, node_counts)
    total = int(node_counts.sum())
    # gather[k] walks starts[inv[i]] .. starts[inv[i]]+node_counts[i]-1 for
    # each node i, fully vectorised.
    head = np.repeat(np.cumsum(node_counts) - node_counts, node_counts)
    within = np.arange(total, dtype=np.int64) - head
    gather = np.repeat(starts[inv], node_counts) + within
    cols_rep = cand_leaves[gather]
    rows_out, cols_out = [], []
    keep = ~morton.adjacent(tree.keys[rows_rep], tree.keys[cols_rep])
    rows_out.append(rows_rep[keep])
    cols_out.append(cols_rep[keep])
    return np.concatenate(rows_out), np.concatenate(cols_out)


def build_lists(tree: FmmTree) -> InteractionLists:
    """Build all four interaction lists for every node of the tree."""
    n = tree.n_nodes
    coll = _colleague_table(tree)
    v_rows, v_cols = _build_v(tree, coll)
    u_rows, u_cols, w_rows, w_cols = _build_u_w(tree)
    x_rows, x_cols = _build_x(tree)

    coll_rows = np.repeat(np.arange(n), (coll >= 0).sum(axis=1))
    coll_cols = coll[coll >= 0]
    return InteractionLists(
        u=CsrList.from_pairs(u_rows, u_cols, n),
        v=CsrList.from_pairs(v_rows, v_cols, n),
        w=CsrList.from_pairs(w_rows, w_cols, n),
        x=CsrList.from_pairs(x_rows, x_cols, n),
        colleagues=CsrList.from_pairs(coll_rows, coll_cols, n),
    )
