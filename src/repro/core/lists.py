"""Construction of the FMM interaction lists (U, V, W, X).

Definitions (paper Table I), for octants of a complete adaptive tree:

* ``U(B)`` — leaves only: all leaves adjacent to leaf ``B``, including
  ``B`` itself.  Direct (exact) interactions.
* ``V(B)`` — all octants: children of the colleagues of ``P(B)`` that are
  not adjacent to ``B``.  Multipole-to-local translations.
* ``W(B)`` — leaves only: descendants ``A`` of colleagues of ``B`` with
  ``P(A)`` adjacent to ``B`` but ``A`` itself not adjacent (``A`` need not
  be a leaf).  Source-box multipole evaluated directly at ``B``'s targets.
* ``X(B)`` — all octants: the duals of W — leaves ``A`` with
  ``B ∈ W(A)``.  ``A``'s sources evaluated onto ``B``'s downward check
  surface.

The paper relies on the symmetry of U/V and of W∪X to prove LET
correctness; `tests/test_lists.py` checks those symmetries directly.

Everything here is built from vectorised passes over the sorted key array:
colleague resolution is a batched neighbour lookup, V a batched
gather+adjacency filter, U/W a breadth-first frontier over (leaf, node)
pairs, and X a direct formula (leaves adjacent to the parent but not to
the node itself, at coarser-or-parent level).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tree import FmmTree, TreeDelta, _concat_ranges
from repro.octree import linear
from repro.util import morton

__all__ = ["CsrList", "InteractionLists", "build_lists", "update_lists"]


@dataclass
class CsrList:
    """Compressed adjacency: ``indices[offsets[i]:offsets[i+1]]`` per node."""

    offsets: np.ndarray
    indices: np.ndarray

    @classmethod
    def from_pairs(cls, rows: np.ndarray, cols: np.ndarray, n: int) -> "CsrList":
        """Build from (row, col) pair arrays; sorts and de-duplicates."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.size:
            code = rows * np.int64(n) + cols
            code = np.unique(code)
            rows = code // n
            cols = code % n
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.add.at(offsets, rows + 1, 1)
        np.cumsum(offsets, out=offsets)
        return cls(offsets, cols)

    def of(self, i: int) -> np.ndarray:
        return self.indices[self.offsets[i] : self.offsets[i + 1]]

    @property
    def counts(self) -> np.ndarray:
        return np.diff(self.offsets)

    def total(self) -> int:
        return int(self.indices.size)

    def invert(self, n: int | None = None) -> "CsrList":
        """Transpose of the adjacency (``j in inv.of(i)`` iff ``i in of(j)``)."""
        n = self.offsets.size - 1 if n is None else n
        rows = np.repeat(np.arange(self.offsets.size - 1), self.counts)
        return CsrList.from_pairs(self.indices, rows, n)


@dataclass
class InteractionLists:
    """The four FMM lists plus the colleague table, all as :class:`CsrList`."""

    u: CsrList
    v: CsrList
    w: CsrList
    x: CsrList
    colleagues: CsrList

    def work_summary(self) -> dict[str, int]:
        return {
            "u_pairs": self.u.total(),
            "v_pairs": self.v.total(),
            "w_pairs": self.w.total(),
            "x_pairs": self.x.total(),
        }


def _colleague_table(
    tree: FmmTree, chunk: int = 16384, nodes: np.ndarray | None = None
) -> np.ndarray:
    """(n_nodes, 26) node indices of same-level adjacent octants (-1 absent).

    With ``nodes`` given, only those rows are resolved (the rest stay -1)
    — the localized list rebuild needs colleague rows only for the dirty
    neighbourhood.
    """
    n = tree.n_nodes
    out = np.full((n, 26), -1, dtype=np.int64)
    idx = np.arange(n) if nodes is None else np.asarray(nodes, dtype=np.int64)
    for s in range(0, idx.size, chunk):
        sel = idx[s : s + chunk]
        ids, valid = morton.neighbors(tree.keys[sel])
        found = tree.find(ids.ravel()).reshape(ids.shape)
        out[sel] = np.where(valid, found, -1)
    return out


def _build_v(
    tree: FmmTree,
    coll: np.ndarray,
    chunk: int = 8192,
    nodes: np.ndarray | None = None,
):
    """V-list pairs: children of parent's colleagues, not adjacent."""
    rows_parts, cols_parts = [], []
    if nodes is None:
        cand_nodes = np.flatnonzero(tree.levels >= 2)
    else:
        nodes = np.asarray(nodes, dtype=np.int64)
        cand_nodes = nodes[tree.levels[nodes] >= 2]
    for s in range(0, cand_nodes.size, chunk):
        nodes = cand_nodes[s : s + chunk]
        pc = coll[tree.parent[nodes]]  # (m, 26)
        kids = np.where(pc[..., None] >= 0, tree.children[pc.clip(0)], -1)
        kids = kids.reshape(len(nodes), -1)  # (m, 208)
        ok = kids >= 0
        bkeys = np.broadcast_to(tree.keys[nodes][:, None], kids.shape)
        adj = np.zeros_like(ok)
        adj[ok] = morton.adjacent(bkeys[ok], tree.keys[kids[ok]])
        take = ok & ~adj
        rows_parts.append(np.broadcast_to(nodes[:, None], kids.shape)[take])
        cols_parts.append(kids[take])
    rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, np.int64)
    cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, np.int64)
    return rows, cols


def _adjacent_candidates(tree: FmmTree, nodes: np.ndarray):
    """For each node: same-level neighbour resolution.

    Returns (pair_node, pair_cand_node, pair_is_exact) where missing
    neighbours are replaced by the coarser leaf covering their region
    (``pair_is_exact`` False).  All returned candidates touch the node.
    """
    leaf_idx = tree.leaf_indices
    leaf_keys = tree.keys[leaf_idx]
    ids, valid = morton.neighbors(tree.keys[nodes])
    found = tree.find(ids.ravel()).reshape(ids.shape)
    rows = np.broadcast_to(nodes[:, None], ids.shape)

    exact = valid & (found >= 0)
    missing = valid & (found < 0)
    # Missing neighbours are strictly inside a coarser leaf.
    cover_rows = rows[missing]
    cover = linear.covering_leaf_indices(leaf_keys, ids[missing])
    okc = cover >= 0
    return (
        rows[exact],
        found[exact],
        cover_rows[okc],
        leaf_idx[cover[okc]],
    )


def _build_u_w(tree: FmmTree, leaves: np.ndarray | None = None):
    """U and W pairs via a frontier sweep from each leaf's colleagues."""
    leaves = tree.leaf_indices if leaves is None else np.asarray(leaves, np.int64)
    en_rows, en_nodes, cv_rows, cv_leaves = _adjacent_candidates(tree, leaves)

    u_rows = [leaves, cv_rows]  # self + coarser adjacent leaves
    u_cols = [leaves, cv_leaves]
    w_rows, w_cols = [], []

    is_leaf = tree.is_leaf
    lf = is_leaf[en_nodes]
    u_rows.append(en_rows[lf])
    u_cols.append(en_nodes[lf])

    fr_rows = en_rows[~lf]
    fr_nodes = en_nodes[~lf]
    while fr_rows.size:
        kids = tree.children[fr_nodes]  # (m, 8)
        ok = kids >= 0
        rows8 = np.broadcast_to(fr_rows[:, None], kids.shape)
        adj = np.zeros_like(ok)
        adj[ok] = morton.adjacent(tree.keys[rows8[ok]], tree.keys[kids[ok]])
        far = ok & ~adj
        w_rows.append(rows8[far])
        w_cols.append(kids[far])
        near = ok & adj
        near_rows = rows8[near]
        near_nodes = kids[near]
        nl = is_leaf[near_nodes]
        u_rows.append(near_rows[nl])
        u_cols.append(near_nodes[nl])
        fr_rows = near_rows[~nl]
        fr_nodes = near_nodes[~nl]

    return (
        np.concatenate(u_rows),
        np.concatenate(u_cols),
        np.concatenate(w_rows) if w_rows else np.empty(0, np.int64),
        np.concatenate(w_cols) if w_cols else np.empty(0, np.int64),
    )


def _build_x(tree: FmmTree, nodes: np.ndarray | None = None):
    """X pairs: leaves adjacent to the parent but not to the node itself."""
    if nodes is None:
        nodes = np.flatnonzero(tree.levels >= 1)
    else:
        nodes = np.asarray(nodes, dtype=np.int64)
        nodes = nodes[tree.levels[nodes] >= 1]
    if nodes.size == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    parents = tree.parent[nodes]
    uniq_parents, inv = np.unique(parents, return_inverse=True)
    en_rows, en_nodes, cv_rows, cv_leaves = _adjacent_candidates(tree, uniq_parents)
    lf = tree.is_leaf[en_nodes]
    # Per unique parent: candidate leaves (same level as parent, or coarser).
    cand_rows = np.concatenate([en_rows[lf], cv_rows])
    cand_leaves = np.concatenate([en_nodes[lf], cv_leaves])
    # Expand back to children: every node whose parent is cand_rows[k].
    order = np.argsort(cand_rows, kind="stable")
    cand_rows = cand_rows[order]
    cand_leaves = cand_leaves[order]
    # counts per unique parent
    pos = np.searchsorted(uniq_parents, cand_rows)
    counts = np.bincount(pos, minlength=uniq_parents.size)
    starts = np.concatenate([[0], np.cumsum(counts)])

    node_counts = counts[inv]
    rows_rep = np.repeat(nodes, node_counts)
    total = int(node_counts.sum())
    # gather[k] walks starts[inv[i]] .. starts[inv[i]]+node_counts[i]-1 for
    # each node i, fully vectorised.
    head = np.repeat(np.cumsum(node_counts) - node_counts, node_counts)
    within = np.arange(total, dtype=np.int64) - head
    gather = np.repeat(starts[inv], node_counts) + within
    cols_rep = cand_leaves[gather]
    rows_out, cols_out = [], []
    keep = ~morton.adjacent(tree.keys[rows_rep], tree.keys[cols_rep])
    rows_out.append(rows_rep[keep])
    cols_out.append(cols_rep[keep])
    return np.concatenate(rows_out), np.concatenate(cols_out)


def build_lists(tree: FmmTree) -> InteractionLists:
    """Build all four interaction lists for every node of the tree."""
    n = tree.n_nodes
    coll = _colleague_table(tree)
    v_rows, v_cols = _build_v(tree, coll)
    u_rows, u_cols, w_rows, w_cols = _build_u_w(tree)
    x_rows, x_cols = _build_x(tree)

    coll_rows = np.repeat(np.arange(n), (coll >= 0).sum(axis=1))
    coll_cols = coll[coll >= 0]
    return InteractionLists(
        u=CsrList.from_pairs(u_rows, u_cols, n),
        v=CsrList.from_pairs(v_rows, v_cols, n),
        w=CsrList.from_pairs(w_rows, w_cols, n),
        x=CsrList.from_pairs(x_rows, x_cols, n),
        colleagues=CsrList.from_pairs(coll_rows, coll_cols, n),
    )


# -- incremental updates ------------------------------------------------------

#: Above this (node x root) product, or this affected fraction, a full
#: rebuild is cheaper than the localized merge.
_AFFECT_PAIR_LIMIT = 50_000_000
_AFFECT_FRACTION_LIMIT = 0.5


def _affected_nodes(tree: FmmTree, roots: np.ndarray) -> np.ndarray | None:
    """Nodes whose interaction lists may differ after rebuilding ``roots``.

    Every member of U(B)/V(B)/W(B)/X(B)/colleagues(B) lives inside the
    closure of the 3x-expanded box of ``P(B)`` (the parent's colleague
    shell; W members reach at most ``side(B)`` past B's faces, which that
    shell contains).  A list can therefore only change when some rebuilt
    subtree's box intersects that shell — an integer interval-overlap
    test per axis, like :func:`repro.util.morton.closures_touch`.
    Returns None when the candidate product is too large to test cheaply.
    """
    n = tree.n_nodes
    if int(roots.size) * n > _AFFECT_PAIR_LIMIT:
        return None
    pk = tree.keys[tree.parent]
    pk[0] = tree.keys[0]  # the root's shell is its own expanded box
    ax, ay, az = (c.astype(np.int64) for c in morton.anchor(pk))
    s = morton.box_side_int(morton.level(pk)).astype(np.int64)
    rx, ry, rz = (c.astype(np.int64) for c in morton.anchor(roots))
    rs = morton.box_side_int(morton.level(roots)).astype(np.int64)
    touch = np.ones((n, roots.size), dtype=bool)
    for c, rc in ((ax, rx), (ay, ry), (az, rz)):
        c = c[:, None]
        rc = rc[None, :]
        touch &= (rc <= c + 2 * s[:, None]) & (c - s[:, None] <= rc + rs[None, :])
    return touch.any(axis=1)


class _ListReuseError(Exception):
    """A reused row referenced a vanished node — fall back to full build."""


def update_lists(
    new_tree: FmmTree,
    old_tree: FmmTree,
    old_lists: InteractionLists,
    delta: TreeDelta,
) -> InteractionLists:
    """Interaction lists for ``new_tree``, reusing rows from ``old_lists``.

    The lists depend only on the octant key set, so when the refinement
    did not change the old lists are returned as-is (node indices are
    identical).  Otherwise only nodes whose interaction neighbourhood
    intersects a rebuilt subtree get fresh rows; every other row is the
    old row with node indices remapped.  Identical to
    ``build_lists(new_tree)`` in all cases.
    """
    if not delta.refinement_changed or delta.changed_roots.size == 0:
        return old_lists
    n = new_tree.n_nodes
    affected = _affected_nodes(new_tree, delta.changed_roots)
    if affected is None or affected.mean() > _AFFECT_FRACTION_LIMIT:
        return build_lists(new_tree)
    un = np.flatnonzero(~affected)
    if np.any(delta.old_index[un] < 0):
        return build_lists(new_tree)

    aff = np.flatnonzero(affected)
    need_coll = np.unique(np.concatenate([aff, new_tree.parent[aff].clip(0)]))
    coll = _colleague_table(new_tree, nodes=need_coll)
    v_rows, v_cols = _build_v(new_tree, coll, nodes=aff)
    u_rows, u_cols, w_rows, w_cols = _build_u_w(
        new_tree, leaves=aff[new_tree.is_leaf[aff]]
    )
    x_rows, x_cols = _build_x(new_tree, nodes=aff)
    coll_aff = coll[aff]
    coll_rows = np.repeat(aff, (coll_aff >= 0).sum(axis=1))
    coll_cols = coll_aff[coll_aff >= 0]

    old_to_new = new_tree.find(old_tree.keys)
    old_of_un = delta.old_index[un]

    def merged(old_csr: CsrList, fresh_r, fresh_c) -> CsrList:
        cnts = old_csr.counts[old_of_un]
        rows = np.repeat(un, cnts)
        cols_old = old_csr.indices[_concat_ranges(old_csr.offsets[old_of_un], cnts)]
        cols = old_to_new[cols_old]
        if cols.size and cols.min() < 0:
            raise _ListReuseError
        return CsrList.from_pairs(
            np.concatenate([np.asarray(fresh_r, np.int64), rows]),
            np.concatenate([np.asarray(fresh_c, np.int64), cols]),
            n,
        )

    try:
        return InteractionLists(
            u=merged(old_lists.u, u_rows, u_cols),
            v=merged(old_lists.v, v_rows, v_cols),
            w=merged(old_lists.w, w_rows, w_cols),
            x=merged(old_lists.x, x_rows, x_cols),
            colleagues=merged(old_lists.colleagues, coll_rows, coll_cols),
        )
    except _ListReuseError:  # pragma: no cover - conservative safety net
        return build_lists(new_tree)
