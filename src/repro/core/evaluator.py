"""Sequential FMM evaluation (paper Algorithm 1).

Phases, matching the paper's naming:

=========  =================================================================
``S2U``    source-to-up: leaf sources -> upward equivalent densities
``U2U``    up-to-up: post-order accumulation of children into parents (M2M)
``VLI``    V-list: up densities -> downward check potentials (M2L)
``XLI``    X-list: leaf sources -> downward check potentials
``D2D``    down-to-down: pre-order parent-to-child propagation (L2L) and
           conversion of accumulated check potentials to down densities
``WLI``    W-list: up densities evaluated directly at target points
``D2T``    down-to-targets: down densities -> potentials (L2T)
``ULI``    U-list: direct (exact) near-field summation
=========  =================================================================

The evaluator owns no tree state: it maps ``(tree, lists, densities)`` to
potentials, charging flops to an optional :class:`PhaseProfile`.  Both the
distributed driver and the GPU-accelerated evaluator reuse its phase
methods, overriding only what they accelerate.

Every phase accepts an optional precompiled :class:`~repro.core.plan.EvalPlan`
(see that module): with a plan, the phase runs a pure-array apply over
bit-identical precompiled schedules; without one it derives its batching
per call as before.  :meth:`evaluate` compiles a plan lazily on the second
consecutive call with the same ``(tree, lists)`` pair, so one-shot
evaluations pay nothing and repeated applies amortise the setup.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

from repro.core.contract import gemm_cols
from repro.core.fft_m2l import FftM2L
from repro.core.lists import InteractionLists
from repro.core.operators import OperatorCache
from repro.core.tree import FmmTree
from repro.kernels.base import Kernel
from repro.util.timer import PhaseProfile

__all__ = ["FmmEvaluator"]


class FmmEvaluator:
    """Evaluates the N-body sum on a built tree via the KIFMM.

    Parameters
    ----------
    kernel, order:
        Interaction kernel and surface order (accuracy).
    m2l_mode:
        ``"fft"`` (default; the paper's diagonal translation) or
        ``"dense"`` (ablation baseline).
    rcond:
        Pseudo-inverse regularisation.
    eval_kernel:
        Optional second kernel for the *target-side* phases (D2T, W-list,
        U-list): the expansions reproduce the potential field, so
        evaluating them with e.g. the Laplace gradient kernel yields
        forces from the same pass.  Must share the base kernel's
        ``source_dim``.  Default: the base kernel itself.
    precision:
        Arithmetic precision of plan-based applies: ``"fp64"`` (default;
        bit-identical to the pre-precision engine), ``"fp32"`` (float32
        GEMM phases / complex64 V-list; accumulators stay float64), or
        ``"auto"`` (a one-time calibration probe —
        :func:`repro.core.autotune.autotune_precision` — picks the
        cheapest precision meeting ``precision_rtol``).  fp32 is
        plan-only: the legacy per-call path stays float64, so
        ``use_plan=False`` with an fp32 precision raises
        :class:`~repro.core.plan.PrecisionError`.
    precision_rtol:
        Relative-error target for ``precision="auto"`` (default
        :data:`repro.core.autotune.DEFAULT_PRECISION_RTOL`).
    """

    def __init__(
        self,
        kernel: Kernel,
        order: int,
        m2l_mode: str = "fft",
        rcond: float | None = None,
        eval_kernel: Kernel | None = None,
        precision: str = "fp64",
        precision_rtol: float | None = None,
        threads: int | None = None,
    ):
        from repro.core.plan import VALID_PRECISIONS, PrecisionError

        if m2l_mode not in ("fft", "dense"):
            raise ValueError("m2l_mode must be 'fft' or 'dense'")
        if precision not in VALID_PRECISIONS:
            raise PrecisionError(
                f"precision must be one of {VALID_PRECISIONS}, got {precision!r}"
            )
        self.kernel = kernel
        self.eval_kernel = kernel if eval_kernel is None else eval_kernel
        if self.eval_kernel.source_dim != kernel.source_dim:
            raise ValueError(
                "eval_kernel must share the base kernel's source_dim"
            )
        self.order = int(order)
        self.m2l_mode = m2l_mode
        self.precision = precision
        self.precision_rtol = precision_rtol
        self.ops = OperatorCache(kernel, order, rcond=rcond)
        self.fft = FftM2L(kernel, order) if m2l_mode == "fft" else None
        self.ns = self.ops.n_surf
        # Lazy plan cache: (weakrefs to the last-seen tree/lists, how many
        # consecutive evaluates saw them, and the compiled plan if any).
        # Guarded by ``_plan_lock``: concurrent evaluates of one shared
        # evaluator must agree on a single compile per (tree, lists).
        self._plan_tree = None
        self._plan_lists = None
        self._plan_calls = 0
        self._plan_obj = None
        self._plan_lock = threading.Lock()
        # "auto" resolves once per evaluator (first workload wins) under
        # its own lock — _cached_plan holds _plan_lock, so the probe must
        # not nest inside it.
        self._auto_choice = None
        self._auto_result = None
        self._auto_lock = threading.Lock()
        # Intra-rank parallelism: plan applies run their phase tiles on a
        # TaskPool when ``threads`` is set (``None`` = the historical
        # serial path).  The pool may also be an externally owned shared
        # executor (the serving engines) via :meth:`set_pool`.
        self._threads = None if threads is None else max(1, int(threads))
        self._pool = None
        self._pool_owned = False
        self._pool_lock = threading.Lock()

    # -- intra-rank parallelism --------------------------------------------

    @property
    def threads(self) -> int | None:
        """Configured task-pool size (``None`` = serial legacy path)."""
        return self._threads

    @property
    def task_pool(self):
        """The active :class:`~repro.core.parallel.TaskPool`, or ``None``.

        Created lazily from ``threads`` so constructing an evaluator
        never spawns OS threads; plan applies pass this to every phase.
        """
        if self._threads is None:
            return self._pool  # None, or an externally shared pool
        with self._pool_lock:
            if self._pool is None:
                from repro.core.parallel import TaskPool

                self._pool = TaskPool(self._threads, name="fmm")
                self._pool_owned = True
            return self._pool

    def set_pool(self, pool) -> None:
        """Route tile work through an externally owned pool.

        The serving engines call this so every model shares one
        process-wide executor instead of nesting per-model pools under
        the worker pool.  ``None`` restores the serial path.
        """
        with self._pool_lock:
            if self._pool_owned and self._pool is not None:
                self._pool.shutdown()
            self._pool = pool
            self._pool_owned = False
            self._threads = None if pool is None else pool.threads

    def configure_threads(self, threads: int | None) -> None:
        """Re-size (or disable, with ``None``) the evaluator's own pool."""
        with self._pool_lock:
            if self._pool_owned and self._pool is not None:
                self._pool.shutdown()
            self._pool = None
            self._pool_owned = False
            self._threads = None if threads is None else max(1, int(threads))

    # -- plans -------------------------------------------------------------

    def compile_plan(self, tree, lists, scopes=None, precision=None, **kwargs):
        """Compile an :class:`~repro.core.plan.EvalPlan` for this evaluator.

        ``scopes`` (a :class:`~repro.core.plan.PlanScopes`) bakes
        distributed ownership masks into the plan; ``kwargs`` forward to
        :func:`repro.core.plan.compile_plan` (e.g. ``cache_matrices``,
        ``matrix_budget``).  ``precision`` defaults to the evaluator's
        own; ``"auto"`` is resolved here via the calibration probe.
        """
        from repro.core.plan import compile_plan

        precision = self.precision if precision is None else precision
        if precision == "auto":
            precision = self._resolve_auto(tree, PhaseProfile())
        return compile_plan(
            self, tree, lists, scopes=scopes, precision=precision, **kwargs
        )

    def patch_plan(
        self, old_plan, old_tree, old_lists, tree, lists,
        delta=None, scopes=None, precision=None, **kwargs,
    ):
        """Recompile only the dirty sections of ``old_plan`` for ``tree``.

        Produces a plan bit-identical to ``compile_plan(tree, lists)``
        while reusing every kernel-matrix block whose source/target boxes
        survived the geometry change untouched (see
        :func:`repro.core.plan.patch_plan`).  ``delta`` is the
        :class:`~repro.core.tree.TreeDelta` from
        :func:`~repro.core.tree.update_tree`/``diff_trees``; omitted, it
        is derived by content diffing.  ``precision`` defaults to the old
        plan's own (``"auto"`` resolves via the calibration probe).
        """
        from repro.core.plan import patch_plan

        if precision == "auto":
            precision = self._resolve_auto(tree, PhaseProfile())
        return patch_plan(
            self, old_plan, old_tree, old_lists, tree, lists,
            delta=delta, scopes=scopes, precision=precision, **kwargs,
        )

    def _resolve_auto(self, tree, profile):
        """Resolve ``"auto"`` to a concrete precision, once per evaluator.

        The calibration probe (charged to the ``setup:precision`` span)
        subsamples the tree's points, so the first workload seen decides
        for the evaluator's lifetime — matching the plan cache, which is
        also per-(tree, lists).
        """
        with self._auto_lock:
            if self._auto_choice is None:
                from repro.core.autotune import autotune_precision

                with profile.phase("setup:precision"):
                    res = autotune_precision(
                        tree.points,
                        kernel=self.kernel,
                        order=self.order,
                        rtol=self.precision_rtol,
                        m2l_mode=self.m2l_mode,
                        eval_kernel=(
                            None
                            if self.eval_kernel is self.kernel
                            else self.eval_kernel
                        ),
                    )
                    self._auto_result = res
                    self._auto_choice = res.best
            return self._auto_choice

    def _effective_precision(self, tree, profile, override=None):
        """Concrete precision for one evaluate call.

        ``override`` (a per-call ``precision=`` argument) beats the
        evaluator default; ``"auto"`` triggers the one-time probe.
        """
        from repro.core.plan import VALID_PRECISIONS, PrecisionError

        prec = self.precision if override is None else override
        if prec not in VALID_PRECISIONS:
            raise PrecisionError(
                f"precision must be one of {VALID_PRECISIONS}, got {prec!r}"
            )
        if prec == "auto":
            prec = self._resolve_auto(tree, profile)
        return prec

    #: Whether lazily compiled plans cache kernel-matrix blocks.  The GPU
    #: evaluator turns this off: its device kernels regenerate geometry on
    #: chip, so host-side matrix caches would only burn memory.
    PLAN_CACHE_MATRICES = True

    def _cached_plan(self, tree, lists, profile, precision="fp64"):
        """Plan for ``(tree, lists)``, compiled on the second consecutive
        evaluate that sees the pair (one-shot calls stay plan-free).

        fp32 plans compile eagerly on the *first* call instead: float32
        arithmetic only exists as a plan, so deferring would silently run
        the first call in fp64 — a precision the caller did not ask for.
        A cached plan at a different precision is discarded and
        recompiled (per-call overrides flip precision mid-stream).

        Compilation is charged to the ``setup:plan`` span so traces and
        the perf model can separate amortisable setup from apply work.
        The whole lookup runs under ``_plan_lock``: two threads evaluating
        the same pair must produce exactly one compile (later callers
        block briefly, then reuse it) and must not race the weakref
        bookkeeping into re-compiling or dropping a live plan.
        """
        with self._plan_lock:
            tr = self._plan_tree() if self._plan_tree is not None else None
            lr = self._plan_lists() if self._plan_lists is not None else None
            if tr is tree and lr is lists:
                self._plan_calls += 1
            else:
                self._plan_tree = weakref.ref(tree)
                self._plan_lists = weakref.ref(lists)
                self._plan_calls = 1
                self._plan_obj = None
            if (
                self._plan_obj is not None
                and self._plan_obj.precision != precision
            ):
                self._plan_obj = None
            need_at = 1 if precision == "fp32" else 2
            if self._plan_obj is None and self._plan_calls >= need_at:
                with profile.phase("setup:plan"):
                    self._plan_obj = self.compile_plan(
                        tree,
                        lists,
                        cache_matrices=self.PLAN_CACHE_MATRICES,
                        precision=precision,
                    )
            return self._plan_obj

    #: Whether this evaluator can push a multi-RHS ``(n, q)`` density
    #: block through the phases in one pass.  The GPU evaluator turns
    #: this off (its device kernels stage one density at a time), falling
    #: back to a bit-identical per-column loop.
    SUPPORTS_MULTI_RHS = True

    def _resolve_plan(self, tree, lists, profile, plan, use_plan, precision):
        """Shared plan/precision resolution for the evaluate entry points.

        Returns the plan to apply (or ``None`` for the fp64 legacy
        path), enforcing the precision contract: an explicit plan's own
        precision wins unless an explicit override contradicts it, and
        fp32 without a plan is an error (there is no fp32 legacy path).
        """
        from repro.core.plan import PrecisionError

        if plan is not None:
            plan.check(tree)
            if precision is not None:
                eff = self._effective_precision(tree, profile, precision)
                if eff != plan.precision:
                    raise PrecisionError(
                        f"explicit plan was compiled at {plan.precision!r} "
                        f"but the call requested {eff!r}; recompile the "
                        f"plan or drop the override"
                    )
            return plan
        eff = self._effective_precision(tree, profile, precision)
        if use_plan:
            plan = self._cached_plan(tree, lists, profile, eff)
        if plan is None and eff == "fp32":
            raise PrecisionError(
                "fp32 evaluation is plan-only (the legacy per-call path "
                "is float64); enable use_plan or pass a compiled fp32 plan"
            )
        return plan

    # -- public API -------------------------------------------------------

    def evaluate(
        self,
        tree: FmmTree,
        lists: InteractionLists,
        densities: np.ndarray,
        profile: PhaseProfile | None = None,
        plan=None,
        use_plan: bool = True,
        precision: str | None = None,
    ) -> np.ndarray:
        """Potentials at the tree's (Morton-sorted) points.

        ``densities`` must be in the tree's sorted point order with dof
        interleaved per point; the result uses the same layout.  A 2-D
        array whose first axis has ``n_points * source_dim`` rows is a
        multi-RHS column block and is routed to :meth:`evaluate_multi`
        (result ``(n_points * target_dim, q)``); any other shape is
        flattened to a single density vector.

        ``plan`` applies a caller-compiled
        :class:`~repro.core.plan.EvalPlan` (validated against ``tree``).
        Otherwise, with ``use_plan`` (the default), a plan is compiled
        lazily on the second consecutive call with the same
        ``(tree, lists)`` and reused from then on; ``use_plan=False``
        forces the per-call legacy path.

        ``precision`` overrides the evaluator default for this call.  An
        explicit ``plan`` carries its own precision; combining it with a
        *conflicting* explicit override raises
        :class:`~repro.core.plan.PrecisionError`, as does requesting
        fp32 on the plan-free path (fp32 is plan-only).
        """
        profile = profile if profile is not None else PhaseProfile()
        expected = tree.n_points * self.kernel.source_dim
        arr = np.asarray(densities)
        if arr.ndim == 2 and arr.shape[0] == expected:
            return self.evaluate_multi(
                tree, lists, arr, profile, plan=plan, use_plan=use_plan,
                precision=precision,
            )
        plan = self._resolve_plan(
            tree, lists, profile, plan, use_plan, precision
        )
        profile.precision = plan.precision if plan is not None else "fp64"
        state = self.allocate(tree)
        dens = np.ascontiguousarray(arr, dtype=np.float64).reshape(-1)
        if dens.size != expected:
            raise ValueError(
                f"densities shape {arr.shape} has {dens.size} values, "
                f"expected n_points*source_dim = {expected} (or a 2-D "
                f"({expected}, q) multi-RHS block)"
            )

        with profile.phase("S2U"):
            self.s2u(tree, dens, state, profile, plan=plan)
        with profile.phase("U2U"):
            self.u2u(tree, state, profile, plan=plan)
        with profile.phase("VLI"):
            self.vli(tree, lists, state, profile, plan=plan)
        with profile.phase("XLI"):
            self.xli(tree, lists, dens, state, profile, plan=plan)
        with profile.phase("D2D"):
            self.d2d(tree, state, profile, plan=plan)
        with profile.phase("WLI"):
            self.wli(tree, lists, state, profile, plan=plan)
        with profile.phase("D2T"):
            self.d2t(tree, state, profile, plan=plan)
        with profile.phase("ULI"):
            self.uli(tree, lists, dens, state, profile, plan=plan)
        return state["pot"]

    def evaluate_multi(
        self,
        tree: FmmTree,
        lists: InteractionLists,
        dens_block: np.ndarray,
        profile: PhaseProfile | None = None,
        plan=None,
        use_plan: bool = True,
        precision: str | None = None,
    ) -> np.ndarray:
        """Potentials for a ``(n_points * source_dim, q)`` density block.

        Returns ``(n_points * eval_target_dim, q)``; column ``j`` is
        bit-identical to ``evaluate(dens_block[:, j])`` (see the multi-RHS
        notes in :mod:`repro.core.plan`).  The batched one-pass path needs
        a plan; without one (or when the subclass sets
        ``SUPPORTS_MULTI_RHS = False``) columns run through
        :meth:`evaluate` one at a time — identical by construction, just
        without the GEMM batching win.  ``precision`` behaves as in
        :meth:`evaluate`.
        """
        profile = profile if profile is not None else PhaseProfile()
        dens = np.ascontiguousarray(dens_block, dtype=np.float64)
        expected = tree.n_points * self.kernel.source_dim
        if dens.ndim != 2 or dens.shape[0] != expected:
            raise ValueError(
                f"densities shape {np.asarray(dens_block).shape} is not a "
                f"({expected}, q) multi-RHS block "
                f"(n_points*source_dim = {expected})"
            )
        q = dens.shape[1]
        if q == 1:
            pot = self.evaluate(
                tree, lists, dens[:, 0], profile, plan=plan,
                use_plan=use_plan, precision=precision,
            )
            return pot.reshape(-1, 1)
        plan = self._resolve_plan(
            tree, lists, profile, plan, use_plan, precision
        )
        profile.precision = plan.precision if plan is not None else "fp64"
        if plan is None or not self.SUPPORTS_MULTI_RHS:
            cols = [
                self.evaluate(
                    tree,
                    lists,
                    np.ascontiguousarray(dens[:, j]),
                    profile,
                    plan=plan,
                    use_plan=use_plan,
                )
                for j in range(q)
            ]
            return np.stack(cols, axis=1)
        state = self.allocate_multi(tree, q)
        pool = self.task_pool
        with profile.phase("S2U"):
            plan.apply_s2u_multi(self, dens, state, profile, pool=pool)
        with profile.phase("U2U"):
            plan.apply_u2u_multi(self, state, profile, pool=pool)
        with profile.phase("VLI"):
            if self.m2l_mode == "fft":
                plan.apply_vli_fft_multi(self, state, profile, pool=pool)
            else:
                plan.apply_vli_dense_multi(self, state, profile, pool=pool)
        with profile.phase("XLI"):
            plan.apply_xli_multi(self, dens, state, profile, pool=pool)
        with profile.phase("D2D"):
            plan.apply_d2d_multi(self, state, profile, pool=pool)
        with profile.phase("WLI"):
            plan.apply_wli_multi(self, tree, state, profile, pool=pool)
        with profile.phase("D2T"):
            plan.apply_d2t_multi(self, state, profile, pool=pool)
        with profile.phase("ULI"):
            plan.apply_uli_multi(self, dens, state, profile, pool=pool)
        pot = state["pot"]  # (n_points, q, kt_eval)
        return np.ascontiguousarray(pot.transpose(0, 2, 1)).reshape(
            -1, q
        )

    def evaluate_targets(
        self,
        tree: FmmTree,
        lists: InteractionLists,
        densities: np.ndarray,
        targets: np.ndarray,
        profile: PhaseProfile | None = None,
    ) -> np.ndarray:
        """Potentials at arbitrary target points (sources stay on the tree).

        Runs the full upward/interaction/downward machinery on the source
        tree, then evaluates the final phases (D2T, W-list, U-list direct)
        at the given targets: each target inherits the interaction lists of
        the leaf containing it.  Targets must lie in the unit cube.  This
        path is plan-free: the target-side phases depend on the ad-hoc
        target set, which a tree-bound plan cannot precompile.
        """
        from repro.octree.linear import covering_leaf_indices

        profile = profile if profile is not None else PhaseProfile()
        state = self.allocate(tree)
        dens = np.ascontiguousarray(densities, dtype=np.float64).reshape(-1)
        targets = np.asarray(targets, dtype=np.float64)

        with profile.phase("S2U"):
            self.s2u(tree, dens, state, profile)
        with profile.phase("U2U"):
            self.u2u(tree, state, profile)
        with profile.phase("VLI"):
            self.vli(tree, lists, state, profile)
        with profile.phase("XLI"):
            self.xli(tree, lists, dens, state, profile)
        with profile.phase("D2D"):
            self.d2d(tree, state, profile)

        # Locate each target's leaf.
        from repro.util import morton

        tkeys = morton.encode_points(targets)
        leaf_idx_in_leaves = covering_leaf_indices(
            tree.keys[tree.is_leaf], tkeys
        )
        if np.any(leaf_idx_in_leaves < 0):
            raise ValueError("every target must fall inside a tree leaf")
        leaf_nodes = tree.leaf_indices[leaf_idx_in_leaves]

        ks = self.kernel.source_dim
        kt = self.eval_kernel.target_dim
        counts = tree.point_counts()
        out = np.zeros(len(targets) * kt)
        with profile.phase("TGT"):
            for i in np.unique(leaf_nodes):
                sel = leaf_nodes == i
                pts = targets[sel]
                row = np.zeros(len(pts) * kt)
                # far field via the leaf's downward density
                de = self.ops.de_points(tree.levels[i], tree.centers[i])
                row += self.eval_kernel.matrix(pts, de) @ state["dequiv"][i]
                profile.add_flops(self.eval_kernel.pair_flops(len(pts), self.ns))
                # W-list multipoles
                for a in lists.w.of(i):
                    if not state["up"][a].any():
                        continue
                    ue = self.ops.ue_points(tree.levels[a], tree.centers[a])
                    row += self.eval_kernel.matrix(pts, ue) @ state["up"][a]
                    profile.add_flops(self.eval_kernel.pair_flops(len(pts), self.ns))
                # near field: direct sum over the U-list sources
                srcs = lists.u.of(i)
                srcs = srcs[counts[srcs] > 0]
                if srcs.size:
                    spts = np.concatenate([tree.leaf_points(a) for a in srcs])
                    sden = np.concatenate(
                        [
                            dens[tree.pt_begin[a] * ks : tree.pt_end[a] * ks]
                            for a in srcs
                        ]
                    )
                    row += self.eval_kernel.matrix(pts, spts) @ sden
                    profile.add_flops(self.eval_kernel.pair_flops(len(pts), len(spts)))
                out.reshape(-1, kt)[sel] = row.reshape(-1, kt)
        return out

    # -- state ------------------------------------------------------------

    def allocate(self, tree: FmmTree) -> dict:
        """Per-run working arrays (upward/downward densities, potentials).

        ``pot`` is a view of the first ``n_points`` rows of ``_pot_pad``,
        which carries one extra sentinel row: plan-based scatters send
        every padding slot there in a single fancy-indexed add, and the
        garbage accumulated in the sentinel is simply never read.
        """
        ks, kt = self.kernel.source_dim, self.kernel.target_dim
        n = tree.n_nodes
        kte = self.eval_kernel.target_dim
        pot_pad = np.zeros((tree.n_points + 1) * kte)
        return {
            "up": np.zeros((n, self.ns * ks)),
            "dcheck": np.zeros((n, self.ns * kt)),
            "dequiv": np.zeros((n, self.ns * ks)),
            "pot": pot_pad[: tree.n_points * kte],
            "_pot_pad": pot_pad,
        }

    def allocate_multi(self, tree: FmmTree, q: int) -> dict:
        """Working arrays for a ``q``-column multi-RHS apply.

        The column axis sits in the middle (``(rows, q, features)``) so
        per-column slices gather contiguously and per-box gathers keep a
        box's columns adjacent (see the multi-RHS notes in
        :mod:`repro.core.plan`).
        """
        ks, kt = self.kernel.source_dim, self.kernel.target_dim
        n = tree.n_nodes
        kte = self.eval_kernel.target_dim
        pot_pad = np.zeros((tree.n_points + 1, q, kte))
        return {
            "up": np.zeros((n, q, self.ns * ks)),
            "dcheck": np.zeros((n, q, self.ns * kt)),
            "dequiv": np.zeros((n, q, self.ns * ks)),
            "pot": pot_pad[: tree.n_points],
            "_pot_pad": pot_pad,
        }

    # -- phases -----------------------------------------------------------

    #: Leaf boxes per batched kernel-matrix call (bounds peak memory).
    LEAF_BATCH = 1024

    def _leaf_batches(self, tree, sel):
        from repro.core.tree import leaf_batches

        yield from leaf_batches(tree, sel, self.LEAF_BATCH)

    def _gather_leaf_points(self, tree, dens, group, pad, ks):
        from repro.core.tree import gather_leaf_points

        return gather_leaf_points(tree, dens, group, pad, ks)

    def s2u(self, tree, dens, state, profile, scope=None, plan=None) -> None:
        """Leaf sources to upward equivalent densities.

        ``scope`` (bool mask over nodes) restricts the phase; the
        distributed driver passes ownership masks so ghost data never
        double-counts.
        """
        if plan is not None:
            plan.apply_s2u(self, dens, state, profile, pool=self.task_pool)
            return
        ks, kt = self.kernel.source_dim, self.kernel.target_dim
        up = state["up"]
        counts = tree.point_counts()
        sel = tree.is_leaf & (counts > 0)
        if scope is not None:
            sel = sel & scope
        base = {}
        for lev, pad, group in self._leaf_batches(tree, sel):
            pts, den = self._gather_leaf_points(tree, dens, group, pad, ks)
            if lev not in base:
                base[lev] = self.ops.uc_points(lev)
            uc = base[lev][None, :, :] + tree.centers[group][:, None, :]
            k = self.kernel.matrix_batch(uc, pts)
            q = gemm_cols(k, den[:, :, None])[:, :, 0]
            up[group] = q @ self.ops.uc2ue(lev).T
            true_pts = counts[group].sum()
            profile.add_flops(
                self.kernel.pair_flops(self.ns, true_pts)
                + 2.0 * group.size * (self.ns * ks) * (self.ns * kt)
            )

    def u2u(self, tree, state, profile, scope=None, plan=None) -> None:
        """Post-order M2M accumulation (children into parents)."""
        if plan is not None:
            plan.apply_u2u(self, state, profile, pool=self.task_pool)
            return
        up = state["up"]
        counts = tree.point_counts()
        for lev in range(tree.max_level, 0, -1):
            nodes = tree.nodes_at_level(lev)
            nodes = nodes[counts[nodes] > 0]
            if scope is not None:
                nodes = nodes[scope[nodes]]
            if nodes.size == 0:
                continue
            pos = tree.child_pos[nodes]
            for k in range(8):
                sel = nodes[pos == k]
                if sel.size == 0:
                    continue
                m = self.ops.m2m(lev, k)
                up[tree.parent[sel]] += up[sel] @ m.T
                profile.add_flops(2.0 * sel.size * m.size)

    def vli(self, tree, lists, state, profile, scope=None, plan=None) -> None:
        """V-list translations (FFT-diagonal by default)."""
        if plan is not None:
            if self.m2l_mode == "fft":
                plan.apply_vli_fft(self, state, profile, pool=self.task_pool)
            else:
                plan.apply_vli_dense(self, state, profile, pool=self.task_pool)
            return
        if self.m2l_mode == "fft":
            self._vli_fft(tree, lists, state, profile, scope)
        else:
            self._vli_dense(tree, lists, state, profile, scope)

    def _v_pairs_by_level(self, tree, lists, scope=None):
        """Yield (level, tgt_idx, src_idx, offsets) for nonzero V pairs."""
        v = lists.v
        counts = v.counts
        tgts = np.repeat(np.arange(tree.n_nodes), counts)
        srcs = v.indices
        if scope is not None and tgts.size:
            keep = scope[tgts]
            tgts, srcs = tgts[keep], srcs[keep]
        if srcs.size == 0:
            return
        levels = tree.levels[tgts]
        side = 2.0 * tree.half_widths[tgts]
        offs = np.rint(
            (tree.centers[tgts] - tree.centers[srcs]) / side[:, None]
        ).astype(np.int64)
        for lev in np.unique(levels):
            sel = levels == lev
            yield int(lev), tgts[sel], srcs[sel], offs[sel]

    def _vli_dense(self, tree, lists, state, profile, scope=None) -> None:
        up, dcheck = state["up"], state["dcheck"]
        for lev, tgts, srcs, offs in self._v_pairs_by_level(tree, lists, scope):
            code = (offs[:, 0] + 3) * 49 + (offs[:, 1] + 3) * 7 + offs[:, 2] + 3
            for c in np.unique(code):
                sel = code == c
                off = tuple(offs[sel][0])
                m = self.ops.m2l_dense(lev, off)
                # Within one offset each target appears at most once.
                dcheck[tgts[sel]] += up[srcs[sel]] @ m.T
                profile.add_flops(2.0 * sel.sum() * m.size)

    #: Target boxes processed per FFT batch: bounds the frequency-grid
    #: working set (each box holds a (2p)^3 complex grid) so deep levels
    #: with tens of thousands of boxes do not blow up memory.
    VLI_CHUNK = 2048

    def _vli_chunks(self, tree, lists, scope=None):
        """Yield FFT V-list chunk schedules ``(level, usrc, utgt, steps)``.

        ``usrc``/``utgt`` are the unique source/target boxes of the chunk;
        ``steps`` is a list of ``(offset, tgt_positions, src_positions,
        n_pairs)`` where the positions index into ``utgt``/``usrc``.  Both
        the per-call path and plan compilation iterate this generator, so
        chunk boundaries and translation order are identical by
        construction.  Within one offset each target appears at most once.
        """
        for lev, tgts, srcs, offs in self._v_pairs_by_level(tree, lists, scope):
            # pairs arrive sorted by target; chunks are contiguous slices
            utgt_all = np.unique(tgts)
            for t0 in range(0, utgt_all.size, self.VLI_CHUNK):
                chunk = utgt_all[t0 : t0 + self.VLI_CHUNK]
                a = np.searchsorted(tgts, chunk[0], side="left")
                b = np.searchsorted(tgts, chunk[-1], side="right")
                ctgts, csrcs, coffs = tgts[a:b], srcs[a:b], offs[a:b]
                usrc, src_pos = np.unique(csrcs, return_inverse=True)
                utgt, tgt_pos = np.unique(ctgts, return_inverse=True)
                code = (
                    (coffs[:, 0] + 3) * 49 + (coffs[:, 1] + 3) * 7 + coffs[:, 2] + 3
                )
                steps = []
                for c in np.unique(code):
                    sel = code == c
                    off = tuple(int(o) for o in coffs[sel][0])
                    steps.append((off, tgt_pos[sel], src_pos[sel], int(sel.sum())))
                yield lev, usrc, utgt, steps

    def _vli_fft(self, tree, lists, state, profile, scope=None) -> None:
        up, dcheck = state["up"], state["dcheck"]
        fft = self.fft
        kt = self.kernel.target_dim
        for lev, usrc, utgt, steps in self._vli_chunks(tree, lists, scope):
            uhat = fft.forward(up[usrc])
            acc = np.zeros(
                (utgt.size, kt, fft.n, fft.n, fft.nf), dtype=np.complex128
            )
            for off, tpos, spos, npairs in steps:
                that = fft.kernel_hat(lev, off)
                acc[tpos] += fft.translate(that, uhat[spos])
                profile.add_flops(npairs * fft.translate_flops_per_pair())
            dcheck[utgt] += fft.inverse(acc)
            profile.add_flops(
                (usrc.size * self.kernel.source_dim + utgt.size * kt)
                * fft.fft_flops_per_box()
            )

    def _pair_batches(self, tree, rows, cols, level_of, pad_count_of):
        """Group interaction pairs by (level, padded count) and chunk.

        ``level_of``/``pad_count_of`` pick which side of the pair sets the
        surface level and the padded point count.  Pairs within a group
        share one broadcast kernel evaluation.
        """
        if rows.size == 0:
            return
        counts = pad_count_of
        kpad = np.maximum(1 << np.ceil(np.log2(np.maximum(counts, 1))).astype(np.int64), 1)
        code = level_of * np.int64(1 << 24) + kpad
        for c in np.unique(code):
            sel = np.flatnonzero(code == c)
            pad = int(kpad[sel[0]])
            lev = int(level_of[sel[0]])
            chunk = max(1, int(6e6 / max(pad * self.ns, 1)))
            for s in range(0, sel.size, chunk):
                part = sel[s : s + chunk]
                yield lev, pad, rows[part], cols[part]

    def xli(self, tree, lists, dens, state, profile, scope=None, plan=None) -> None:
        """X-list: source points of coarse leaves onto DC surfaces.

        Pairs are batched by (target level, padded source count): the DC
        surfaces are regenerated from target centres, the coarse-leaf
        source points padded with zero-density centre points.
        """
        self.xli_apply(state, self.xli_compute(tree, lists, dens, profile, scope, plan))

    def xli_compute(self, tree, lists, dens, profile, scope=None, plan=None) -> list:
        """The GEMM stage of :meth:`xli`, decoupled from state mutation.

        X-list values depend only on ``dens`` — never on ``up`` or
        ``dcheck`` — so they can be computed while the shared-density
        reduction is still in flight.  Returns deferred ``(targets,
        sums)`` adds; :meth:`xli_apply` replays them in the same order
        and with the same values the fused :meth:`xli` would have added,
        so the split is bit-identical to running X-list in place.
        """
        if plan is not None:
            return plan.compute_xli(self, dens, profile, pool=self.task_pool)
        ks = self.kernel.source_dim
        counts = tree.point_counts()
        x = lists.x
        sel = x.counts > 0
        if scope is not None:
            sel = sel & scope
        rows = np.repeat(np.arange(tree.n_nodes), np.where(sel, x.counts, 0))
        cols = x.indices[np.repeat(sel, x.counts)] if x.indices.size else x.indices
        keep = counts[cols] > 0
        rows, cols = rows[keep], cols[keep]
        out = []
        if rows.size == 0:
            return out
        base = {}
        for lev, pad, ri, ci in self._pair_batches(
            tree, rows, cols, tree.levels[rows], counts[cols]
        ):
            pts, den = self._gather_leaf_points_for(tree, dens, ci, pad, ks)
            if lev not in base:
                base[lev] = self.ops.dc_points(lev)
            dc = base[lev][None, :, :] + tree.centers[ri][:, None, :]
            k = self.kernel.matrix_batch(dc, pts)
            vals = gemm_cols(k, den[:, :, None])[:, :, 0]
            # segment-sum by target (np.add.at is an order slower)
            order = np.argsort(ri, kind="stable")
            sorted_ri = ri[order]
            starts = np.flatnonzero(
                np.concatenate([[True], sorted_ri[1:] != sorted_ri[:-1]])
            )
            out.append(
                (sorted_ri[starts], np.add.reduceat(vals[order], starts, axis=0))
            )
            profile.add_flops(self.kernel.pair_flops(self.ns, counts[ci].sum()))
        return out

    @staticmethod
    def xli_apply(state, deferred) -> None:
        """Add deferred X-list segment sums into the check densities."""
        dcheck = state["dcheck"]
        for seg, sums in deferred:
            dcheck[seg] += sums

    def xli_deferrable(self) -> bool:
        """Whether :meth:`xli_compute`/:meth:`xli_apply` may replace
        :meth:`xli` (the GPU evaluator's device path cannot defer)."""
        return True

    def _gather_leaf_points_for(self, tree, dens, nodes, pad, ks):
        """Padded (points, densities) for arbitrary (possibly repeated)
        leaf nodes; padding at box centres with zero density."""
        b = nodes.size
        pts = np.repeat(tree.centers[nodes][:, None, :], pad, axis=1)
        den = np.zeros((b, pad * ks))
        for j, i in enumerate(nodes):
            n = tree.pt_end[i] - tree.pt_begin[i]
            pts[j, :n] = tree.points[tree.pt_begin[i] : tree.pt_end[i]]
            if ks:
                den[j, : n * ks] = dens[tree.pt_begin[i] * ks : tree.pt_end[i] * ks]
        return pts, den

    def d2d(self, tree, state, profile, scope=None, plan=None) -> None:
        """Pre-order L2L propagation and check-to-equivalent conversion."""
        if plan is not None:
            plan.apply_d2d(self, state, profile, pool=self.task_pool)
            return
        dcheck, dequiv = state["dcheck"], state["dequiv"]
        # Root has no far field: dequiv stays zero.
        for lev in range(1, tree.max_level + 1):
            nodes = tree.nodes_at_level(lev)
            if scope is not None:
                nodes = nodes[scope[nodes]]
            if nodes.size == 0:
                continue
            pos = tree.child_pos[nodes]
            for k in range(8):
                sel = nodes[pos == k]
                if sel.size == 0:
                    continue
                m = self.ops.l2l(lev, k)
                dcheck[sel] += dequiv[tree.parent[sel]] @ m.T
                profile.add_flops(2.0 * sel.size * m.size)
            conv = self.ops.dc2de(lev)
            dequiv[nodes] = dcheck[nodes] @ conv.T
            profile.add_flops(2.0 * nodes.size * conv.size)

    def wli(self, tree, lists, state, profile, scope=None, plan=None) -> None:
        """W-list: source-box up densities evaluated at target points.

        Pairs are batched by (source level, padded target count); the
        source UE surfaces are regenerated from box centres.  Sources are
        gated on their density (not local point counts): in a LET an
        internal ghost source has a valid up density but no locally
        stored points.  The potential scatter segment-sums contributions
        per target leaf (stable argsort + ``reduceat``, exactly as the
        plan path does) before one vectorised add.
        """
        if plan is not None:
            plan.apply_wli(self, tree, state, profile, pool=self.task_pool)
            return
        kt = self.eval_kernel.target_dim
        up = state["up"]
        potr = state["_pot_pad"].reshape(tree.n_points + 1, kt)
        counts = tree.point_counts()
        w = lists.w
        sel = tree.is_leaf & (w.counts > 0) & (counts > 0)
        if scope is not None:
            sel = sel & scope
        rows = np.repeat(np.arange(tree.n_nodes), np.where(sel, w.counts, 0))
        cols = w.indices[np.repeat(sel, w.counts)] if w.indices.size else w.indices
        if rows.size:
            keep = np.any(up[cols] != 0.0, axis=1)
            rows, cols = rows[keep], cols[keep]
        if rows.size == 0:
            return
        base = {}
        for lev, pad, ri, ci in self._pair_batches(
            tree, rows, cols, tree.levels[cols], counts[rows]
        ):
            pts, _ = self._gather_leaf_points_for(tree, np.empty(0), ri, pad, 0)
            if lev not in base:
                base[lev] = self.ops.ue_points(lev)
            ue = base[lev][None, :, :] + tree.centers[ci][:, None, :]
            k = self.eval_kernel.matrix_batch(pts, ue)
            vals = gemm_cols(k, up[ci][:, :, None])[:, :, 0]
            order = np.argsort(ri, kind="stable")
            sri = ri[order]
            starts = np.flatnonzero(
                np.concatenate([[True], sri[1:] != sri[:-1]])
            )
            seg = sri[starts]
            sums = np.add.reduceat(vals[order], starts, axis=0)
            ar = np.arange(pad, dtype=np.int64)[None, :]
            prow = tree.pt_begin[seg][:, None] + ar
            prow[ar >= counts[seg][:, None]] = tree.n_points
            potr[prow] += sums.reshape(seg.size, pad, kt)
            profile.add_flops(self.eval_kernel.pair_flops(counts[ri].sum(), self.ns))

    def d2t(self, tree, state, profile, scope=None, plan=None) -> None:
        """Down equivalent densities to potentials at leaf targets."""
        if plan is not None:
            plan.apply_d2t(self, state, profile, pool=self.task_pool)
            return
        kt = self.eval_kernel.target_dim
        dequiv, pot = state["dequiv"], state["pot"]
        counts = tree.point_counts()
        sel = tree.is_leaf & (counts > 0)
        if scope is not None:
            sel = sel & scope
        base = {}
        for lev, pad, group in self._leaf_batches(tree, sel):
            pts, _ = self._gather_leaf_points(tree, np.empty(0), group, pad, 0)
            if lev not in base:
                base[lev] = self.ops.de_points(lev)
            de = base[lev][None, :, :] + tree.centers[group][:, None, :]
            k = self.eval_kernel.matrix_batch(pts, de)
            vals = gemm_cols(k, dequiv[group][:, :, None])[:, :, 0]
            for j, i in enumerate(group):
                n = tree.pt_end[i] - tree.pt_begin[i]
                pot[tree.pt_begin[i] * kt : tree.pt_end[i] * kt] += vals[
                    j, : n * kt
                ]
            profile.add_flops(self.eval_kernel.pair_flops(counts[group].sum(), self.ns))

    def _uli_groups(self, tree, lists, scope=None):
        """Yield U-list batch groups ``(tpad, spad, boxes, src_totals)``.

        Groups selected leaves by (padded target count, padded total
        source count) and chunks each group; both the per-call path and
        plan compilation iterate this generator so batch membership is
        identical by construction.  The per-leaf total source count is a
        CSR segment sum over the U-list (prefix-sum difference — no
        Python loop over leaves).
        """
        counts = tree.point_counts()
        u = lists.u
        sel = tree.is_leaf & (counts > 0)
        if scope is not None:
            sel = sel & scope
        leaves = np.flatnonzero(sel)
        if leaves.size == 0:
            return
        csum = np.concatenate(([0], np.cumsum(counts[u.indices])))
        src_total = csum[u.offsets[leaves + 1]] - csum[u.offsets[leaves]]
        active = src_total > 0
        leaves, src_total = leaves[active], src_total[active]
        if leaves.size == 0:
            return
        tpad = np.maximum(
            1 << np.ceil(np.log2(np.maximum(counts[leaves], 1))).astype(np.int64), 1
        )
        spad = np.maximum(
            1 << np.ceil(np.log2(np.maximum(src_total, 1))).astype(np.int64), 1
        )
        code = tpad * np.int64(1 << 32) + spad
        for c in np.unique(code):
            grp = np.flatnonzero(code == c)
            tp = int(tpad[grp[0]])
            sp = int(spad[grp[0]])
            # bounded chunks keep batched GEMMs large enough to amortise
            # dispatch while keeping each compiled kmat block small
            # enough that a localized geometry update leaves most blocks
            # untouched — whole-block reuse in patch_plan shares those by
            # reference instead of copying (blocks sit in leaf Morton
            # order, so a moving cluster dirties a few contiguous chunks)
            chunk = max(1, int(1.5e6 / max(tp * sp, 1)))
            for s in range(0, grp.size, chunk):
                part = grp[s : s + chunk]
                yield tp, sp, leaves[part], src_total[part]

    def uli(self, tree, lists, dens, state, profile, scope=None, plan=None) -> None:
        """U-list: exact near-field interactions.

        Leaves are batched by (padded target count, padded total source
        count); each batch evaluates one broadcast kernel block over the
        concatenated (centre-padded, zero-density) neighbour sources.
        """
        if plan is not None:
            plan.apply_uli(self, dens, state, profile, pool=self.task_pool)
            return
        ks = self.kernel.source_dim
        kt = self.eval_kernel.target_dim
        pot = state["pot"]
        counts = tree.point_counts()
        u = lists.u
        for tp, sp, boxes, src_total in self._uli_groups(tree, lists, scope):
            m = boxes.size
            tgt, _ = self._gather_leaf_points_for(tree, np.empty(0), boxes, tp, 0)
            src = np.repeat(tree.centers[boxes][:, None, :], sp, axis=1)
            den = np.zeros((m, sp * ks))
            for j, i in enumerate(boxes):
                pos = 0
                for a in u.of(i):
                    n = counts[a]
                    if n == 0:
                        continue
                    src[j, pos : pos + n] = tree.points[
                        tree.pt_begin[a] : tree.pt_end[a]
                    ]
                    den[j, pos * ks : (pos + n) * ks] = dens[
                        tree.pt_begin[a] * ks : tree.pt_end[a] * ks
                    ]
                    pos += n
            k = self.eval_kernel.matrix_batch(tgt, src)
            vals = gemm_cols(k, den[:, :, None])[:, :, 0]
            for j, i in enumerate(boxes):
                n = tree.pt_end[i] - tree.pt_begin[i]
                pot[tree.pt_begin[i] * kt : tree.pt_end[i] * kt] += vals[
                    j, : n * kt
                ]
            profile.add_flops(
                self.eval_kernel.pair_flops(1, 1)
                * float((counts[boxes] * src_total).sum())
            )
