"""Equivalent / check surfaces of the kernel-independent FMM.

In KIFMM (Ying, Biros & Zorin 2004) every expansion is a density living on
a discretised surface surrounding an octant:

* **UE** — *upward equivalent* surface: a small cube around the octant.
  The upward density ``u`` on it reproduces, outside the octant's
  colleague volume, the field of the sources inside the octant.
* **UC** — *upward check* surface: a larger cube; matching potentials
  there determines ``u``.
* **DE** — *downward equivalent* surface: the large cube; the downward
  density ``d`` on it reproduces, inside the octant, the field of all
  far sources.
* **DC** — *downward check* surface: the small cube; matching potentials
  there determines ``d``.

Each surface carries ``6 (p-1)^2 + 2`` points: the boundary nodes of a
``p x p x p`` lattice on the cube.

Surface scales
--------------
The small surfaces (UE/DC) use scale ``(p-1)/(p-2)`` relative to the box
half-width instead of the classic 1.05.  With that choice the surface
lattice spacing is exactly ``2 r / (p - 2)``, which divides the box side
``2 r`` — so for any V-list pair the *difference* of a target DC point and
a source UE point is a lattice vector, and the M2L translation becomes a
3-D convolution diagonalised by the FFT (the paper's "diagonal
translation ... based on a Fast Fourier Transform-based diagonalization of
the T operator").  The large surfaces (UC/DE) use the classic 2.95.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "MIN_ORDER",
    "inner_scale",
    "outer_scale",
    "n_surface_points",
    "surface_lattice",
    "surface_grid_indices",
    "surface_points",
]

#: Minimum supported surface order: below 4 the inner scale degenerates.
MIN_ORDER = 4

#: Scale of the large (UC / DE) surfaces relative to the box half-width.
OUTER_SCALE = 2.95


def inner_scale(order: int) -> float:
    """UE / DC surface scale: ``(p-1)/(p-2)`` (lattice-compatible)."""
    _check_order(order)
    return (order - 1) / (order - 2)


def outer_scale(order: int) -> float:
    """UC / DE surface scale (classic KIFMM value)."""
    _check_order(order)
    return OUTER_SCALE


def _check_order(order: int) -> None:
    if order < MIN_ORDER:
        raise ValueError(f"surface order must be >= {MIN_ORDER}, got {order}")


def n_surface_points(order: int) -> int:
    """Number of surface points: ``6 (p-1)^2 + 2``."""
    _check_order(order)
    return 6 * (order - 1) ** 2 + 2


@lru_cache(maxsize=None)
def _lattice_cached(order: int) -> np.ndarray:
    p = order
    grid = np.arange(p)
    ijk = np.stack(np.meshgrid(grid, grid, grid, indexing="ij"), axis=-1).reshape(-1, 3)
    on_surface = np.any((ijk == 0) | (ijk == p - 1), axis=1)
    pts = ijk[on_surface]
    pts.setflags(write=False)
    return pts


def surface_lattice(order: int) -> np.ndarray:
    """Integer lattice coordinates of surface points, shape ``(n_s, 3)``.

    Entries are in ``{0, ..., p-1}``; the cube surface is where any
    coordinate equals 0 or ``p-1``.  Ordering is fixed (row-major over the
    full lattice) so densities are interchangeable across modules.
    """
    _check_order(order)
    return _lattice_cached(order)


def surface_grid_indices(order: int) -> np.ndarray:
    """Flat indices of the surface points in a ``(p, p, p)`` C-order grid."""
    ijk = surface_lattice(order)
    p = order
    return (ijk[:, 0] * p + ijk[:, 1]) * p + ijk[:, 2]


def surface_points(
    order: int, center: np.ndarray, half_width: float, scale: float
) -> np.ndarray:
    """Physical surface points: cube of half-width ``scale * half_width``.

    The lattice ``{0..p-1}`` maps affinely onto ``[-s, s]`` per axis where
    ``s = scale * half_width``.
    """
    _check_order(order)
    ijk = surface_lattice(order).astype(np.float64)
    unit = 2.0 * ijk / (order - 1) - 1.0  # [-1, 1] lattice
    return np.asarray(center, dtype=np.float64) + scale * float(half_width) * unit
