"""Translation-operator factory for the kernel-independent FMM.

All FMM operators are built from two primitives:

* kernel matrices between surface point sets (see
  :mod:`repro.core.surfaces`), and
* regularised pseudo-inverses of check-from-equivalent matrices.

Operators depend only on the octant *level* (and, for M2M/L2L, the child's
position within its parent; for M2L, the translation offset), so they are
computed lazily and memoised.  For kernels homogeneous of degree ``h``
(Laplace, Stokes) matrices at any level are a scalar multiple of the
reference level's, so only one level is ever materialised.
"""

from __future__ import annotations

import numpy as np

from repro.core import surfaces
from repro.kernels.base import Kernel

__all__ = ["OperatorCache", "regularized_pinv", "child_center_offset"]

#: Reference level used when homogeneous scaling allows cross-level reuse.
_REF_LEVEL = 2


def regularized_pinv(mat: np.ndarray, rcond: float) -> np.ndarray:
    """Truncated-SVD pseudo-inverse.

    The equivalent-from-check systems are severely ill-conditioned
    first-kind integral equations; truncating singular values below
    ``rcond * s_max`` is the standard KIFMM regularisation.
    """
    u, s, vt = np.linalg.svd(mat, full_matrices=False)
    cutoff = rcond * s[0]
    inv_s = np.where(s > cutoff, 1.0 / np.where(s > cutoff, s, 1.0), 0.0)
    return (vt.T * inv_s) @ u.T


def child_center_offset(child_pos: int, child_half_width: float) -> np.ndarray:
    """Child-centre displacement from the parent centre.

    ``child_pos`` is the Morton position (bit 2 = x, bit 1 = y, bit 0 = z),
    matching :func:`repro.util.morton.children` ordering.
    """
    xo = (child_pos >> 2) & 1
    yo = (child_pos >> 1) & 1
    zo = child_pos & 1
    return child_half_width * np.array(
        [2 * xo - 1, 2 * yo - 1, 2 * zo - 1], dtype=np.float64
    )


def level_half_width(level: int) -> float:
    """Half-width of a level-``level`` octant in the unit cube."""
    return 0.5 * 2.0**-level


class OperatorCache:
    """Lazy, memoised source of all dense KIFMM translation operators.

    Parameters
    ----------
    kernel:
        The interaction kernel; its ``source_dim``/``target_dim`` set the
        block structure and its ``homogeneity`` enables cross-level reuse.
    order:
        Surface order ``p`` (points per cube edge); accuracy parameter.
    rcond:
        Relative singular-value cutoff of the pseudo-inverses.
    """

    def __init__(self, kernel: Kernel, order: int, rcond: float | None = None):
        if order < surfaces.MIN_ORDER:
            raise ValueError(f"order must be >= {surfaces.MIN_ORDER}")
        self.kernel = kernel
        self.order = int(order)
        self.rcond = float(kernel.default_rcond if rcond is None else rcond)
        self.n_surf = surfaces.n_surface_points(order)
        self._inner = surfaces.inner_scale(order)
        self._outer = surfaces.outer_scale(order)
        self._uc2ue: dict[int, np.ndarray] = {}
        self._uc2ue_f32: dict[int, np.ndarray] = {}
        self._dc2de: dict[int, np.ndarray] = {}
        self._m2m: dict[tuple[int, int], np.ndarray] = {}
        self._l2l: dict[tuple[int, int], np.ndarray] = {}
        self._m2l: dict[tuple[int, tuple[int, int, int]], np.ndarray] = {}

    # -- surface helpers ---------------------------------------------------

    def ue_points(self, level: int, center=(0.0, 0.0, 0.0)) -> np.ndarray:
        """Upward-equivalent surface points of a box at ``level``."""
        return surfaces.surface_points(
            self.order, np.asarray(center), level_half_width(level), self._inner
        )

    def uc_points(self, level: int, center=(0.0, 0.0, 0.0)) -> np.ndarray:
        """Upward-check surface points of a box at ``level``."""
        return surfaces.surface_points(
            self.order, np.asarray(center), level_half_width(level), self._outer
        )

    def de_points(self, level: int, center=(0.0, 0.0, 0.0)) -> np.ndarray:
        """Downward-equivalent surface points of a box at ``level``."""
        return self.uc_points(level, center)

    def dc_points(self, level: int, center=(0.0, 0.0, 0.0)) -> np.ndarray:
        """Downward-check surface points of a box at ``level``."""
        return self.ue_points(level, center)

    # -- homogeneity bookkeeping -------------------------------------------

    def _canonical(self, level: int) -> tuple[int, float]:
        """(level to compute at, multiplier for kernel-matrix entries)."""
        h = self.kernel.homogeneity
        if h is None:
            return level, 1.0
        # K at `level` = lam**h * K at _REF_LEVEL with lam = r_level / r_ref.
        lam = 2.0 ** (_REF_LEVEL - level)
        return _REF_LEVEL, lam**h

    # -- operators ----------------------------------------------------------

    def uc2ue(self, level: int) -> np.ndarray:
        """Map check potentials on UC to the upward-equivalent density."""
        lvl, fac = self._canonical(level)
        mat = self._uc2ue.get(lvl)
        if mat is None:
            k = self.kernel.matrix(self.uc_points(lvl), self.ue_points(lvl))
            mat = self._uc2ue[lvl] = regularized_pinv(k, self.rcond)
        return mat if fac == 1.0 else mat / fac

    #: Pseudo-inverse cutoff for single-precision (GPU) application: the
    #: double-precision cutoff sits below float32 resolution and would
    #: amplify device roundoff catastrophically.
    F32_RCOND = 1e-4

    def uc2ue_f32(self, level: int) -> np.ndarray:
        """Single-precision-safe variant of :meth:`uc2ue` for GPU kernels."""
        lvl, fac = self._canonical(level)
        mat = self._uc2ue_f32.get(lvl)
        if mat is None:
            k = self.kernel.matrix(self.uc_points(lvl), self.ue_points(lvl))
            mat = self._uc2ue_f32[lvl] = regularized_pinv(k, self.F32_RCOND)
        return mat if fac == 1.0 else mat / fac

    def dc2de(self, level: int) -> np.ndarray:
        """Map check potentials on DC to the downward-equivalent density."""
        lvl, fac = self._canonical(level)
        mat = self._dc2de.get(lvl)
        if mat is None:
            k = self.kernel.matrix(self.dc_points(lvl), self.de_points(lvl))
            mat = self._dc2de[lvl] = regularized_pinv(k, self.rcond)
        return mat if fac == 1.0 else mat / fac

    def m2m(self, child_level: int, child_pos: int) -> np.ndarray:
        """Child upward density -> parent upward density contribution.

        Level-independent for homogeneous kernels (the check-matrix scale
        cancels against the pseudo-inverse).
        """
        lvl, _ = self._canonical(child_level)
        key = (lvl, child_pos)
        mat = self._m2m.get(key)
        if mat is None:
            parent_level = lvl - 1
            off = child_center_offset(child_pos, level_half_width(lvl))
            k = self.kernel.matrix(
                self.uc_points(parent_level), self.ue_points(lvl, off)
            )
            mat = self._m2m[key] = self.uc2ue(parent_level) @ k
        return mat

    def l2l(self, child_level: int, child_pos: int) -> np.ndarray:
        """Parent downward density -> child downward *check* potentials."""
        lvl, fac = self._canonical(child_level)
        key = (lvl, child_pos)
        mat = self._l2l.get(key)
        if mat is None:
            off = child_center_offset(child_pos, level_half_width(lvl))
            mat = self._l2l[key] = self.kernel.matrix(
                self.dc_points(lvl, off), self.de_points(lvl - 1)
            )
        return mat if fac == 1.0 else mat * fac

    def m2l_dense(self, level: int, offset: tuple[int, int, int]) -> np.ndarray:
        """Source upward density -> target downward *check* potentials.

        ``offset`` is ``(c_target - c_source) / box_side`` — an integer
        vector with infinity-norm 2 or 3 for V-list pairs.  The dense
        operator is the ablation baseline for the FFT-diagonalised path.
        """
        lvl, fac = self._canonical(level)
        key = (lvl, tuple(int(o) for o in offset))
        mat = self._m2l.get(key)
        if mat is None:
            side = 2.0 * level_half_width(lvl)
            tgt_center = side * np.asarray(offset, dtype=np.float64)
            mat = self._m2l[key] = self.kernel.matrix(
                self.dc_points(lvl, tgt_center), self.ue_points(lvl)
            )
        return mat if fac == 1.0 else mat * fac
