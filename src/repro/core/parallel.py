"""Deterministic intra-rank task execution over plan phase tiles.

The compiled :class:`~repro.core.plan.EvalPlan` already decomposes every
phase into independent batch groups — leaf/pair GEMM blocks, V-list
chunk codes, per-child-position translation steps.  This module runs
those tiles on a shared thread pool while keeping the results
**bit-identical to serial execution at any thread count**:

* Each task owns a fixed tile of the phase (a compiled block, chunk or
  step — never a fraction of one, because BLAS GEMM results are not
  stable under a changed row count at small sizes).
* Tiles whose outputs are disjoint (S2U leaf groups, V-list chunk
  targets, D2D child rows within a level) write their slices directly
  from the worker — same stores as the serial loop, just reordered
  across *disjoint* rows.
* Tiles whose outputs may overlap (U2U parents, dense-M2L targets,
  XLI/WLI/D2T/ULI scatter segments and the shared sentinel pad row)
  only *compute* in parallel; the owning thread combines the returned
  values serially in compiled tile order — the exact ``+=`` sequence of
  the serial apply.  No atomics, no nondeterministic reductions.
* Flop accounting replays on the owning thread in tile order, so the
  profile ledger (and hence :meth:`TraceRecorder.signature`) is
  independent of the thread schedule.

BLAS is pinned to one thread inside :meth:`TaskPool.run` (see
:mod:`repro.util.blas`), so task-level threads never multiply with BLAS
threads, and every configured thread count runs the same single-threaded
GEMMs — the other half of the bit-identity argument.

``PARALLEL:<phase>`` / ``PARALLEL:busy:<phase>`` trace spans record the
section's elapsed and summed per-tile busy seconds.  Only ``wall_s``
carries timing — the signature drops it — while the deterministic tile
and thread counts ride the ``comm_messages`` counter, so replaying a run
under a different thread schedule still produces an identical trace
signature.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.util.blas import limit_blas_threads

__all__ = [
    "TaskPool",
    "shared_pool",
    "shared_pool_stats",
    "rank_pool_size",
    "record_parallel_spans",
]


class TaskPool:
    """A deterministic tile executor over a fixed-size thread pool.

    ``run(tasks)`` executes zero-argument callables and returns their
    results **in submission order** plus the summed per-task busy
    seconds.  With ``threads <= 1`` (or a single task) everything runs
    inline on the calling thread — no executor, no handoff overhead —
    so a 1-thread pool is byte-for-byte the same computation as a
    4-thread pool, just scheduled differently.

    The pool is safe to share between concurrent coordinators (serve
    workers): each ``run`` collects only its own futures, and per-thread
    plan scratch (:meth:`EvalPlan._buffer`) keys off the executing
    thread.
    """

    def __init__(self, threads: int, name: str = "fmm"):
        self.threads = max(1, int(threads))
        self.name = str(name)
        self._lock = threading.Lock()
        self._exec: ThreadPoolExecutor | None = None
        self._submitted = 0
        self._done = 0
        self._active = 0
        self._active_peak = 0
        self._runs = 0
        self._busy_s = 0.0

    # -- execution ---------------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._exec is None:
                self._exec = ThreadPoolExecutor(
                    max_workers=self.threads,
                    thread_name_prefix=f"{self.name}-tile",
                )
            return self._exec

    def _call(self, fn):
        with self._lock:
            self._active += 1
            self._active_peak = max(self._active_peak, self._active)
        t0 = time.perf_counter()
        try:
            return fn(), time.perf_counter() - t0
        finally:
            with self._lock:
                self._active -= 1
                self._done += 1

    def run(self, tasks) -> tuple[list, float]:
        """Execute ``tasks``; return ``(results_in_order, busy_seconds)``."""
        tasks = list(tasks)
        if not tasks:
            return [], 0.0
        with limit_blas_threads(1):
            if self.threads <= 1 or len(tasks) == 1:
                results = []
                busy = 0.0
                for fn in tasks:
                    t0 = time.perf_counter()
                    results.append(fn())
                    busy += time.perf_counter() - t0
                with self._lock:
                    self._runs += 1
                    self._done += len(tasks)
                    self._busy_s += busy
                return results, busy
            ex = self._executor()
            with self._lock:
                self._submitted += len(tasks)
            futs = [ex.submit(self._call, fn) for fn in tasks]
            results = []
            busy = 0.0
            for f in futs:  # submission order == compiled tile order
                r, dt = f.result()
                results.append(r)
                busy += dt
            with self._lock:
                self._runs += 1
                self._busy_s += busy
            return results, busy

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        """Queue depth / active-tile gauges for ``ServeMetrics`` snapshots."""
        with self._lock:
            return {
                "threads": self.threads,
                "tiles_queued": max(
                    self._submitted - self._done - self._active, 0
                ),
                "tiles_active": self._active,
                "tiles_active_peak": self._active_peak,
                "tiles_run": self._done,
                "runs": self._runs,
                "busy_s": self._busy_s,
            }

    def shutdown(self) -> None:
        with self._lock:
            ex, self._exec = self._exec, None
        if ex is not None:
            ex.shutdown(wait=True)


# -- process-wide shared pools ------------------------------------------------

_shared_lock = threading.Lock()
_shared: dict[str, TaskPool] = {}


def shared_pool(threads: int, key: str = "serve") -> TaskPool:
    """The process-wide pool under ``key``, (re)sized to ``threads``.

    The serving engines route every model's tile work through one shared
    pool instead of nesting per-model executors under the worker pool:
    total compute threads on the host stay bounded by ``threads``
    regardless of how many workers are mid-apply.
    """
    want = max(1, int(threads))
    with _shared_lock:
        pool = _shared.get(key)
        if pool is None or pool.threads != want:
            if pool is not None:
                pool.shutdown()
            pool = _shared[key] = TaskPool(want, name=key)
        return pool


def shared_pool_stats(key: str = "serve") -> dict | None:
    with _shared_lock:
        pool = _shared.get(key)
    return pool.stats() if pool is not None else None


def rank_pool_size(
    threads: int, nranks: int, host_cpus: int | None = None
) -> int:
    """Per-rank pool size so ``p ranks x t threads`` never oversubscribes.

    The simulated SPMD fabric runs every rank as a thread of one
    process, so each rank's pool gets ``min(threads, cpus // nranks)``
    (floored at 1): the whole fabric lands at most ``cpus`` compute
    threads on the host.
    """
    cpus = host_cpus if host_cpus is not None else (os.cpu_count() or 1)
    return max(1, min(int(threads), max(1, cpus // max(1, int(nranks)))))


# -- trace spans --------------------------------------------------------------


def record_parallel_spans(
    profile, phase: str, elapsed_s: float, busy_s: float,
    ntasks: int, threads: int,
) -> None:
    """Emit the ``PARALLEL:*`` span pair for one parallel phase section.

    ``PARALLEL:<phase>`` carries the section's elapsed wall seconds and
    the tile count; ``PARALLEL:busy:<phase>`` carries the summed
    per-tile busy seconds and the pool's thread count.  Achieved speedup
    is ``busy / elapsed`` (see :func:`repro.perf.model.parallel_report`).
    Timing lives only in ``wall_s`` — the one field
    :meth:`TraceRecorder.signature` drops — so identical runs under
    different thread schedules keep identical signatures.
    """
    trace = getattr(profile, "_trace", None)
    if trace is None:
        return
    rank = getattr(profile, "_trace_rank", 0)
    prec = getattr(profile, "precision", "fp64")
    trace.record_span(
        rank, f"PARALLEL:{phase}", elapsed_s, 0.0, int(ntasks), 0.0, 0.0,
        False, prec,
    )
    trace.record_span(
        rank, f"PARALLEL:busy:{phase}", busy_s, 0.0, int(threads), 0.0, 0.0,
        False, prec,
    )
