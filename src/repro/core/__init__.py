"""The paper's primary contribution: the kernel-independent adaptive FMM.

Public entry point: :class:`repro.core.Fmm` (single process).  The
distributed driver lives in :mod:`repro.dist`, the virtual-GPU accelerated
evaluator in :mod:`repro.gpu`.
"""

from repro.core.autotune import autotune_points_per_box
from repro.core.evaluator import FmmEvaluator
from repro.core.fft_m2l import FftM2L
from repro.core.fmm import Fmm, FmmPlan
from repro.core.lists import CsrList, InteractionLists, build_lists
from repro.core.operators import OperatorCache
from repro.core.plan import (
    EvalPlan,
    PlanMismatchError,
    PlanScopes,
    compile_plan,
    tree_fingerprint,
)
from repro.core.tree import FmmTree, build_tree

__all__ = [
    "Fmm",
    "autotune_points_per_box",
    "FmmPlan",
    "FmmEvaluator",
    "FftM2L",
    "OperatorCache",
    "FmmTree",
    "build_tree",
    "CsrList",
    "InteractionLists",
    "build_lists",
    "EvalPlan",
    "PlanScopes",
    "PlanMismatchError",
    "compile_plan",
    "tree_fingerprint",
]
