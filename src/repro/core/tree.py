"""Adaptive FMM tree: linear octree plus per-node topology and point data.

The tree stores *all* octants (leaves and ancestors) of a complete adaptive
octree as parallel arrays indexed by node id order (sorted Morton pre-order).
Points are kept in Morton-sorted order; each leaf records its contiguous
slice.  This array-of-struct-of-arrays layout is what makes both the
vectorised CPU evaluator and the GPU data-structure translation cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.octree import build as obuild
from repro.util import geometry, morton

__all__ = ["FmmTree", "build_tree"]


@dataclass
class FmmTree:
    """Topology + geometry + point storage of an adaptive FMM octree.

    Attributes
    ----------
    keys:
        Sorted ids of all nodes (leaves and internal), ``(n_nodes,)``.
    levels / is_leaf / parent / children / child_pos:
        Per-node topology.  ``children`` is ``(n_nodes, 8)`` with -1 where
        a child does not exist; ``child_pos`` is the Morton position of a
        node inside its parent (0 for the root).
    points:
        Morton-sorted point coordinates ``(n_points, 3)``.
    order:
        Permutation such that ``points == original_points[order]``.
    pt_begin / pt_end:
        Per-node ranges into ``points`` covering the node's subtree (for a
        leaf: its own points).
    centers / half_widths:
        Physical box geometry per node.
    """

    keys: np.ndarray
    levels: np.ndarray
    is_leaf: np.ndarray
    parent: np.ndarray
    children: np.ndarray
    child_pos: np.ndarray
    points: np.ndarray
    order: np.ndarray
    pt_begin: np.ndarray
    pt_end: np.ndarray
    centers: np.ndarray
    half_widths: np.ndarray
    _level_index: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    @property
    def n_nodes(self) -> int:
        return self.keys.size

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def max_level(self) -> int:
        return int(self.levels.max(initial=0))

    @property
    def leaf_indices(self) -> np.ndarray:
        return np.flatnonzero(self.is_leaf)

    def point_counts(self) -> np.ndarray:
        """Number of points in each node's subtree."""
        return self.pt_end - self.pt_begin

    def nodes_at_level(self, level: int) -> np.ndarray:
        """Indices of nodes at the given level (cached)."""
        idx = self._level_index.get(level)
        if idx is None:
            idx = self._level_index[level] = np.flatnonzero(self.levels == level)
        return idx

    def find(self, query_keys: np.ndarray) -> np.ndarray:
        """Node indices of the queried octant ids (-1 when absent)."""
        query_keys = np.asarray(query_keys, dtype=np.uint64)
        pos = np.searchsorted(self.keys, query_keys)
        pos = np.clip(pos, 0, self.keys.size - 1)
        return np.where(self.keys[pos] == query_keys, pos, -1)

    def leaf_points(self, node: int) -> np.ndarray:
        """Points of a leaf node (view into the sorted array)."""
        return self.points[self.pt_begin[node] : self.pt_end[node]]

    def validate(self) -> None:
        """Structural invariants; raises AssertionError on violation."""
        assert np.all(self.keys[1:] > self.keys[:-1]), "keys not sorted unique"
        root = 0
        assert self.parent[root] == -1 and self.levels[root] == 0
        nz = np.arange(1, self.n_nodes)
        assert np.all(self.parent[nz] >= 0), "non-root without parent"
        p = self.parent[nz]
        assert np.all(self.levels[p] == self.levels[nz] - 1)
        assert np.all(
            self.children[p, self.child_pos[nz]] == nz
        ), "children table inconsistent"
        leaf = self.is_leaf
        assert np.all(self.children[leaf] == -1), "leaf with children"
        assert np.all((self.children[~leaf] >= 0).any(axis=1) | ~(~leaf).any())
        # Point ranges of children partition the parent's range.
        internal = np.flatnonzero(~leaf)
        for i in internal:
            ch = self.children[i]
            ch = ch[ch >= 0]
            assert self.pt_begin[ch].min() == self.pt_begin[i]
            assert self.pt_end[ch].max() == self.pt_end[i]
            assert np.sum(self.pt_end[ch] - self.pt_begin[ch]) == (
                self.pt_end[i] - self.pt_begin[i]
            )


def leaf_batches(tree: FmmTree, sel: np.ndarray, batch: int = 1024):
    """Yield ``(level, padded_count, node_indices)`` groups of leaves.

    Groups selected leaves by (level, power-of-two padded point count) so
    evaluator phases can process thousands of small leaves per broadcast
    kernel call; each group is additionally capped at ``batch`` boxes to
    bound peak memory.
    """
    idx = np.flatnonzero(sel)
    if idx.size == 0:
        return
    counts = (tree.pt_end - tree.pt_begin)[idx]
    kpad = np.maximum(1 << np.ceil(np.log2(counts)).astype(np.int64), 1)
    code = tree.levels[idx] * np.int64(1 << 24) + kpad
    for c in np.unique(code):
        grp = idx[code == c]
        lev = int(tree.levels[grp[0]])
        pad = int(kpad[code == c][0])
        for s in range(0, grp.size, batch):
            yield lev, pad, grp[s : s + batch]


def gather_leaf_points(tree: FmmTree, dens: np.ndarray, group: np.ndarray,
                       pad: int, source_dim: int):
    """Padded per-leaf (points, densities) arrays for one batch group.

    Padding slots hold the box centre with zero density, contributing
    nothing to any kernel sum.
    """
    b = group.size
    pts = np.repeat(tree.centers[group][:, None, :], pad, axis=1)
    den = np.zeros((b, pad * source_dim))
    for j, i in enumerate(group):
        n = tree.pt_end[i] - tree.pt_begin[i]
        pts[j, :n] = tree.points[tree.pt_begin[i] : tree.pt_end[i]]
        if source_dim:
            den[j, : n * source_dim] = dens[
                tree.pt_begin[i] * source_dim : tree.pt_end[i] * source_dim
            ]
    return pts, den


def tree_from_leaves(
    leaves: np.ndarray,
    sorted_points: np.ndarray,
    point_keys: np.ndarray,
    order: np.ndarray,
) -> FmmTree:
    """Assemble an :class:`FmmTree` from a complete leaf set and sorted points."""
    leaves = np.asarray(leaves, dtype=np.uint64)
    keys = np.union1d(leaves, morton.ancestors_of(leaves))
    levels = morton.level(keys)
    is_leaf = np.isin(keys, leaves, assume_unique=True)

    parent_keys = morton.parent(keys)
    parent = np.searchsorted(keys, parent_keys).astype(np.int64)
    parent[0] = -1

    # Child position: the 3 interleaved anchor bits at the node's own level.
    shift = np.uint64(morton.LEVEL_BITS) + 3 * (
        morton.MAX_DEPTH - levels
    ).astype(np.uint64)
    child_pos = ((keys >> shift) & np.uint64(7)).astype(np.int64)
    child_pos[0] = 0

    children = np.full((keys.size, 8), -1, dtype=np.int64)
    nz = np.arange(1, keys.size)
    children[parent[nz], child_pos[nz]] = nz

    lo = morton.deepest_first_descendant(keys)
    hi = morton.deepest_last_descendant(keys)
    pt_begin = np.searchsorted(point_keys, lo, side="left").astype(np.int64)
    pt_end = np.searchsorted(point_keys, hi, side="right").astype(np.int64)

    centers = geometry.box_center(keys)
    half_widths = geometry.box_half_width(levels)

    tree = FmmTree(
        keys=keys,
        levels=levels,
        is_leaf=is_leaf,
        parent=parent,
        children=children,
        child_pos=child_pos,
        points=sorted_points,
        order=order,
        pt_begin=pt_begin,
        pt_end=pt_end,
        centers=centers,
        half_widths=half_widths,
    )
    return tree


def build_tree(
    points: np.ndarray,
    max_points_per_box: int,
    max_depth: int = morton.MAX_DEPTH,
) -> FmmTree:
    """Adaptive tree over the unit cube with at most ``q`` points per leaf."""
    points = np.asarray(points, dtype=np.float64)
    ob = obuild.points_to_octree(points, max_points_per_box, max_depth)
    return tree_from_leaves(ob.leaves, points[ob.order], ob.point_keys, ob.order)
