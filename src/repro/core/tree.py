"""Adaptive FMM tree: linear octree plus per-node topology and point data.

The tree stores *all* octants (leaves and ancestors) of a complete adaptive
octree as parallel arrays indexed by node id order (sorted Morton pre-order).
Points are kept in Morton-sorted order; each leaf records its contiguous
slice.  This array-of-struct-of-arrays layout is what makes both the
vectorised CPU evaluator and the GPU data-structure translation cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.octree import build as obuild
from repro.util import geometry, morton

__all__ = ["FmmTree", "TreeDelta", "build_tree", "diff_trees", "update_tree"]


@dataclass
class FmmTree:
    """Topology + geometry + point storage of an adaptive FMM octree.

    Attributes
    ----------
    keys:
        Sorted ids of all nodes (leaves and internal), ``(n_nodes,)``.
    levels / is_leaf / parent / children / child_pos:
        Per-node topology.  ``children`` is ``(n_nodes, 8)`` with -1 where
        a child does not exist; ``child_pos`` is the Morton position of a
        node inside its parent (0 for the root).
    points:
        Morton-sorted point coordinates ``(n_points, 3)``.
    order:
        Permutation such that ``points == original_points[order]``.
    pt_begin / pt_end:
        Per-node ranges into ``points`` covering the node's subtree (for a
        leaf: its own points).
    centers / half_widths:
        Physical box geometry per node.
    """

    keys: np.ndarray
    levels: np.ndarray
    is_leaf: np.ndarray
    parent: np.ndarray
    children: np.ndarray
    child_pos: np.ndarray
    points: np.ndarray
    order: np.ndarray
    pt_begin: np.ndarray
    pt_end: np.ndarray
    centers: np.ndarray
    half_widths: np.ndarray
    _level_index: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    @property
    def n_nodes(self) -> int:
        return self.keys.size

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def max_level(self) -> int:
        return int(self.levels.max(initial=0))

    @property
    def leaf_indices(self) -> np.ndarray:
        return np.flatnonzero(self.is_leaf)

    def point_counts(self) -> np.ndarray:
        """Number of points in each node's subtree."""
        return self.pt_end - self.pt_begin

    def nodes_at_level(self, level: int) -> np.ndarray:
        """Indices of nodes at the given level (cached)."""
        idx = self._level_index.get(level)
        if idx is None:
            idx = self._level_index[level] = np.flatnonzero(self.levels == level)
        return idx

    def find(self, query_keys: np.ndarray) -> np.ndarray:
        """Node indices of the queried octant ids (-1 when absent)."""
        query_keys = np.asarray(query_keys, dtype=np.uint64)
        pos = np.searchsorted(self.keys, query_keys)
        pos = np.clip(pos, 0, self.keys.size - 1)
        return np.where(self.keys[pos] == query_keys, pos, -1)

    def leaf_points(self, node: int) -> np.ndarray:
        """Points of a leaf node (view into the sorted array)."""
        return self.points[self.pt_begin[node] : self.pt_end[node]]

    def validate(self) -> None:
        """Structural invariants; raises AssertionError on violation."""
        assert np.all(self.keys[1:] > self.keys[:-1]), "keys not sorted unique"
        root = 0
        assert self.parent[root] == -1 and self.levels[root] == 0
        nz = np.arange(1, self.n_nodes)
        assert np.all(self.parent[nz] >= 0), "non-root without parent"
        p = self.parent[nz]
        assert np.all(self.levels[p] == self.levels[nz] - 1)
        assert np.all(
            self.children[p, self.child_pos[nz]] == nz
        ), "children table inconsistent"
        leaf = self.is_leaf
        assert np.all(self.children[leaf] == -1), "leaf with children"
        assert np.all((self.children[~leaf] >= 0).any(axis=1) | ~(~leaf).any())
        # Point ranges of children partition the parent's range.
        internal = np.flatnonzero(~leaf)
        for i in internal:
            ch = self.children[i]
            ch = ch[ch >= 0]
            assert self.pt_begin[ch].min() == self.pt_begin[i]
            assert self.pt_end[ch].max() == self.pt_end[i]
            assert np.sum(self.pt_end[ch] - self.pt_begin[ch]) == (
                self.pt_end[i] - self.pt_begin[i]
            )


def leaf_batches(tree: FmmTree, sel: np.ndarray, batch: int = 1024):
    """Yield ``(level, padded_count, node_indices)`` groups of leaves.

    Groups selected leaves by (level, power-of-two padded point count) so
    evaluator phases can process thousands of small leaves per broadcast
    kernel call; each group is additionally capped at ``batch`` boxes to
    bound peak memory.
    """
    idx = np.flatnonzero(sel)
    if idx.size == 0:
        return
    counts = (tree.pt_end - tree.pt_begin)[idx]
    kpad = np.maximum(1 << np.ceil(np.log2(counts)).astype(np.int64), 1)
    code = tree.levels[idx] * np.int64(1 << 24) + kpad
    for c in np.unique(code):
        grp = idx[code == c]
        lev = int(tree.levels[grp[0]])
        pad = int(kpad[code == c][0])
        for s in range(0, grp.size, batch):
            yield lev, pad, grp[s : s + batch]


def gather_leaf_points(tree: FmmTree, dens: np.ndarray, group: np.ndarray,
                       pad: int, source_dim: int):
    """Padded per-leaf (points, densities) arrays for one batch group.

    Padding slots hold the box centre with zero density, contributing
    nothing to any kernel sum.
    """
    b = group.size
    pts = np.repeat(tree.centers[group][:, None, :], pad, axis=1)
    den = np.zeros((b, pad * source_dim))
    for j, i in enumerate(group):
        n = tree.pt_end[i] - tree.pt_begin[i]
        pts[j, :n] = tree.points[tree.pt_begin[i] : tree.pt_end[i]]
        if source_dim:
            den[j, : n * source_dim] = dens[
                tree.pt_begin[i] * source_dim : tree.pt_end[i] * source_dim
            ]
    return pts, den


def tree_from_leaves(
    leaves: np.ndarray,
    sorted_points: np.ndarray,
    point_keys: np.ndarray,
    order: np.ndarray,
) -> FmmTree:
    """Assemble an :class:`FmmTree` from a complete leaf set and sorted points."""
    leaves = np.asarray(leaves, dtype=np.uint64)
    keys = np.union1d(leaves, morton.ancestors_of(leaves))
    levels = morton.level(keys)
    is_leaf = np.isin(keys, leaves, assume_unique=True)

    parent_keys = morton.parent(keys)
    parent = np.searchsorted(keys, parent_keys).astype(np.int64)
    parent[0] = -1

    # Child position: the 3 interleaved anchor bits at the node's own level.
    shift = np.uint64(morton.LEVEL_BITS) + 3 * (
        morton.MAX_DEPTH - levels
    ).astype(np.uint64)
    child_pos = ((keys >> shift) & np.uint64(7)).astype(np.int64)
    child_pos[0] = 0

    children = np.full((keys.size, 8), -1, dtype=np.int64)
    nz = np.arange(1, keys.size)
    children[parent[nz], child_pos[nz]] = nz

    lo = morton.deepest_first_descendant(keys)
    hi = morton.deepest_last_descendant(keys)
    pt_begin = np.searchsorted(point_keys, lo, side="left").astype(np.int64)
    pt_end = np.searchsorted(point_keys, hi, side="right").astype(np.int64)

    centers = geometry.box_center(keys)
    half_widths = geometry.box_half_width(levels)

    tree = FmmTree(
        keys=keys,
        levels=levels,
        is_leaf=is_leaf,
        parent=parent,
        children=children,
        child_pos=child_pos,
        points=sorted_points,
        order=order,
        pt_begin=pt_begin,
        pt_end=pt_end,
        centers=centers,
        half_widths=half_widths,
    )
    return tree


def build_tree(
    points: np.ndarray,
    max_points_per_box: int,
    max_depth: int = morton.MAX_DEPTH,
) -> FmmTree:
    """Adaptive tree over the unit cube with at most ``q`` points per leaf."""
    points = np.asarray(points, dtype=np.float64)
    ob = obuild.points_to_octree(points, max_points_per_box, max_depth)
    return tree_from_leaves(ob.leaves, points[ob.order], ob.point_keys, ob.order)


# -- incremental updates ------------------------------------------------------


@dataclass
class TreeDelta:
    """Structural diff between two trees, consumed by the plan patcher.

    Attributes
    ----------
    old_index:
        Old node index per new node (-1 where the octant did not exist).
    node_clean:
        Per new node: True when the octant existed before with the same
        leaf/internal role and its point slice is bitwise unchanged (same
        coordinates in the same order).  Clean nodes are the reuse
        frontier: every cached kernel-matrix slot whose geometry inputs
        are all clean can be copied instead of recomputed.
    perm:
        ``(old_n_points + 1,)`` map from old sorted point row to new
        sorted row; -1 where a row is not cleanly mappable (its leaf
        changed).  The sentinel row maps to the new sentinel, so padded
        gather indices remap with one fancy index.
    changed_roots:
        Topmost octant keys present in exactly one of the two trees —
        the subtrees whose refinement changed.
    refinement_changed:
        True when the node key sets differ at all.
    n_moved:
        Number of moved points when known (-1 otherwise).
    """

    old_index: np.ndarray
    node_clean: np.ndarray
    perm: np.ndarray
    changed_roots: np.ndarray
    refinement_changed: bool
    n_moved: int = -1


def _concat_ranges(begin: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(begin[i], begin[i] + counts[i])``, vectorised."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    head = np.repeat(np.cumsum(counts) - counts, counts)
    return np.repeat(np.asarray(begin, dtype=np.int64), counts) + (
        np.arange(total, dtype=np.int64) - head
    )


def diff_trees(old: FmmTree, new: FmmTree, n_moved: int = -1) -> TreeDelta:
    """Content-based diff: which parts of ``new`` are unchanged from ``old``.

    Works for any pair of trees — the point sets need not match (the
    distributed driver diffs per-rank LET trees whose ghost membership
    shifts).  A leaf is clean iff its octant key survived as a leaf with a
    bitwise-identical point slice; an internal node is clean iff it
    survived as internal with all children clean.  That content criterion
    is exactly what makes per-slot kernel-matrix reuse bit-safe.
    """
    old_index = old.find(new.keys)
    clean = np.zeros(new.n_nodes, dtype=bool)
    perm = np.full(old.n_points + 1, -1, dtype=np.int64)
    perm[old.n_points] = new.n_points

    new_counts = new.point_counts()
    old_counts = old.point_counts()
    leaves = np.flatnonzero(new.is_leaf)
    oi = old_index[leaves]
    oic = np.clip(oi, 0, old.n_nodes - 1)
    ok = (oi >= 0) & old.is_leaf[oic] & (old_counts[oic] == new_counts[leaves])
    cl, co = leaves[ok], oi[ok]
    cnt = new_counts[cl]
    new_rows = _concat_ranges(new.pt_begin[cl], cnt)
    old_rows = _concat_ranges(old.pt_begin[co], cnt)
    eq = np.all(old.points[old_rows] == new.points[new_rows], axis=1)
    leaf_ok = np.ones(cl.size, dtype=bool)
    nz = cnt > 0
    if eq.size:
        starts = (np.cumsum(cnt) - cnt)[nz]
        leaf_ok[nz] = np.add.reduceat(eq.astype(np.int64), starts) == cnt[nz]
    clean[cl[leaf_ok]] = True

    gl, go = cl[leaf_ok], co[leaf_ok]
    gc = new_counts[gl]
    perm[_concat_ranges(old.pt_begin[go], gc)] = _concat_ranges(new.pt_begin[gl], gc)

    # Internal cleanliness propagates bottom-up: all 8 children clean and
    # the octant was internal before too (a split/merged node is dirty).
    for lev in range(new.max_level - 1, -1, -1):
        nodes = new.nodes_at_level(lev)
        nodes = nodes[~new.is_leaf[nodes]]
        if nodes.size == 0:
            continue
        oi = old_index[nodes]
        oic = np.clip(oi, 0, old.n_nodes - 1)
        iok = (oi >= 0) & ~old.is_leaf[oic]
        ch = new.children[nodes]
        clean[nodes] = iok & np.all(clean[np.clip(ch, 0, None)] | (ch < 0), axis=1)

    sym = np.setxor1d(old.keys, new.keys)
    tops: list = []
    last = None
    for k in sym:
        if last is None or not morton.is_ancestor_or_equal(last, k):
            tops.append(k)
            last = k
    return TreeDelta(
        old_index=old_index,
        node_clean=clean,
        perm=perm,
        changed_roots=np.asarray(tops, dtype=np.uint64),
        refinement_changed=sym.size > 0,
        n_moved=n_moved,
    )


def update_tree(
    tree: FmmTree,
    new_points: np.ndarray,
    max_points_per_box: int,
    moved: np.ndarray | None = None,
    max_depth: int = morton.MAX_DEPTH,
) -> tuple[FmmTree, TreeDelta]:
    """Incremental rebuild of ``tree`` after a point-motion step.

    ``new_points`` is the full point array in *original* order (same
    shape as the points the tree was built from).  ``moved`` optionally
    names the rows whose coordinates changed; when omitted it is derived
    by comparison.  The moved points are re-keyed and insertion-merged
    into the existing Morton order (:func:`repro.sort.delta.delta_sort`),
    the octant structure is diffed and locally rebuilt
    (:func:`repro.octree.diff.update_leaves`), and the returned
    :class:`TreeDelta` marks everything downstream consumers may reuse.
    The resulting tree is identical to ``build_tree(new_points, q)``.
    """
    from repro.octree.diff import update_leaves
    from repro.sort.delta import delta_sort

    new_points = np.asarray(new_points, dtype=np.float64)
    if new_points.shape != tree.points.shape:
        raise ValueError(
            f"update_tree requires a same-shape point array "
            f"(got {new_points.shape}, tree has {tree.points.shape}); "
            "rebuild with build_tree for insertions/deletions"
        )
    if moved is None:
        orig = np.empty_like(tree.points)
        orig[tree.order] = tree.points
        moved = np.flatnonzero(np.any(orig != new_points, axis=1))
    else:
        moved = np.unique(np.asarray(moved, dtype=np.int64))

    old_point_keys = morton.encode_points(tree.points)
    ds = delta_sort(old_point_keys, tree.order, new_points, moved)

    n = tree.n_points
    inv = np.empty(n, dtype=np.int64)
    inv[tree.order] = np.arange(n, dtype=np.int64)
    old_cells = old_point_keys[inv[moved]] if moved.size else np.empty(0, np.uint64)
    new_cells = ds.point_keys[ds.moved_rows]
    changed_cells = np.unique(np.concatenate([old_cells, new_cells]))

    ld = update_leaves(
        tree.keys[tree.is_leaf],
        ds.point_keys,
        changed_cells,
        max_points_per_box,
        max_depth,
    )
    new_tree = tree_from_leaves(
        ld.leaves, new_points[ds.order], ds.point_keys, ds.order
    )
    return new_tree, diff_trees(tree, new_tree, n_moved=moved.size)
