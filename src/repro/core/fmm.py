"""Public single-process FMM facade.

``Fmm`` wires together tree construction, interaction lists, operators and
the evaluator behind a two-call API::

    fmm = Fmm(kernel="laplace", order=6, max_points_per_box=100)
    potentials = fmm.evaluate(points, densities)

Points live in the unit cube (callers with other domains rescale; for a
homogeneous kernel the potential rescales analytically).  Source and
target points coincide, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluator import FmmEvaluator
from repro.core.lists import InteractionLists, build_lists
from repro.core.tree import FmmTree, build_tree
from repro.kernels import Kernel, get_kernel
from repro.util import morton
from repro.util.timer import PhaseProfile

__all__ = ["Fmm", "FmmPlan"]


def _as_density_block(densities, n_points: int, ks: int, where: str):
    """Validate densities and normalise to ``(n_points * ks, q)`` + q flag.

    The reshape rule: a 2-D array with ``n_points * ks`` rows is a
    multi-RHS column block (one density vector per column); anything else
    is flattened to a single vector, which must then have exactly
    ``n_points * ks`` values.  Errors always report the offending shape.
    """
    arr = np.asarray(densities, dtype=np.float64)
    expected = n_points * ks
    if arr.ndim == 2 and arr.shape[0] == expected:
        return arr, True
    flat = arr.reshape(-1)
    if flat.size != expected:
        raise ValueError(
            f"{where}: densities shape {arr.shape} has {flat.size} values, "
            f"expected n_points*source_dim = {n_points}*{ks} = {expected}; "
            f"pass a flat ({expected},) vector or a ({expected}, q) "
            f"multi-RHS block"
        )
    return flat, False


@dataclass
class FmmPlan:
    """A built tree + lists, reusable across evaluations on the same points."""

    tree: FmmTree
    lists: InteractionLists

    @property
    def n_points(self) -> int:
        return self.tree.n_points


class Fmm:
    """Kernel-independent adaptive FMM on a single process.

    Parameters
    ----------
    kernel:
        A :class:`repro.kernels.Kernel` instance or registry name.
    order:
        Surface order ``p`` (4 / 6 / 8 give roughly 1e-3 / 1e-5 / 1e-7
        relative accuracy for the Laplace kernel; the Stokes kernel needs
        ``p >= 6``).
    max_points_per_box:
        The paper's ``q`` — adaptivity threshold (and the GPU-vs-CPU
        tuning knob of Table III).
    m2l_mode:
        ``"fft"`` (default) or ``"dense"`` V-list translation.
    eval_kernel:
        Optional target-side kernel (e.g.
        :class:`repro.kernels.gradients.LaplaceGradientKernel`): the
        expansions reproduce the base kernel's potential field, so
        evaluating them with a derivative kernel yields forces/fields
        from the same pass.
    balance_tree:
        Apply DENDRO's 2:1 balance refinement to the leaves before
        building lists.  The FMM does not need it (the paper's trees span
        20+ levels unbalanced), but balanced trees bound U/W/X list sizes
        per box, which some downstream uses prefer.
    precision:
        Plan arithmetic precision — ``"fp64"`` (default, bit-identical
        to the pre-precision engine), ``"fp32"`` (float32 GEMM phases,
        ~2x BLAS throughput at a float32 accuracy floor), or ``"auto"``
        (one-time calibration probe picks the cheapest precision meeting
        ``precision_rtol``; see
        :func:`repro.core.autotune.autotune_precision`).
    precision_rtol:
        Relative-error target for ``precision="auto"``.
    threads:
        Intra-rank parallelism: run plan phase tiles on a ``threads``-wide
        task pool (see :mod:`repro.core.parallel`).  Results are
        bit-identical to serial at any thread count.  ``None`` (default)
        keeps the single-threaded apply path.
    """

    def __init__(
        self,
        kernel: Kernel | str = "laplace",
        order: int = 6,
        max_points_per_box: int = 64,
        m2l_mode: str = "fft",
        max_depth: int = morton.MAX_DEPTH,
        rcond: float | None = None,
        eval_kernel: Kernel | None = None,
        balance_tree: bool = False,
        precision: str = "fp64",
        precision_rtol: float | None = None,
        threads: int | None = None,
    ):
        self.kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
        self.order = int(order)
        self.max_points_per_box = int(max_points_per_box)
        self.max_depth = int(max_depth)
        self.balance_tree = bool(balance_tree)
        self.evaluator = FmmEvaluator(
            self.kernel,
            self.order,
            m2l_mode=m2l_mode,
            rcond=rcond,
            eval_kernel=eval_kernel,
            precision=precision,
            precision_rtol=precision_rtol,
            threads=threads,
        )

    def plan(self, points: np.ndarray, profile: PhaseProfile | None = None) -> FmmPlan:
        """Build the adaptive tree and interaction lists (the setup phase)."""
        profile = profile if profile is not None else PhaseProfile()
        with profile.phase("tree"):
            if self.balance_tree:
                from repro.core.tree import tree_from_leaves
                from repro.octree import balance_2to1, points_to_octree

                pts = np.asarray(points, dtype=np.float64)
                ob = points_to_octree(pts, self.max_points_per_box, self.max_depth)
                leaves = balance_2to1(ob.leaves)
                tree = tree_from_leaves(
                    leaves, pts[ob.order], ob.point_keys, ob.order
                )
            else:
                tree = build_tree(points, self.max_points_per_box, self.max_depth)
        with profile.phase("lists"):
            lists = build_lists(tree)
        return FmmPlan(tree, lists)

    def compile_eval_plan(self, plan: FmmPlan, **kwargs):
        """Eagerly compile an :class:`~repro.core.plan.EvalPlan` for ``plan``.

        Useful when the first :meth:`evaluate` call should already run at
        amortised speed (by default the evaluator compiles lazily on the
        second call).  Pass the returned object as ``eval_plan=``.

        ``threads=`` reconfigures the evaluator's task pool for this and
        all subsequent applies (the compiled plan itself is
        thread-count-independent).
        """
        if "threads" in kwargs:
            self.evaluator.configure_threads(kwargs.pop("threads"))
        return self.evaluator.compile_plan(plan.tree, plan.lists, **kwargs)

    def update_plan(
        self,
        plan: FmmPlan,
        new_points: np.ndarray,
        moved: np.ndarray | None = None,
        profile: PhaseProfile | None = None,
    ):
        """Incrementally rebuild ``plan`` after a point-motion step.

        ``new_points`` is the full point array in the original order
        (same shape as before; rebuild from scratch for insertions or
        deletions).  Returns ``(new_plan, delta)`` where ``new_plan`` is
        identical to ``self.plan(new_points)`` and the
        :class:`~repro.core.tree.TreeDelta` feeds
        :meth:`patch_eval_plan`.  Balanced trees fall back to a full
        rebuild (2:1 refinement is global) but still produce the delta.
        """
        from repro.core.tree import diff_trees, update_tree

        profile = profile if profile is not None else PhaseProfile()
        if self.balance_tree:
            new_plan = self.plan(new_points, profile=profile)
            with profile.phase("tree"):
                delta = diff_trees(plan.tree, new_plan.tree)
            return new_plan, delta
        with profile.phase("tree"):
            tree, delta = update_tree(
                plan.tree, new_points, self.max_points_per_box,
                moved=moved, max_depth=self.max_depth,
            )
        with profile.phase("lists"):
            from repro.core.lists import update_lists

            lists = update_lists(tree, plan.tree, plan.lists, delta)
        return FmmPlan(tree, lists), delta

    def patch_eval_plan(self, old_eval_plan, old_plan: FmmPlan,
                        new_plan: FmmPlan, delta=None, **kwargs):
        """Patch a compiled :class:`~repro.core.plan.EvalPlan` onto
        ``new_plan``'s geometry, reusing clean kernel-matrix blocks.

        The result is bit-identical to
        ``self.compile_eval_plan(new_plan)``; pass it as ``eval_plan=``.
        """
        return self.evaluator.patch_plan(
            old_eval_plan, old_plan.tree, old_plan.lists,
            new_plan.tree, new_plan.lists, delta=delta, **kwargs,
        )

    def evaluate(
        self,
        points: np.ndarray,
        densities: np.ndarray,
        plan: FmmPlan | None = None,
        profile: PhaseProfile | None = None,
        eval_plan=None,
        use_plan: bool = True,
        precision: str | None = None,
    ) -> np.ndarray:
        """Potential at every point, in the input point order.

        ``densities`` has ``source_dim`` values per point (flat, point-major);
        the result has ``target_dim`` values per point.  A 2-D array with
        ``n_points * source_dim`` rows is a multi-RHS block — one density
        vector per column, evaluated together through one batched pass —
        and yields a ``(n_points * target_dim, q)`` result whose column
        ``j`` is bit-identical to evaluating ``densities[:, j]`` alone.
        Any other shape is flattened to a single vector.

        Repeated calls with the same ``plan`` amortise setup automatically:
        the evaluator compiles an :class:`~repro.core.plan.EvalPlan` on the
        second call and reuses it from then on (``use_plan=False`` opts
        out; ``eval_plan=`` supplies a precompiled one).

        ``precision`` overrides the constructor's precision for this call
        (``"fp64"`` / ``"fp32"`` / ``"auto"``); fp32 requires the plan
        path (see :class:`~repro.core.evaluator.FmmEvaluator`).
        """
        points = np.asarray(points, dtype=np.float64)
        profile = profile if profile is not None else PhaseProfile()
        if plan is None:
            plan = self.plan(points, profile=profile)
        tree = plan.tree
        ks = self.kernel.source_dim
        kt = self.evaluator.eval_kernel.target_dim
        dens, multi = _as_density_block(
            densities, tree.n_points, ks, "Fmm.evaluate"
        )
        if multi:
            q = dens.shape[1]
            sorted_dens = (
                dens.reshape(-1, ks, q)[tree.order].reshape(-1, q)
            )
            pot_sorted = self.evaluator.evaluate_multi(
                tree, plan.lists, sorted_dens, profile,
                plan=eval_plan, use_plan=use_plan, precision=precision,
            )
            pot = np.empty_like(pot_sorted)
            pot.reshape(-1, kt, q)[tree.order] = pot_sorted.reshape(-1, kt, q)
            return pot
        sorted_dens = dens.reshape(-1, ks)[tree.order].reshape(-1)
        pot_sorted = self.evaluator.evaluate(
            tree, plan.lists, sorted_dens, profile,
            plan=eval_plan, use_plan=use_plan, precision=precision,
        )
        pot = np.empty_like(pot_sorted)
        pot.reshape(-1, kt)[tree.order] = pot_sorted.reshape(-1, kt)
        return pot

    def evaluate_targets(
        self,
        sources: np.ndarray,
        densities: np.ndarray,
        targets: np.ndarray,
        plan: FmmPlan | None = None,
        profile: PhaseProfile | None = None,
    ) -> np.ndarray:
        """Potential at arbitrary targets from densities at the sources.

        An extension beyond the paper's coincident-points setting: the
        tree and expansions are built over the sources; each target
        inherits the interaction lists of the leaf containing it.

        ``densities`` follows the same reshape rule as :meth:`evaluate`:
        a 2-D ``(n_points * source_dim, q)`` block evaluates each column
        in turn (this path is plan-free, so there is no batched pass) and
        returns ``(n_targets * target_dim, q)``.
        """
        sources = np.asarray(sources, dtype=np.float64)
        profile = profile if profile is not None else PhaseProfile()
        if plan is None:
            plan = self.plan(sources, profile=profile)
        tree = plan.tree
        ks = self.kernel.source_dim
        dens, multi = _as_density_block(
            densities, tree.n_points, ks, "Fmm.evaluate_targets"
        )
        if multi:
            cols = [
                self.evaluate_targets(
                    sources,
                    np.ascontiguousarray(dens[:, j]),
                    targets,
                    plan=plan,
                    profile=profile,
                )
                for j in range(dens.shape[1])
            ]
            return np.stack(cols, axis=1)
        sorted_dens = dens.reshape(-1, ks)[tree.order].reshape(-1)
        return self.evaluator.evaluate_targets(
            tree, plan.lists, sorted_dens, targets, profile
        )
