"""Autotuning of the points-per-box parameter ``q`` and the precision axis.

Paper §V, on the Table III sweep: "This test resembles the tuning phase
and can be part of an autotuning algorithm."  This module is that
algorithm: it evaluates candidate ``q`` values on a subsample of the
target workload and picks the one minimising either measured wall time
(CPU) or modelled device time (virtual GPU), so production runs can use
per-architecture box sizes exactly as the paper did (q ~ 100 for CPU,
q ~ 400 for GPU on Lincoln).

:func:`autotune_precision` applies the same subsample-probe idea to the
plan engine's precision axis (Holm et al., PAPERS.md: precision selection
should be tuned per workload against an accuracy target): it evaluates a
subsampled workload with an fp64 and an fp32 plan, measures each
candidate's relative error against a direct-sum reference and its warm
apply time, and picks the cheapest candidate meeting the caller's
relative-error target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.evaluator import FmmEvaluator
from repro.core.lists import build_lists
from repro.core.tree import build_tree
from repro.kernels import Kernel, direct_sum, get_kernel
from repro.util.timer import PhaseProfile

__all__ = [
    "TuneResult",
    "PrecisionResult",
    "autotune_points_per_box",
    "autotune_precision",
]

#: Geometric default candidate grid, bracketing the usual optimum.
DEFAULT_CANDIDATES = (16, 32, 64, 128, 256, 512, 1024)

#: Default relative-error target for ``precision="auto"``: order 6 lands
#: around 1e-5 in fp64, so 1e-4 accepts fp32 at the default order while
#: still rejecting it when the expansion order outruns float32.
DEFAULT_PRECISION_RTOL = 1e-4

#: fp32 must clear the target with this safety factor on the probe: the
#: probe is a subsample, and float32 roundoff grows (slowly) with N, so a
#: probe error right at the target is not trustworthy on the full set.
_FP32_SAFETY = 2.0


@dataclass
class TuneResult:
    """Outcome of one autotuning sweep."""

    best_q: int
    costs: dict[int, float]  # candidate q -> cost (seconds)
    metric: str  # "wall" or "device-model"

    def ranked(self) -> list[tuple[int, float]]:
        return sorted(self.costs.items(), key=lambda kv: kv[1])


def _gpu_cost(kernel, order, tree, lists, dens) -> float:
    from repro.gpu.accel import GpuFmmEvaluator
    from repro.mpi import LINCOLN

    ev = GpuFmmEvaluator(kernel, order)
    prof = PhaseProfile()
    ev.evaluate(tree, lists, dens, prof)
    cost = ev.gpu.ledger.total_seconds()
    for ph in ("WLI", "XLI"):
        e = prof.events.get(ph)
        if e is not None:
            cost += LINCOLN.compute_seconds(e.flops)
    for ph in ("U2U", "D2D", "VLI"):
        e = prof.events.get(ph)
        if e is not None:
            cost += LINCOLN.fft_seconds(e.flops)
    return cost


def autotune_points_per_box(
    points: np.ndarray,
    kernel: Kernel | str = "laplace",
    order: int = 6,
    candidates=DEFAULT_CANDIDATES,
    sample: int | None = 20_000,
    target: str = "cpu",
    seed: int = 0,
) -> TuneResult:
    """Pick the best ``max_points_per_box`` for a workload.

    Parameters
    ----------
    points:
        The production point set (a random subsample of ``sample`` points
        is tuned on; the tree *shape* statistics transfer).
    target:
        ``"cpu"`` minimises measured wall seconds of a full evaluation;
        ``"gpu"`` minimises the virtual-device modelled seconds.
    """
    if target not in ("cpu", "gpu"):
        raise ValueError("target must be 'cpu' or 'gpu'")
    kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
    pts = np.asarray(points, dtype=np.float64)
    if sample is not None and len(pts) > sample:
        rng = np.random.default_rng(seed)
        pts = pts[rng.choice(len(pts), sample, replace=False)]
    dens_raw = np.random.default_rng(seed + 1).standard_normal(
        len(pts) * kernel.source_dim
    )

    costs: dict[int, float] = {}
    for q in candidates:
        tree = build_tree(pts, int(q))
        lists = build_lists(tree)
        dens = dens_raw.reshape(-1, kernel.source_dim)[tree.order].reshape(-1)
        if target == "cpu":
            ev = FmmEvaluator(kernel, order)
            t0 = time.perf_counter()
            ev.evaluate(tree, lists, dens, PhaseProfile())
            costs[int(q)] = time.perf_counter() - t0
        else:
            costs[int(q)] = _gpu_cost(kernel, order, tree, lists, dens)

    best = min(costs, key=costs.get)
    return TuneResult(
        best_q=best,
        costs=costs,
        metric="wall" if target == "cpu" else "device-model",
    )


@dataclass
class PrecisionResult:
    """Outcome of one :func:`autotune_precision` calibration probe."""

    best: str  # chosen precision ("fp64" or "fp32")
    errors: dict[str, float]  # precision -> probe relative error
    times: dict[str, float]  # precision -> warm-plan apply seconds
    rtol: float  # the relative-error target calibrated against
    met: bool  # whether the chosen precision met the target

    def ranked(self) -> list[tuple[str, float]]:
        return sorted(self.times.items(), key=lambda kv: kv[1])


def autotune_precision(
    points: np.ndarray,
    kernel: Kernel | str = "laplace",
    order: int = 6,
    rtol: float | None = None,
    m2l_mode: str = "fft",
    eval_kernel: Kernel | None = None,
    rcond: float | None = None,
    sample: int | None = 2_000,
    max_points_per_box: int = 64,
    seed: int = 0,
) -> PrecisionResult:
    """Pick the cheapest plan precision meeting a relative-error target.

    A random subsample of ``sample`` points is evaluated once with an
    fp64 plan and once with an fp32 plan (warm applies: the timed pass
    reuses the compiled plan), and each result is compared against the
    exact direct sum over the subsample.  The cheapest candidate whose
    probe error clears the target is chosen; fp32 must clear it with a
    2x safety factor (``_FP32_SAFETY`` — probe errors are measured on a
    subsample and float32 roundoff grows slowly with N).  If no
    candidate qualifies, fp64 is returned with ``met=False`` — the
    caller's accuracy budget needs a higher expansion order, not a
    precision choice.
    """
    rtol = DEFAULT_PRECISION_RTOL if rtol is None else float(rtol)
    if rtol <= 0:
        raise ValueError("rtol must be positive")
    kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
    pts = np.asarray(points, dtype=np.float64)
    if sample is not None and len(pts) > sample:
        rng = np.random.default_rng(seed)
        pts = pts[rng.choice(len(pts), sample, replace=False)]
    dens_raw = np.random.default_rng(seed + 1).standard_normal(
        len(pts) * kernel.source_dim
    )

    tree = build_tree(pts, int(max_points_per_box))
    lists = build_lists(tree)
    dens = dens_raw.reshape(-1, kernel.source_dim)[tree.order].reshape(-1)
    ref_kernel = kernel if eval_kernel is None else eval_kernel
    ref = direct_sum(ref_kernel, tree.points, tree.points, dens)
    ref_norm = float(np.linalg.norm(ref))

    errors: dict[str, float] = {}
    times: dict[str, float] = {}
    for prec in ("fp64", "fp32"):
        ev = FmmEvaluator(
            kernel, order, m2l_mode=m2l_mode, rcond=rcond,
            eval_kernel=eval_kernel,
        )
        plan = ev.compile_plan(tree, lists, precision=prec)
        # one warm-up apply (first-touch scratch allocation), then time
        pot = ev.evaluate(tree, lists, dens, PhaseProfile(), plan=plan)
        t0 = time.perf_counter()
        pot = ev.evaluate(tree, lists, dens, PhaseProfile(), plan=plan)
        times[prec] = time.perf_counter() - t0
        errors[prec] = float(np.linalg.norm(pot - ref)) / max(ref_norm, 1e-300)

    qualifying = [
        p
        for p in ("fp64", "fp32")
        if errors[p] * (_FP32_SAFETY if p == "fp32" else 1.0) <= rtol
    ]
    if qualifying:
        best = min(qualifying, key=lambda p: times[p])
        met = True
    else:
        best, met = "fp64", False
    return PrecisionResult(best=best, errors=errors, times=times, rtol=rtol, met=met)
