"""Autotuning probes: points-per-box, precision, and the shared harness.

Paper §V, on the Table III sweep: "This test resembles the tuning phase
and can be part of an autotuning algorithm."  This module holds that
algorithm's measurement layer: every tuning decision in the repo is made
against *subsample probes* — a deterministic subsample of the target
workload, a seeded density draw, and direct-sum references — so probes
are cheap, reproducible, and comparable across candidates.

:class:`SubsampleProbe` is the one harness behind all of them:

* :func:`autotune_points_per_box` evaluates candidate ``q`` values on the
  probe and picks the one minimising measured wall time (CPU) or modelled
  device time (virtual GPU), as the paper did per architecture.
* :func:`autotune_precision` evaluates an fp64 and an fp32 plan on the
  probe, measures each candidate's relative error against the direct-sum
  reference and its warm apply time, and picks the cheapest candidate
  meeting the caller's relative-error target (Holm et al., PAPERS.md).
* :class:`repro.tune.cost.CostModel` calibration runs its per-phase
  timing probes through the same harness, so the online autotuner's cost
  model and the legacy one-knob tuners measure the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.evaluator import FmmEvaluator
from repro.core.lists import build_lists
from repro.core.tree import build_tree
from repro.kernels import Kernel, direct_sum, get_kernel
from repro.util.timer import PhaseProfile

__all__ = [
    "SubsampleProbe",
    "TuneResult",
    "PrecisionResult",
    "autotune_points_per_box",
    "autotune_precision",
]

#: Geometric default candidate grid, bracketing the usual optimum.
DEFAULT_CANDIDATES = (16, 32, 64, 128, 256, 512, 1024)

#: Default relative-error target for ``precision="auto"``: order 6 lands
#: around 1e-5 in fp64, so 1e-4 accepts fp32 at the default order while
#: still rejecting it when the expansion order outruns float32.
DEFAULT_PRECISION_RTOL = 1e-4

#: fp32 must clear the target with this safety factor on the probe: the
#: probe is a subsample, and float32 roundoff grows (slowly) with N, so a
#: probe error right at the target is not trustworthy on the full set.
_FP32_SAFETY = 2.0


class SubsampleProbe:
    """Deterministic subsample-probe harness shared by every tuner.

    One instance owns a seeded subsample of the production points, a
    seeded density draw, and lazily built, cached geometry per candidate
    ``max_points_per_box`` — so sweeping precision, expansion order or
    batch shape over the same ``q`` reuses one tree, one set of lists
    and one direct-sum reference.

    Parameters
    ----------
    points:
        The production point set.  A random subsample of ``sample``
        points is probed (tree *shape* statistics transfer); ``None``
        keeps every point.
    kernel / eval_kernel:
        Kernel configuration; ``eval_kernel`` optionally overrides the
        target-side kernel exactly as in :class:`FmmEvaluator`.
    seed:
        Drives both the subsample choice and the density draw — equal
        seeds give bit-equal probes.
    """

    def __init__(
        self,
        points: np.ndarray,
        kernel: Kernel | str = "laplace",
        sample: int | None = 2_000,
        seed: int = 0,
        eval_kernel: Kernel | None = None,
    ):
        self.kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
        self.eval_kernel = (
            self.kernel if eval_kernel is None else eval_kernel
        )
        self.seed = int(seed)
        pts = np.asarray(points, dtype=np.float64)
        if sample is not None and len(pts) > sample:
            rng = np.random.default_rng(self.seed)
            pts = pts[rng.choice(len(pts), sample, replace=False)]
        self.points = pts
        self.dens_raw = np.random.default_rng(
            self.seed + 1
        ).standard_normal(len(pts) * self.kernel.source_dim)
        self._geoms: dict[int, tuple] = {}
        self._refs: dict[int, tuple[np.ndarray, float]] = {}

    @property
    def n(self) -> int:
        return len(self.points)

    def geometry(self, max_points: int):
        """``(tree, lists, sorted_dens)`` for one candidate ``q``, cached."""
        q = int(max_points)
        hit = self._geoms.get(q)
        if hit is None:
            tree = build_tree(self.points, q)
            lists = build_lists(tree)
            dens = (
                self.dens_raw.reshape(-1, self.kernel.source_dim)[tree.order]
                .reshape(-1)
            )
            hit = self._geoms[q] = (tree, lists, dens)
        return hit

    def reference(self, max_points: int) -> tuple[np.ndarray, float]:
        """Direct-sum reference (and its norm) in ``q``'s tree order."""
        q = int(max_points)
        hit = self._refs.get(q)
        if hit is None:
            tree, _, dens = self.geometry(q)
            ref = direct_sum(self.eval_kernel, tree.points, tree.points, dens)
            hit = self._refs[q] = (ref, float(np.linalg.norm(ref)))
        return hit

    def error(self, pot: np.ndarray, max_points: int) -> float:
        """Relative error of a probe result against the direct sum."""
        ref, ref_norm = self.reference(max_points)
        return float(np.linalg.norm(pot - ref)) / max(ref_norm, 1e-300)

    def timed_apply(
        self,
        ev: FmmEvaluator,
        max_points: int,
        precision: str = "fp64",
        warmups: int = 1,
        reps: int = 1,
        batch: int = 1,
    ) -> tuple[float, np.ndarray, PhaseProfile]:
        """Compile a plan and time ``reps`` warm applies on the probe.

        Returns ``(seconds, potentials, profile)`` where ``seconds`` is
        the *minimum* timed warm apply (robust to scheduler noise),
        ``potentials`` is the (single-column) result for accuracy
        checks, and ``profile`` carries the per-phase wall/flop counters
        of the last timed apply — the cost-model calibration reads its
        coefficients from there.  ``batch > 1`` times a multi-RHS apply
        of that width (the same density in every column) and still
        returns column 0.
        """
        tree, lists, dens = self.geometry(max_points)
        plan = ev.compile_plan(tree, lists, precision=precision)
        block = None
        if batch > 1:
            block = np.repeat(dens[:, None], int(batch), axis=1)

        def one(profile):
            if block is not None:
                return ev.evaluate_multi(
                    tree, lists, block, profile, plan=plan
                )
            return ev.evaluate(tree, lists, dens, profile, plan=plan)

        for _ in range(max(0, warmups)):
            pot = one(PhaseProfile())
        best = np.inf
        profile = PhaseProfile()
        for _ in range(max(1, reps)):
            profile = PhaseProfile()
            t0 = time.perf_counter()
            pot = one(profile)
            best = min(best, time.perf_counter() - t0)
        if block is not None:
            pot = np.ascontiguousarray(pot[:, 0])
        return float(best), pot, profile


@dataclass
class TuneResult:
    """Outcome of one autotuning sweep."""

    best_q: int
    costs: dict[int, float]  # candidate q -> cost (seconds)
    metric: str  # "wall" or "device-model"

    def ranked(self) -> list[tuple[int, float]]:
        return sorted(self.costs.items(), key=lambda kv: kv[1])


def _gpu_cost(kernel, order, tree, lists, dens) -> float:
    from repro.gpu.accel import GpuFmmEvaluator
    from repro.mpi import LINCOLN

    ev = GpuFmmEvaluator(kernel, order)
    prof = PhaseProfile()
    ev.evaluate(tree, lists, dens, prof)
    cost = ev.gpu.ledger.total_seconds()
    for ph in ("WLI", "XLI"):
        e = prof.events.get(ph)
        if e is not None:
            cost += LINCOLN.compute_seconds(e.flops)
    for ph in ("U2U", "D2D", "VLI"):
        e = prof.events.get(ph)
        if e is not None:
            cost += LINCOLN.fft_seconds(e.flops)
    return cost


def autotune_points_per_box(
    points: np.ndarray,
    kernel: Kernel | str = "laplace",
    order: int = 6,
    candidates=DEFAULT_CANDIDATES,
    sample: int | None = 20_000,
    target: str = "cpu",
    seed: int = 0,
) -> TuneResult:
    """Pick the best ``max_points_per_box`` for a workload.

    Parameters
    ----------
    points:
        The production point set (a random subsample of ``sample`` points
        is tuned on; the tree *shape* statistics transfer).
    target:
        ``"cpu"`` minimises measured wall seconds of a full evaluation;
        ``"gpu"`` minimises the virtual-device modelled seconds.
    """
    if target not in ("cpu", "gpu"):
        raise ValueError("target must be 'cpu' or 'gpu'")
    probe = SubsampleProbe(points, kernel=kernel, sample=sample, seed=seed)

    costs: dict[int, float] = {}
    for q in candidates:
        tree, lists, dens = probe.geometry(int(q))
        if target == "cpu":
            ev = FmmEvaluator(probe.kernel, order)
            t0 = time.perf_counter()
            ev.evaluate(tree, lists, dens, PhaseProfile())
            costs[int(q)] = time.perf_counter() - t0
        else:
            costs[int(q)] = _gpu_cost(probe.kernel, order, tree, lists, dens)

    best = min(costs, key=costs.get)
    return TuneResult(
        best_q=best,
        costs=costs,
        metric="wall" if target == "cpu" else "device-model",
    )


@dataclass
class PrecisionResult:
    """Outcome of one :func:`autotune_precision` calibration probe."""

    best: str  # chosen precision ("fp64" or "fp32")
    errors: dict[str, float]  # precision -> probe relative error
    times: dict[str, float]  # precision -> warm-plan apply seconds
    rtol: float  # the relative-error target calibrated against
    met: bool  # whether the chosen precision met the target

    def ranked(self) -> list[tuple[str, float]]:
        return sorted(self.times.items(), key=lambda kv: kv[1])


def autotune_precision(
    points: np.ndarray,
    kernel: Kernel | str = "laplace",
    order: int = 6,
    rtol: float | None = None,
    m2l_mode: str = "fft",
    eval_kernel: Kernel | None = None,
    rcond: float | None = None,
    sample: int | None = 2_000,
    max_points_per_box: int = 64,
    seed: int = 0,
) -> PrecisionResult:
    """Pick the cheapest plan precision meeting a relative-error target.

    A random subsample of ``sample`` points is evaluated once with an
    fp64 plan and once with an fp32 plan (warm applies: the timed pass
    reuses the compiled plan), and each result is compared against the
    exact direct sum over the subsample.  The cheapest candidate whose
    probe error clears the target is chosen; fp32 must clear it with a
    2x safety factor (``_FP32_SAFETY`` — probe errors are measured on a
    subsample and float32 roundoff grows slowly with N).  If no
    candidate qualifies, fp64 is returned with ``met=False`` — the
    caller's accuracy budget needs a higher expansion order, not a
    precision choice.
    """
    rtol = DEFAULT_PRECISION_RTOL if rtol is None else float(rtol)
    if rtol <= 0:
        raise ValueError("rtol must be positive")
    probe = SubsampleProbe(
        points, kernel=kernel, sample=sample, seed=seed,
        eval_kernel=eval_kernel,
    )

    errors: dict[str, float] = {}
    times: dict[str, float] = {}
    for prec in ("fp64", "fp32"):
        ev = FmmEvaluator(
            probe.kernel, order, m2l_mode=m2l_mode, rcond=rcond,
            eval_kernel=eval_kernel,
        )
        seconds, pot, _ = probe.timed_apply(
            ev, max_points_per_box, precision=prec, warmups=1, reps=1
        )
        times[prec] = seconds
        errors[prec] = probe.error(pot, max_points_per_box)

    qualifying = [
        p
        for p in ("fp64", "fp32")
        if errors[p] * (_FP32_SAFETY if p == "fp32" else 1.0) <= rtol
    ]
    if qualifying:
        best = min(qualifying, key=lambda p: times[p])
        met = True
    else:
        best, met = "fp64", False
    return PrecisionResult(best=best, errors=errors, times=times, rtol=rtol, met=met)
