"""Autotuning of the points-per-box parameter ``q``.

Paper §V, on the Table III sweep: "This test resembles the tuning phase
and can be part of an autotuning algorithm."  This module is that
algorithm: it evaluates candidate ``q`` values on a subsample of the
target workload and picks the one minimising either measured wall time
(CPU) or modelled device time (virtual GPU), so production runs can use
per-architecture box sizes exactly as the paper did (q ~ 100 for CPU,
q ~ 400 for GPU on Lincoln).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.evaluator import FmmEvaluator
from repro.core.lists import build_lists
from repro.core.tree import build_tree
from repro.kernels import Kernel, get_kernel
from repro.util.timer import PhaseProfile

__all__ = ["TuneResult", "autotune_points_per_box"]

#: Geometric default candidate grid, bracketing the usual optimum.
DEFAULT_CANDIDATES = (16, 32, 64, 128, 256, 512, 1024)


@dataclass
class TuneResult:
    """Outcome of one autotuning sweep."""

    best_q: int
    costs: dict[int, float]  # candidate q -> cost (seconds)
    metric: str  # "wall" or "device-model"

    def ranked(self) -> list[tuple[int, float]]:
        return sorted(self.costs.items(), key=lambda kv: kv[1])


def _gpu_cost(kernel, order, tree, lists, dens) -> float:
    from repro.gpu.accel import GpuFmmEvaluator
    from repro.mpi import LINCOLN

    ev = GpuFmmEvaluator(kernel, order)
    prof = PhaseProfile()
    ev.evaluate(tree, lists, dens, prof)
    cost = ev.gpu.ledger.total_seconds()
    for ph in ("WLI", "XLI"):
        e = prof.events.get(ph)
        if e is not None:
            cost += LINCOLN.compute_seconds(e.flops)
    for ph in ("U2U", "D2D", "VLI"):
        e = prof.events.get(ph)
        if e is not None:
            cost += LINCOLN.fft_seconds(e.flops)
    return cost


def autotune_points_per_box(
    points: np.ndarray,
    kernel: Kernel | str = "laplace",
    order: int = 6,
    candidates=DEFAULT_CANDIDATES,
    sample: int | None = 20_000,
    target: str = "cpu",
    seed: int = 0,
) -> TuneResult:
    """Pick the best ``max_points_per_box`` for a workload.

    Parameters
    ----------
    points:
        The production point set (a random subsample of ``sample`` points
        is tuned on; the tree *shape* statistics transfer).
    target:
        ``"cpu"`` minimises measured wall seconds of a full evaluation;
        ``"gpu"`` minimises the virtual-device modelled seconds.
    """
    if target not in ("cpu", "gpu"):
        raise ValueError("target must be 'cpu' or 'gpu'")
    kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
    pts = np.asarray(points, dtype=np.float64)
    if sample is not None and len(pts) > sample:
        rng = np.random.default_rng(seed)
        pts = pts[rng.choice(len(pts), sample, replace=False)]
    dens_raw = np.random.default_rng(seed + 1).standard_normal(
        len(pts) * kernel.source_dim
    )

    costs: dict[int, float] = {}
    for q in candidates:
        tree = build_tree(pts, int(q))
        lists = build_lists(tree)
        dens = dens_raw.reshape(-1, kernel.source_dim)[tree.order].reshape(-1)
        if target == "cpu":
            ev = FmmEvaluator(kernel, order)
            t0 = time.perf_counter()
            ev.evaluate(tree, lists, dens, PhaseProfile())
            costs[int(q)] = time.perf_counter() - t0
        else:
            costs[int(q)] = _gpu_cost(kernel, order, tree, lists, dens)

    best = min(costs, key=costs.get)
    return TuneResult(
        best_q=best,
        costs=costs,
        metric="wall" if target == "cpu" else "device-model",
    )
