"""Plan-compiled evaluation engine: the setup / apply split.

The paper's headline workloads (vortex-flow time stepping, iterative
boundary-integral solvers) call the FMM repeatedly on a *fixed* tree with
*changing* densities.  Everything in an evaluation that does not depend on
the density vector — batch groupings, padded shapes, gather index arrays,
scatter segment boundaries, surface point sets, V-list translation
schedules, per-(level, child-position) traversal node sets, and the leaf
kernel-matrix blocks themselves — can therefore be compiled once and
reused across applies.  That is what :class:`EvalPlan` holds.

Design rules:

* **Bit-identical results.**  A plan-based apply must produce exactly the
  floating-point operation sequence of the legacy per-call path.  Compile
  therefore consumes the *same* grouping generators the legacy phases use
  (``FmmEvaluator._leaf_batches`` / ``_pair_batches`` / ``_vli_chunks`` /
  ``_uli_groups``), so batch membership, batch order and chunk boundaries
  cannot diverge, and padded point arrays are materialised with the same
  centre padding the legacy gathers produce.
* **No Python per-box loops at apply time.**  Gathers are a single fancy
  index into a sentinel-extended density table; scatters are a stable
  argsort + ``np.add.reduceat`` segment sum (precompiled order/starts)
  and/or one fancy-indexed add into a sentinel-extended potential buffer
  (safe because scatter targets are unique within a batch — only the
  discarded sentinel row repeats).  See DESIGN.md for why ``np.add.at``
  is avoided.
* **Density-dependent gating is deferred.**  The W-list prunes source
  boxes whose upward density is identically zero — a property of the
  density, not the tree.  Its schedule is compiled lazily at first apply
  from the observed zero pattern and transparently recompiled if a later
  density changes that pattern, so results always match the legacy path.
* **Kernel matrices are plan state too.**  Leaf/pair kernel blocks depend
  only on geometry; they are materialised at compile under a byte budget
  (U-list first — it dominates), turning those phases into pure
  GEMM + scatter.  Blocks that do not fit fall back to evaluating
  the kernel per apply, bit-identically either way.
* **Precision is a compile-time axis.**  ``compile_plan(precision="fp32")``
  stores float32 kernel matrices, complex64 FFT translation hats and
  float32 scratch tables, so the GEMM / FFT-translate phases run in
  single precision (the paper ran exactly these phases in fp32 on the
  GPU, §5).  The *accumulation* state stays float64 throughout: the
  ``up``/``dcheck``/``dequiv``/potential arrays, the U2U/D2D operator
  chains (roundoff there compounds with tree depth) and multi-RHS
  column sums.  ``precision="fp64"`` (the default) takes exactly the
  historical code path, bit for bit.

A plan is bound to one ``(tree, lists, kernel, order, m2l_mode, scope)``
configuration; :func:`tree_fingerprint` rejects accidental reuse against a
different tree.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.contract import gemm_cols
from repro.core.parallel import record_parallel_spans
from repro.core.tree import FmmTree, TreeDelta, diff_trees

__all__ = [
    "EvalPlan",
    "PlanScopes",
    "PlanMismatchError",
    "PrecisionError",
    "VALID_PRECISIONS",
    "compile_plan",
    "patch_plan",
    "tree_fingerprint",
]

#: Default byte budget for cached kernel-matrix blocks (see compile_plan).
MATRIX_BUDGET = 512 * 2**20

#: Accepted values for every ``precision=`` parameter in the stack.
#: ``"auto"`` is resolved to a concrete precision by the callers that own
#: a calibration context (evaluator / distributed driver / serve engine);
#: :func:`compile_plan` itself only accepts the concrete two.
VALID_PRECISIONS = ("fp64", "fp32", "auto")


class PrecisionError(ValueError):
    """An invalid or unsatisfiable precision request.

    Raised for unknown precision strings, for ``fp32`` requests on paths
    that cannot honour them (the plan-less legacy evaluator is
    float64-only), and by the serving engine when a request overrides a
    model to a precision the model does not allow.
    """


class PlanMismatchError(ValueError):
    """An :class:`EvalPlan` was applied to a tree it was not compiled for."""


def tree_fingerprint(tree: FmmTree) -> str:
    """Cheap structural fingerprint of a tree (topology + point layout).

    Covers the node key set and the per-node point ranges — everything the
    plan's precompiled indices depend on.  Point coordinates are pinned by
    the key set up to leaf-box resolution; hashing them too would cost
    more than the residual collision risk is worth.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(np.int64(tree.n_points).tobytes())
    h.update(np.ascontiguousarray(tree.keys).tobytes())
    h.update(np.ascontiguousarray(tree.pt_begin).tobytes())
    h.update(np.ascontiguousarray(tree.pt_end).tobytes())
    return h.hexdigest()


@dataclass
class PlanScopes:
    """Per-phase node masks baked into a plan at compile time.

    ``None`` means unrestricted.  The distributed driver passes the same
    ownership masks it hands the legacy phases, so ghost data never
    double-counts.  A plan compiled with scopes must only be applied by a
    caller that would pass those same scopes.
    """

    s2u: np.ndarray | None = None
    u2u: np.ndarray | None = None
    vli: np.ndarray | None = None
    xli: np.ndarray | None = None
    d2d: np.ndarray | None = None
    wli: np.ndarray | None = None
    d2t: np.ndarray | None = None
    uli: np.ndarray | None = None

    def any_set(self) -> bool:
        return any(
            getattr(self, f) is not None
            for f in ("s2u", "u2u", "vli", "xli", "d2d", "wli", "d2t", "uli")
        )


# -- precompiled section records ---------------------------------------------


@dataclass
class _LeafBlock:
    """One (level, padded-count) leaf batch of S2U or D2T."""

    level: int
    pad: int
    group: np.ndarray  # (b,) unique node indices
    pts: np.ndarray  # (b, pad, 3) centre-padded leaf points
    surf: np.ndarray  # (b, ns, 3) UC (S2U) / DE (D2T) surface points
    den_rows: np.ndarray | None  # (b, pad) density-table rows (S2U)
    pot_rows: np.ndarray | None  # (b, pad) potential-table rows (D2T)
    mat: np.ndarray | None  # uc2ue, materialised once (S2U)
    kmat: np.ndarray | None  # cached kernel block, budget permitting
    flops: float


@dataclass
class _MatStep:
    """One dense-operator application ``dst_arr[dst] (+)= src_arr[src] @ mat.T``."""

    mat: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    flops: float


@dataclass
class _D2dLevel:
    """One level of the downward sweep: L2L steps then DC->DE conversion."""

    l2l: list
    conv_mat: np.ndarray
    nodes: np.ndarray
    conv_flops: float


@dataclass
class _VChunk:
    """One FFT V-list chunk: forward FFTs, per-offset translations, inverse."""

    level: int
    usrc: np.ndarray
    utgt: np.ndarray
    #: (offset, kernel_hat ref, tgt_positions, src_positions, n_pairs)
    steps: list


@dataclass
class _PairBlock:
    """One (level, padded-count) pair batch of XLI or WLI."""

    level: int
    pad: int
    rows: np.ndarray  # target node per pair
    cols: np.ndarray  # source node per pair
    pts: np.ndarray  # (b, pad, 3): source pts (XLI) / target pts (WLI)
    surf: np.ndarray  # (b, ns, 3): DC at rows (XLI) / UE at cols (WLI)
    den_rows: np.ndarray | None  # (b, pad) density-table rows (XLI)
    order: np.ndarray  # stable argsort of the scatter target
    starts: np.ndarray  # reduceat segment starts
    seg: np.ndarray  # unique scatter targets, segment order
    pot_rows: np.ndarray | None  # (nseg, pad) potential-table rows (WLI)
    kmat: np.ndarray | None
    flops: float


@dataclass
class _UliBlock:
    """One (tpad, spad) U-list batch: direct near-field interactions."""

    tp: int
    sp: int
    boxes: np.ndarray  # (b,) unique target leaves
    tgt_pts: np.ndarray  # (b, tp, 3) centre-padded targets
    src_pts: np.ndarray  # (b, sp, 3) centre-padded packed neighbour sources
    den_rows: np.ndarray  # (b, sp) density-table rows of the sources
    pot_rows: np.ndarray  # (b, tp) potential-table rows of the targets
    kmat: np.ndarray | None
    flops: float


@dataclass
class _WliSection:
    """Lazily compiled W-list schedule for one observed zero-up pattern."""

    sig: np.ndarray  # packbits of the keep mask over the candidate pairs
    blocks: list
    cached_bytes: int  # kernel-matrix bytes charged against the budget


@dataclass
class EvalPlan:
    """Everything density-independent about one FMM evaluation.

    Compile with :func:`compile_plan` (or
    :meth:`FmmEvaluator.compile_plan`); apply by passing the plan to the
    evaluator phase methods (``FmmEvaluator.evaluate`` manages this
    automatically).  ``gpu`` is a scratch cache where
    :class:`~repro.gpu.accel.GpuFmmEvaluator` keeps its device streams and
    staging gather/scatter indices.
    """

    fingerprint: str
    n_points: int
    ns: int
    ks: int
    kt: int  # base-kernel target dim (check surfaces)
    kt_eval: int  # eval-kernel target dim (potential layout)
    scoped: bool
    #: Arithmetic precision of the GEMM / FFT-translate phases: "fp64"
    #: (historical, bit-identical default) or "fp32" (float32 matrices,
    #: complex64 hats, float32 gather tables; accumulators stay float64).
    precision: str = "fp64"
    s2u: list = field(default_factory=list)
    u2u: list = field(default_factory=list)
    vli_fft: list = field(default_factory=list)
    vli_dense: list = field(default_factory=list)
    xli: list = field(default_factory=list)
    d2d: list = field(default_factory=list)
    wli_rows: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    wli_cols: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    d2t: list = field(default_factory=list)
    uli: list = field(default_factory=list)
    gpu: dict = field(default_factory=dict)
    #: Populated by :func:`patch_plan`: how much of the kernel-matrix
    #: state was reused vs recomputed (empty for fresh compiles).
    patch_stats: dict = field(default_factory=dict, repr=False)
    _wli: _WliSection | None = field(default=None, repr=False)
    _tree: FmmTree | None = field(default=None, repr=False)
    #: Scratch buffers are per-thread: concurrent applies of one plan (the
    #: serving engine's worker pool) must not share density tables or FFT
    #: accumulators mid-flight.
    _scratch: threading.local = field(
        default_factory=threading.local, repr=False
    )
    #: Guards the lazily compiled W-list section and the matrix budget it
    #: charges — the only plan state mutated after compile.
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    #: Lazily derived read-after-write frontiers of the U2U step list for
    #: the parallel executor (see :meth:`_wave_steps`); purely structural,
    #: so cached per plan under ``_lock``.
    _par_waves: dict = field(default_factory=dict, repr=False)
    _mat_left: int = field(default=0, repr=False)
    _cache_matrices: bool = field(default=True, repr=False)

    # -- validation --------------------------------------------------------

    def check(self, tree: FmmTree) -> None:
        """Raise :class:`PlanMismatchError` unless compiled for ``tree``."""
        if self._tree is tree:
            return
        if tree_fingerprint(tree) != self.fingerprint:
            raise PlanMismatchError(
                "EvalPlan was compiled for a different tree "
                "(fingerprint mismatch); recompile with compile_plan()"
            )

    def matrix_bytes(self) -> int:
        """Bytes held by cached kernel-matrix blocks (memory diagnostics)."""
        total = 0
        for sec in (self.s2u, self.d2t, self.xli, self.uli):
            total += sum(b.kmat.nbytes for b in sec if b.kmat is not None)
        if self._wli is not None:
            total += self._wli.cached_bytes
        return total

    @property
    def nbytes(self) -> int:
        """Total resident bytes of the plan: cached kernel matrices plus
        every precompiled index / point / operator array.  This is what the
        serving plan cache charges against its memory budget when deciding
        LRU evictions, so it walks *all* block records, not just ``kmat``.
        """

        def arrays(obj):
            total = 0
            for v in vars(obj).values():
                if isinstance(v, np.ndarray):
                    total += v.nbytes
            return total

        total = self.wli_rows.nbytes + self.wli_cols.nbytes
        for sec in (self.s2u, self.u2u, self.vli_dense, self.xli,
                    self.d2t, self.uli):
            total += sum(arrays(b) for b in sec)
        for lv in self.d2d:
            total += arrays(lv) + sum(arrays(st) for st in lv.l2l)
        for ch in self.vli_fft:
            total += ch.usrc.nbytes + ch.utgt.nbytes
            for _off, that, tpos, spos, _np in ch.steps:
                # kernel_hat transforms are shared with FftM2L's own cache,
                # but they live only because the plan keeps them referenced.
                total += that.nbytes + tpos.nbytes + spos.nbytes
        if self._wli is not None:
            total += self._wli.sig.nbytes
            total += sum(arrays(b) for b in self._wli.blocks)
        return total

    # -- shared helpers ----------------------------------------------------

    @property
    def rdtype(self):
        """Real working dtype of the GEMM phases (float32 / float64)."""
        return np.float32 if self.precision == "fp32" else np.float64

    @property
    def cdtype(self):
        """Complex dtype of the FFT V-list phase (complex64 / complex128)."""
        return np.complex64 if self.precision == "fp32" else np.complex128

    def _cast(self, a: np.ndarray) -> np.ndarray:
        """Stage a float64 accumulator slice into the plan's working dtype.

        Identity (same object, no copy) for fp64 plans, so the default
        path is untouched; one rounding to float32 for fp32 plans.
        """
        if self.precision == "fp32":
            return a.astype(np.float32)
        return a

    def _dens_table(self, dens: np.ndarray) -> np.ndarray:
        """Density rows extended by one all-zero sentinel row.

        Every padding slot of a gather index points at the sentinel, so
        assembling a padded per-box density block is a single fancy index.
        The buffer is reused across phases and applies.
        """
        table = self._buffer("dens", (self.n_points + 1, self.ks), self.rdtype)
        table[: self.n_points] = np.asarray(dens).reshape(self.n_points, self.ks)
        table[self.n_points] = 0.0
        return table

    def _pot_table(self, state: dict) -> np.ndarray:
        """Sentinel-extended potential rows (see ``FmmEvaluator.allocate``).

        Row ``n_points`` absorbs the padding-slot writes of fancy-indexed
        scatters; ``state["pot"]`` views only the real rows.
        """
        return state["_pot_pad"].reshape(self.n_points + 1, self.kt_eval)

    def _buffer(self, name: str, shape: tuple, dtype) -> np.ndarray:
        """Reusable per-thread scratch array (density table, FFT accumulators)."""
        bufs = getattr(self._scratch, "bufs", None)
        if bufs is None:
            bufs = self._scratch.bufs = {}
        need = int(np.prod(shape))
        buf = bufs.get(name)
        if buf is None or buf.size < need or buf.dtype != np.dtype(dtype):
            buf = bufs[name] = np.empty(need, dtype=dtype)
        return buf[:need].reshape(shape)

    # -- phase applies -----------------------------------------------------

    def apply_s2u(self, ev, dens, state, profile, pool=None) -> None:
        if not self.s2u:
            return
        if pool is not None:
            return self._par_s2u(ev, dens, state, profile, pool)
        up = state["up"]
        table = self._dens_table(dens)
        for blk in self.s2u:
            den = table[blk.den_rows].reshape(blk.group.size, blk.pad * self.ks)
            k = (
                blk.kmat
                if blk.kmat is not None
                else self._cast(ev.kernel.matrix_batch(blk.surf, blk.pts))
            )
            q = gemm_cols(k, den[:, :, None])[:, :, 0]
            up[blk.group] = q @ blk.mat.T
            profile.add_flops(blk.flops)

    def apply_u2u(self, ev, state, profile, pool=None) -> None:
        if pool is not None:
            return self._par_u2u(ev, state, profile, pool)
        up = state["up"]
        for st in self.u2u:
            up[st.dst] += up[st.src] @ st.mat.T
            profile.add_flops(st.flops)

    def apply_vli_fft(self, ev, state, profile, pool=None) -> None:
        if pool is not None:
            return self._par_vli_fft(ev, state, profile, pool)
        up, dcheck = state["up"], state["dcheck"]
        fft = ev.fft
        step_flops = fft.translate_flops_per_pair()
        for ch in self.vli_fft:
            uhat = fft.forward(up[ch.usrc], dtype=self.rdtype)
            acc = self._buffer(
                "vli_acc",
                (ch.utgt.size, self.kt, fft.n, fft.n, fft.nf),
                self.cdtype,
            )
            acc.fill(0.0)
            for _off, that, tpos, spos, npairs in ch.steps:
                acc[tpos] += fft.translate(that, uhat[spos])
                profile.add_flops(npairs * step_flops)
            dcheck[ch.utgt] += fft.inverse(acc)
            profile.add_flops(
                (ch.usrc.size * self.ks + ch.utgt.size * self.kt)
                * fft.fft_flops_per_box()
            )

    def apply_vli_dense(self, ev, state, profile, pool=None) -> None:
        if pool is not None:
            return self._par_vli_dense(ev, state, profile, pool)
        up, dcheck = state["up"], state["dcheck"]
        for st in self.vli_dense:
            dcheck[st.dst] += self._cast(up[st.src]) @ st.mat.T
            profile.add_flops(st.flops)

    def apply_xli(self, ev, dens, state, profile, pool=None) -> None:
        if not self.xli:
            return
        dcheck = state["dcheck"]
        for seg, sums in self.compute_xli(ev, dens, profile, pool=pool):
            dcheck[seg] += sums

    def compute_xli(self, ev, dens, profile, pool=None) -> list:
        """The GEMM stage of :meth:`apply_xli`, without touching state.

        X-list values depend only on the input densities, so the matrix
        products can run while the shared-density reduction is still in
        flight; the returned ``(targets, sums)`` segments are added into
        ``dcheck`` later (same values, same per-block order as the fused
        apply — the split is bit-identical).
        """
        if pool is not None and self.xli:
            return self._par_compute_xli(ev, dens, profile, pool)
        out = []
        table = self._dens_table(dens) if self.xli else None
        for blk in self.xli:
            den = table[blk.den_rows].reshape(blk.rows.size, blk.pad * self.ks)
            k = (
                blk.kmat
                if blk.kmat is not None
                else self._cast(ev.kernel.matrix_batch(blk.surf, blk.pts))
            )
            vals = gemm_cols(k, den[:, :, None])[:, :, 0]
            out.append((blk.seg, np.add.reduceat(vals[blk.order], blk.starts, axis=0)))
            profile.add_flops(blk.flops)
        return out

    def apply_d2d(self, ev, state, profile, pool=None) -> None:
        if pool is not None:
            return self._par_d2d(ev, state, profile, pool)
        dcheck, dequiv = state["dcheck"], state["dequiv"]
        for lv in self.d2d:
            for st in lv.l2l:
                dcheck[st.dst] += dequiv[st.src] @ st.mat.T
                profile.add_flops(st.flops)
            dequiv[lv.nodes] = dcheck[lv.nodes] @ lv.conv_mat.T
            profile.add_flops(lv.conv_flops)

    def _wli_section(self, ev, tree, keep, profile) -> _WliSection:
        """The W-list schedule for ``keep``, compiled lazily under the plan
        lock (concurrent applies must not both compile, and must not watch
        ``_wli`` swap mid-iteration — hence compile-and-snapshot)."""
        sig = np.packbits(keep)
        with self._lock:
            if self._wli is None or not np.array_equal(sig, self._wli.sig):
                with profile.phase("setup:wli"):
                    if self._wli is not None:  # reclaim the replaced budget
                        self._mat_left += self._wli.cached_bytes
                    blocks = _compile_wli_blocks(
                        ev, tree, self, self.wli_rows[keep], self.wli_cols[keep]
                    )
                    cached = sum(
                        b.kmat.nbytes for b in blocks if b.kmat is not None
                    )
                    self._wli = _WliSection(
                        sig=sig, blocks=blocks, cached_bytes=cached
                    )
            return self._wli

    def apply_wli(self, ev, tree, state, profile, pool=None) -> None:
        if self.wli_rows.size == 0:
            return
        up = state["up"]
        keep = np.any(up[self.wli_cols] != 0.0, axis=1)
        if not keep.any():
            return
        wli = self._wli_section(ev, tree, keep, profile)
        if pool is not None:
            return self._par_wli(ev, wli, state, profile, pool)
        potr = self._pot_table(state)
        kt = self.kt_eval
        for blk in wli.blocks:
            k = (
                blk.kmat
                if blk.kmat is not None
                else self._cast(ev.eval_kernel.matrix_batch(blk.pts, blk.surf))
            )
            vals = gemm_cols(k, self._cast(up[blk.cols])[:, :, None])[:, :, 0]
            sums = np.add.reduceat(vals[blk.order], blk.starts, axis=0)
            potr[blk.pot_rows] += sums.reshape(blk.seg.size, blk.pad, kt)
            profile.add_flops(blk.flops)

    def apply_d2t(self, ev, state, profile, pool=None) -> None:
        if pool is not None:
            return self._par_d2t(ev, state, profile, pool)
        dequiv = state["dequiv"]
        potr = self._pot_table(state)
        kt = self.kt_eval
        for blk in self.d2t:
            k = (
                blk.kmat
                if blk.kmat is not None
                else self._cast(ev.eval_kernel.matrix_batch(blk.pts, blk.surf))
            )
            vals = gemm_cols(k, self._cast(dequiv[blk.group])[:, :, None])[:, :, 0]
            potr[blk.pot_rows] += vals.reshape(blk.group.size, blk.pad, kt)
            profile.add_flops(blk.flops)

    def apply_uli(self, ev, dens, state, profile, pool=None) -> None:
        if not self.uli:
            return
        if pool is not None:
            return self._par_uli(ev, dens, state, profile, pool)
        table = self._dens_table(dens)
        potr = self._pot_table(state)
        kt = self.kt_eval
        for blk in self.uli:
            den = table[blk.den_rows].reshape(blk.boxes.size, blk.sp * self.ks)
            k = (
                blk.kmat
                if blk.kmat is not None
                else self._cast(
                    ev.eval_kernel.matrix_batch(blk.tgt_pts, blk.src_pts)
                )
            )
            vals = gemm_cols(k, den[:, :, None])[:, :, 0]
            potr[blk.pot_rows] += vals.reshape(blk.boxes.size, blk.tp, kt)
            profile.add_flops(blk.flops)

    # -- multi-RHS applies -------------------------------------------------
    #
    # Every operator is density-linear, so a block of ``q`` densities can
    # ride through the eight phases together: the per-phase contractions
    # batch over columns and the FFT grids batch.  The serving batcher
    # depends on each column being **bit-identical** to a solo apply,
    # which pins the numerics used below:
    #
    # * Kernel-block contractions (S2U/XLI/WLI/D2T/ULI) go through
    #   :func:`repro.core.contract.gemm_cols` in *both* the solo and the
    #   multi applies: GEMM runs on a fixed ``(b, j, Q_PAD)`` zero-padded
    #   contiguous block, so column ``c`` of a ``q``-column call matches
    #   the solo call's column bit for bit (see contract.py).
    # * Dense matrix steps (U2U, D2D, dense M2L, the S2U post-multiply)
    #   loop over columns: BLAS GEMM row results are *not* stable under a
    #   changed row count at small sizes, so folding ``q`` into those
    #   GEMMs would change bits.  ``arr[idx, j]`` (advanced + scalar
    #   index) yields the same contiguous copy the solo path's
    #   ``arr[idx]`` gather does, so each per-column GEMM call is
    #   literally identical.
    # * pocketfft transforms are batch-stable, so forward/inverse FFTs
    #   batch over ``(box, column)``, and ``FftM2L.translate`` is an
    #   explicit elementwise multiply-add chain (batch-stable over any
    #   leading dims), so one translate call carries all columns of an
    #   offset at once.
    # * ``np.add.reduceat`` segment sums are exact per-slot regardless of
    #   trailing axes, so scatter schedules are shared as-is.
    # * W-list gating uses the *union* zero pattern over the block's
    #   columns.  A column that is zero on some kept pair contributes an
    #   exact ``+0.0`` to that segment sum, which IEEE addition absorbs
    #   (``x + 0.0 == x``; a ``-0.0`` slot flips to ``+0.0``, equal under
    #   ``==``), so per-column results still match the solo apply whose
    #   own pattern kept fewer pairs.
    #
    # Multi state layout (see ``FmmEvaluator.allocate_multi``): node/point
    # state keeps ``q`` on axis 1 — ``up``/``dequiv`` are
    # ``(n_nodes, q, ns*ks)``, ``dcheck`` ``(n_nodes, q, ns*kt)``,
    # ``_pot_pad`` ``(n_points + 1, q, kt_eval)`` — so per-column slices
    # (the matrix steps) gather contiguously.  gemm_cols operands instead
    # keep ``q`` innermost (``(b, j, q)`` in, ``(b, i, q)`` out), matching
    # BLAS's preferred column layout; scatters transpose views on the fly.

    def _dens_table_multi(self, dens: np.ndarray) -> np.ndarray:
        """Sentinel-extended ``(n_points + 1, ks, q)`` density table for a
        ``(n_points * ks, q)`` column block.  Row-major over points so a
        padded gather reshapes straight to gemm_cols's ``(b, pad*ks, q)``."""
        q = dens.shape[1]
        table = self._buffer(
            "dens_multi", (self.n_points + 1, self.ks, q), self.rdtype
        )
        table[: self.n_points] = dens.reshape(self.n_points, self.ks, q)
        table[self.n_points] = 0.0
        return table

    @staticmethod
    def _den_block(table: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Gather ``(b, pad * ks, q)`` C-contiguous padded densities."""
        b, pad = rows.shape
        ks, q = table.shape[1], table.shape[2]
        return table[rows].reshape(b, pad * ks, q)

    def apply_s2u_multi(self, ev, dens, state, profile, pool=None) -> None:
        if not self.s2u:
            return
        if pool is not None:
            return self._par_s2u_multi(ev, dens, state, profile, pool)
        up = state["up"]
        table = self._dens_table_multi(dens)
        q = table.shape[2]
        for blk in self.s2u:
            den = self._den_block(table, blk.den_rows)
            k = (
                blk.kmat
                if blk.kmat is not None
                else self._cast(ev.kernel.matrix_batch(blk.surf, blk.pts))
            )
            qv = gemm_cols(k, den)
            for j in range(q):
                up[blk.group, j] = (
                    np.ascontiguousarray(qv[:, :, j]) @ blk.mat.T
                )
            profile.add_flops(blk.flops * q)

    def apply_u2u_multi(self, ev, state, profile, pool=None) -> None:
        if pool is not None:
            return self._par_u2u_multi(ev, state, profile, pool)
        up = state["up"]
        q = up.shape[1]
        for st in self.u2u:
            for j in range(q):
                up[st.dst, j] += up[st.src, j] @ st.mat.T
            profile.add_flops(st.flops * q)

    #: Byte budget for the multi-RHS V-list frequency accumulator: columns
    #: are processed in groups sized to stay under it (FFT batching is
    #: column-stable, so grouping does not change bits).  Deliberately
    #: small: the translation sweep re-touches the whole accumulator once
    #: per offset step, so it must stay cache-resident — at 256 MB a q=8
    #: V-list ran 3x *slower* than eight solo passes; at 8 MB (one column
    #: group on paper-size levels) it matches the solo path.  The V-list
    #: is memory-bound and gains nothing from column batching anyway —
    #: the multi-RHS win lives in the GEMM phases (see DESIGN.md).
    VLI_MULTI_BYTES = 8 * 2**20

    def apply_vli_fft_multi(self, ev, state, profile, pool=None) -> None:
        if pool is not None:
            return self._par_vli_fft_multi(ev, state, profile, pool)
        up, dcheck = state["up"], state["dcheck"]
        q = up.shape[1]
        fft = ev.fft
        step_flops = fft.translate_flops_per_pair()
        # Accumulator bytes per column: the complex itemsize halves under
        # fp32, so the cache-resident column group doubles for free.
        per_col = np.dtype(self.cdtype).itemsize * self.kt * fft.n * fft.n * fft.nf
        for ch in self.vli_fft:
            src_up = up[ch.usrc]
            qc = max(1, int(self.VLI_MULTI_BYTES // max(ch.utgt.size * per_col, 1)))
            for q0 in range(0, q, qc):
                q1 = min(q0 + qc, q)
                uhat = fft.forward_multi(
                    np.ascontiguousarray(src_up[:, q0:q1]), dtype=self.rdtype
                )
                acc = self._buffer(
                    "vli_acc_multi",
                    (ch.utgt.size, q1 - q0, self.kt, fft.n, fft.n, fft.nf),
                    self.cdtype,
                )
                acc.fill(0.0)
                for _off, that, tpos, spos, npairs in ch.steps:
                    # One translate carries every column of the group: the
                    # elementwise multiply-add chain is identical per
                    # (pair, column) regardless of the leading batch shape.
                    acc[tpos] += fft.translate(that, uhat[spos])
                    profile.add_flops(npairs * step_flops * (q1 - q0))
                dcheck[ch.utgt, q0:q1] += fft.inverse_multi(acc)
                profile.add_flops(
                    (ch.usrc.size * self.ks + ch.utgt.size * self.kt)
                    * fft.fft_flops_per_box()
                    * (q1 - q0)
                )

    def apply_vli_dense_multi(self, ev, state, profile, pool=None) -> None:
        if pool is not None:
            return self._par_vli_dense_multi(ev, state, profile, pool)
        up, dcheck = state["up"], state["dcheck"]
        q = up.shape[1]
        for st in self.vli_dense:
            for j in range(q):
                dcheck[st.dst, j] += self._cast(up[st.src, j]) @ st.mat.T
            profile.add_flops(st.flops * q)

    def apply_xli_multi(self, ev, dens, state, profile, pool=None) -> None:
        if not self.xli:
            return
        if pool is not None:
            return self._par_xli_multi(ev, dens, state, profile, pool)
        dcheck = state["dcheck"]
        table = self._dens_table_multi(dens)
        q = table.shape[2]
        for blk in self.xli:
            den = self._den_block(table, blk.den_rows)
            k = (
                blk.kmat
                if blk.kmat is not None
                else self._cast(ev.kernel.matrix_batch(blk.surf, blk.pts))
            )
            vals = gemm_cols(k, den)  # (b, ns*kt, q)
            sums = np.add.reduceat(vals[blk.order], blk.starts, axis=0)
            dcheck[blk.seg] += sums.transpose(0, 2, 1)
            profile.add_flops(blk.flops * q)

    def apply_d2d_multi(self, ev, state, profile, pool=None) -> None:
        if pool is not None:
            return self._par_d2d_multi(ev, state, profile, pool)
        dcheck, dequiv = state["dcheck"], state["dequiv"]
        q = dcheck.shape[1]
        for lv in self.d2d:
            for st in lv.l2l:
                for j in range(q):
                    dcheck[st.dst, j] += dequiv[st.src, j] @ st.mat.T
                profile.add_flops(st.flops * q)
            for j in range(q):
                dequiv[lv.nodes, j] = dcheck[lv.nodes, j] @ lv.conv_mat.T
            profile.add_flops(lv.conv_flops * q)

    def apply_wli_multi(self, ev, tree, state, profile, pool=None) -> None:
        if self.wli_rows.size == 0:
            return
        up = state["up"]
        q = up.shape[1]
        keep = np.any(up[self.wli_cols] != 0.0, axis=(1, 2))
        if not keep.any():
            return
        wli = self._wli_section(ev, tree, keep, profile)
        if pool is not None:
            return self._par_wli_multi(ev, wli, state, profile, pool)
        potr = state["_pot_pad"]
        kt = self.kt_eval
        for blk in wli.blocks:
            k = (
                blk.kmat
                if blk.kmat is not None
                else self._cast(ev.eval_kernel.matrix_batch(blk.pts, blk.surf))
            )
            vals = gemm_cols(k, self._cast(up[blk.cols]).transpose(0, 2, 1))
            sums = np.add.reduceat(vals[blk.order], blk.starts, axis=0)
            potr[blk.pot_rows] += sums.reshape(
                blk.seg.size, blk.pad, kt, q
            ).transpose(0, 1, 3, 2)
            profile.add_flops(blk.flops * q)

    def apply_d2t_multi(self, ev, state, profile, pool=None) -> None:
        if pool is not None:
            return self._par_d2t_multi(ev, state, profile, pool)
        dequiv = state["dequiv"]
        potr = state["_pot_pad"]
        q = dequiv.shape[1]
        kt = self.kt_eval
        for blk in self.d2t:
            k = (
                blk.kmat
                if blk.kmat is not None
                else self._cast(ev.eval_kernel.matrix_batch(blk.pts, blk.surf))
            )
            vals = gemm_cols(k, self._cast(dequiv[blk.group]).transpose(0, 2, 1))
            potr[blk.pot_rows] += vals.reshape(
                blk.group.size, blk.pad, kt, q
            ).transpose(0, 1, 3, 2)
            profile.add_flops(blk.flops * q)

    def apply_uli_multi(self, ev, dens, state, profile, pool=None) -> None:
        if not self.uli:
            return
        if pool is not None:
            return self._par_uli_multi(ev, dens, state, profile, pool)
        table = self._dens_table_multi(dens)
        q = table.shape[2]
        potr = state["_pot_pad"]
        kt = self.kt_eval
        for blk in self.uli:
            den = self._den_block(table, blk.den_rows)
            k = (
                blk.kmat
                if blk.kmat is not None
                else self._cast(
                    ev.eval_kernel.matrix_batch(blk.tgt_pts, blk.src_pts)
                )
            )
            vals = gemm_cols(k, den)
            potr[blk.pot_rows] += vals.reshape(
                blk.boxes.size, blk.tp, kt, q
            ).transpose(0, 1, 3, 2)
            profile.add_flops(blk.flops * q)

    # -- parallel phase applies --------------------------------------------
    #
    # Every ``_par_*`` body runs the *same* compiled tiles as its serial
    # twin — a task owns a whole block/chunk/step, never a fraction of
    # one, because BLAS GEMM results are not stable under a changed row
    # count at small sizes.  Determinism then follows from output
    # ownership (see repro/core/parallel.py):
    #
    # * Disjoint-output tiles (S2U leaf groups, V-list FFT chunk targets,
    #   D2D l2l child rows within a level) write their slices directly
    #   from the worker.
    # * Overlapping-output tiles (U2U parents, dense-M2L targets, the
    #   XLI/WLI/D2T/ULI scatters, whose ``pot_rows`` share the sentinel
    #   pad row across blocks) only compute on workers; the coordinator
    #   combines the returned values serially in compiled tile order —
    #   the exact ``+=`` sequence of the serial loop.
    # * U2U needs read-after-write frontiers (a parent written at level
    #   L is read at level L-1): :meth:`_wave_steps` re-derives the
    #   compile-time level grouping from the step list and the pool
    #   barriers between waves.  D2D levels are already explicit.
    #
    # Flop accounting replays on the coordinator in serial iteration
    # order, so profiles (and trace signatures) are schedule-independent.

    def _wave_steps(self, steps, nrows: int, key: str) -> list:
        """Partition matrix steps into read-after-write frontiers.

        Consecutive steps stay in one wave until a step would *read* a
        row some earlier step of the wave wrote; compile emits U2U
        level-by-level, so this reproduces exactly the level frontiers.
        Cached per plan (purely structural).
        """
        with self._lock:
            waves = self._par_waves.get(key)
            if waves is None:
                waves = []
                cur: list = []
                dirty = np.zeros(nrows, dtype=bool)
                for st in steps:
                    if cur and dirty[st.src].any():
                        waves.append(cur)
                        cur = []
                        dirty[:] = False
                    cur.append(st)
                    dirty[st.dst] = True
                if cur:
                    waves.append(cur)
                self._par_waves[key] = waves
            return waves

    def _par_s2u(self, ev, dens, state, profile, pool) -> None:
        up = state["up"]
        table = self._dens_table(dens)

        def tile(blk):
            def run():
                den = table[blk.den_rows].reshape(
                    blk.group.size, blk.pad * self.ks
                )
                k = (
                    blk.kmat
                    if blk.kmat is not None
                    else self._cast(ev.kernel.matrix_batch(blk.surf, blk.pts))
                )
                q = gemm_cols(k, den[:, :, None])[:, :, 0]
                up[blk.group] = q @ blk.mat.T  # leaf groups are disjoint
            return run

        t0 = time.perf_counter()
        _, busy = pool.run([tile(blk) for blk in self.s2u])
        for blk in self.s2u:
            profile.add_flops(blk.flops)
        record_parallel_spans(
            profile, "S2U", time.perf_counter() - t0, busy,
            len(self.s2u), pool.threads,
        )

    def _par_u2u(self, ev, state, profile, pool) -> None:
        up = state["up"]
        if not self.u2u:
            return
        t0 = time.perf_counter()
        busy = 0.0
        for wave in self._wave_steps(self.u2u, up.shape[0], "u2u"):
            prods, b = pool.run(
                [(lambda st=st: up[st.src] @ st.mat.T) for st in wave]
            )
            busy += b
            for st, prod in zip(wave, prods):
                up[st.dst] += prod
                profile.add_flops(st.flops)
        record_parallel_spans(
            profile, "U2U", time.perf_counter() - t0, busy,
            len(self.u2u), pool.threads,
        )

    def _par_vli_fft(self, ev, state, profile, pool) -> None:
        up, dcheck = state["up"], state["dcheck"]
        fft = ev.fft
        step_flops = fft.translate_flops_per_pair()

        def tile(ch):
            def run():
                uhat = fft.forward(up[ch.usrc], dtype=self.rdtype)
                acc = self._buffer(
                    "vli_acc",
                    (ch.utgt.size, self.kt, fft.n, fft.n, fft.nf),
                    self.cdtype,
                )
                acc.fill(0.0)
                for _off, that, tpos, spos, _npairs in ch.steps:
                    acc[tpos] += fft.translate(that, uhat[spos])
                dcheck[ch.utgt] += fft.inverse(acc)  # chunk targets disjoint
            return run

        t0 = time.perf_counter()
        _, busy = pool.run([tile(ch) for ch in self.vli_fft])
        for ch in self.vli_fft:
            for _off, _that, _tpos, _spos, npairs in ch.steps:
                profile.add_flops(npairs * step_flops)
            profile.add_flops(
                (ch.usrc.size * self.ks + ch.utgt.size * self.kt)
                * fft.fft_flops_per_box()
            )
        record_parallel_spans(
            profile, "VLI", time.perf_counter() - t0, busy,
            len(self.vli_fft), pool.threads,
        )

    def _par_vli_dense(self, ev, state, profile, pool) -> None:
        up, dcheck = state["up"], state["dcheck"]
        if not self.vli_dense:
            return
        t0 = time.perf_counter()
        # steps only read ``up``; targets may repeat across offset codes,
        # so all products compute in parallel and combine in step order
        prods, busy = pool.run(
            [
                (lambda st=st: self._cast(up[st.src]) @ st.mat.T)
                for st in self.vli_dense
            ]
        )
        for st, prod in zip(self.vli_dense, prods):
            dcheck[st.dst] += prod
            profile.add_flops(st.flops)
        record_parallel_spans(
            profile, "VLI", time.perf_counter() - t0, busy,
            len(self.vli_dense), pool.threads,
        )

    def _par_compute_xli(self, ev, dens, profile, pool) -> list:
        table = self._dens_table(dens)

        def tile(blk):
            def run():
                den = table[blk.den_rows].reshape(
                    blk.rows.size, blk.pad * self.ks
                )
                k = (
                    blk.kmat
                    if blk.kmat is not None
                    else self._cast(ev.kernel.matrix_batch(blk.surf, blk.pts))
                )
                vals = gemm_cols(k, den[:, :, None])[:, :, 0]
                return np.add.reduceat(vals[blk.order], blk.starts, axis=0)
            return run

        t0 = time.perf_counter()
        sums, busy = pool.run([tile(blk) for blk in self.xli])
        out = []
        for blk, s in zip(self.xli, sums):
            out.append((blk.seg, s))
            profile.add_flops(blk.flops)
        record_parallel_spans(
            profile, "XLI", time.perf_counter() - t0, busy,
            len(self.xli), pool.threads,
        )
        return out

    def _par_d2d(self, ev, state, profile, pool) -> None:
        dcheck, dequiv = state["dcheck"], state["dequiv"]
        if not self.d2d:
            return
        t0 = time.perf_counter()
        busy = 0.0
        ntiles = 0
        def tile(st):
            def run():
                dcheck[st.dst] += dequiv[st.src] @ st.mat.T
            return run

        for lv in self.d2d:
            # l2l steps write disjoint child rows (one step per child
            # position) and read only parent rows finished last level
            _, b = pool.run([tile(st) for st in lv.l2l])
            busy += b
            ntiles += len(lv.l2l)
            for st in lv.l2l:
                profile.add_flops(st.flops)
            dequiv[lv.nodes] = dcheck[lv.nodes] @ lv.conv_mat.T
            profile.add_flops(lv.conv_flops)
        record_parallel_spans(
            profile, "D2D", time.perf_counter() - t0, busy,
            ntiles, pool.threads,
        )

    def _par_wli(self, ev, wli, state, profile, pool) -> None:
        up = state["up"]
        potr = self._pot_table(state)
        kt = self.kt_eval

        def tile(blk):
            def run():
                k = (
                    blk.kmat
                    if blk.kmat is not None
                    else self._cast(
                        ev.eval_kernel.matrix_batch(blk.pts, blk.surf)
                    )
                )
                vals = gemm_cols(
                    k, self._cast(up[blk.cols])[:, :, None]
                )[:, :, 0]
                return np.add.reduceat(vals[blk.order], blk.starts, axis=0)
            return run

        t0 = time.perf_counter()
        sums, busy = pool.run([tile(blk) for blk in wli.blocks])
        for blk, s in zip(wli.blocks, sums):
            # blocks share the sentinel pad row -> combine in block order
            potr[blk.pot_rows] += s.reshape(blk.seg.size, blk.pad, kt)
            profile.add_flops(blk.flops)
        record_parallel_spans(
            profile, "WLI", time.perf_counter() - t0, busy,
            len(wli.blocks), pool.threads,
        )

    def _par_d2t(self, ev, state, profile, pool) -> None:
        dequiv = state["dequiv"]
        potr = self._pot_table(state)
        kt = self.kt_eval
        if not self.d2t:
            return

        def tile(blk):
            def run():
                k = (
                    blk.kmat
                    if blk.kmat is not None
                    else self._cast(
                        ev.eval_kernel.matrix_batch(blk.pts, blk.surf)
                    )
                )
                return gemm_cols(
                    k, self._cast(dequiv[blk.group])[:, :, None]
                )[:, :, 0]
            return run

        t0 = time.perf_counter()
        vals, busy = pool.run([tile(blk) for blk in self.d2t])
        for blk, v in zip(self.d2t, vals):
            potr[blk.pot_rows] += v.reshape(blk.group.size, blk.pad, kt)
            profile.add_flops(blk.flops)
        record_parallel_spans(
            profile, "D2T", time.perf_counter() - t0, busy,
            len(self.d2t), pool.threads,
        )

    def _par_uli(self, ev, dens, state, profile, pool) -> None:
        table = self._dens_table(dens)
        potr = self._pot_table(state)
        kt = self.kt_eval

        def tile(blk):
            def run():
                den = table[blk.den_rows].reshape(
                    blk.boxes.size, blk.sp * self.ks
                )
                k = (
                    blk.kmat
                    if blk.kmat is not None
                    else self._cast(
                        ev.eval_kernel.matrix_batch(blk.tgt_pts, blk.src_pts)
                    )
                )
                return gemm_cols(k, den[:, :, None])[:, :, 0]
            return run

        t0 = time.perf_counter()
        vals, busy = pool.run([tile(blk) for blk in self.uli])
        for blk, v in zip(self.uli, vals):
            potr[blk.pot_rows] += v.reshape(blk.boxes.size, blk.tp, kt)
            profile.add_flops(blk.flops)
        record_parallel_spans(
            profile, "ULI", time.perf_counter() - t0, busy,
            len(self.uli), pool.threads,
        )

    # -- parallel multi-RHS applies ----------------------------------------

    def _par_s2u_multi(self, ev, dens, state, profile, pool) -> None:
        up = state["up"]
        table = self._dens_table_multi(dens)
        q = table.shape[2]

        def tile(blk):
            def run():
                den = self._den_block(table, blk.den_rows)
                k = (
                    blk.kmat
                    if blk.kmat is not None
                    else self._cast(ev.kernel.matrix_batch(blk.surf, blk.pts))
                )
                qv = gemm_cols(k, den)
                for j in range(q):
                    up[blk.group, j] = (
                        np.ascontiguousarray(qv[:, :, j]) @ blk.mat.T
                    )
            return run

        t0 = time.perf_counter()
        _, busy = pool.run([tile(blk) for blk in self.s2u])
        for blk in self.s2u:
            profile.add_flops(blk.flops * q)
        record_parallel_spans(
            profile, "S2U", time.perf_counter() - t0, busy,
            len(self.s2u), pool.threads,
        )

    def _par_u2u_multi(self, ev, state, profile, pool) -> None:
        up = state["up"]
        q = up.shape[1]
        if not self.u2u:
            return
        t0 = time.perf_counter()
        busy = 0.0
        for wave in self._wave_steps(self.u2u, up.shape[0], "u2u"):
            prods, b = pool.run(
                [
                    (lambda st=st: [
                        up[st.src, j] @ st.mat.T for j in range(q)
                    ])
                    for st in wave
                ]
            )
            busy += b
            for st, cols in zip(wave, prods):
                for j in range(q):
                    up[st.dst, j] += cols[j]
                profile.add_flops(st.flops * q)
        record_parallel_spans(
            profile, "U2U", time.perf_counter() - t0, busy,
            len(self.u2u), pool.threads,
        )

    def _par_vli_fft_multi(self, ev, state, profile, pool) -> None:
        up, dcheck = state["up"], state["dcheck"]
        q = up.shape[1]
        fft = ev.fft
        step_flops = fft.translate_flops_per_pair()
        per_col = (
            np.dtype(self.cdtype).itemsize * self.kt * fft.n * fft.n * fft.nf
        )

        def groups(ch):
            qc = max(
                1, int(self.VLI_MULTI_BYTES // max(ch.utgt.size * per_col, 1))
            )
            return [(q0, min(q0 + qc, q)) for q0 in range(0, q, qc)]

        def tile(ch):
            def run():
                src_up = up[ch.usrc]
                for q0, q1 in groups(ch):
                    uhat = fft.forward_multi(
                        np.ascontiguousarray(src_up[:, q0:q1]),
                        dtype=self.rdtype,
                    )
                    acc = self._buffer(
                        "vli_acc_multi",
                        (ch.utgt.size, q1 - q0, self.kt,
                         fft.n, fft.n, fft.nf),
                        self.cdtype,
                    )
                    acc.fill(0.0)
                    for _off, that, tpos, spos, _npairs in ch.steps:
                        acc[tpos] += fft.translate(that, uhat[spos])
                    dcheck[ch.utgt, q0:q1] += fft.inverse_multi(acc)
            return run

        t0 = time.perf_counter()
        _, busy = pool.run([tile(ch) for ch in self.vli_fft])
        for ch in self.vli_fft:
            for q0, q1 in groups(ch):
                for _off, _that, _tpos, _spos, npairs in ch.steps:
                    profile.add_flops(npairs * step_flops * (q1 - q0))
                profile.add_flops(
                    (ch.usrc.size * self.ks + ch.utgt.size * self.kt)
                    * fft.fft_flops_per_box()
                    * (q1 - q0)
                )
        record_parallel_spans(
            profile, "VLI", time.perf_counter() - t0, busy,
            len(self.vli_fft), pool.threads,
        )

    def _par_vli_dense_multi(self, ev, state, profile, pool) -> None:
        up, dcheck = state["up"], state["dcheck"]
        q = up.shape[1]
        if not self.vli_dense:
            return
        t0 = time.perf_counter()
        prods, busy = pool.run(
            [
                (lambda st=st: [
                    self._cast(up[st.src, j]) @ st.mat.T for j in range(q)
                ])
                for st in self.vli_dense
            ]
        )
        for st, cols in zip(self.vli_dense, prods):
            for j in range(q):
                dcheck[st.dst, j] += cols[j]
            profile.add_flops(st.flops * q)
        record_parallel_spans(
            profile, "VLI", time.perf_counter() - t0, busy,
            len(self.vli_dense), pool.threads,
        )

    def _par_xli_multi(self, ev, dens, state, profile, pool) -> None:
        dcheck = state["dcheck"]
        table = self._dens_table_multi(dens)
        q = table.shape[2]

        def tile(blk):
            def run():
                den = self._den_block(table, blk.den_rows)
                k = (
                    blk.kmat
                    if blk.kmat is not None
                    else self._cast(ev.kernel.matrix_batch(blk.surf, blk.pts))
                )
                vals = gemm_cols(k, den)
                return np.add.reduceat(vals[blk.order], blk.starts, axis=0)
            return run

        t0 = time.perf_counter()
        sums, busy = pool.run([tile(blk) for blk in self.xli])
        for blk, s in zip(self.xli, sums):
            dcheck[blk.seg] += s.transpose(0, 2, 1)
            profile.add_flops(blk.flops * q)
        record_parallel_spans(
            profile, "XLI", time.perf_counter() - t0, busy,
            len(self.xli), pool.threads,
        )

    def _par_d2d_multi(self, ev, state, profile, pool) -> None:
        dcheck, dequiv = state["dcheck"], state["dequiv"]
        q = dcheck.shape[1]
        if not self.d2d:
            return

        def tile(st):
            def run():
                for j in range(q):
                    dcheck[st.dst, j] += dequiv[st.src, j] @ st.mat.T
            return run

        t0 = time.perf_counter()
        busy = 0.0
        ntiles = 0
        for lv in self.d2d:
            _, b = pool.run([tile(st) for st in lv.l2l])
            busy += b
            ntiles += len(lv.l2l)
            for st in lv.l2l:
                profile.add_flops(st.flops * q)
            for j in range(q):
                dequiv[lv.nodes, j] = dcheck[lv.nodes, j] @ lv.conv_mat.T
            profile.add_flops(lv.conv_flops * q)
        record_parallel_spans(
            profile, "D2D", time.perf_counter() - t0, busy,
            ntiles, pool.threads,
        )

    def _par_wli_multi(self, ev, wli, state, profile, pool) -> None:
        up = state["up"]
        q = up.shape[1]
        potr = state["_pot_pad"]
        kt = self.kt_eval

        def tile(blk):
            def run():
                k = (
                    blk.kmat
                    if blk.kmat is not None
                    else self._cast(
                        ev.eval_kernel.matrix_batch(blk.pts, blk.surf)
                    )
                )
                vals = gemm_cols(
                    k, self._cast(up[blk.cols]).transpose(0, 2, 1)
                )
                return np.add.reduceat(vals[blk.order], blk.starts, axis=0)
            return run

        t0 = time.perf_counter()
        sums, busy = pool.run([tile(blk) for blk in wli.blocks])
        for blk, s in zip(wli.blocks, sums):
            potr[blk.pot_rows] += s.reshape(
                blk.seg.size, blk.pad, kt, q
            ).transpose(0, 1, 3, 2)
            profile.add_flops(blk.flops * q)
        record_parallel_spans(
            profile, "WLI", time.perf_counter() - t0, busy,
            len(wli.blocks), pool.threads,
        )

    def _par_d2t_multi(self, ev, state, profile, pool) -> None:
        dequiv = state["dequiv"]
        potr = state["_pot_pad"]
        q = dequiv.shape[1]
        kt = self.kt_eval
        if not self.d2t:
            return

        def tile(blk):
            def run():
                k = (
                    blk.kmat
                    if blk.kmat is not None
                    else self._cast(
                        ev.eval_kernel.matrix_batch(blk.pts, blk.surf)
                    )
                )
                return gemm_cols(
                    k, self._cast(dequiv[blk.group]).transpose(0, 2, 1)
                )
            return run

        t0 = time.perf_counter()
        vals, busy = pool.run([tile(blk) for blk in self.d2t])
        for blk, v in zip(self.d2t, vals):
            potr[blk.pot_rows] += v.reshape(
                blk.group.size, blk.pad, kt, q
            ).transpose(0, 1, 3, 2)
            profile.add_flops(blk.flops * q)
        record_parallel_spans(
            profile, "D2T", time.perf_counter() - t0, busy,
            len(self.d2t), pool.threads,
        )

    def _par_uli_multi(self, ev, dens, state, profile, pool) -> None:
        table = self._dens_table_multi(dens)
        q = table.shape[2]
        potr = state["_pot_pad"]
        kt = self.kt_eval

        def tile(blk):
            def run():
                den = self._den_block(table, blk.den_rows)
                k = (
                    blk.kmat
                    if blk.kmat is not None
                    else self._cast(
                        ev.eval_kernel.matrix_batch(blk.tgt_pts, blk.src_pts)
                    )
                )
                return gemm_cols(k, den)
            return run

        t0 = time.perf_counter()
        vals, busy = pool.run([tile(blk) for blk in self.uli])
        for blk, v in zip(self.uli, vals):
            potr[blk.pot_rows] += v.reshape(
                blk.boxes.size, blk.tp, kt, q
            ).transpose(0, 1, 3, 2)
            profile.add_flops(blk.flops * q)
        record_parallel_spans(
            profile, "ULI", time.perf_counter() - t0, busy,
            len(self.uli), pool.threads,
        )


# -- compile ------------------------------------------------------------------


def _padded_point_rows(tree: FmmTree, nodes: np.ndarray, pad: int) -> np.ndarray:
    """(b, pad) rows into the point-major table; padding -> sentinel row."""
    counts = (tree.pt_end - tree.pt_begin)[nodes]
    ar = np.arange(pad, dtype=np.int64)[None, :]
    rows = tree.pt_begin[nodes][:, None] + ar
    rows[ar >= counts[:, None]] = tree.n_points
    return rows


def _padded_points(tree: FmmTree, nodes: np.ndarray, pad: int) -> np.ndarray:
    """(b, pad, 3) leaf points, padding slots at the box centre.

    Byte-identical to what the legacy per-box gather loops build, so the
    downstream kernel matrices match bit for bit.
    """
    rows = _padded_point_rows(tree, nodes, pad)
    pts = np.repeat(tree.centers[nodes][:, None, :], pad, axis=1)
    valid = rows != tree.n_points
    pts[valid] = tree.points[rows[valid]]
    return pts


def _scatter_schedule(targets: np.ndarray):
    """Stable argsort + reduceat segment starts + unique segment targets."""
    order = np.argsort(targets, kind="stable")
    st = targets[order]
    starts = np.flatnonzero(np.concatenate([[True], st[1:] != st[:-1]]))
    return order, starts, st[starts]


def _maybe_kmat(plan: EvalPlan, kernel, a: np.ndarray, b: np.ndarray):
    """Materialise a kernel block if the matrix budget allows, else None.

    The estimate and the charge both use the plan's working itemsize (the
    old code hard-wired 8-byte reals, which would double-count an fp32
    plan's footprint), and fp32 plans store the block rounded to float32 —
    half the bytes, so the same budget fits twice the near field.
    """
    if not plan._cache_matrices:
        return None
    itemsize = np.dtype(plan.rdtype).itemsize
    est = itemsize * a.shape[0] * (a.shape[1] * kernel.target_dim) * (
        b.shape[1] * kernel.source_dim
    )
    if est > plan._mat_left:
        return None
    k = plan._cast(kernel.matrix_batch(a, b))
    plan._mat_left -= k.nbytes
    return k


def _size_buckets(tasks):
    """Chunk ``(slot, index_array)`` tasks into descending-size buckets
    where every member is at least half the bucket's padded width, so a
    padded batch wastes < 2x (in practice ~25%) of its flops."""
    if not tasks:
        return
    tasks = sorted(tasks, key=lambda t: -t[1].size)
    start = 0
    for r in range(1, len(tasks) + 1):
        if r == len(tasks) or 2 * tasks[r][1].size < tasks[start][1].size:
            yield tasks[start:r]
            start = r


def _patched_kmat(plan: EvalPlan, kernel, a, b, slots, stats):
    """Budget-identical variant of :func:`_maybe_kmat` assembling the block
    from reusable old-plan slots plus one batched kernel call over the
    dirty remainder.

    ``slots[j]`` is ``(old_kmat_array, old_slot)`` when box ``j``'s
    geometry inputs are unchanged, ``(old_kmat_array, old_slot,
    dst_cols, src_cols, dirty_cols)`` (point units) when individual
    source members survive at shifted column offsets — clean member
    columns are copied ``src -> dst``, dirty ones recomputed — else
    None.  Per-slot stitching — and the column-range recompute — is
    bitwise safe because every kernel's ``matrix_batch`` is elementwise
    per (target, source) *pair* (closed-form pairwise formulas; the
    only reduction is over the fixed 3-vector coordinate axis), so a
    matrix element does not depend on its batch, row or column
    neighbours.  The budget estimate, the skip decision and the charge
    are byte-identical to the fresh path — a patched plan makes exactly
    the caching choices a fresh compile would.
    """
    if not plan._cache_matrices:
        return None
    itemsize = np.dtype(plan.rdtype).itemsize
    kt, ks = kernel.target_dim, kernel.source_dim
    rows, cols = a.shape[1] * kt, b.shape[1] * ks
    est = itemsize * a.shape[0] * rows * cols
    if est > plan._mat_left:
        return None
    nb = a.shape[0]
    norm = []
    for j, s in enumerate(slots):
        if s is None or s[0].shape[1:] != (rows, cols):
            norm.append(None)
            continue
        if len(s) == 6:
            # dirty target: diff old vs new padded coordinates to find
            # the rows that actually changed; kernel assembly runs ~8x
            # slower per byte than the slice copy, so partial reuse
            # pays until nearly every row moved
            dr = np.flatnonzero((s[5] != a[j]).any(axis=1))
            if 8 * dr.size > 7 * a.shape[1]:
                norm.append(None)
                continue
            s = (*s[:5], dr)
        norm.append(s)
    slots = norm
    dirty = [j for j, s in enumerate(slots) if s is None]
    partial = [(j, s) for j, s in enumerate(slots)
               if s is not None and len(s) >= 5]
    stats["slots_reused"] += nb - len(dirty) - len(partial)
    stats["slots_partial"] += len(partial)
    stats["slots_fresh"] += len(dirty)
    if not dirty and not partial and nb:
        first = slots[0]
        if first[0].shape[0] == nb and all(
            s[0] is first[0] and s[1] == j for j, s in enumerate(slots)
        ):
            # the whole old block survives: share the array, zero copies
            stats["bytes_reused"] += first[0].nbytes
            stats["blocks_ref"] += 1
            plan._mat_left -= first[0].nbytes
            return first[0]
    if len(dirty) == nb:
        k = plan._cast(kernel.matrix_batch(a, b))
        stats["bytes_fresh"] += k.nbytes
        plan._mat_left -= k.nbytes
        return k
    k = np.empty((nb, rows, cols), dtype=plan.rdtype)
    by_src: dict[int, tuple] = {}
    for j, s in enumerate(slots):
        if s is None or len(s) >= 5:
            continue
        arr, jj = s
        dst, src, _ = by_src.setdefault(id(arr), ([], [], arr))
        dst.append(j)
        src.append(jj)
    for dst, src, arr in by_src.values():
        # run-grouped contiguous slice copies: a fancy-indexed gather
        # materialises arr[src] as a temporary (twice the memory
        # traffic); surviving slots overwhelmingly sit in long aligned
        # runs, so slice-to-slice copies hit straight memcpy bandwidth
        r0 = 0
        for r in range(1, len(dst) + 1):
            if (r == len(dst) or dst[r] != dst[r - 1] + 1
                    or src[r] != src[r - 1] + 1):
                k[dst[r0]:dst[r - 1] + 1] = arr[src[r0]:src[r - 1] + 1]
                r0 = r
        stats["bytes_reused"] += itemsize * len(dst) * rows * cols

    col_tasks, row_tasks = [], []
    for j, s in partial:
        arr, jj, ranges, pad, dirty_pc = s[:5]
        drows = s[5] if len(s) == 6 else None
        # copy the surviving members' columns (possibly shifted); dirty
        # members' columns and moved-target rows are queued and
        # recomputed in one padded batch per block — their bytes are
        # tiny, the per-call overhead of ~100 slot-sized kernel calls
        # is not; contiguous slice copies per member beat one
        # fancy-indexed gather
        old, new = arr[jj], k[j]
        moved_pts = 0
        for d0, d1, s0 in ranges:
            new[:, d0 * ks:d1 * ks] = old[:, s0 * ks:(s0 + d1 - d0) * ks]
            moved_pts += d1 - d0
        if pad is not None:
            p0, p1, o0 = pad
            new[:, p0 * ks:p1 * ks] = np.tile(
                old[:, o0 * ks:(o0 + 1) * ks], (1, p1 - p0)
            )
            moved_pts += p1 - p0
        stats["bytes_reused"] += itemsize * rows * ks * moved_pts
        if dirty_pc.size:
            col_tasks.append((j, dirty_pc))
        if drows is not None and drows.size:
            row_tasks.append((j, drows))
    # batched recompute of the queued dirty columns/rows: tasks are
    # size-sorted and chunked so every chunk pads to at most 2x its
    # smallest member (pad entries reuse index 0 and are discarded);
    # bitwise safe — elements are per-pair, so padding cannot perturb
    # its neighbours, and ~100 slot-sized kernel calls collapse to a
    # handful without meaningful wasted flops
    for bucket in _size_buckets(col_tasks):
        m = bucket[0][1].size
        ji = np.asarray([j for j, _ in bucket], dtype=np.int64)
        cidx = np.zeros((len(bucket), m), dtype=np.int64)
        for t, (_, pc) in enumerate(bucket):
            cidx[t, :pc.size] = pc
        out = plan._cast(kernel.matrix_batch(a[ji], b[ji[:, None], cidx]))
        for t, (j, pc) in enumerate(bucket):
            mc = (
                (pc[:, None] * ks + np.arange(ks)).ravel()
                if ks > 1 else pc
            )
            k[j][:, mc] = out[t][:, :pc.size * ks]
            stats["bytes_fresh"] += itemsize * rows * ks * pc.size
    # moved-target rows last, overwriting any provisional copy (and any
    # freshly recomputed column entries in those rows)
    for bucket in _size_buckets(row_tasks):
        m = bucket[0][1].size
        ji = np.asarray([j for j, _ in bucket], dtype=np.int64)
        ridx = np.zeros((len(bucket), m), dtype=np.int64)
        for t, (_, dr) in enumerate(bucket):
            ridx[t, :dr.size] = dr
        out = plan._cast(kernel.matrix_batch(a[ji[:, None], ridx], b[ji]))
        for t, (j, dr) in enumerate(bucket):
            mr = (
                (dr[:, None] * kt + np.arange(kt)).ravel()
                if kt > 1 else dr
            )
            k[j, mr] = out[t, :dr.size * kt]
            stats["bytes_fresh"] += itemsize * dr.size * kt * cols
    if dirty:
        di = np.asarray(dirty, dtype=np.int64)
        k[di] = plan._cast(kernel.matrix_batch(a[di], b[di]))
        stats["bytes_fresh"] += itemsize * di.size * rows * cols
    plan._mat_left -= k.nbytes
    return k


class _PlanReuse:
    """Reuse oracle for :func:`patch_plan`: per-phase section indexes of the
    old plan, keyed by node-key signatures (the ``_WliSection`` signature
    idea generalised to every cached section).

    A slot is offered for reuse only when the :class:`TreeDelta` proves
    its geometry inputs bitwise unchanged — target box content for leaf
    blocks, source-leaf content (plus the target's centre, pinned by its
    key) for pair blocks, and the full filtered U-membership for ULI
    blocks.  Kernel matrices additionally require matching precision.
    """

    def __init__(self, old_plan: EvalPlan, old_tree: FmmTree, old_lists,
                 delta: TreeDelta, precision: str):
        self.old_plan = old_plan
        self.old_tree = old_tree
        self.old_lists = old_lists
        self.refinement_changed = bool(delta.refinement_changed)
        self.node_clean = delta.node_clean
        self.old_index = delta.old_index
        self.perm = delta.perm
        self.old_counts = old_tree.point_counts()
        self._new_counts = None
        self.kmats_ok = precision == old_plan.precision
        self.stats = {
            "slots_reused": 0,
            "slots_partial": 0,
            "slots_fresh": 0,
            "bytes_reused": 0,
            "bytes_fresh": 0,
            "blocks_ref": 0,
            "rows_remapped": 0,
        }
        keys = old_tree.keys
        self._uli: dict[int, tuple] = {}
        for blk in old_plan.uli:
            for j, i in enumerate(blk.boxes):
                self._uli[int(keys[i])] = (blk, j)
        self._leaf: dict[str, dict] = {"s2u": {}, "d2t": {}}
        self._xli: dict[tuple, tuple] = {}
        if self.kmats_ok:
            for section in ("s2u", "d2t"):
                idx = self._leaf[section]
                for blk in getattr(old_plan, section):
                    if blk.kmat is None:
                        continue
                    for j, i in enumerate(blk.group):
                        idx[(blk.level, blk.pad, int(keys[i]))] = (blk.kmat, j)
            for blk in old_plan.xli:
                if blk.kmat is None:
                    continue
                for j in range(blk.rows.size):
                    self._xli[
                        (blk.level, blk.pad,
                         int(keys[blk.rows[j]]), int(keys[blk.cols[j]]))
                    ] = (blk.kmat, j)
        self._hats: dict[tuple, np.ndarray] = {}
        if old_plan.precision == "fp32":
            for ch in old_plan.vli_fft:
                for off, that, _tpos, _spos, _npairs in ch.steps:
                    self._hats[(ch.level, off)] = that

    def fp32_hats(self) -> dict:
        """Seed cache of complex64 translation hats harvested from the old
        plan (the cast is deterministic, so sharing them is bitwise safe)."""
        return dict(self._hats)

    def vli_reusable(self, lists, scope) -> bool:
        """True when the old plan's whole VLI section can be shared.

        The V-list schedule (chunk boundaries, offset codes, spectra
        positions) depends only on node indexing, levels, centres and the
        V-list rows — none of which involve point coordinates.  With the
        refinement pattern unchanged the node set and its Morton order
        are identical, so if the V-list survived (the localized list
        rebuild returns it by identity) and neither compile is scoped,
        the compiled chunks are bitwise the fresh ones.  Precision must
        match: fp32 chunks store complex64 hats.
        """
        if scope is not None or self.old_plan.scoped:
            return False
        if not self.kmats_ok or self.refinement_changed:
            return False
        v, ov = lists.v, self.old_lists.v
        if v is ov:
            return True
        return np.array_equal(v.offsets, ov.offsets) and np.array_equal(
            v.indices, ov.indices
        )

    def uli_slot(self, tree: FmmTree, i: int, srcs: np.ndarray, tp: int, sp: int):
        """(remapped src_rows, kmat slot) for target leaf ``i``, or Nones.

        Row reuse needs the filtered U-membership unchanged (same member
        keys, every member leaf clean) — then the old gather rows remap
        through ``perm`` to exactly what the fresh per-box concatenation
        would build.  The kmat slot additionally needs the target leaf
        clean and the padded shape unchanged.  When the membership and
        per-member *counts* survive but some member leaves are dirty,
        the column layout of the slot is still identical, so the slot is
        offered for **partial** reuse: ``(kmat, j, dirty_point_cols)``
        tells :func:`_patched_kmat` to copy the old slot and recompute
        only the dirty members' columns (bitwise safe — kernels are
        elementwise per pair).
        """
        ent = self._uli.get(int(tree.keys[i]))
        if ent is None:
            return None, None
        blk, j = ent
        oi = self.old_index[i]
        if oi < 0:
            return None, None
        osrcs = self.old_lists.u.of(oi)
        osrcs = osrcs[self.old_counts[osrcs] > 0]
        slot_ok = (
            self.kmats_ok
            and blk.kmat is not None
            and blk.tp == tp
            and blk.sp == sp
        )
        tgt_clean = bool(self.node_clean[i])
        # a dirty target only invalidates the *rows* of its moved points:
        # ship the old padded target coordinates so _patched_kmat can diff
        # them against the fresh ones and recompute just the changed rows
        old_tgt = None
        if slot_ok and not tgt_clean:
            old_tgt = _padded_points(
                self.old_tree, np.asarray([oi], dtype=np.int64), tp
            )[0]
        same = osrcs.size == srcs.size and np.array_equal(
            self.old_tree.keys[osrcs], tree.keys[srcs]
        )
        if same and self.node_clean[srcs].all():
            orow = blk.den_rows[j]
            row = self.perm[orow]
            if np.any(row < 0):
                return None, None
            valid = int((orow != self.old_tree.n_points).sum())
            if valid > sp:
                return None, None
            out = np.full(sp, tree.n_points, dtype=np.int64)
            out[:valid] = row[:valid]
            self.stats["rows_remapped"] += 1
            if not slot_ok:
                return out, None
            if tgt_clean:
                return out, (blk.kmat, j)
            return out, self._uli_partial(blk, j, osrcs, srcs, tree, sp,
                                          old_tgt)
        if not slot_ok:
            return None, None
        return None, self._uli_partial(blk, j, osrcs, srcs, tree, sp, old_tgt)

    def _uli_partial(self, blk, j, osrcs, srcs, tree, sp, old_tgt=None):
        """Column-mapped partial reuse of ULI slot ``(blk.kmat, j)``.

        Members are matched old-to-new by Morton key; a member whose leaf
        content is clean contributes a column-range *copy* (its offset may
        have shifted as neighbours gained/lost points), a dirty or new
        member contributes a column-range *recompute*, and the padding
        columns — all identical, the kernel against the key-pinned target
        centre — are broadcast-copied from any old pad column.  Returns
        ``(kmat, j, copy_ranges, pad, dirty_cols)``: ``copy_ranges`` is
        ``[(dst_start, dst_stop, src_start), ...]`` and ``pad`` is
        ``(pad_start, pad_stop, old_pad_col) | None``, all in point
        units; or None when nothing is copyable.  When the *target* leaf
        is dirty, ``old_tgt`` (its old padded coordinates) rides along as
        a sixth element: the copied rows are then provisional and
        :func:`_patched_kmat` re-derives the rows whose target point
        actually moved and recomputes those in full.
        """
        if self._new_counts is None:
            self._new_counts = tree.point_counts()
        oc = self.old_counts[osrcs]
        nc = self._new_counts[srcs]
        okeys = self.old_tree.keys[osrcs]
        nkeys = tree.keys[srcs]
        ooff = np.concatenate([[0], np.cumsum(oc)])
        noff = np.concatenate([[0], np.cumsum(nc)])
        by_key = {int(k): m for m, k in enumerate(okeys)}
        clean = self.node_clean[srcs]
        ranges, dirty = [], []
        for m in range(srcs.size):
            om = by_key.get(int(nkeys[m]))
            if om is not None and clean[m] and oc[om] == nc[m]:
                ranges.append((int(noff[m]), int(noff[m + 1]), int(ooff[om])))
            else:
                dirty.append(np.arange(noff[m], noff[m + 1]))
        if not ranges:
            return None
        ostot, nstot = int(ooff[-1]), int(noff[-1])
        pad = None
        if nstot < sp:
            if ostot < sp:
                # every pad column is the kernel against the target's
                # centre: broadcast one old pad column across the range
                pad = (nstot, sp, ostot)
            else:
                dirty.append(np.arange(nstot, sp))
        dirty_pc = (
            np.concatenate(dirty) if dirty else np.empty(0, dtype=np.int64)
        )
        if old_tgt is None:
            return blk.kmat, j, ranges, pad, dirty_pc
        return blk.kmat, j, ranges, pad, dirty_pc, old_tgt

    def leaf_slots(self, section: str, tree: FmmTree, group: np.ndarray,
                   lev: int, pad: int) -> list:
        """Per-box kmat slots for an S2U/D2T leaf batch (None = dirty)."""
        idx = self._leaf[section]
        out = [None] * group.size
        if idx:
            for j, i in enumerate(group):
                if self.node_clean[i]:
                    out[j] = idx.get((lev, pad, int(tree.keys[i])))
        return out

    def pair_slots(self, tree: FmmTree, ri: np.ndarray, ci: np.ndarray,
                   lev: int, pad: int) -> list:
        """Per-pair kmat slots for an XLI batch (source-leaf content plus
        the target's key-pinned check surface determine the matrix)."""
        out = [None] * ri.size
        if self._xli:
            keys = tree.keys
            for j in range(ri.size):
                if self.node_clean[ci[j]]:
                    out[j] = self._xli.get(
                        (lev, pad, int(keys[ri[j]]), int(keys[ci[j]]))
                    )
        return out


def _compile_wli_blocks(ev, tree, plan: EvalPlan, rows, cols):
    """W-list pair batches for one keep pattern (lazy, possibly repeated)."""
    counts = tree.point_counts()
    blocks = []
    base: dict[int, np.ndarray] = {}
    for lev, pad, ri, ci in ev._pair_batches(
        tree, rows, cols, tree.levels[cols], counts[rows]
    ):
        if lev not in base:
            base[lev] = ev.ops.ue_points(lev)
        ue = base[lev][None, :, :] + tree.centers[ci][:, None, :]
        pts = _padded_points(tree, ri, pad)
        order, starts, seg = _scatter_schedule(ri)
        blocks.append(
            _PairBlock(
                level=lev,
                pad=pad,
                rows=ri,
                cols=ci,
                pts=pts,
                surf=ue,
                den_rows=None,
                order=order,
                starts=starts,
                seg=seg,
                pot_rows=_padded_point_rows(tree, seg, pad),
                kmat=_maybe_kmat(plan, ev.eval_kernel, pts, ue),
                flops=ev.eval_kernel.pair_flops(counts[ri].sum(), ev.ns),
            )
        )
    return blocks


def compile_plan(
    ev,
    tree: FmmTree,
    lists,
    scopes: PlanScopes | None = None,
    cache_matrices: bool = True,
    matrix_budget: int = MATRIX_BUDGET,
    precision: str = "fp64",
    _reuse: _PlanReuse | None = None,
) -> EvalPlan:
    """Compile an :class:`EvalPlan` for evaluator ``ev`` on ``(tree, lists)``.

    ``scopes`` carries the distributed ownership masks (``None`` =
    unrestricted).  ``cache_matrices`` materialises leaf/pair kernel
    blocks up to ``matrix_budget`` bytes, U-list first (it dominates the
    near field); disable it to trade apply speed for memory.
    ``precision`` is ``"fp64"`` (default; bit-identical to the
    pre-precision engine) or ``"fp32"`` (float32 matrices / complex64
    hats / float32 tables; see the module docstring for what stays
    float64).  ``"auto"`` must be resolved by the caller first —
    resolution needs a calibration workload this function does not have.
    """
    if precision not in ("fp64", "fp32"):
        raise PrecisionError(
            f"compile_plan precision must be 'fp64' or 'fp32', got "
            f"{precision!r} (resolve 'auto' via the evaluator first)"
        )
    scopes = scopes if scopes is not None else PlanScopes()
    ks, kt = ev.kernel.source_dim, ev.kernel.target_dim
    counts = tree.point_counts()
    plan = EvalPlan(
        fingerprint=tree_fingerprint(tree),
        n_points=tree.n_points,
        ns=ev.ns,
        ks=ks,
        kt=kt,
        kt_eval=ev.eval_kernel.target_dim,
        scoped=scopes.any_set(),
        precision=precision,
    )
    plan._tree = tree
    plan._cache_matrices = bool(cache_matrices)
    plan._mat_left = int(matrix_budget) if cache_matrices else 0

    # -- ULI (compiled first: priority claim on the matrix budget) ---------
    u = lists.u
    for tp, sp, boxes, stot in ev._uli_groups(tree, lists, scopes.uli):
        src_rows = np.full((boxes.size, sp), tree.n_points, dtype=np.int64)
        uslots = [None] * boxes.size if _reuse is not None else None
        for j, i in enumerate(boxes):
            srcs = u.of(i)
            srcs = srcs[counts[srcs] > 0]
            if srcs.size == 0:
                continue
            if _reuse is not None:
                row, uslots[j] = _reuse.uli_slot(tree, i, srcs, tp, sp)
                if row is not None:
                    src_rows[j] = row
                    continue
            idx = np.concatenate(
                [np.arange(tree.pt_begin[a], tree.pt_end[a]) for a in srcs]
            )
            src_rows[j, : idx.size] = idx
        src_pts = np.repeat(tree.centers[boxes][:, None, :], sp, axis=1)
        valid = src_rows != tree.n_points
        src_pts[valid] = tree.points[src_rows[valid]]
        tgt_pts = _padded_points(tree, boxes, tp)
        plan.uli.append(
            _UliBlock(
                tp=tp,
                sp=sp,
                boxes=boxes,
                tgt_pts=tgt_pts,
                src_pts=src_pts,
                den_rows=src_rows,
                pot_rows=_padded_point_rows(tree, boxes, tp),
                kmat=(
                    _maybe_kmat(plan, ev.eval_kernel, tgt_pts, src_pts)
                    if _reuse is None
                    else _patched_kmat(
                        plan, ev.eval_kernel, tgt_pts, src_pts, uslots,
                        _reuse.stats,
                    )
                ),
                flops=ev.eval_kernel.pair_flops(1, 1)
                * float((counts[boxes] * stot).sum()),
            )
        )

    # -- S2U ---------------------------------------------------------------
    sel = tree.is_leaf & (counts > 0)
    if scopes.s2u is not None:
        sel = sel & scopes.s2u
    base_uc: dict[int, np.ndarray] = {}
    mats: dict[int, np.ndarray] = {}
    for lev, pad, group in ev._leaf_batches(tree, sel):
        if lev not in base_uc:
            base_uc[lev] = ev.ops.uc_points(lev)
            # The uc2ue pseudoinverse stays float64 at BOTH precisions:
            # its entries are huge and cancelling (|m| ~ 1/rcond), so a
            # float32 copy loses the cancellation and the up densities
            # with it.  Under an fp32 plan the float32 check potentials
            # feed this float64 GEMM — the per-level mats are tiny, the
            # heavy leaf-kernel GEMMs stay float32, and the fp32 error
            # stays at the float32 floor instead of the pinv's.
            mats[lev] = ev.ops.uc2ue(lev)
        pts = _padded_points(tree, group, pad)
        uc = base_uc[lev][None, :, :] + tree.centers[group][:, None, :]
        plan.s2u.append(
            _LeafBlock(
                level=lev,
                pad=pad,
                group=group,
                pts=pts,
                surf=uc,
                den_rows=_padded_point_rows(tree, group, pad),
                pot_rows=None,
                mat=mats[lev],
                kmat=(
                    _maybe_kmat(plan, ev.kernel, uc, pts)
                    if _reuse is None
                    else _patched_kmat(
                        plan, ev.kernel, uc, pts,
                        _reuse.leaf_slots("s2u", tree, group, lev, pad),
                        _reuse.stats,
                    )
                ),
                flops=ev.kernel.pair_flops(ev.ns, counts[group].sum())
                + 2.0 * group.size * (ev.ns * ks) * (ev.ns * kt),
            )
        )

    # -- D2T ---------------------------------------------------------------
    dsel = tree.is_leaf & (counts > 0)
    if scopes.d2t is not None:
        dsel = dsel & scopes.d2t
    base_de: dict[int, np.ndarray] = {}
    for lev, pad, group in ev._leaf_batches(tree, dsel):
        if lev not in base_de:
            base_de[lev] = ev.ops.de_points(lev)
        pts = _padded_points(tree, group, pad)
        de = base_de[lev][None, :, :] + tree.centers[group][:, None, :]
        plan.d2t.append(
            _LeafBlock(
                level=lev,
                pad=pad,
                group=group,
                pts=pts,
                surf=de,
                den_rows=None,
                pot_rows=_padded_point_rows(tree, group, pad),
                mat=None,
                kmat=(
                    _maybe_kmat(plan, ev.eval_kernel, pts, de)
                    if _reuse is None
                    else _patched_kmat(
                        plan, ev.eval_kernel, pts, de,
                        _reuse.leaf_slots("d2t", tree, group, lev, pad),
                        _reuse.stats,
                    )
                ),
                flops=ev.eval_kernel.pair_flops(counts[group].sum(), ev.ns),
            )
        )

    # -- XLI ---------------------------------------------------------------
    x = lists.x
    xsel = x.counts > 0
    if scopes.xli is not None:
        xsel = xsel & scopes.xli
    rows = np.repeat(np.arange(tree.n_nodes), np.where(xsel, x.counts, 0))
    cols = x.indices[np.repeat(xsel, x.counts)] if x.indices.size else x.indices
    keepx = counts[cols] > 0
    rows, cols = rows[keepx], cols[keepx]
    base_dc: dict[int, np.ndarray] = {}
    for lev, pad, ri, ci in ev._pair_batches(
        tree, rows, cols, tree.levels[rows], counts[cols]
    ):
        if lev not in base_dc:
            base_dc[lev] = ev.ops.dc_points(lev)
        pts = _padded_points(tree, ci, pad)
        dc = base_dc[lev][None, :, :] + tree.centers[ri][:, None, :]
        order, starts, seg = _scatter_schedule(ri)
        plan.xli.append(
            _PairBlock(
                level=lev,
                pad=pad,
                rows=ri,
                cols=ci,
                pts=pts,
                surf=dc,
                den_rows=_padded_point_rows(tree, ci, pad),
                order=order,
                starts=starts,
                seg=seg,
                pot_rows=None,
                kmat=(
                    _maybe_kmat(plan, ev.kernel, dc, pts)
                    if _reuse is None
                    else _patched_kmat(
                        plan, ev.kernel, dc, pts,
                        _reuse.pair_slots(tree, ri, ci, lev, pad),
                        _reuse.stats,
                    )
                ),
                flops=ev.kernel.pair_flops(ev.ns, counts[ci].sum()),
            )
        )

    # -- U2U ---------------------------------------------------------------
    for lev in range(tree.max_level, 0, -1):
        nodes = tree.nodes_at_level(lev)
        nodes = nodes[counts[nodes] > 0]
        if scopes.u2u is not None:
            nodes = nodes[scopes.u2u[nodes]]
        if nodes.size == 0:
            continue
        pos = tree.child_pos[nodes]
        for k in range(8):
            ch = nodes[pos == k]
            if ch.size == 0:
                continue
            m = ev.ops.m2m(lev, k)
            plan.u2u.append(
                _MatStep(
                    mat=m,
                    src=ch,
                    dst=tree.parent[ch],
                    flops=2.0 * ch.size * m.size,
                )
            )

    # -- VLI ---------------------------------------------------------------
    if _reuse is not None and _reuse.vli_reusable(lists, scopes.vli):
        # refinement unchanged + V-list survived: the schedule is purely
        # structural, share the old plan's compiled chunks wholesale
        plan.vli_fft = list(_reuse.old_plan.vli_fft)
        plan.vli_dense = list(_reuse.old_plan.vli_dense)
    elif ev.m2l_mode == "fft":
        fft = ev.fft
        # fp32 plans store each translation hat rounded to complex64 once
        # per (level, offset) — chunks at the same level share the cast.
        # A patch seeds the cache from the old plan: the cast is
        # deterministic, so the shared arrays are bitwise identical.
        hat_c64: dict[tuple, np.ndarray] = (
            {} if _reuse is None else _reuse.fp32_hats()
        )

        def _hat(lev, off):
            that = fft.kernel_hat(lev, off)
            if precision != "fp32":
                return that
            key = (lev, off)
            h32 = hat_c64.get(key)
            if h32 is None:
                h32 = hat_c64[key] = that.astype(np.complex64)
                h32.setflags(write=False)
            return h32

        for lev, usrc, utgt, steps in ev._vli_chunks(tree, lists, scopes.vli):
            plan.vli_fft.append(
                _VChunk(
                    level=lev,
                    usrc=usrc,
                    utgt=utgt,
                    steps=[
                        (off, _hat(lev, off), tpos, spos, npairs)
                        for off, tpos, spos, npairs in steps
                    ],
                )
            )
    else:
        for lev, tgts, srcs, offs in ev._v_pairs_by_level(tree, lists, scopes.vli):
            code = (offs[:, 0] + 3) * 49 + (offs[:, 1] + 3) * 7 + offs[:, 2] + 3
            for c in np.unique(code):
                cs = code == c
                off = tuple(offs[cs][0])
                m = plan._cast(ev.ops.m2l_dense(lev, off))
                plan.vli_dense.append(
                    _MatStep(
                        mat=m,
                        src=srcs[cs],
                        dst=tgts[cs],
                        flops=2.0 * cs.sum() * m.size,
                    )
                )

    # -- D2D ---------------------------------------------------------------
    for lev in range(1, tree.max_level + 1):
        nodes = tree.nodes_at_level(lev)
        if scopes.d2d is not None:
            nodes = nodes[scopes.d2d[nodes]]
        if nodes.size == 0:
            continue
        pos = tree.child_pos[nodes]
        l2l_steps = []
        for k in range(8):
            ch = nodes[pos == k]
            if ch.size == 0:
                continue
            m = ev.ops.l2l(lev, k)
            l2l_steps.append(
                _MatStep(
                    mat=m,
                    src=tree.parent[ch],
                    dst=ch,
                    flops=2.0 * ch.size * m.size,
                )
            )
        conv = ev.ops.dc2de(lev)
        plan.d2d.append(
            _D2dLevel(
                l2l=l2l_steps,
                conv_mat=conv,
                nodes=nodes,
                conv_flops=2.0 * nodes.size * conv.size,
            )
        )

    # -- WLI candidates (schedule itself compiles lazily per up-pattern) ---
    w = lists.w
    wsel = tree.is_leaf & (w.counts > 0) & (counts > 0)
    if scopes.wli is not None:
        wsel = wsel & scopes.wli
    plan.wli_rows = np.repeat(np.arange(tree.n_nodes), np.where(wsel, w.counts, 0))
    plan.wli_cols = (
        w.indices[np.repeat(wsel, w.counts)] if w.indices.size else w.indices
    )

    return plan


def patch_plan(
    ev,
    old_plan: EvalPlan,
    old_tree: FmmTree,
    old_lists,
    tree: FmmTree,
    lists,
    delta: TreeDelta | None = None,
    scopes: PlanScopes | None = None,
    cache_matrices: bool = True,
    matrix_budget: int = MATRIX_BUDGET,
    precision: str | None = None,
    profile=None,
) -> EvalPlan:
    """Recompile only the dirty sections of ``old_plan`` for a new geometry.

    Runs the *same* compile path as :func:`compile_plan` on
    ``(tree, lists)`` — so block structure, budget decisions and the
    resulting plan are bit-identical to a fresh compile by construction —
    but consults a :class:`_PlanReuse` oracle built from the
    :class:`TreeDelta`, which swaps the expensive kernel-matrix
    materialisations (and the per-box ULI gather loops) for copies or
    shared references wherever the delta proves the inputs unchanged.
    Cheap index arrays (gather/scatter schedules, V-list chunk codes,
    operator steps) are always rebuilt: rows shift after the delta merge
    and the rebuild costs milliseconds.

    ``delta`` defaults to a content diff of the two trees
    (:func:`repro.core.tree.diff_trees`), so arbitrary tree pairs patch —
    including per-rank LET trees whose point sets differ.  ``precision``
    defaults to the old plan's; a precision change disables kernel-matrix
    reuse (the stored dtypes differ) but still skips the per-box loops.
    The work runs under a ``setup:patch`` span when ``profile`` is given,
    and ``plan.patch_stats`` records what was reused.
    """
    old_plan.check(old_tree)
    precision = old_plan.precision if precision is None else precision
    if delta is None:
        delta = diff_trees(old_tree, tree)
    reuse = _PlanReuse(old_plan, old_tree, old_lists, delta, precision)

    def _compile() -> EvalPlan:
        return compile_plan(
            ev,
            tree,
            lists,
            scopes=scopes,
            cache_matrices=cache_matrices,
            matrix_budget=matrix_budget,
            precision=precision,
            _reuse=reuse,
        )

    if profile is not None:
        with profile.phase("setup:patch"):
            plan = _compile()
    else:
        plan = _compile()
    plan.patch_stats = dict(reuse.stats)
    return plan
