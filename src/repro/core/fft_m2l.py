"""FFT-diagonalised V-list (M2L) translation.

Because the UE and DC surfaces use the lattice-compatible scale
``(p-1)/(p-2)`` (see :mod:`repro.core.surfaces`), the displacement between
any target DC point and source UE point of a V-list pair is a vector of the
lattice with spacing ``h = 2 r / (p - 2)``:

    x_t - y_s = h * ((p-2) * offset + (g_t - g_s)),   g in {0..p-1}^3.

The check-potential accumulation is therefore a 3-D *circular convolution*
on a ``(2p)^3`` grid: per box one forward FFT of its (surface-embedded)
upward density, a pointwise multiply with the precomputed kernel transform
of the pair's offset, an accumulation in frequency space over all V-list
sources, and one inverse FFT per target box.  This is exactly the paper's
"diagonal translation (in the frequency space)" that the GPU accelerates.

Tensor kernels (Stokes) carry a small ``(target_dim, source_dim)`` matrix
per frequency; the pointwise multiply becomes a tiny matvec.
"""

from __future__ import annotations

import numpy as np

from repro.core import surfaces
from repro.core.operators import level_half_width
from repro.kernels.base import Kernel

__all__ = ["FftM2L"]

_REF_LEVEL = 2


class FftM2L:
    """Precomputed frequency-domain M2L translators plus grid embeddings."""

    def __init__(self, kernel: Kernel, order: int):
        self.kernel = kernel
        self.order = int(order)
        self.n = 2 * order  # convolution grid size per axis (>= 2p-1)
        self.nf = self.n // 2 + 1  # rfft last-axis length
        self.ns = surfaces.n_surface_points(order)
        # Surface flat indices in the n^3 embedding (p-grid sits at origin).
        ijk = surfaces.surface_lattice(order)
        self._surf_n = (ijk[:, 0] * self.n + ijk[:, 1]) * self.n + ijk[:, 2]
        # Signed wrap of grid indices: m -> m or m - n (circular support).
        m = np.arange(self.n)
        self._wrap = np.where(m < order, m, m - self.n)
        self._that: dict[tuple[int, tuple[int, int, int]], np.ndarray] = {}
        #: Per-(requested level, offset) transforms with the homogeneity
        #: scale folded in.  Bounded by (distinct levels) x 316 offsets; for
        #: non-homogeneous kernels entries alias ``_that`` (scale is 1).
        self._that_scaled: dict[
            tuple[int, tuple[int, int, int]], np.ndarray
        ] = {}

    # -- kernel transforms ----------------------------------------------------

    def _canonical(self, level: int) -> tuple[int, float]:
        h = self.kernel.homogeneity
        if h is None:
            return level, 1.0
        lam = 2.0 ** (_REF_LEVEL - level)
        return _REF_LEVEL, lam**h

    def kernel_hat(self, level: int, offset: tuple[int, int, int]) -> np.ndarray:
        """rfft of the kernel tensor for one V-list offset at one level.

        Shape ``(target_dim, source_dim, n, n, nf)`` complex.  The returned
        array is cached (including the homogeneity rescale to ``level``, so
        repeated calls never re-multiply the full grid) and must not be
        mutated by callers.
        """
        skey = (int(level), tuple(int(o) for o in offset))
        scaled = self._that_scaled.get(skey)
        if scaled is not None:
            return scaled
        lvl, fac = self._canonical(level)
        key = (lvl, skey[1])
        that = self._that.get(key)
        if that is None:
            p = self.order
            h = 2.0 * level_half_width(lvl) / (p - 2)
            d = self._wrap
            disp = np.stack(
                np.meshgrid(d, d, d, indexing="ij"), axis=-1
            ).reshape(-1, 3).astype(np.float64)
            disp = h * ((p - 2) * np.asarray(offset, dtype=np.float64) + disp)
            vals = self.kernel.matrix(disp, np.zeros((1, 3)))
            kt, ks = self.kernel.target_dim, self.kernel.source_dim
            t = vals.reshape(self.n, self.n, self.n, kt, ks)
            t = np.moveaxis(t, (3, 4), (0, 1))
            that = self._that[key] = np.fft.rfftn(t, axes=(-3, -2, -1))
            that.setflags(write=False)
        scaled = that if fac == 1.0 else that * fac
        scaled.setflags(write=False)
        self._that_scaled[skey] = scaled
        return scaled

    # -- grid embeddings --------------------------------------------------------

    def forward(self, u: np.ndarray, dtype=np.float64) -> np.ndarray:
        """Surface densities -> frequency grids.

        ``u`` has shape ``(n_boxes, ns * source_dim)`` with dof interleaved
        per point; output is ``(n_boxes, source_dim, n, n, nf)`` complex.
        ``dtype`` sets the grid precision: float32 grids yield complex64
        transforms (the fp32 plans), float64 the historical complex128.
        """
        nb = u.shape[0]
        ks = self.kernel.source_dim
        grids = np.zeros((nb, ks, self.n**3), dtype=dtype)
        grids[:, :, self._surf_n] = u.reshape(nb, self.ns, ks).transpose(0, 2, 1)
        grids = grids.reshape(nb, ks, self.n, self.n, self.n)
        return np.fft.rfftn(grids, axes=(-3, -2, -1))

    def forward_multi(self, u: np.ndarray, dtype=np.float64) -> np.ndarray:
        """Multi-RHS :meth:`forward`: ``(n_boxes, q, ns * source_dim)`` in,
        ``(n_boxes, q, source_dim, n, n, nf)`` out.

        Each ``[:, j]`` slice is bit-identical to ``forward(u[:, j])``:
        the grid embedding is pure data movement and pocketfft transforms
        are computed independently per batch slot.
        """
        nb, q = u.shape[0], u.shape[1]
        ks = self.kernel.source_dim
        grids = np.zeros((nb, q, ks, self.n**3), dtype=dtype)
        grids[:, :, :, self._surf_n] = u.reshape(nb, q, self.ns, ks).transpose(
            0, 1, 3, 2
        )
        grids = grids.reshape(nb, q, ks, self.n, self.n, self.n)
        return np.fft.rfftn(grids, axes=(-3, -2, -1))

    def inverse_multi(self, acc: np.ndarray) -> np.ndarray:
        """Multi-RHS :meth:`inverse`: ``(n_boxes, q, target_dim, n, n, nf)``
        in, ``(n_boxes, q, ns * target_dim)`` out (per-slice bit-identical)."""
        nb, q = acc.shape[0], acc.shape[1]
        kt = self.kernel.target_dim
        grids = np.fft.irfftn(acc, s=(self.n,) * 3, axes=(-3, -2, -1))
        vals = grids.reshape(nb, q, kt, self.n**3)[:, :, :, self._surf_n]
        return vals.transpose(0, 1, 3, 2).reshape(nb, q, self.ns * kt)

    def translate(self, that: np.ndarray, uhat: np.ndarray) -> np.ndarray:
        """Pointwise (diagonal) frequency-space translation.

        ``that``: ``(kt, ks, n, n, nf)``; ``uhat``: ``(..., ks, n, n, nf)``
        with any leading batch dims (boxes, or boxes x densities for the
        multi-RHS path); returns ``(..., kt, n, n, nf)``.

        Written as an explicit sum of elementwise products rather than an
        einsum: each output element is a fixed-order chain of complex
        multiply-adds, so the result is bit-identical for any leading
        batch shape — one multi-RHS call over ``(nb, q, ks, ...)`` matches
        ``q`` single calls exactly.  (``einsum(optimize=True)`` picks
        shape-dependent contraction paths, which breaks that, and never
        vectorises this memory-bound product as well anyway.)
        """
        kt, ks = that.shape[0], that.shape[1]
        out = np.empty(
            uhat.shape[:-4] + (kt,) + uhat.shape[-3:],
            dtype=np.result_type(that, uhat),
        )
        for t in range(kt):
            acc = that[t, 0] * uhat[..., 0, :, :, :]
            for s in range(1, ks):
                acc += that[t, s] * uhat[..., s, :, :, :]
            out[..., t, :, :, :] = acc
        return out

    def inverse(self, acc: np.ndarray) -> np.ndarray:
        """Frequency accumulators -> check potentials on the surface points.

        ``acc``: ``(n_boxes, target_dim, n, n, nf)``; returns
        ``(n_boxes, ns * target_dim)`` with dof interleaved per point.
        """
        nb = acc.shape[0]
        kt = self.kernel.target_dim
        grids = np.fft.irfftn(acc, s=(self.n,) * 3, axes=(-3, -2, -1))
        vals = grids.reshape(nb, kt, self.n**3)[:, :, self._surf_n]
        return vals.transpose(0, 2, 1).reshape(nb, self.ns * kt)

    # -- flop model ---------------------------------------------------------------

    def fft_flops_per_box(self) -> float:
        """Charge of one forward or inverse grid FFT (per dof component)."""
        n3 = self.n**3
        return 5.0 * n3 * np.log2(max(n3, 2))

    def translate_flops_per_pair(self) -> float:
        """Charge of one frequency-space pointwise translation."""
        kt, ks = self.kernel.target_dim, self.kernel.source_dim
        # complex multiply-add ~ 8 flops
        return 8.0 * kt * ks * self.n * self.n * self.nf
