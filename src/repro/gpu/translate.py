"""CPU -> GPU data-structure translation (paper §IV / Algorithm 4 setup).

The evaluation tree uses pointers and ragged lists; the device wants flat,
streaming-friendly arrays.  The paper flags this translation as one of its
contributions ("carefully constructed data structure transformations ...
whose cost we show is minor", "somewhat high memory footprint").

:class:`UListStream` is the Algorithm 4 layout: target boxes padded to a
multiple of the thread-block size ``b`` (padded slots carry NaN targets —
harmless under the kernel's IEEE ``fmax`` trick and discarded on unpack),
plus a per-box CSR of source slices into one flat source array of
``(x, y, z, density...)`` records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lists import InteractionLists
from repro.core.tree import FmmTree

__all__ = ["UListStream", "LeafStream", "build_u_stream", "build_leaf_stream"]


@dataclass
class UListStream:
    """Flattened U-list interaction structure (Algorithm 4 input)."""

    boxes: np.ndarray  # leaf node index per streamed box
    tgt_offsets: np.ndarray  # (n_boxes + 1,) offsets into padded targets
    tgt_points: np.ndarray  # (n_padded, 3) float32, NaN in padding slots
    tgt_valid: np.ndarray  # (n_padded,) bool
    src_offsets: np.ndarray  # (n_boxes + 1,) offsets into flat sources
    src_points: np.ndarray  # (n_src_total, 3) float32
    src_dens_index: np.ndarray  # (n_src_total,) int: row into density table

    @property
    def n_boxes(self) -> int:
        return self.boxes.size

    def padded_pairs(self, block: int) -> float:
        """Total (padded-target x source) pairs the device will process."""
        total = 0
        for i in range(self.n_boxes):
            nt = self.tgt_offsets[i + 1] - self.tgt_offsets[i]
            ns = self.src_offsets[i + 1] - self.src_offsets[i]
            ns_padded = -(-int(ns) // block) * block
            total += int(nt) * ns_padded
        return float(total)


@dataclass
class LeafStream:
    """Per-leaf stream for the S2U / D2T phases.

    Surface points are *not* stored: the device kernels regenerate them
    from (center, half_width) — the paper's trick of producing the regular
    surface positions from data resident in shared memory, which is what
    buys the ">50X speed-up for those phases".
    """

    boxes: np.ndarray  # leaf node index per box
    levels: np.ndarray
    centers: np.ndarray  # float32 (n_boxes, 3)
    half_widths: np.ndarray  # float32 (n_boxes,)
    pt_offsets: np.ndarray  # (n_boxes + 1,) offsets into flat points
    points: np.ndarray  # float32 flat leaf points


def _pad_to(n: int, block: int) -> int:
    return -(-n // block) * block


def build_u_stream(
    tree: FmmTree,
    lists: InteractionLists,
    block: int,
    leaf_sel: np.ndarray,
) -> UListStream:
    """Flatten the U-list of the selected leaves into the device layout."""
    boxes = np.flatnonzero(leaf_sel)
    counts = tree.point_counts()
    tgt_offsets = [0]
    src_offsets = [0]
    tgt_parts, valid_parts, src_parts, den_idx_parts = [], [], [], []
    for i in boxes:
        pts = tree.leaf_points(i)
        npad = _pad_to(len(pts), block)
        block_pts = np.full((npad, 3), np.nan, dtype=np.float32)
        block_pts[: len(pts)] = pts
        tgt_parts.append(block_pts)
        v = np.zeros(npad, dtype=bool)
        v[: len(pts)] = True
        valid_parts.append(v)
        tgt_offsets.append(tgt_offsets[-1] + npad)

        srcs = lists.u.of(i)
        srcs = srcs[counts[srcs] > 0]
        if srcs.size:
            sp = np.concatenate([tree.leaf_points(a) for a in srcs]).astype(
                np.float32
            )
            di = np.concatenate(
                [np.arange(tree.pt_begin[a], tree.pt_end[a]) for a in srcs]
            )
        else:
            sp = np.empty((0, 3), dtype=np.float32)
            di = np.empty(0, dtype=np.int64)
        src_parts.append(sp)
        den_idx_parts.append(di)
        src_offsets.append(src_offsets[-1] + len(sp))

    return UListStream(
        boxes=boxes,
        tgt_offsets=np.asarray(tgt_offsets, dtype=np.int64),
        tgt_points=(
            np.concatenate(tgt_parts)
            if tgt_parts
            else np.empty((0, 3), dtype=np.float32)
        ),
        tgt_valid=(
            np.concatenate(valid_parts) if valid_parts else np.empty(0, dtype=bool)
        ),
        src_offsets=np.asarray(src_offsets, dtype=np.int64),
        src_points=(
            np.concatenate(src_parts)
            if src_parts
            else np.empty((0, 3), dtype=np.float32)
        ),
        src_dens_index=(
            np.concatenate(den_idx_parts)
            if den_idx_parts
            else np.empty(0, dtype=np.int64)
        ),
    )


def build_leaf_stream(tree: FmmTree, leaf_sel: np.ndarray) -> LeafStream:
    """Flatten leaf geometry + points for the S2U / D2T device phases."""
    boxes = np.flatnonzero(leaf_sel)
    offsets = [0]
    parts = []
    for i in boxes:
        pts = tree.leaf_points(i)
        parts.append(pts.astype(np.float32))
        offsets.append(offsets[-1] + len(pts))
    return LeafStream(
        boxes=boxes,
        levels=tree.levels[boxes].copy(),
        centers=tree.centers[boxes].astype(np.float32),
        half_widths=tree.half_widths[boxes].astype(np.float32),
        pt_offsets=np.asarray(offsets, dtype=np.int64),
        points=(
            np.concatenate(parts) if parts else np.empty((0, 3), dtype=np.float32)
        ),
    )
