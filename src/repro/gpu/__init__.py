"""Virtual GPU acceleration (paper §IV).

No physical GPU exists in this environment, so the CUDA layer is
reproduced as a *virtual device*: kernels execute their real numerics in
single precision (as the paper's CUDA code did) with an explicit
grid/block/shared-memory structure, while a device performance model
(S1070-era constants) converts the counted flops, global-memory traffic
and PCIe transfers into modelled kernel times.  The accelerated phases
are the paper's: S2U, VLI (frequency-space diagonal translation; FFTs
stay on the CPU), ULI (Algorithm 4) and D2T.  U2U, D2D, W- and X-lists
remain on the CPU, exactly as in the paper's implementation.
"""

from repro.gpu.device import DeviceModel, GpuLedger, TESLA_S1070, VirtualGpu
from repro.gpu.accel import GpuFmmEvaluator

__all__ = [
    "DeviceModel",
    "GpuLedger",
    "TESLA_S1070",
    "VirtualGpu",
    "GpuFmmEvaluator",
]
