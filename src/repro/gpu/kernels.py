"""Device kernels of the accelerated phases (paper §IV, Algorithm 4).

All numerics run in single precision.  The direct-interaction kernel uses
the paper's IEEE trick to skip self-interactions without a branch: the
geometric factor ``1/r`` is passed through ``x + (x - x)`` (infinity
becomes NaN) and ``fmax(x, 0)`` (NaN becomes 0), which also neutralises
the NaN-padded target slots of the streamed layout.

Cost accounting follows the CUDA execution model: a thread block of ``b``
threads owns ``b`` (padded) targets and sweeps the box's sources in
shared-memory tiles of ``b``; flops are charged for the *padded* pair
count (padding is real work on a real device — this is what makes the
points-per-box sweep of Table III reproduce its U-shape).  For host-side
simulation speed, boxes with the same padded shapes execute as one
broadcast batch; the charged cost is identical to per-box execution.
"""

from __future__ import annotations

import numpy as np

from repro.core.operators import OperatorCache
from repro.gpu.device import VirtualGpu
from repro.gpu.translate import LeafStream, UListStream
from repro.kernels.base import Kernel
from repro.kernels.laplace import LaplaceKernel

__all__ = ["gpu_uli", "gpu_s2u", "gpu_d2t", "pairwise_f32", "pairwise_f32_batch"]

_F32_4PI_INV = np.float32(1.0 / (4.0 * np.pi))


def _laplace_tile_f32(tgt: np.ndarray, src: np.ndarray, dens: np.ndarray):
    """One shared-memory tile of Algorithm 4's inner loop (Laplace).

    ``tgt``: (m, 3) float32 (NaN rows are padding); ``src``: (n, 3);
    ``dens``: (n,).  Returns the (m,) float32 partial potentials.
    """
    d = tgt[:, None, :] - src[None, :, :]
    r2 = np.einsum("mnk,mnk->mn", d, d)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = np.float32(1.0) / np.sqrt(r2)
        # x + (x - x): infinity -> NaN, finite values unchanged
        inv = inv + (inv - inv)
    # fmax(NaN, 0) = 0: drops self-interactions and NaN padding rows
    inv = np.fmax(inv, np.float32(0.0))
    return _F32_4PI_INV * (inv @ dens)


def _laplace_batch_f32(tgt: np.ndarray, src: np.ndarray, dens: np.ndarray):
    """Batched Laplace tiles: (b,m,3) x (b,n,3) x (b,n) -> (b,m) float32."""
    d = tgt[:, :, None, :] - src[:, None, :, :]
    r2 = np.einsum("bmnk,bmnk->bmn", d, d)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = np.float32(1.0) / np.sqrt(r2)
        inv = inv + (inv - inv)
    inv = np.fmax(inv, np.float32(0.0))
    return _F32_4PI_INV * np.einsum("bmn,bn->bm", inv, dens)


def pairwise_f32(
    kernel: Kernel, tgt: np.ndarray, src: np.ndarray, dens: np.ndarray
) -> np.ndarray:
    """Single-precision pairwise interaction of one tile.

    Laplace uses the branch-free CUDA formulation; other kernels fall back
    to the kernel matrix evaluated on the (already float32-rounded) inputs
    with the result demoted to float32 — numerically equivalent to a
    straightforward CUDA port.
    """
    if isinstance(kernel, LaplaceKernel) and kernel.softening == 0.0:
        return _laplace_tile_f32(tgt, src, dens)
    valid = ~np.isnan(tgt[:, 0])
    out = np.zeros(len(tgt) * kernel.target_dim, dtype=np.float32)
    if valid.any() and len(src):
        res = kernel.matrix(
            tgt[valid].astype(np.float64), src.astype(np.float64)
        ) @ dens.astype(np.float64)
        out.reshape(len(tgt), kernel.target_dim)[valid] = (
            res.astype(np.float32).reshape(-1, kernel.target_dim)
        )
    return out


def pairwise_f32_batch(
    kernel: Kernel, tgt: np.ndarray, src: np.ndarray, dens: np.ndarray
) -> np.ndarray:
    """Batched single-precision tiles.

    ``tgt``: (b, m, 3); ``src``: (b, n, 3); ``dens``: (b, n*source_dim);
    returns (b, m*target_dim) float32.  NaN target rows produce zeros.
    """
    if isinstance(kernel, LaplaceKernel) and kernel.softening == 0.0:
        return _laplace_batch_f32(tgt, src, dens)
    k = kernel.matrix_batch(
        np.nan_to_num(tgt.astype(np.float64)), src.astype(np.float64)
    ).astype(np.float32)
    out = np.einsum("bij,bj->bi", k, dens.astype(np.float32))
    bad = np.isnan(tgt[:, :, 0])
    if bad.any():
        kt = kernel.target_dim
        out.reshape(tgt.shape[0], tgt.shape[1], kt)[bad] = 0.0
    return out


def gpu_uli(
    gpu: VirtualGpu,
    stream: UListStream,
    dens_dev: np.ndarray,
    kernel: Kernel,
    phase: str = "ULI",
) -> np.ndarray:
    """Algorithm 4: direct (U-list) interactions on the device.

    ``dens_dev`` is the float32 density table indexed by
    ``stream.src_dens_index`` rows.  Returns padded float32 potentials
    aligned with ``stream.tgt_points``.  Boxes sharing padded shapes are
    batched; accounting is per the per-box CUDA model.
    """
    b = gpu.block_size
    kt = kernel.target_dim
    ks = kernel.source_dim
    out = np.zeros(len(stream.tgt_points) * kt, dtype=np.float32)
    n_tgt = np.diff(stream.tgt_offsets)
    n_src = np.diff(stream.src_offsets)
    n_src_pad = -(-np.maximum(n_src, 1) // b) * b
    flops = float(
        (kernel.flops_per_pair * n_tgt * np.where(n_src > 0, n_src_pad, 0)).sum()
    )
    gbytes = 0.0
    # group boxes by identical padded shapes and batch them
    code = n_tgt * np.int64(1 << 32) + n_src_pad
    active = np.flatnonzero((n_tgt > 0) & (n_src > 0))
    dens_rows = dens_dev.reshape(-1, ks)
    for c in np.unique(code[active]):
        grp = active[code[active] == c]
        tpad = int(n_tgt[grp[0]])
        spad = int(n_src_pad[grp[0]])
        # memory budget: ~64 MB of pair distances per chunk
        chunk = max(1, int(6e7 / max(tpad * spad, 1)))
        for s in range(0, grp.size, chunk):
            boxes = grp[s : s + chunk]
            m = boxes.size
            tgt = np.empty((m, tpad, 3), dtype=np.float32)
            src = np.full((m, spad, 3), np.nan, dtype=np.float32)
            den = np.zeros((m, spad * ks), dtype=np.float32)
            for j, i in enumerate(boxes):
                t0, t1 = stream.tgt_offsets[i], stream.tgt_offsets[i + 1]
                s0, s1 = stream.src_offsets[i], stream.src_offsets[i + 1]
                tgt[j] = stream.tgt_points[t0:t1]
                src[j, : s1 - s0] = stream.src_points[s0:s1]
                den[j, : (s1 - s0) * ks] = dens_rows[
                    stream.src_dens_index[s0:s1]
                ].reshape(-1)
                # each target block loads every source tile once
                gbytes += (t1 - t0) // b * ((s1 - s0) * 16.0)
                gbytes += (t1 - t0) * (12.0 + 4.0 * kt)
            # NaN sources would poison even the fmax trick through the
            # density product; zero-density pad points at the box centre
            src = np.where(np.isnan(src), tgt[:, :1, :], src)
            vals = pairwise_f32_batch(kernel, tgt, src, den)
            for j, i in enumerate(boxes):
                t0, t1 = stream.tgt_offsets[i], stream.tgt_offsets[i + 1]
                out[t0 * kt : t1 * kt] += vals[j]
    gpu.charge_launch(phase, flops, gbytes)
    return out


def gpu_s2u(
    gpu: VirtualGpu,
    stream: LeafStream,
    dens_dev: np.ndarray,
    dens_offsets: np.ndarray,
    kernel: Kernel,
    ops: OperatorCache,
    phase: str = "S2U",
) -> np.ndarray:
    """Source-to-up on the device: check potentials + equivalent solve.

    Returns float32 upward densities, one row per streamed leaf.  Surface
    points are regenerated from (centre, level) — no global loads for
    geometry (the paper's 50x trick).
    """
    ks, kt = kernel.source_dim, kernel.target_dim
    ns = ops.n_surf
    nb = stream.boxes.size
    up = np.zeros((nb, ns * ks), dtype=np.float32)
    counts = np.diff(stream.pt_offsets)
    flops = float(
        (kernel.flops_per_pair * ns * counts).sum()
        + 2.0 * nb * (ns * ks) * (ns * kt)
    )
    gbytes = float(counts.sum() * (12.0 + 4.0 * ks) + up.nbytes)
    kpad = np.maximum(1 << np.ceil(np.log2(np.maximum(counts, 1))).astype(np.int64), 1)
    code = stream.levels * np.int64(1 << 24) + kpad
    active = np.flatnonzero(counts > 0)
    for c in np.unique(code[active]):
        grp = active[code[active] == c]
        lev = int(stream.levels[grp[0]])
        pad = int(kpad[grp[0]])
        base = ops.uc_points(lev).astype(np.float32)
        conv = ops.uc2ue_f32(lev).astype(np.float32)
        chunk = max(1, int(6e7 / max(ns * pad, 1)))
        for s in range(0, grp.size, chunk):
            boxes = grp[s : s + chunk]
            m = boxes.size
            pts = np.repeat(stream.centers[boxes][:, None, :], pad, axis=1)
            den = np.zeros((m, pad * ks), dtype=np.float32)
            for j, i in enumerate(boxes):
                p0, p1 = stream.pt_offsets[i], stream.pt_offsets[i + 1]
                pts[j, : p1 - p0] = stream.points[p0:p1]
                den[j, : (p1 - p0) * ks] = dens_dev[
                    dens_offsets[i] * ks : dens_offsets[i + 1] * ks
                ]
            uc = base[None, :, :] + stream.centers[boxes][:, None, :]
            q = pairwise_f32_batch(kernel, uc, pts, den)
            up[boxes] = q @ conv.T
    gpu.charge_launch(phase, flops, gbytes)
    return up


def gpu_d2t(
    gpu: VirtualGpu,
    stream: LeafStream,
    dequiv_dev: np.ndarray,
    kernel: Kernel,
    ops: OperatorCache,
    phase: str = "D2T",
) -> np.ndarray:
    """Down-to-targets on the device: evaluate DE densities at leaf points.

    ``dequiv_dev``: float32 (n_boxes, ns*ks) downward equivalent densities
    aligned with the stream.  Returns flat float32 potentials aligned with
    ``stream.points``.
    """
    ks, kt = kernel.source_dim, kernel.target_dim
    ns = ops.n_surf
    out = np.zeros(len(stream.points) * kt, dtype=np.float32)
    counts = np.diff(stream.pt_offsets)
    flops = float((kernel.flops_per_pair * counts * ns).sum())
    gbytes = float(counts.sum() * (12.0 + 4.0 * kt) + dequiv_dev.nbytes)
    kpad = np.maximum(1 << np.ceil(np.log2(np.maximum(counts, 1))).astype(np.int64), 1)
    code = stream.levels * np.int64(1 << 24) + kpad
    active = np.flatnonzero(counts > 0)
    for c in np.unique(code[active]):
        grp = active[code[active] == c]
        lev = int(stream.levels[grp[0]])
        pad = int(kpad[grp[0]])
        base = ops.de_points(lev).astype(np.float32)
        chunk = max(1, int(6e7 / max(ns * pad, 1)))
        for s in range(0, grp.size, chunk):
            boxes = grp[s : s + chunk]
            m = boxes.size
            pts = np.repeat(stream.centers[boxes][:, None, :], pad, axis=1)
            for j, i in enumerate(boxes):
                p0, p1 = stream.pt_offsets[i], stream.pt_offsets[i + 1]
                pts[j, : p1 - p0] = stream.points[p0:p1]
            de = base[None, :, :] + stream.centers[boxes][:, None, :]
            vals = pairwise_f32_batch(kernel, pts, de, dequiv_dev[boxes])
            for j, i in enumerate(boxes):
                p0, p1 = stream.pt_offsets[i], stream.pt_offsets[i + 1]
                out[p0 * kt : p1 * kt] += vals[j, : (p1 - p0) * kt]
    gpu.charge_launch(phase, flops, gbytes)
    return out
