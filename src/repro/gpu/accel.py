"""GPU-accelerated FMM evaluator.

Subclasses :class:`FmmEvaluator`, overriding exactly the phases the paper
accelerates — S2U, VLI (diagonal translation; FFTs remain on the CPU),
D2T and ULI — with virtual-device kernels.  U2U, D2D, W- and X-lists stay
on the CPU, matching the paper's implementation ("The U2U and D2D
traversals and XLI, WLI remain sequential").

The CPU->GPU data-structure translation runs per evaluation and is timed
under the ``translate`` phase so its (minor) cost is visible, as in the
paper's analysis.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.core.evaluator import FmmEvaluator
from repro.gpu.device import GpuDeviceFault, VirtualGpu
from repro.gpu.kernels import gpu_d2t, gpu_s2u, gpu_uli
from repro.gpu.translate import build_leaf_stream, build_u_stream
from repro.kernels.base import Kernel

__all__ = ["GpuFmmEvaluator"]

_log = logging.getLogger("repro.gpu")


class GpuFmmEvaluator(FmmEvaluator):
    """Drop-in evaluator that offloads S2U / VLI / D2T / ULI to a GPU.

    ``accelerate_wx`` additionally moves the W- and X-list phases onto the
    device — the paper's stated *ongoing work* ("transferring the W,X-lists
    on the GPU"), implemented here as an optional extension.  The default
    matches the paper's configuration (W/X on the CPU).
    """

    def __init__(
        self,
        kernel: Kernel,
        order: int,
        gpu: VirtualGpu | None = None,
        m2l_mode: str = "fft",
        rcond: float | None = None,
        accelerate_wx: bool = False,
        precision: str = "fp64",
        precision_rtol: float | None = None,
    ):
        super().__init__(
            kernel,
            order,
            m2l_mode=m2l_mode,
            rcond=rcond,
            precision=precision,
            precision_rtol=precision_rtol,
        )
        self.gpu = gpu if gpu is not None else VirtualGpu()
        self.accelerate_wx = bool(accelerate_wx)
        # the dual-kernel (gradient) evaluation path is CPU-only
        assert self.eval_kernel is self.kernel

    #: Lazily compiled plans skip host-side kernel-matrix caches: the
    #: device kernels regenerate surface geometry on chip, so the cached
    #: blocks would never be read on the accelerated phases.
    PLAN_CACHE_MATRICES = False

    #: Device staging moves one density vector per transfer; multi-RHS
    #: blocks fall back to a bit-identical per-column loop (see
    #: ``FmmEvaluator.evaluate_multi``).
    SUPPORTS_MULTI_RHS = False

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _ragged_rows(begin: np.ndarray, cnts: np.ndarray):
        """Concatenated ``arange(begin[j], begin[j]+cnts[j])`` + offsets."""
        offsets = np.concatenate(([0], np.cumsum(cnts))).astype(np.int64)
        rows = (
            np.repeat(begin.astype(np.int64) - offsets[:-1], cnts)
            + np.arange(offsets[-1], dtype=np.int64)
        )
        return rows, offsets

    @staticmethod
    def _plan_cache(plan, key, builder):
        """Density-independent GPU staging schedule, cached on the plan."""
        val = plan.gpu.get(key)
        if val is None:
            val = plan.gpu[key] = builder()
        return val

    @staticmethod
    def _boxes_mask(tree, groups) -> np.ndarray:
        sel = np.zeros(tree.n_nodes, dtype=bool)
        for g in groups:
            sel[g] = True
        return sel

    def _device_ok(self, phase: str, profile) -> bool:
        """Probe the device at phase entry; degrade to the CPU on a fault.

        The check happens *before* any device work or accumulator
        mutation, so the CPU path re-runs the whole phase and results
        stay bit-identical to a pure-CPU evaluator (all overrides call
        ``super()``).  The fallback is logged and marked with a
        zero-delta ``RECOVERY:gpu_fallback:<phase>`` span — a marker, not
        a wrapper, so the phase's flops stay attributed to the phase
        itself and ledgers remain comparable to the CPU baseline.
        """
        try:
            self.gpu.check_phase(phase)
        except GpuDeviceFault as exc:
            _log.warning(
                "virtual GPU unavailable for %s (%s): falling back to CPU",
                phase,
                exc.kind,
            )
            with profile.phase(f"RECOVERY:gpu_fallback:{phase}"):
                pass
            return False
        return True

    def _leaf_density_block(self, tree, dens, boxes):
        """Flat density slice per streamed leaf + offsets (device copy)."""
        ks = self.kernel.source_dim
        parts = [
            dens[tree.pt_begin[i] * ks : tree.pt_end[i] * ks] for i in boxes
        ]
        offsets = np.concatenate(
            [[0], np.cumsum([tree.pt_end[i] - tree.pt_begin[i] for i in boxes])]
        ).astype(np.int64)
        flat = np.concatenate(parts) if parts else np.empty(0)
        return flat, offsets

    # -- accelerated phases -------------------------------------------------

    def s2u(self, tree, dens, state, profile, scope=None, plan=None) -> None:
        if not self._device_ok("S2U", profile):
            super().s2u(tree, dens, state, profile, scope, plan=plan)
            return
        if plan is not None:
            # The plan caches the device stream and the flat gather rows,
            # so repeated applies stage densities with one fancy index.
            def _stage():
                sel = self._boxes_mask(tree, (b.group for b in plan.s2u))
                stream = build_leaf_stream(tree, sel)
                cnts = tree.pt_end[stream.boxes] - tree.pt_begin[stream.boxes]
                rows, offsets = self._ragged_rows(tree.pt_begin[stream.boxes], cnts)
                return stream, rows, offsets

            with profile.phase("translate"):
                stream, rows, offsets = self._plan_cache(plan, "s2u", _stage)
                ks = self.kernel.source_dim
                flat = dens.reshape(tree.n_points, ks)[rows].reshape(-1)
        else:
            counts = tree.point_counts()
            sel = tree.is_leaf & (counts > 0)
            if scope is not None:
                sel = sel & scope
            with profile.phase("translate"):
                stream = build_leaf_stream(tree, sel)
                flat, offsets = self._leaf_density_block(tree, dens, stream.boxes)
        dens_dev = self.gpu.to_device(flat, phase="S2U")
        up32 = gpu_s2u(
            self.gpu, stream, dens_dev, offsets, self.kernel, self.ops
        )
        up_host = self.gpu.to_host(up32, phase="S2U")
        state["up"][stream.boxes] = up_host
        profile.add_flops(0.0)  # CPU does no arithmetic here

    def vli(self, tree, lists, state, profile, scope=None, plan=None) -> None:
        """FFT-diagonalised V-list with the multiply on the device.

        Per the paper, per-octant FFTs run on the CPU; only the pointwise
        frequency-space translation is offloaded.  Dense mode has no GPU
        path and falls back to the CPU implementation.  With a plan, the
        chunk schedules come precompiled and the complex64 kernel
        transforms the device consumes are cached on the plan, so repeated
        applies skip both the pair grouping and the narrowing casts.
        """
        if self.m2l_mode != "fft" or not self._device_ok("VLI", profile):
            super().vli(tree, lists, state, profile, scope, plan=plan)
            return
        up, dcheck = state["up"], state["dcheck"]
        fft = self.fft
        kt, ks = self.kernel.target_dim, self.kernel.source_dim
        fp32_plan = plan is not None and plan.precision == "fp32"
        if plan is not None:
            # fp32 plans already carry complex64 kernel transforms — the
            # device consumes the plan's shared buffers directly, with no
            # side cache and no per-apply narrowing casts.
            that32 = None if fp32_plan else plan.gpu.setdefault("vli_that32", {})
            chunks = (
                (ch.level, ch.usrc, ch.utgt, ch.steps) for ch in plan.vli_fft
            )
        else:
            that32 = {}
            chunks = (
                (lev, usrc, utgt,
                 [(off, fft.kernel_hat(lev, off), tpos, spos, npairs)
                  for off, tpos, spos, npairs in steps])
                for lev, usrc, utgt, steps in self._vli_chunks(tree, lists, scope)
            )
        for lev, usrc, utgt, steps in chunks:
            # CPU: forward FFTs (float32 grids under an fp32 plan, so the
            # rfft emits complex64 directly instead of narrowing after)
            if fp32_plan:
                uhat = fft.forward(up[usrc], dtype=np.float32)
            else:
                uhat = fft.forward(up[usrc]).astype(np.complex64)
            profile.add_flops(usrc.size * ks * fft.fft_flops_per_box())
            nbytes_grid = uhat[0].nbytes if usrc.size else 0
            self.gpu.ledger.charge_transfer(
                "VLI",
                self.gpu.model.transfer_seconds(uhat.nbytes),
                uhat.nbytes,
            )
            acc = np.zeros(
                (utgt.size, kt, fft.n, fft.n, fft.nf), dtype=np.complex64
            )
            flops = 0.0
            gbytes = 0.0
            for off, that, tpos, spos, npairs in steps:
                if that32 is None:
                    t32 = that  # already complex64, owned by the plan
                else:
                    t32 = that32.get((lev, off))
                    if t32 is None:
                        t32 = that32[(lev, off)] = that.astype(np.complex64)
                acc[tpos] += fft.translate(t32, uhat[spos])
                flops += npairs * fft.translate_flops_per_pair()
                # low arithmetic intensity: every pair streams a grid
                gbytes += npairs * (2.0 * nbytes_grid) + t32.nbytes
            self.gpu.charge_launch("VLI", flops, gbytes)
            self.gpu.ledger.charge_transfer(
                "VLI", self.gpu.model.transfer_seconds(acc.nbytes), acc.nbytes
            )
            # CPU: inverse FFTs and surface gather
            dcheck[utgt] += fft.inverse(acc.astype(np.complex128))
            profile.add_flops(utgt.size * kt * fft.fft_flops_per_box())

    def d2t(self, tree, state, profile, scope=None, plan=None) -> None:
        if not self._device_ok("D2T", profile):
            super().d2t(tree, state, profile, scope, plan=plan)
            return
        kt = self.kernel.target_dim
        if plan is not None:
            # Device results come back contiguous in stream order, so the
            # cached target-point rows scatter them in one fancy add.
            def _stage():
                sel = self._boxes_mask(tree, (b.group for b in plan.d2t))
                stream = build_leaf_stream(tree, sel)
                cnts = tree.pt_end[stream.boxes] - tree.pt_begin[stream.boxes]
                rows, _ = self._ragged_rows(tree.pt_begin[stream.boxes], cnts)
                return stream, rows

            with profile.phase("translate"):
                stream, rows = self._plan_cache(plan, "d2t", _stage)
        else:
            counts = tree.point_counts()
            sel = tree.is_leaf & (counts > 0)
            if scope is not None:
                sel = sel & scope
            with profile.phase("translate"):
                stream = build_leaf_stream(tree, sel)
            rows = None
        deq_dev = self.gpu.to_device(
            state["dequiv"][stream.boxes], phase="D2T"
        )
        pot32 = gpu_d2t(self.gpu, stream, deq_dev, self.kernel, self.ops)
        pot_host = self.gpu.to_host(pot32, phase="D2T")
        pot = state["pot"]
        if rows is not None:
            pot.reshape(-1, kt)[rows] += pot_host.reshape(-1, kt)
            return
        for j, i in enumerate(stream.boxes):
            p0, p1 = stream.pt_offsets[j], stream.pt_offsets[j + 1]
            pot[tree.pt_begin[i] * kt : tree.pt_end[i] * kt] += pot_host[
                p0 * kt : p1 * kt
            ]

    def wli(self, tree, lists, state, profile, scope=None, plan=None) -> None:
        """W-list on the device when ``accelerate_wx`` is set.

        Source UE surface points are generated on the fly (as in S2U);
        only the target particles and up densities cross global memory.
        The device path is per-box and plan-free (the plan only speeds up
        the host paths it falls back to).
        """
        if not self.accelerate_wx or not self._device_ok("WLI", profile):
            super().wli(tree, lists, state, profile, scope, plan=plan)
            return
        from repro.gpu.kernels import pairwise_f32

        kt = self.kernel.target_dim
        up, pot = state["up"], state["pot"]
        counts = tree.point_counts()
        w = lists.w
        sel = tree.is_leaf & (w.counts > 0) & (counts > 0)
        if scope is not None:
            sel = sel & scope
        flops = 0.0
        gbytes = 0.0
        for i in np.flatnonzero(sel):
            pts = tree.leaf_points(i).astype(np.float32)
            row = np.zeros(len(pts) * kt, dtype=np.float32)
            for a in w.of(i):
                if not up[a].any():
                    continue
                ue = self.ops.ue_points(tree.levels[a], tree.centers[a]).astype(
                    np.float32
                )
                row += pairwise_f32(
                    self.kernel, pts, ue, up[a].astype(np.float32)
                )
                flops += self.kernel.pair_flops(len(pts), self.ns)
                gbytes += up[a].nbytes / 2  # float32 density fetch
            pot[tree.pt_begin[i] * kt : tree.pt_end[i] * kt] += row.astype(
                np.float64
            )
            gbytes += pts.nbytes + row.nbytes
        self.gpu.charge_launch("WLI", flops, gbytes)

    def xli(self, tree, lists, dens, state, profile, scope=None, plan=None) -> None:
        """X-list on the device when ``accelerate_wx`` is set.

        Target DC surface points are generated on the fly; ghost-leaf
        source particles stream from global memory.  Per-box and
        plan-free, like the device W-list.
        """
        if not self.accelerate_wx or not self._device_ok("XLI", profile):
            super().xli(tree, lists, dens, state, profile, scope, plan=plan)
            return
        from repro.gpu.kernels import pairwise_f32

        ks = self.kernel.source_dim
        dcheck = state["dcheck"]
        counts = tree.point_counts()
        x = lists.x
        sel = x.counts > 0
        if scope is not None:
            sel = sel & scope
        flops = 0.0
        gbytes = 0.0
        for i in np.flatnonzero(sel):
            dc = self.ops.dc_points(tree.levels[i], tree.centers[i]).astype(
                np.float32
            )
            acc = np.zeros(dcheck.shape[1], dtype=np.float32)
            hit = False
            for a in x.of(i):
                if counts[a] == 0:
                    continue
                pts = tree.points[tree.pt_begin[a] : tree.pt_end[a]].astype(
                    np.float32
                )
                den = dens[
                    tree.pt_begin[a] * ks : tree.pt_end[a] * ks
                ].astype(np.float32)
                acc += pairwise_f32(self.kernel, dc, pts, den)
                hit = True
                flops += self.kernel.pair_flops(self.ns, len(pts))
                gbytes += pts.nbytes + den.nbytes
            if hit:
                dcheck[i] += acc.astype(np.float64)
                gbytes += acc.nbytes
        self.gpu.charge_launch("XLI", flops, gbytes)

    def xli_deferrable(self) -> bool:
        """The device X-list is per-box and adds into ``dcheck`` in place;
        only the CPU path supports the deferred compute/apply split."""
        return not self.accelerate_wx

    def uli(self, tree, lists, dens, state, profile, scope=None, plan=None) -> None:
        if not self._device_ok("ULI", profile):
            super().uli(tree, lists, dens, state, profile, scope, plan=plan)
            return
        kt = self.kernel.target_dim
        if plan is not None:
            # Device targets are padded to block multiples, so unlike D2T
            # both sides of the scatter need cached row arrays: dst rows
            # into the potential table, src rows into the device result.
            def _stage():
                sel = self._boxes_mask(tree, (b.boxes for b in plan.uli))
                stream = build_u_stream(tree, lists, self.gpu.block_size, sel)
                cnts = tree.pt_end[stream.boxes] - tree.pt_begin[stream.boxes]
                dst, _ = self._ragged_rows(tree.pt_begin[stream.boxes], cnts)
                src, _ = self._ragged_rows(stream.tgt_offsets[:-1], cnts)
                return stream, dst, src

            with profile.phase("translate"):
                stream, dst, src = self._plan_cache(plan, "uli", _stage)
        else:
            counts = tree.point_counts()
            sel = tree.is_leaf & (counts > 0)
            if scope is not None:
                sel = sel & scope
            with profile.phase("translate"):
                stream = build_u_stream(tree, lists, self.gpu.block_size, sel)
            dst = src = None
        dens_dev = self.gpu.to_device(dens, phase="ULI")
        pot32 = gpu_uli(self.gpu, stream, dens_dev, self.kernel)
        pot_host = self.gpu.to_host(pot32, phase="ULI")
        pot = state["pot"]
        if dst is not None:
            pot.reshape(-1, kt)[dst] += pot_host.reshape(-1, kt)[src]
            return
        for j, i in enumerate(stream.boxes):
            t0 = stream.tgt_offsets[j]
            n = tree.pt_end[i] - tree.pt_begin[i]
            pot[tree.pt_begin[i] * kt : tree.pt_end[i] * kt] += pot_host[
                t0 * kt : (t0 + n) * kt
            ]
