"""Virtual-GPU radix sort of Morton keys (paper future work).

The paper's conclusions list "the acceleration of the setup phase using
GPU-accelerated sorting and tree construction" as the next step.  This
module provides that step for the virtual device: a least-significant-
digit radix sort of 64-bit Morton keys with an index payload, charged
under the device model (radix histogram/scatter passes are bandwidth
bound: each pass streams keys + payload through global memory).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.device import VirtualGpu

__all__ = ["gpu_radix_argsort", "RADIX_BITS"]

#: Digit width per pass: 8 bits -> 8 passes over 64-bit Morton keys.
RADIX_BITS = 8


def gpu_radix_argsort(
    gpu: VirtualGpu, keys: np.ndarray, phase: str = "sort"
) -> np.ndarray:
    """Permutation sorting ``keys`` ascending, computed "on the device".

    Numerics use a stable host argsort (bit-identical to an LSD radix
    sort); the device ledger is charged for the real algorithm: per pass,
    one histogram read of the keys and one scatter of (key, index) pairs
    — ``ceil(64 / RADIX_BITS)`` passes, bandwidth bound.
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    n = keys.size
    passes = -(-64 // RADIX_BITS)
    bytes_per_pass = n * (8 + 8 + 4)  # key read + key write + index write
    flops = float(passes * n * 4)  # digit extract + histogram update
    gbytes = float(passes * bytes_per_pass)
    gpu.charge_launch(phase, flops, gbytes)
    gpu.ledger.charge_transfer(
        phase, gpu.model.transfer_seconds(keys.nbytes), keys.nbytes
    )
    order = np.argsort(keys, kind="stable")
    gpu.ledger.charge_transfer(
        phase, gpu.model.transfer_seconds(order.nbytes), order.nbytes
    )
    return order
