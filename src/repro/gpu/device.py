"""The virtual GPU: device model, ledger, and execution bookkeeping.

A kernel launch on the virtual device is charged

    t = overhead + max(flops / peak_flops, global_bytes / mem_bandwidth)

— the classic roofline: ULI (many flops per byte) lands compute-bound,
the VLI diagonal translation (one multiply per loaded complex value; the
paper: "the ratio between computation and memory fetches is small") lands
bandwidth-bound.  Host/device transfers are charged at PCIe bandwidth.

Numerics run in ``float32``: the paper's GPU path is single precision
("the GPU acceleration is implemented in single precision") and tests
verify the accuracy impact stays at the 1e-6 level.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DeviceModel",
    "GpuDeviceFault",
    "GpuLedger",
    "VirtualGpu",
    "TESLA_S1070",
]


class GpuDeviceFault(RuntimeError):
    """The virtual device failed (injected ECC error or OOM).

    Raised by :meth:`VirtualGpu.check_phase` at the *entry* of an
    accelerated phase — before any state mutation — so the caller can
    fall back to the CPU path for that phase cleanly.  Once a fault
    fires, :attr:`VirtualGpu.failed` stays set: the device is gone for
    the rest of the run and every subsequent phase degrades to the CPU.
    """

    def __init__(self, kind: str, phase: str):
        super().__init__(f"virtual GPU fault ({kind}) at phase {phase}")
        self.kind = kind
        self.phase = phase


@dataclass(frozen=True)
class DeviceModel:
    """Performance constants of one GPU."""

    name: str
    peak_flops: float  # sustained single-precision flop/s on N-body kernels
    mem_bandwidth: float  # global memory bytes/s
    pcie_bandwidth: float  # host <-> device bytes/s
    launch_overhead: float  # seconds per kernel launch

    def kernel_seconds(self, flops: float, gbytes: float) -> float:
        return self.launch_overhead + max(
            flops / self.peak_flops, gbytes / self.mem_bandwidth
        )

    def transfer_seconds(self, nbytes: float) -> float:
        return nbytes / self.pcie_bandwidth


#: NVIDIA Tesla S1070 (paper's Lincoln): ~345 GFlop/s single-precision
#: multiply-add peak per GPU; ~100 GB/s; PCIe gen2 x8 effective ~3 GB/s.
TESLA_S1070 = DeviceModel(
    "tesla-s1070",
    peak_flops=200e9,  # sustained on irregular N-body (paper: ~8TF on 256)
    mem_bandwidth=102e9,
    pcie_bandwidth=3e9,
    launch_overhead=10e-6,
)


@dataclass
class GpuLedger:
    """Accumulated device activity, per phase."""

    kernel_seconds: dict[str, float] = field(default_factory=dict)
    kernel_flops: dict[str, float] = field(default_factory=dict)
    kernel_gbytes: dict[str, float] = field(default_factory=dict)
    transfer_seconds: dict[str, float] = field(default_factory=dict)
    transfer_bytes: dict[str, float] = field(default_factory=dict)
    launches: dict[str, int] = field(default_factory=dict)

    def charge_kernel(self, phase: str, seconds: float, flops: float, gbytes: float):
        self.kernel_seconds[phase] = self.kernel_seconds.get(phase, 0.0) + seconds
        self.kernel_flops[phase] = self.kernel_flops.get(phase, 0.0) + flops
        self.kernel_gbytes[phase] = self.kernel_gbytes.get(phase, 0.0) + gbytes
        self.launches[phase] = self.launches.get(phase, 0) + 1

    def charge_transfer(self, phase: str, seconds: float, nbytes: float):
        self.transfer_seconds[phase] = self.transfer_seconds.get(phase, 0.0) + seconds
        self.transfer_bytes[phase] = self.transfer_bytes.get(phase, 0.0) + nbytes

    def phase_seconds(self, phase: str) -> float:
        return self.kernel_seconds.get(phase, 0.0) + self.transfer_seconds.get(
            phase, 0.0
        )

    def total_seconds(self) -> float:
        return sum(self.kernel_seconds.values()) + sum(
            self.transfer_seconds.values()
        )


class VirtualGpu:
    """One simulated accelerator attached to one (virtual) MPI rank."""

    def __init__(self, model: DeviceModel = TESLA_S1070, block_size: int = 256):
        if block_size < 32 or block_size & (block_size - 1):
            raise ValueError("block_size must be a power of two >= 32")
        self.model = model
        self.block_size = int(block_size)
        self.ledger = GpuLedger()
        #: Set once an armed fault fires; the accelerated evaluator then
        #: routes every remaining phase to the CPU (graceful degradation).
        self.failed = False
        self._armed: list[dict] = []

    # -- fault injection ---------------------------------------------------

    def arm_fault(
        self, phase: str = "*", kind: str = "ecc", on_fire=None
    ) -> None:
        """Arm a one-shot device fault for ``phase`` (``"*"`` = any phase).

        The fault fires on the next :meth:`check_phase` whose name
        matches; ``on_fire(phase)`` (if given) is invoked first so chaos
        plans can log the injection deterministically.
        """
        self._armed.append({"phase": phase, "kind": kind, "on_fire": on_fire})

    def check_phase(self, phase: str) -> None:
        """Raise :class:`GpuDeviceFault` if a fault is armed for ``phase``.

        Called by the accelerated evaluator at phase entry, before any
        device work or state mutation, so a fallback re-runs the whole
        phase on the CPU without double-counting partial results.
        """
        if self.failed:
            raise GpuDeviceFault("dead", phase)
        for i, arm in enumerate(self._armed):
            if arm["phase"] in ("*", phase):
                del self._armed[i]
                self.failed = True
                if arm["on_fire"] is not None:
                    arm["on_fire"](phase)
                raise GpuDeviceFault(arm["kind"], phase)

    # -- memory ----------------------------------------------------------

    def to_device(self, arr: np.ndarray, phase: str = "H2D") -> np.ndarray:
        """Copy to the device (demotes to float32, charges PCIe)."""
        dev = np.ascontiguousarray(arr, dtype=np.float32)
        self.ledger.charge_transfer(
            phase, self.model.transfer_seconds(dev.nbytes), dev.nbytes
        )
        return dev

    def to_host(self, arr: np.ndarray, phase: str = "D2H") -> np.ndarray:
        """Copy back to the host (float64 promotion on arrival)."""
        self.ledger.charge_transfer(
            phase, self.model.transfer_seconds(arr.nbytes), arr.nbytes
        )
        return arr.astype(np.float64)

    # -- execution ---------------------------------------------------------

    def charge_launch(self, phase: str, flops: float, gbytes: float) -> None:
        """Account one kernel launch under the roofline model."""
        self.ledger.charge_kernel(
            phase, self.model.kernel_seconds(flops, gbytes), flops, gbytes
        )
