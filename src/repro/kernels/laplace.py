"""Laplace single-layer kernel ``K(x, y) = 1 / (4 pi |x - y|)``.

The fundamental solution of the 3-D Laplace equation: the electrostatic /
gravitational potential kernel used throughout the paper's GPU experiments.
Homogeneous of degree -1.

An optional Plummer softening ``eps`` replaces ``|x-y|`` with
``sqrt(|x-y|^2 + eps^2)`` — the standard collisionless N-body
regularisation.  A softened kernel is smooth and non-oscillatory, so the
kernel-independent machinery handles it unchanged (it is, however, no
longer homogeneous, so operators are cached per level).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, displacements

__all__ = ["LaplaceKernel"]

_FOUR_PI_INV = 1.0 / (4.0 * np.pi)


class LaplaceKernel(Kernel):
    name = "laplace"
    source_dim = 1
    target_dim = 1
    homogeneity = -1.0
    #: sub(3) + mul(3) + add(2) + rsqrt(~4) + scale/accumulate(~8): the
    #: conventional ~20 flops/pair charge of GPU N-body literature.
    flops_per_pair = 20

    def __init__(self, softening: float = 0.0):
        if softening < 0:
            raise ValueError("softening must be non-negative")
        self.softening = float(softening)
        if self.softening > 0.0:
            self.homogeneity = None  # softened kernel has a length scale

    def _soften(self, r2: np.ndarray) -> np.ndarray:
        return np.sqrt(r2 + self.softening**2)

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        d, r = displacements(targets, sources)
        if self.softening > 0.0:
            return _FOUR_PI_INV / self._soften(r * r)
        with np.errstate(divide="ignore"):
            out = _FOUR_PI_INV / r
        out[r == 0.0] = 0.0
        return out

    def matrix_batch(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        d = targets[:, :, None, :] - sources[:, None, :, :]
        r2 = np.einsum("bmnk,bmnk->bmn", d, d)
        if self.softening > 0.0:
            return _FOUR_PI_INV / self._soften(r2)
        r = np.sqrt(r2)
        with np.errstate(divide="ignore"):
            out = _FOUR_PI_INV / r
        out[r == 0.0] = 0.0
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LaplaceKernel(softening={self.softening})"
