"""Blocked O(N^2) direct summation: the accuracy reference and baseline.

Every FMM experiment validates against (or races) this evaluator.  It is
deliberately simple — a target-blocked dense matvec — because its role is
to be *obviously correct*.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel

__all__ = ["direct_sum", "direct_flops"]


def direct_sum(
    kernel: Kernel,
    targets: np.ndarray,
    sources: np.ndarray,
    density: np.ndarray,
    block: int = 1024,
    profile=None,
) -> np.ndarray:
    """Exact potential at ``targets`` from ``density`` at ``sources``.

    Parameters
    ----------
    block:
        Number of target points per dense block (bounds peak memory).
    profile:
        Optional :class:`repro.util.timer.PhaseProfile` charged with the
        pairwise flop count.
    """
    out = kernel.apply(targets, sources, density, block=block)
    if profile is not None:
        profile.add_flops(direct_flops(kernel, len(targets), len(sources)))
    return out


def direct_flops(kernel: Kernel, n_targets: int, n_sources: int) -> float:
    """Flop charge of a full direct evaluation."""
    return kernel.pair_flops(n_targets, n_sources)
