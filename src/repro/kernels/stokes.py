"""Stokes single-layer kernel (the Stokeslet).

``G_ab(x, y) = 1/(8 pi mu) * (delta_ab / r + r_a r_b / r^3)`` with
``r = x - y``.  This vector kernel (3 unknowns per point) is the paper's
production kernel for the Kraken runs ("Stokes kernel with three unknowns
per point ... 30 billion potentials").  Homogeneous of degree -1.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, displacements

__all__ = ["StokesKernel"]


class StokesKernel(Kernel):
    name = "stokes"
    source_dim = 3
    target_dim = 3
    homogeneity = -1.0
    #: 3x3 tensor contraction per pair: roughly 3x the Laplace charge plus
    #: the dyadic assembly.
    flops_per_pair = 75
    #: The Stokeslet equivalent-density systems are markedly worse
    #: conditioned than scalar ones; a tighter cutoff amplifies noise.
    default_rcond = 1e-7

    def __init__(self, viscosity: float = 1.0):
        if viscosity <= 0:
            raise ValueError("viscosity must be positive")
        self.viscosity = float(viscosity)
        self._scale = 1.0 / (8.0 * np.pi * self.viscosity)

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        d, r = displacements(targets, sources)
        with np.errstate(divide="ignore", invalid="ignore"):
            rinv = 1.0 / r
            rinv3 = rinv**3
        zero = r == 0.0
        rinv[zero] = 0.0
        rinv3[zero] = 0.0
        m, n = r.shape
        # G[i, a, j, b] so the reshape interleaves dof per point.
        g = np.einsum("mna,mnb->manb", d, d) * rinv3[:, None, None, None].reshape(
            m, 1, n, 1
        )
        eye = np.eye(3)
        g += eye[None, :, None, :] * rinv[:, None, :, None]
        g *= self._scale
        return g.reshape(m * 3, n * 3)

    def matrix_batch(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        d = targets[:, :, None, :] - sources[:, None, :, :]
        r = np.sqrt(np.einsum("bmnk,bmnk->bmn", d, d))
        with np.errstate(divide="ignore", invalid="ignore"):
            rinv = 1.0 / r
            rinv3 = rinv**3
        zero = r == 0.0
        rinv[zero] = 0.0
        rinv3[zero] = 0.0
        b, m, n = r.shape
        g = np.einsum("zmna,zmnc->zmanc", d, d) * rinv3[:, :, None, :, None]
        g += np.eye(3)[None, None, :, None, :] * rinv[:, :, None, :, None]
        g *= self._scale
        return g.reshape(b, m * 3, n * 3)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StokesKernel(viscosity={self.viscosity})"
