"""Yukawa (screened Laplace) kernel ``exp(-lambda r) / (4 pi r)``.

A non-oscillatory kernel that is *not* homogeneous: translation operators
must be computed per octree level instead of rescaled, which exercises the
kernel-independent operator cache on its general code path.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, displacements

__all__ = ["YukawaKernel"]

_FOUR_PI_INV = 1.0 / (4.0 * np.pi)


class YukawaKernel(Kernel):
    name = "yukawa"
    source_dim = 1
    target_dim = 1
    homogeneity = None
    flops_per_pair = 26  # Laplace charge + exponential

    def __init__(self, lam: float = 1.0):
        if lam < 0:
            raise ValueError("screening parameter lam must be non-negative")
        self.lam = float(lam)

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        _, r = displacements(targets, sources)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = _FOUR_PI_INV * np.exp(-self.lam * r) / r
        out[r == 0.0] = 0.0
        return out

    def matrix_batch(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        d = targets[:, :, None, :] - sources[:, None, :, :]
        r = np.sqrt(np.einsum("bmnk,bmnk->bmn", d, d))
        with np.errstate(divide="ignore", invalid="ignore"):
            out = _FOUR_PI_INV * np.exp(-self.lam * r) / r
        out[r == 0.0] = 0.0
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"YukawaKernel(lam={self.lam})"
