"""Interaction kernels and the O(N^2) direct-summation baseline.

The paper evaluates two kernels: the scalar Laplace single-layer potential
(used for the GPU experiments) and the Stokes single-layer (Stokeslet)
potential with three unknowns per point (used for the Kraken experiments).
A Yukawa (screened Laplace) kernel is included as a non-homogeneous kernel
to exercise the kernel-*independent* machinery (it cannot reuse translation
operators across levels by scaling), and a Navier/elastostatics kernel
(the Kelvin solution) extends coverage to another vector kernel from the
KIFMM method's supported class.
"""

from repro.kernels.base import Kernel
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.stokes import StokesKernel
from repro.kernels.yukawa import YukawaKernel
from repro.kernels.navier import NavierKernel
from repro.kernels.gradients import LaplaceGradientKernel
from repro.kernels.direct import direct_sum, direct_flops

__all__ = [
    "Kernel",
    "LaplaceKernel",
    "StokesKernel",
    "YukawaKernel",
    "NavierKernel",
    "LaplaceGradientKernel",
    "direct_sum",
    "direct_flops",
    "get_kernel",
]

_REGISTRY = {
    "laplace": LaplaceKernel,
    "stokes": StokesKernel,
    "yukawa": YukawaKernel,
    "navier": NavierKernel,
}


def get_kernel(name: str, **kwargs) -> Kernel:
    """Instantiate a kernel by registry name (``laplace|stokes|yukawa|navier``)."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
