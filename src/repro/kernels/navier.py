"""Navier (linear elastostatics) kernel — the Kelvin solution.

``U_ab(x, y) = 1 / (16 pi mu (1 - nu)) * ((3 - 4 nu) delta_ab / r
+ r_a r_b / r^3)`` with ``r = x - y``: the fundamental solution of the
Navier-Cauchy equations for an isotropic elastic solid.  A vector kernel
(3 dof per point, displacements from point forces), homogeneous of degree
-1 and non-oscillatory — squarely in the class the kernel-independent FMM
covers (Ying et al. 2004 list it among their supported kernels).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel

__all__ = ["NavierKernel"]


class NavierKernel(Kernel):
    name = "navier"
    source_dim = 3
    target_dim = 3
    homogeneity = -1.0
    flops_per_pair = 75
    #: Same conditioning class as the Stokeslet.
    default_rcond = 1e-7

    def __init__(self, shear_modulus: float = 1.0, poisson: float = 0.3):
        if shear_modulus <= 0:
            raise ValueError("shear modulus must be positive")
        if not -1.0 < poisson < 0.5:
            raise ValueError("Poisson ratio must be in (-1, 0.5)")
        self.shear_modulus = float(shear_modulus)
        self.poisson = float(poisson)
        self._scale = 1.0 / (16.0 * np.pi * self.shear_modulus * (1.0 - self.poisson))
        self._diag = 3.0 - 4.0 * self.poisson

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        d = targets[:, None, :] - sources[None, :, :]
        r = np.sqrt(np.einsum("mnk,mnk->mn", d, d))
        with np.errstate(divide="ignore", invalid="ignore"):
            rinv = 1.0 / r
            rinv3 = rinv**3
        zero = r == 0.0
        rinv[zero] = 0.0
        rinv3[zero] = 0.0
        m, n = r.shape
        g = np.einsum("mna,mnc->manc", d, d) * rinv3[:, None, :, None]
        g += self._diag * np.eye(3)[None, :, None, :] * rinv[:, None, :, None]
        g *= self._scale
        return g.reshape(m * 3, n * 3)

    def matrix_batch(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        d = targets[:, :, None, :] - sources[:, None, :, :]
        r = np.sqrt(np.einsum("bmnk,bmnk->bmn", d, d))
        with np.errstate(divide="ignore", invalid="ignore"):
            rinv = 1.0 / r
            rinv3 = rinv**3
        zero = r == 0.0
        rinv[zero] = 0.0
        rinv3[zero] = 0.0
        b, m, n = r.shape
        g = np.einsum("zmna,zmnc->zmanc", d, d) * rinv3[:, :, None, :, None]
        g += self._diag * np.eye(3)[None, None, :, None, :] * rinv[:, :, None, :, None]
        g *= self._scale
        return g.reshape(b, m * 3, n * 3)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NavierKernel(shear_modulus={self.shear_modulus}, "
            f"poisson={self.poisson})"
        )
