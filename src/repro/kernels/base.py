"""Kernel interface used by every FMM translation operator.

A kernel maps a density vector attached to source points to a potential
vector at target points.  The FMM never needs anything else: all of S2M,
M2M, M2L, L2L, L2T, W- and X-list operators are built from plain kernel
matrix evaluations between point sets (that is the *kernel independence* of
Ying et al. 2004).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Kernel"]


class Kernel(ABC):
    """Abstract two-point interaction kernel.

    Attributes
    ----------
    name:
        Registry name.
    source_dim / target_dim:
        Degrees of freedom per source / target point (1 for Laplace,
        3 for Stokes).
    homogeneity:
        Exponent ``h`` such that ``K(λ x, λ y) = λ**h K(x, y)`` for all
        ``λ > 0``, or ``None`` when the kernel is not homogeneous.  A
        homogeneous kernel lets translation operators computed at one
        octree level be rescaled for every other level.
    flops_per_pair:
        Floating-point operations charged per source-target pair when the
        kernel is applied directly; used by the performance ledgers.
    default_rcond:
        Default relative singular-value cutoff for the equivalent-density
        pseudo-inverses.  Vector kernels (Stokes) are more ill-conditioned
        and need a looser cutoff than scalar kernels.
    """

    name: str = "abstract"
    source_dim: int = 1
    target_dim: int = 1
    homogeneity: float | None = None
    flops_per_pair: int = 1
    default_rcond: float = 1e-9

    @abstractmethod
    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        """Dense interaction matrix of shape ``(m*target_dim, n*source_dim)``.

        Degrees of freedom are interleaved per point (point-major layout):
        row ``i*target_dim + a`` is component ``a`` of target ``i``.
        Coincident target/source points contribute zero (the FMM convention
        for excluding self-interaction).
        """

    def matrix_batch(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        """Batched interaction matrices.

        ``targets``: ``(b, m, 3)``; ``sources``: ``(b, n, 3)``; returns
        ``(b, m*target_dim, n*source_dim)``.  The generic fallback loops;
        concrete kernels override with broadcast implementations — this is
        what lets the evaluator process thousands of small leaves per
        call instead of one Python iteration each.
        """
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        b = targets.shape[0]
        out = np.empty(
            (b, targets.shape[1] * self.target_dim, sources.shape[1] * self.source_dim)
        )
        for i in range(b):
            out[i] = self.matrix(targets[i], sources[i])
        return out

    def apply(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        density: np.ndarray,
        block: int = 2048,
    ) -> np.ndarray:
        """Apply the kernel without materialising the full matrix.

        Blocks over targets so peak memory is ``O(block * n)``; this is the
        building block of the direct-summation baseline.
        """
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        density = np.asarray(density, dtype=np.float64).reshape(-1)
        if density.size != len(sources) * self.source_dim:
            raise ValueError(
                f"density size {density.size} != n_sources*source_dim "
                f"{len(sources) * self.source_dim}"
            )
        out = np.zeros(len(targets) * self.target_dim, dtype=np.float64)
        td = self.target_dim
        for start in range(0, len(targets), block):
            stop = min(start + block, len(targets))
            out[start * td : stop * td] = self.matrix(
                targets[start:stop], sources
            ) @ density
        return out

    def pair_flops(self, n_targets: int, n_sources: int) -> float:
        """Flop charge for a dense ``n_targets x n_sources`` interaction."""
        return float(self.flops_per_pair) * n_targets * n_sources

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def displacements(targets: np.ndarray, sources: np.ndarray):
    """Pairwise displacement tensor ``(m, n, 3)`` and distances ``(m, n)``."""
    d = targets[:, None, :] - sources[None, :, :]
    r = np.sqrt(np.einsum("mnk,mnk->mn", d, d))
    return d, r
