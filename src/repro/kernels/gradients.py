"""Gradient (field / force) evaluation kernels.

The KIFMM's equivalent densities reproduce the *potential field* of the
true sources; any derivative of that field is reproduced too.  Supplying
a gradient kernel for the target-side phases (D2T, W-list, U-list) turns
the same upward/downward machinery into a force evaluator:

    E_a(x) = d/dx_a K(x, y)   applied to equivalent densities / sources.

This is how production FMM codes (including the authors' kifmm3d) compute
potentials and forces from one pass.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel

__all__ = ["LaplaceGradientKernel"]


class LaplaceGradientKernel(Kernel):
    """``grad_x [1 / (4 pi |x-y|)] = -(x - y) / (4 pi |x-y|^3)``.

    Maps a scalar source density to the 3-vector potential gradient at
    each target (negate for the electrostatic field / gravitational
    acceleration convention).  Optional Plummer softening matches
    :class:`repro.kernels.LaplaceKernel`'s: the gradient of the softened
    potential is ``-(x - y) / (4 pi (|x-y|^2 + eps^2)^{3/2})``.
    """

    name = "laplace-gradient"
    source_dim = 1
    target_dim = 3
    homogeneity = -2.0
    flops_per_pair = 26

    def __init__(self, softening: float = 0.0):
        if softening < 0:
            raise ValueError("softening must be non-negative")
        self.softening = float(softening)
        if self.softening > 0.0:
            self.homogeneity = None

    def matrix(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        d = targets[:, None, :] - sources[None, :, :]
        r2 = np.einsum("mnk,mnk->mn", d, d) + self.softening**2
        with np.errstate(divide="ignore", invalid="ignore"):
            rinv3 = r2**-1.5
        rinv3[r2 == 0.0] = 0.0
        g = -d * rinv3[:, :, None] / (4.0 * np.pi)
        m, n = r2.shape
        return np.moveaxis(g, 2, 1).reshape(m * 3, n)

    def matrix_batch(self, targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64)
        sources = np.asarray(sources, dtype=np.float64)
        d = targets[:, :, None, :] - sources[:, None, :, :]
        r2 = np.einsum("bmnk,bmnk->bmn", d, d) + self.softening**2
        with np.errstate(divide="ignore", invalid="ignore"):
            rinv3 = r2**-1.5
        rinv3[r2 == 0.0] = 0.0
        g = -d * rinv3[..., None] / (4.0 * np.pi)
        b, m, n = r2.shape
        return np.moveaxis(g, 3, 2).reshape(b, m * 3, n)
