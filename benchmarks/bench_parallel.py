"""Intra-rank parallel plan apply: tile-pool speedup over serial.

The tile executor (:mod:`repro.core.parallel`) runs a compiled plan's
phase work as tasks over disjoint output tiles on a shared thread pool,
with every combine in compiled tile order — the result is bit-identical
to the serial apply at any thread count.  This bench measures what that
buys on the paper-scale warm-apply loop: one plan, many applies, thread
counts swept against a BLAS-pinned serial baseline.

Reported wall times (real seconds, not the modelled machine):

* ``serial_apply_s``    — median warm apply, no pool, BLAS at 1 thread
* ``apply_s[t]``        — median warm apply with a t-thread tile pool
* ``speedup[t]``        — serial_apply_s / apply_s[t]
* ``report``            — ``parallel_report`` of a traced 4-thread run
                          (achieved vs modelled per-phase speedup)

Bit-identity against the serial baseline is asserted for every thread
count, always.  Results go to ``BENCH_parallel.json`` at the repo root.
Run standalone for the paper-scale numbers (N=20k, order 6)::

    PYTHONPATH=src python benchmarks/bench_parallel.py

``--gate`` enforces the CI bars: >= 3x at 4 threads (only on hosts with
>= 4 cores) and achieved parallel speedup within 1.5x of modelled.  Via
pytest at smoke scale (CI's parallel-smoke step)::

    pytest benchmarks/bench_parallel.py --benchmark-only -s
"""

import argparse
import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_parallel.json"

THREAD_SWEEP = (1, 2, 4)


def run_bench(
    n: int = 20_000,
    order: int = 6,
    q: int = 50,
    kernel: str = "laplace",
    repeats: int = 5,
    seed: int = 1234,
    threads: tuple = THREAD_SWEEP,
) -> dict:
    from repro.core import Fmm
    from repro.datasets import uniform_cube
    from repro.perf.model import parallel_report
    from repro.perf.trace import TraceRecorder
    from repro.util.blas import limit_blas_threads
    from repro.util.timer import PhaseProfile

    points = uniform_cube(n, seed=seed)
    rng = np.random.default_rng(seed)
    fmm = Fmm(kernel, order=order, max_points_per_box=q)
    dens = rng.standard_normal(n * fmm.kernel.source_dim)
    plan = fmm.plan(points)
    ep = fmm.compile_eval_plan(plan)

    def apply_once():
        return fmm.evaluate(points, dens, plan=plan, eval_plan=ep)

    def timed(fn):
        t0 = time.perf_counter()
        out = fn()
        return time.perf_counter() - t0, out

    # Serial baseline with BLAS pinned to one thread — the same GEMM
    # configuration the pool runs — so the sweep isolates the tile
    # scheduler, not the BLAS threadpool.
    with limit_blas_threads(1):
        apply_once()  # warm operator caches
        serial_times = [timed(apply_once)[0] for _ in range(repeats)]
        ref = apply_once()
    serial_s = statistics.median(serial_times)

    apply_s, speedup = {}, {}
    for t in threads:
        fmm.evaluator.configure_threads(t)
        apply_once()  # warm the pool
        times = []
        for _ in range(repeats):
            dt, out = timed(apply_once)
            times.append(dt)
            assert np.array_equal(out, ref), (
                f"{t}-thread apply diverged from serial: bit-identity broken"
            )
        apply_s[t] = statistics.median(times)
        speedup[t] = serial_s / apply_s[t]

    # One traced 4-thread (or widest) run for the achieved-vs-modelled
    # parallel report.
    widest = max(threads)
    fmm.evaluator.configure_threads(widest)
    rec = TraceRecorder()
    prof = PhaseProfile()
    prof.bind_trace(rec, 0)
    fmm.evaluate(points, dens, plan=plan, profile=prof, eval_plan=ep)
    report = parallel_report(rec)
    fmm.evaluator.configure_threads(None)

    return {
        "n": n,
        "order": order,
        "q": q,
        "kernel": kernel,
        "repeats": repeats,
        "host_cpus": os.cpu_count() or 1,
        "serial_apply_s": serial_s,
        "apply_s": {str(t): apply_s[t] for t in threads},
        "speedup": {str(t): speedup[t] for t in threads},
        "report": report,
        "bit_identical": True,
    }


def gate(result: dict, target: float = 3.0, model_slack: float = 1.5) -> list:
    """CI bars; returns a list of failure strings (empty = pass).

    The raw-speedup bar only applies on hosts with enough cores to
    reach it; the achieved-vs-modelled bar always applies (the model
    already accounts for the host's core count via tile shapes).
    """
    failures = []
    cpus = result["host_cpus"]
    if cpus >= 4:
        got = result["speedup"].get("4", 0.0)
        if got < target:
            failures.append(
                f"4-thread warm-apply speedup {got:.2f}x < {target:.1f}x"
            )
    overall = result["report"].get("overall")
    if overall is not None and cpus >= 2:
        modelled, achieved = overall["modelled"], overall["achieved"]
        # modelled assumes ideal tile balance; achieved must land within
        # model_slack of it (modelled/achieved <= slack)
        if achieved > 0 and modelled / achieved > model_slack:
            failures.append(
                f"achieved parallel speedup {achieved:.2f}x more than "
                f"{model_slack:.1f}x below modelled {modelled:.2f}x"
            )
    return failures


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2) + "\n")


def _print(result: dict) -> None:
    print(
        f"N={result['n']} order={result['order']} q={result['q']} "
        f"{result['kernel']} on {result['host_cpus']} cores:"
    )
    print(f"  serial apply   {result['serial_apply_s'] * 1e3:9.1f} ms "
          f"(BLAS pinned to 1 thread)")
    for t, s in result["apply_s"].items():
        print(f"  {t:>2s}-thread      {s * 1e3:9.1f} ms "
              f"({result['speedup'][t]:5.2f}x)")
    overall = result["report"].get("overall")
    if overall:
        print(f"  parallel-report overall: achieved {overall['achieved']:.2f}x"
              f" vs modelled {overall['modelled']:.2f}x")
    print("  bit-identical at every thread count: yes")


def test_parallel_smoke(benchmark):
    """Smoke-scale tile-pool check (CI's parallel-smoke gate).

    Asserts bit-identity at every swept thread count and — on
    multi-core hosts — that the 2-thread apply is no slower than 1.1x
    serial (pool overhead bound; real speedup is gated at paper scale
    by ``--gate``).
    """
    result = benchmark.pedantic(
        lambda: run_bench(n=4_000, order=4, q=40, repeats=3,
                          threads=(1, 2)),
        rounds=1,
        iterations=1,
    )
    _print(result)
    assert result["bit_identical"]
    if result["host_cpus"] >= 2:
        assert result["apply_s"]["2"] <= 1.1 * result["serial_apply_s"], (
            f"2-thread apply {result['apply_s']['2']:.4f}s slower than "
            f"1.1x serial {result['serial_apply_s']:.4f}s"
        )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--n", type=int, default=20_000)
    ap.add_argument("--order", type=int, default=6)
    ap.add_argument("--q", type=int, default=50, help="max points per box")
    ap.add_argument("--kernel", default="laplace")
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--seed", type=int, default=1234)
    ap.add_argument("--threads", default="1,2,4",
                    help="comma-separated thread counts to sweep")
    ap.add_argument("--gate", action="store_true",
                    help="enforce CI bars (3x at 4 threads on >=4-core "
                         "hosts; achieved within 1.5x of modelled)")
    args = ap.parse_args()
    threads = tuple(int(x) for x in args.threads.split(","))
    result = run_bench(
        n=args.n, order=args.order, q=args.q, kernel=args.kernel,
        repeats=args.repeats, seed=args.seed, threads=threads,
    )
    _print(result)
    write_result(result)
    print(f"wrote {RESULT_PATH}")
    if args.gate:
        failures = gate(result)
        if failures:
            for f in failures:
                print(f"FAIL: {f}")
            return 1
        print("gate: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
