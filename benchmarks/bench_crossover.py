"""Sanity series — O(N) FMM vs O(N^2) direct summation crossover.

Not a paper figure, but the premise of the whole paper ("By rapid
evaluation, we imply an asymptotic time complexity of O(N)"): the FMM
must overtake direct summation at moderate N and the gap must widen
linearly from there.  Reported: wall seconds of both evaluators over an
N sweep and the crossover point.
"""

import time

import numpy as np

from repro.core import Fmm
from repro.datasets import uniform_cube
from repro.kernels import direct_sum, get_kernel
from repro.perf.report import format_table

SIZES = [500, 1000, 2000, 4000, 8000, 16000]


def test_crossover(benchmark):
    kernel = get_kernel("laplace")

    def sweep():
        rows = []
        for n in SIZES:
            points = uniform_cube(n, seed=5)
            dens = np.random.default_rng(0).standard_normal(n)
            t0 = time.perf_counter()
            direct_sum(kernel, points, points, dens)
            t_direct = time.perf_counter() - t0
            fmm = Fmm(kernel, order=4, max_points_per_box=60)
            t0 = time.perf_counter()
            fmm.evaluate(points, dens)
            t_fmm = time.perf_counter() - t0
            rows.append([n, f"{t_direct:.3f}", f"{t_fmm:.3f}",
                         f"{t_direct / t_fmm:.2f}x"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["N", "direct s", "FMM s", "direct/FMM"],
        rows,
        title="FMM vs direct summation (order 4)",
    ))
    speed = [float(r[3].rstrip("x")) for r in rows]
    assert speed[-1] > 1.5, "FMM must win at the largest size"
    assert speed[-1] > speed[0], "FMM advantage must grow with N"
