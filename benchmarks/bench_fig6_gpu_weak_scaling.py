"""Figure 6 — GPU weak scaling on Lincoln.

Paper: 1M uniform points per GPU, up to 256 GPUs (one per MPI process);
the GPU/CPU configuration maintains a ~25-30x speedup over CPU-only, with
q ~ 400 for GPU runs vs ~100 for CPU runs (each tuned for its
architecture); the largest run evaluates 256M points in ~2.2 s.

Here: 12K points per virtual rank, p = 1..8 ranks each with a virtual
S1070; modelled evaluation time = device ledger + CPU residual + comm.
The q values keep the paper's per-architecture tuning ratio (GPU favours
shallower trees / bigger boxes) scaled to the smaller per-rank load.
Reproduced shape: roughly flat weak scaling and a >10x modelled speedup
(the paper's 25-30x needs its 1M-points-per-GPU box sizes; at 12K/rank
the V-list's CPU-side FFT share is proportionally larger).
"""

from common import density, make_points, print_series
from repro.dist.driver import distributed_fmm_rank
from repro.mpi import LINCOLN, run_spmd
from repro.perf.model import EVAL_PHASES

PER_RANK = 12_000
RANKS = [1, 2, 4, 8]


def modeled_seconds(result, use_gpu: bool) -> float:
    per_rank = []
    for prof, (_, _, fmm) in zip(result.profiles, result.values):
        t = 0.0
        for ph in EVAL_PHASES:
            ev = prof.events.get(ph)
            if ev is None:
                continue
            t += ev.comm_seconds
            if not use_gpu:
                t += LINCOLN.compute_seconds(ev.flops)
        if use_gpu:
            led = fmm.evaluator.gpu.ledger
            t += led.total_seconds()
            # residual CPU work: the structured batched matvecs and the
            # per-octant FFTs (U2U/D2D/VLI); W/X run on the device (the
            # paper's stated ongoing work, essential at this scale where
            # mixed leaf levels make W/X a visible fraction)
            for ph in ("U2U", "D2D", "VLI"):
                ev = prof.events.get(ph)
                if ev is not None:
                    t += LINCOLN.fft_seconds(ev.flops)
        per_rank.append(t)
    return max(per_rank)


def run_config(p: int, use_gpu: bool) -> float:
    points = make_points("uniform", PER_RANK * p, seed=66)
    q = 150 if use_gpu else 50  # per-architecture tuning, as in the paper
    res = run_spmd(
        p,
        distributed_fmm_rank,
        points,
        density,
        kernel="laplace",
        order=6,
        max_points_per_box=q,
        use_gpu=use_gpu,
        gpu_wx=use_gpu,
        timeout=560,
    )
    return modeled_seconds(res, use_gpu)


def test_fig6_gpu_weak_scaling(benchmark):
    def sweep():
        rows = []
        for p in RANKS:
            t_cpu = run_config(p, use_gpu=False)
            t_gpu = run_config(p, use_gpu=True)
            rows.append(
                [p, PER_RANK * p, f"{t_cpu:.3f}", f"{t_gpu:.3f}",
                 f"{t_cpu / t_gpu:.1f}x"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        f"Fig 6 (GPU weak scaling, {PER_RANK} pts/rank) — modelled Lincoln seconds",
        ["p (GPUs)", "N", "CPU-only", "GPU/CPU", "speedup"],
        rows,
    )
    speedups = [float(r[-1].rstrip("x")) for r in rows]
    assert all(s > 10.0 for s in speedups), "GPU speedup shape lost"
    # weak scaling: GPU times stay roughly flat
    gpu_times = [float(r[3]) for r in rows]
    assert gpu_times[-1] < 3.0 * gpu_times[0]
