"""Figure 4 — MPI weak scaling on Kraken.

Paper: fixed points per core (25K uniform / 100K nonuniform), p = 16..64K;
total time grows only ~1.5x across a 4096x increase in p, and — unlike the
SC'03 implementation — tree construction stays a small part of the total.

Here: fixed points per virtual rank, p = 2..32, modelled Kraken times.
Reproduced shape: modest growth of total time with p, and a small
construction fraction.
"""

import pytest

from common import (
    make_points,
    modeled_eval_seconds,
    modeled_setup_seconds,
    print_series,
    run_distributed,
)

PER_RANK = {"uniform": 1500, "ellipsoid": 1000}
RANKS = [2, 4, 8, 16, 32]


@pytest.mark.parametrize("dist", list(PER_RANK))
def test_fig4_weak_scaling(benchmark, dist):
    def sweep():
        rows = []
        for p in RANKS:
            points = make_points(dist, PER_RANK[dist] * p)
            res = run_distributed(points, p, load_balance=True)
            ev_max, _ = modeled_eval_seconds(res)
            su_max, _ = modeled_setup_seconds(res)
            rows.append(
                [p, f"{su_max:.3f}", f"{ev_max:.3f}",
                 f"{100 * su_max / (su_max + ev_max):.0f}%"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        f"Fig 4 (weak scaling, {dist}, {PER_RANK[dist]} pts/rank) — modelled Kraken seconds",
        ["p", "setup max", "eval max", "setup fraction"],
        rows,
    )
    growth = float(rows[-1][2]) / float(rows[0][2])
    print(f"time growth {RANKS[0]}->{RANKS[-1]} ranks: {growth:.2f}x "
          f"(paper: ~1.5x over 16->64K cores)")
    assert growth < 4.0, "weak scaling degraded far beyond the paper's shape"
    # the paper's headline: construction is no longer 15x the evaluation
    assert float(rows[-1][3].rstrip("%")) < 60.0
