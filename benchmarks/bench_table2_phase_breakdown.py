"""Table II — per-phase timing/flops of a large nonuniform Stokes run.

Paper (65,536 ranks, 150K points/rank, Stokes kernel, 30e9 unknowns):

    Event      | Max. Time | Avg. Time | Max. Flops | Avg. Flops
    Total eval | 1.37e+02  | 1.20e+02  | 5.48e+10   | 3.72e+10
    Upward     | 3.83e+01  | 1.85e+01  | 1.69e+10   | 7.68e+09
    Comm.      | 8.83e+00  | 8.83e+00  | 0.00e+00   | 0.00e+00
    U-list     | 5.84e+01  | 2.67e+01  | 1.61e+10   | 9.57e+09
    V-list     | 4.73e+01  | 2.63e+01  | 2.06e+10   | 1.15e+10
    W-list     | 1.63e+01  | 5.47e+00  | 4.43e+09   | 2.26e+09
    X-list     | 1.28e+01  | 5.13e+00  | 4.25e+09   | 2.22e+09
    Downward   | 1.89e+01  | 9.06e+00  | 8.74e+09   | 3.97e+09

Reproduction targets (shape): U- and V-lists dominate and are comparable;
W/X are minor and roughly equal to each other; Comm is small next to
compute; Max exceeds Avg visibly on the nonuniform tree.

Here: ellipsoid surface, Stokes kernel, p = 16 virtual ranks.
"""

from common import make_points, run_distributed
from repro.mpi import KRAKEN
from repro.perf import evaluation_phase_times, phase_breakdown_table


def test_table2_phase_breakdown(benchmark):
    points = make_points("ellipsoid", 16_000)

    def run():
        # q tuned for U/V parity at this scale, as the paper tuned its
        # production q for the Kraken runs
        return run_distributed(
            points,
            16,
            kernel="stokes",
            order=6,
            max_points_per_box=320,
            load_balance=True,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = evaluation_phase_times(result.profiles, KRAKEN)
    print()
    print(phase_breakdown_table(
        rows,
        title="Table II (ellipsoid, Stokes, 16 virtual ranks) — modelled Kraken",
    ))

    by = {r.name: r for r in rows}
    # Shape assertions mirroring the paper's table.  At this scale the
    # distributed tree is finer near rank boundaries than the 65K-core
    # original, so only the robust orderings are asserted: V-list is the
    # largest phase, U-list is a significant fraction of it, W/X stay
    # below it, and communication is minor.
    assert by["Comm."].max_seconds < 0.3 * by["Total eval"].max_seconds
    assert by["V-list"].avg_flops >= by["W-list"].avg_flops
    assert by["V-list"].avg_flops >= by["X-list"].avg_flops
    assert by["U-list"].avg_flops > 0.1 * by["V-list"].avg_flops
    ratio_wx = by["W-list"].avg_flops / max(by["X-list"].avg_flops, 1.0)
    assert 0.2 < ratio_wx < 5.0, "W and X shares should be comparable"
    assert by["Total eval"].max_seconds >= by["Total eval"].avg_seconds
