"""Table III — single-GPU sweep of the points-per-box parameter q.

Paper (1M uniform points, Laplace, one Tesla S1070):

    q                | 30   | 244  | 1953
    Total evaluation | 5.13 | 1.17 | 2.15
    Upward Pass      | 0.58 | 0.13 | 0.07
    U list           | 0.29 | 0.45 | 1.9
    V list           | 3.76 | 0.44 | 0.06
    Downward Pass    | 0.35 | 0.1  | 0.07

The paper's q values are exactly the uniform box occupancies of leaf
levels 5 / 4 / 3 at N = 1M (1M/8^5 = 30.5, 1M/8^4 = 244, 1M/8^3 = 1953).
Reproduction targets (shape): the total is U-shaped in q with an interior
optimum; small q is V-list bound (per-octant FFTs on the CPU plus a
bandwidth-bound diagonal multiply), large q is U-list bound (direct work
grows ~ q per point).

Here: 100K uniform points on the virtual S1070, sweeping the
occupancy-matched q of leaf levels 4 / 3 / 2 — like the paper's samples,
one column well below the optimum (V-bound), one near it, one well above
(U-bound).  Times are modelled
(device roofline + CPU residual at Lincoln constants; structured kernels
— FFTs and batched U2U/D2D matvecs — at the structured-core rate,
irregular particle loops at the paper's sustained 500 MFlop/s).
"""

import numpy as np

from repro.core import build_lists, build_tree
from repro.datasets import uniform_cube
from repro.gpu import GpuFmmEvaluator
from repro.kernels import get_kernel
from repro.mpi import LINCOLN
from repro.perf.report import format_table
from repro.util.timer import PhaseProfile

N = 100_000
#: Occupancy-matched q per leaf level (4, 3, 2), analogous to the
#: paper's 30 / 244 / 1953 at N = 1M.  The 1.5x headroom over the mean
#: occupancy keeps Poisson count fluctuations from splitting boxes, so
#: each column is a clean uniform-depth tree (W/X lists empty, as in the
#: paper's uniform runs).
QS = [max(1, int(1.5 * (N / 8**lvl))) for lvl in (4, 3, 2)]


def phase_times(q: int) -> dict[str, float]:
    points = uniform_cube(N, seed=77)
    kernel = get_kernel("laplace")
    tree = build_tree(points, q)
    lists = build_lists(tree)
    dens = np.random.default_rng(0).standard_normal(N)[tree.order]
    ev = GpuFmmEvaluator(kernel, 6)
    prof = PhaseProfile()
    ev.evaluate(tree, lists, dens, prof)
    led = ev.gpu.ledger

    def cpu_structured(ph):
        e = prof.events.get(ph)
        return LINCOLN.fft_seconds(e.flops) if e else 0.0

    def cpu_irregular(ph):
        e = prof.events.get(ph)
        return LINCOLN.compute_seconds(e.flops) if e else 0.0

    t = {
        "Upward Pass": led.phase_seconds("S2U") + cpu_structured("U2U"),
        "U list": led.phase_seconds("ULI"),
        # V list: device diagonal multiply + CPU per-octant FFTs
        "V list": led.phase_seconds("VLI") + cpu_structured("VLI"),
        "Downward Pass": cpu_structured("D2D") + led.phase_seconds("D2T"),
    }
    t["Total evaluation"] = (
        sum(t.values()) + cpu_irregular("WLI") + cpu_irregular("XLI")
    )
    return t


def test_table3_gpu_q_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: {q: phase_times(q) for q in QS}, rounds=1, iterations=1
    )
    rows = []
    for name in ["Total evaluation", "Upward Pass", "U list", "V list",
                 "Downward Pass"]:
        rows.append([name] + [f"{results[q][name]:.4f}" for q in QS])
    print()
    print(format_table(
        ["event \\ q"] + [str(q) for q in QS],
        rows,
        title=(
            f"Table III (single virtual GPU, N={N}, Laplace) — modelled "
            "seconds; q = occupancy-matched for leaf levels 4/3/2"
        ),
    ))

    q4, q3, q2 = QS
    total = {q: results[q]["Total evaluation"] for q in QS}
    # U-shape with the interior optimum, as in the paper's 30/244/1953
    assert total[q3] < total[q4], "small q should be V-list bound"
    assert total[q3] < total[q2], "large q should be U-list bound"
    # dominance pattern at the extremes, as in the paper's columns
    assert results[q4]["V list"] > results[q4]["U list"]
    assert results[q2]["U list"] > results[q2]["V list"]
