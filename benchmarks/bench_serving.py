"""Serving throughput: batched multi-RHS apply vs sequential applies.

The serving engine's micro-batcher coalesces concurrent single-density
requests into one multi-RHS apply (see :mod:`repro.serve.batcher` and
:mod:`repro.core.contract`).  This bench measures what that buys on a
warm plan: the wall time of ``batch`` solo applies (one density each)
against one batched apply of the same ``batch`` densities stacked as
columns, with a bit-identity check column by column.

Configuration notes (DESIGN.md "Serving" has the full story):

* ``max_points_per_box`` is deliberately large (default 400 at paper
  scale).  Batching pays off in the GEMM-bound phases (S2U/ULI/D2T/WLI/
  XLI), where streaming one kernel matrix over 8 density columns
  amortises the memory traffic that dominates a solo GEMV.  The V-list
  FFT translate is memory-bound and gains nothing from extra columns,
  so the bench shifts work out of VLI and into ULI — the same
  phase-balance lever as the paper's Table III q-sweep.
* ``matrix_budget`` is raised to 6 GB so the near-field kernel blocks
  stay cached across applies on BOTH paths; the measured ratio is then
  pure column-batching, not a caching artefact.

Results land under the ``"throughput"`` key of ``BENCH_serving.json``
(``python -m repro serve --bench`` fills the ``"serving"`` key of the
same file).  Run standalone for the paper-scale numbers::

    PYTHONPATH=src python benchmarks/bench_serving.py --assert-ratio 2

or via pytest at smoke scale (CI's serving-smoke step)::

    pytest benchmarks/bench_serving.py --benchmark-only -s
"""

import argparse
import json
import statistics
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_serving.json"


def merge_result(section: str, result: dict, path: Path = RESULT_PATH) -> None:
    """Write ``result`` under ``section`` preserving other sections."""
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = result
    path.write_text(json.dumps(data, indent=2) + "\n")


def run_bench(
    n: int = 20_000,
    order: int = 6,
    q: int = 400,
    kernel: str = "laplace",
    batch: int = 8,
    repeats: int = 3,
    matrix_budget: int = 6 * 2**30,
    seed: int = 1234,
) -> dict:
    from repro.core import Fmm
    from repro.datasets import uniform_cube

    points = uniform_cube(n, seed=seed)
    rng = np.random.default_rng(seed)
    fmm = Fmm(kernel, order=order, max_points_per_box=q)
    ks = fmm.kernel.source_dim
    dens_block = rng.standard_normal((n * ks, batch))

    plan = fmm.plan(points)
    ep = fmm.compile_eval_plan(plan, matrix_budget=matrix_budget)

    def solo_sweep():
        return [
            fmm.evaluate(points, dens_block[:, j], plan=plan, eval_plan=ep)
            for j in range(batch)
        ]

    def batched():
        return fmm.evaluate(points, dens_block, plan=plan, eval_plan=ep)

    def timed(fn):
        t0 = time.perf_counter()
        out = fn()
        return time.perf_counter() - t0, out

    # Warm both paths (kernel-matrix cache, FFT plans, scratch buffers)
    # before timing, so the ratio is steady-state column batching only.
    solos = solo_sweep()
    multi = batched()
    identical = all(
        np.array_equal(multi[:, j], solos[j]) for j in range(batch)
    )

    seq_times = [timed(solo_sweep)[0] for _ in range(repeats)]
    multi_times = [timed(batched)[0] for _ in range(repeats)]
    seq_s = statistics.median(seq_times)
    multi_s = statistics.median(multi_times)
    return {
        "n": n,
        "order": order,
        "q": q,
        "kernel": kernel,
        "batch": batch,
        "repeats": repeats,
        "matrix_budget_mb": matrix_budget / 2**20,
        "sequential_s": seq_s,
        "batched_s": multi_s,
        "per_request_sequential_ms": seq_s / batch * 1e3,
        "per_request_batched_ms": multi_s / batch * 1e3,
        "ratio": seq_s / multi_s,
        "plan_matrix_mb": ep.matrix_bytes() / 2**20,
        "bit_identical": identical,
    }


def _print(result: dict) -> None:
    print(
        f"N={result['n']} order={result['order']} q={result['q']} "
        f"{result['kernel']} batch={result['batch']}:"
    )
    print(f"  sequential ({result['batch']}x solo) {result['sequential_s'] * 1e3:9.1f} ms")
    print(f"  batched (one multi-RHS)     {result['batched_s'] * 1e3:9.1f} ms")
    print(f"  per-request batched         {result['per_request_batched_ms']:9.1f} ms")
    print(f"  throughput ratio            {result['ratio']:9.2f}x")
    print(f"  cached matrices             {result['plan_matrix_mb']:9.1f} MB")
    print(f"  bit-identical columns       {result['bit_identical']}")


def test_serving_throughput(benchmark):
    """Smoke-scale batching check (CI's serving-smoke gate).

    Asserts every batched column is bit-identical to its solo apply and
    that batching is not slower than sequential (1.1x tolerance against
    timer noise at tiny N; the >= 2x acceptance gate runs at paper scale
    via ``--assert-ratio``).
    """
    result = benchmark.pedantic(
        lambda: run_bench(
            n=4_000, order=4, q=200, batch=8, repeats=3,
            matrix_budget=2 * 2**30,
        ),
        rounds=1,
        iterations=1,
    )
    _print(result)
    merge_result("throughput_smoke", result)
    assert result["bit_identical"]
    assert result["batched_s"] <= 1.1 * result["sequential_s"], (
        f"batched apply {result['batched_s']:.4f}s slower than "
        f"{result['batch']} sequential applies {result['sequential_s']:.4f}s"
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--n", type=int, default=20_000)
    ap.add_argument("--order", type=int, default=6)
    ap.add_argument("--q", type=int, default=400, help="max points per box")
    ap.add_argument("--kernel", default="laplace")
    ap.add_argument("--batch", type=int, default=8)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--matrix-budget-mb", type=int, default=6144,
                    help="kernel-matrix cache budget (MB) for both paths")
    ap.add_argument("--seed", type=int, default=1234)
    ap.add_argument("--assert-ratio", type=float, default=None,
                    metavar="X", help="fail unless ratio >= X")
    args = ap.parse_args()
    result = run_bench(
        n=args.n, order=args.order, q=args.q, kernel=args.kernel,
        batch=args.batch, repeats=args.repeats,
        matrix_budget=args.matrix_budget_mb * 2**20, seed=args.seed,
    )
    _print(result)
    merge_result("throughput", result)
    print(f"wrote {RESULT_PATH}")
    if not result["bit_identical"]:
        print("FAIL: batched columns are not bit-identical to solo applies")
        return 1
    if args.assert_ratio is not None and result["ratio"] < args.assert_ratio:
        print(f"FAIL: ratio {result['ratio']:.2f}x < {args.assert_ratio}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
