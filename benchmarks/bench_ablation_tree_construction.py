"""Ablation — distributed tree construction vs replicated global tree.

Paper §I/§III-A: the SC'03 implementation kept "a lightweight copy of the
entire global tree on each process", which was already 15x slower than the
evaluation at 3000 ranks; the new distributed construction (parallel
sample sort + local refinement + LET exchange) brings setup down to ~10%
of the evaluation.

Here: (a) the new scheme's modelled setup/evaluation ratio, and (b) the
communication volume of the replicated baseline — every rank allgathers
all points — vs the distributed scheme's sample-sort + LET traffic, per
rank, as p grows.  Reproduced shape: replicated volume grows ~O(n), the
distributed scheme's stays ~O(n/p).
"""

from common import (
    make_points,
    modeled_eval_seconds,
    modeled_setup_seconds,
    print_series,
    run_distributed,
)
from repro.mpi import run_spmd

RANKS = [2, 4, 8, 16]
PER_RANK = 1000


def replicated_bytes(points, p):
    """Traffic of the SC'03 baseline: allgather every point everywhere."""

    def fn(comm):
        mine = points[comm.rank :: comm.size]
        comm.allgather(mine)  # the whole cloud lands on every rank
        return comm.bytes_sent

    res = run_spmd(p, fn, timeout=300)
    return max(res.values)


def test_ablation_tree_construction(benchmark):
    def sweep():
        rows = []
        for p in RANKS:
            points = make_points("ellipsoid", PER_RANK * p)
            res = run_distributed(points, p, load_balance=False)
            su, _ = modeled_setup_seconds(res)
            ev, _ = modeled_eval_seconds(res)
            # construction traffic only (sort + tree + LET), comparable to
            # the baseline's point allgather
            dist_bytes = max(
                sum(
                    prof.events[ph].comm_bytes
                    for ph in ("tree", "let", "balance")
                    if ph in prof.events
                )
                for prof in res.profiles
            )
            rep_bytes = replicated_bytes(points, p)
            rows.append(
                [p, f"{su:.3f}", f"{ev:.3f}", f"{100 * su / ev:.0f}%",
                 f"{dist_bytes / 1e6:.2f}", f"{rep_bytes / 1e6:.2f}"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Ablation: distributed construction vs replicated-tree baseline",
        ["p", "setup s", "eval s", "setup/eval",
         "dist MB/rank", "replicated MB/rank"],
        rows,
    )
    # the paper's claim: setup is a small fraction of evaluation
    fractions = [float(r[3].rstrip("%")) for r in rows]
    assert max(fractions) < 60.0
    # replicated traffic per rank grows with total n; distributed traffic
    # per rank stays roughly flat under weak scaling
    dist_growth = float(rows[-1][4]) / float(rows[0][4])
    rep_growth = float(rows[-1][5]) / float(rows[0][5])
    assert rep_growth > 2.0 * dist_growth
