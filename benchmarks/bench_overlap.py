"""Comm/compute overlap: achieved vs modelled, pipelined vs sequential.

The paper lists overlapping communication with computation as the main
unexploited optimisation ("we do not thoroughly overlap computation and
communication").  PR 6's nonblocking runtime actually pipelines the
distributed evaluation: the ghost-density exchange flies behind
S2U + U2U and the shared-density reduce-scatter behind the X-list.
This bench quantifies what that buys, per rank count:

* ``sequential_s``  — modelled max-over-ranks eval seconds, no overlap
* ``modelled_s``    — the dependency-legal overlap bound
                      (:func:`repro.perf.model.overlapped_eval_seconds`)
* ``achieved_s``    — what the pipelined schedule *actually* hid, read
                      from the ``INFLIGHT:*`` trace spans
                      (:func:`repro.perf.model.overlap_report`)
* ``bit_identical`` — pipelined potentials equal the sequential ones
                      bit for bit
* ``ledger_equal``  — per-rank message/byte ledgers unchanged between
                      the two schedules (same traffic, earlier)

Results are written to ``BENCH_overlap.json`` at the repo root.  Run
standalone for the paper-scale numbers::

    PYTHONPATH=src python benchmarks/bench_overlap.py

or via pytest at smoke scale (used by CI's overlap-smoke step)::

    pytest benchmarks/bench_overlap.py --benchmark-only -s
"""

import argparse
import json
from pathlib import Path

import numpy as np

from common import density, make_points, run_distributed

from repro.mpi import KRAKEN
from repro.perf.model import overlap_report, overlapped_eval_seconds

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_overlap.json"


def _collect(res):
    pots = np.concatenate([v[1] for v in res.values])
    ledger = [(c.messages_sent, c.bytes_sent) for c in res.comms]
    return pots, ledger


def run_bench(
    n: int = 12_000,
    ranks=(4, 8),
    order: int = 4,
    q: int = 50,
    machine=KRAKEN,
) -> dict:
    points = make_points("uniform", n)
    result = {"n": n, "order": order, "q": q, "machine": machine.name}
    for p in ranks:
        seq = run_distributed(
            points, p, density, trace=True, order=order,
            max_points_per_box=q, pipeline=False,
        )
        pip = run_distributed(
            points, p, density, trace=True, order=order,
            max_points_per_box=q, pipeline=True,
        )
        pot_s, led_s = _collect(seq)
        pot_p, led_p = _collect(pip)
        rep = overlap_report(pip.profiles, machine, trace=pip.trace)
        # the ledgers are schedule-independent, so the modelled times of
        # the pipelined run must equal the sequential run's: any drift
        # means the pipeline moved different traffic
        ovl_seq_ledger, seq_seq_ledger = overlapped_eval_seconds(
            seq.profiles, machine
        )
        inflight = [
            ev for ev in pip.trace.span_events()
            if ev.phase.startswith("INFLIGHT:")
        ]
        result[f"p{p}"] = {
            "sequential_s": rep["sequential"],
            "modelled_s": rep["modelled_overlapped"],
            "achieved_s": rep["achieved"],
            "hidden_s": rep["hidden_max"],
            "modelled_saving_pct": 100.0
            * (1.0 - rep["modelled_overlapped"] / rep["sequential"]),
            "achieved_saving_pct": 100.0
            * (1.0 - rep["achieved"] / rep["sequential"]),
            "bit_identical": bool(np.array_equal(pot_s, pot_p)),
            "ledger_equal": bool(led_s == led_p),
            "modelled_ratio_vs_sequential_schedule": rep["sequential"]
            / seq_seq_ledger,
            "inflight_spans": len(inflight),
            "inflight_hidden_flops": float(sum(ev.flops for ev in inflight)),
        }
        assert ovl_seq_ledger > 0.0
    return result


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2) + "\n")


def _print(result: dict) -> None:
    print(
        f"N={result['n']} order={result['order']} q={result['q']} "
        f"machine={result['machine']} (modelled seconds):"
    )
    for key, row in result.items():
        if not key.startswith("p"):
            continue
        print(
            f"  p={key[1:]:>2}  seq {row['sequential_s']:8.4f}s  "
            f"modelled {row['modelled_s']:8.4f}s "
            f"({row['modelled_saving_pct']:5.1f}%)  "
            f"achieved {row['achieved_s']:8.4f}s "
            f"({row['achieved_saving_pct']:5.1f}%)  "
            f"bitwise={'OK' if row['bit_identical'] else 'FAIL'}  "
            f"ledger={'OK' if row['ledger_equal'] else 'FAIL'}"
        )


def test_overlap(benchmark):
    """Smoke-scale overlap check (CI's overlap-smoke gate).

    Asserts, at p in {4, 8}: the pipelined schedule is bit-identical to
    the sequential one and moved the same per-rank traffic; the modelled
    overlapped bound is strictly below sequential; the pipelined run's
    modelled eval time stays within 1.05x of the sequential schedule's
    (the ledgers are schedule-independent, so any excess means the
    pipeline added traffic); and the trace shows real hidden overlap.
    """
    result = benchmark.pedantic(
        lambda: run_bench(n=3_000, ranks=(4, 8), order=4, q=40),
        rounds=1,
        iterations=1,
    )
    _print(result)
    write_result(result)
    for p in (4, 8):
        row = result[f"p{p}"]
        assert row["bit_identical"], f"p={p}: pipelined result diverged"
        assert row["ledger_equal"], f"p={p}: pipelined ledger drifted"
        assert row["modelled_s"] < row["sequential_s"], (
            f"p={p}: modelled overlap {row['modelled_s']:.4f}s not below "
            f"sequential {row['sequential_s']:.4f}s"
        )
        assert row["modelled_ratio_vs_sequential_schedule"] <= 1.05, (
            f"p={p}: pipelined modelled eval "
            f"{row['modelled_ratio_vs_sequential_schedule']:.3f}x the "
            "sequential schedule's"
        )
        assert row["inflight_spans"] > 0
        assert row["hidden_s"] > 0.0, f"p={p}: nothing actually overlapped"


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=12_000)
    ap.add_argument("--order", type=int, default=4)
    ap.add_argument("--q", type=int, default=50)
    ap.add_argument("--ranks", type=int, nargs="+", default=[4, 8])
    args = ap.parse_args()
    out = run_bench(n=args.n, ranks=tuple(args.ranks), order=args.order, q=args.q)
    _print(out)
    write_result(out)
    print(f"wrote {RESULT_PATH}")
