"""Figure 3 — MPI strong scaling on Kraken.

Paper: fixed problem (200M points uniform / 100M nonuniform), p = 512..8K;
evaluation+setup times drop near-linearly with 80-90% parallel efficiency
and a small max-vs-avg gap (good load balance).

Here: fixed N (scaled down), virtual ranks p = 2..16, modelled times under
Kraken constants.  The reproduced shape: efficiency stays above ~75%, the
setup phase is a small fraction, and max/avg stays close to 1.
"""

import pytest

from common import (
    make_points,
    modeled_eval_seconds,
    modeled_setup_seconds,
    print_series,
    run_distributed,
)

CASES = {"uniform": 24_000, "ellipsoid": 12_000}
RANKS = [2, 4, 8, 16]


@pytest.mark.parametrize("dist", list(CASES))
def test_fig3_strong_scaling(benchmark, dist):
    points = make_points(dist, CASES[dist])

    def sweep():
        rows = []
        base = None
        for p in RANKS:
            res = run_distributed(points, p, load_balance=True)
            ev_max, ev_avg = modeled_eval_seconds(res)
            su_max, _ = modeled_setup_seconds(res)
            if base is None:
                base = ev_max * RANKS[0]
            eff = base / (ev_max * p)
            rows.append(
                [p, f"{su_max:.3f}", f"{ev_max:.3f}", f"{ev_avg:.3f}",
                 f"{ev_max / ev_avg:.2f}", f"{100 * eff:.0f}%"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        f"Fig 3 (strong scaling, {dist}, N={CASES[dist]}) — modelled Kraken seconds",
        ["p", "setup max", "eval max", "eval avg", "max/avg", "efficiency"],
        rows,
    )
    # shape assertions: the paper reports 80-90% efficiency; allow slack
    # for the much smaller problem
    eff_last = float(rows[-1][-1].rstrip("%"))
    assert eff_last > 60.0, "strong-scaling efficiency collapsed"
    assert float(rows[-1][4]) < 2.0, "load imbalance exploded"
