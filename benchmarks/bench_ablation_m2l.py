"""Ablation — FFT-diagonalised V-list translation vs dense M2L.

Paper §IV: the V-list step "is diagonal ... based on a Fast Fourier
Transform-based diagonalization of the T operator".  This bench quantifies
what the diagonal form buys over applying dense (n_s x n_s) M2L matrices
pair by pair: counted flops and wall time of the VLI phase, at two surface
orders (the dense cost grows ~ order^4 per pair, the FFT cost ~ order^3
log order).
"""

import numpy as np

from repro.core import build_lists, build_tree
from repro.core.evaluator import FmmEvaluator
from repro.datasets import uniform_cube
from repro.kernels import get_kernel
from repro.perf.report import format_table
from repro.util.timer import PhaseProfile

N = 20_000
Q = 40


def vli_cost(order: int, mode: str):
    points = uniform_cube(N, seed=99)
    kernel = get_kernel("laplace")
    tree = build_tree(points, Q)
    lists = build_lists(tree)
    dens = np.random.default_rng(1).standard_normal(N)[tree.order]
    ev = FmmEvaluator(kernel, order, m2l_mode=mode)
    prof = PhaseProfile()
    out = ev.evaluate(tree, lists, dens, prof)
    return prof.events["VLI"].flops, prof.events["VLI"].wall_seconds, out


def test_ablation_m2l(benchmark):
    def sweep():
        rows = []
        for order in (6, 8):
            f_fft, t_fft, out_fft = vli_cost(order, "fft")
            f_dense, t_dense, out_dense = vli_cost(order, "dense")
            err = np.linalg.norm(out_fft - out_dense) / np.linalg.norm(out_dense)
            rows.append(
                [order, f"{f_dense:.3g}", f"{f_fft:.3g}",
                 f"{f_dense / f_fft:.2f}x",
                 f"{t_dense:.2f}", f"{t_fft:.2f}", f"{err:.1e}"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["order", "dense flops", "fft flops", "flop ratio",
         "dense wall s", "fft wall s", "rel diff"],
        rows,
        title=f"Ablation: dense vs FFT-diagonal M2L (N={N}, q={Q})",
    ))
    # the diagonal form must win on counted work, more so at higher order
    ratios = [float(r[3].rstrip("x")) for r in rows]
    assert ratios[0] > 1.0
    assert ratios[1] > ratios[0], "FFT advantage should grow with order"
    # and the two paths agree numerically
    assert all(float(r[6]) < 1e-9 for r in rows)
