"""Figure 5 — variance of flops across processes.

Paper: per-rank total evaluation flops on the 64K-core run; the uniform
distribution is nearly flat while the nonuniform one shows visibly larger
spread (note "the different scales on the y-axis").

Here: per-virtual-rank evaluation flops at p = 16, measured (not modelled)
from the counted ledgers, with the work-based load balancer on — plus the
nonuniform case with the balancer off to show what it buys.
"""

import numpy as np
import pytest

from common import make_points, print_series, run_distributed
from repro.perf.model import EVAL_PHASES

P = 16
N = {"uniform": 16_000, "ellipsoid": 16_000}


def rank_flops(result):
    out = []
    for prof in result.profiles:
        out.append(
            sum(
                prof.events[ph].flops
                for ph in EVAL_PHASES
                if ph in prof.events
            )
        )
    return np.array(out)


@pytest.mark.parametrize("dist", ["uniform", "ellipsoid"])
def test_fig5_flops_variance(benchmark, dist):
    points = make_points(dist, N[dist])

    def run():
        balanced = rank_flops(run_distributed(points, P, load_balance=True))
        unbalanced = rank_flops(run_distributed(points, P, load_balance=False))
        return balanced, unbalanced

    balanced, unbalanced = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["balanced", f"{balanced.min():.3g}", f"{balanced.max():.3g}",
         f"{balanced.mean():.3g}", f"{balanced.max() / balanced.mean():.2f}",
         f"{balanced.std() / balanced.mean():.3f}"],
        ["unbalanced", f"{unbalanced.min():.3g}", f"{unbalanced.max():.3g}",
         f"{unbalanced.mean():.3g}", f"{unbalanced.max() / unbalanced.mean():.2f}",
         f"{unbalanced.std() / unbalanced.mean():.3f}"],
    ]
    print_series(
        f"Fig 5 (flops across {P} ranks, {dist}, N={N[dist]})",
        ["partition", "min", "max", "avg", "max/avg", "cv"],
        rows,
    )
    print("per-rank flops (balanced):",
          " ".join(f"{f:.2e}" for f in balanced))
    # paper shape: max/avg ~ 1.47 for the nonuniform 64K run
    assert balanced.max() / balanced.mean() < 2.0
    if dist == "ellipsoid":
        assert balanced.max() / balanced.mean() <= unbalanced.max() / unbalanced.mean() * 1.1
