"""Distributed serving smoke: the CLI bench at tiny scale, gated.

CI's ``dist-serve-smoke`` job runs the real thing::

    PYTHONPATH=src python -m repro serve --dist --bench --chaos --seed 0

which stands up the router + rank-sharded/replicated models, drives
closed-loop load clean and under a seeded chaos plan (crash, wait-crash,
in-flight corruption, straggler), probes bit-identity under a fresh
crash plan, runs the GPU degrade drill, and gates on typed-only errors
plus a bounded chaos-p99 factor (``BENCH_dist_serving.json``).

This pytest wrapper invokes the same CLI entry point at a smaller scale
so the whole chain — argument plumbing, gates, JSON output — is
exercised by ``pytest benchmarks/ --benchmark-only`` too.
"""

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_dist_serving_smoke(benchmark, tmp_path):
    from repro.__main__ import main

    out = tmp_path / "BENCH_dist_serving.json"
    rc = benchmark.pedantic(
        lambda: main([
            "serve", "--dist", "--bench", "--chaos", "--seed", "0",
            "--n", "800", "--duration", "2", "--clients", "4",
            "--out", str(out),
        ]),
        rounds=1,
        iterations=1,
    )
    assert rc == 0, "dist serving bench gates failed"
    data = json.loads(out.read_text())["dist_serving"]
    assert data["probe_bit_identical"]
    assert data["gpu_degrade_bit_identical"]
    assert data["chaos"]["loadgen"]["errors"] == 0
    assert data["clean"]["failed"] == 0


if __name__ == "__main__":
    import sys

    from repro.__main__ import main

    sys.exit(main(["serve", "--dist", "--bench", "--chaos", "--seed", "0"]))
