"""Autotuner acceptance smoke: guided search vs the exhaustive grid.

The online autotuner (:mod:`repro.tune`) calibrates a per-phase cost
model from subsample probes, ranks the full config grid by predicted
latency, and spends its measurement budget (default 25% of the grid) on
a successive-halving shortlist only.  This bench checks the promises
that make it shippable:

* ``tuned_over_best`` — per-request latency of the tuned config divided
  by the best exhaustively-measured grid point (must stay near 1)
* ``probe_fraction`` — fraction of the grid that was actually measured
* ``deterministic_replay`` — a same-seed re-run picks the same config
* ``met_slo`` — the tuned config meets the stated latency SLO and the
  accuracy floor

Results merge into ``BENCH_autotune.json`` at the repo root under the
``"smoke"`` key (the ``python -m repro tune --gate`` and ``--bench``
runs own the ``"gate"`` and ``"autotune"`` keys).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_autotune.py

or via pytest at the same scale (used by CI's autotune-smoke job)::

    pytest benchmarks/bench_autotune.py --benchmark-only -s
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_autotune.json"

#: Smoke scale: large enough that the best grid point is decisively
#: ahead (no timer-noise ties), small enough for a CI lane.
SMOKE_N = 4_000


def run_bench(n: int = SMOKE_N, kernel: str = "laplace",
              distribution: str = "uniform", seed: int = 0,
              latency_ms: float = 500.0, budget_frac: float = 0.25) -> dict:
    from repro.datasets import make_distribution
    from repro.tune.search import SLO, default_grid, measure_grid, tune

    points = make_distribution(distribution, n, seed=seed)
    grid = default_grid(n, orders=(4, 6), leaf_sizes=(64, 144),
                        precisions=("fp64", "fp32"),
                        batch_shapes=((8, 2.0),))
    slo = SLO(latency_s=latency_ms / 1e3, precision_rtol=1e-3)

    t0 = time.perf_counter()
    report = tune(points, kernel=kernel, slo=slo, grid=grid, seed=seed,
                  budget_frac=budget_frac)
    tune_wall = time.perf_counter() - t0
    replay = tune(points, kernel=kernel, slo=slo, grid=grid, seed=seed,
                  budget_frac=budget_frac)

    exhaustive = measure_grid(points, kernel=kernel, grid=grid, seed=seed,
                              reps=2)
    per_req = {c: t / max(c.max_batch, 1) for c, t in exhaustive.items()}
    best = min(per_req, key=per_req.get)

    cfg = report.config
    return {
        "n": n, "kernel": kernel, "distribution": distribution,
        "seed": seed, "grid_size": len(grid),
        "slo": slo.to_dict(),
        "tune_wall_s": tune_wall,
        "tuned_config": cfg.key(),
        "best_grid_config": best.key(),
        "tuned_per_request_s": per_req[cfg],
        "best_per_request_s": per_req[best],
        "tuned_over_best": per_req[cfg] / per_req[best],
        "probe_fraction": report.probe_fraction,
        "n_probed": report.n_probed,
        "deterministic_replay": replay.config == cfg,
        "met_slo": report.met_slo,
        "accuracy": report.accuracy,
    }


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    data["smoke"] = result
    path.write_text(json.dumps(data, indent=2, default=str) + "\n")


def _print(result: dict) -> None:
    print(
        f"N={result['n']} {result['distribution']} {result['kernel']} "
        f"grid {result['grid_size']} configs:"
    )
    print(f"  tuned {result['tuned_config']}  "
          f"{result['tuned_per_request_s'] * 1e3:7.2f} ms/req  "
          f"(search {result['tune_wall_s']:.1f}s, "
          f"probed {result['probe_fraction']:.0%})")
    print(f"  best  {result['best_grid_config']}  "
          f"{result['best_per_request_s'] * 1e3:7.2f} ms/req  "
          f"-> ratio {result['tuned_over_best']:.3f}")
    print(f"  SLO {'met' if result['met_slo'] else 'MISSED'}, replay "
          f"{'deterministic' if result['deterministic_replay'] else 'DIVERGED'}")


def test_autotune(benchmark):
    """Smoke-scale autotune gate (CI's autotune-smoke job).

    Asserts the guided search lands within 1.25x of the best
    exhaustively-measured grid point (noise tolerance at smoke N; the
    ``--gate`` CLI run enforces 1.05x), measures at most the budgeted
    quarter of the grid, replays deterministically under the same seed,
    and meets both the latency SLO and the accuracy floor.
    """
    result = benchmark.pedantic(lambda: run_bench(), rounds=1, iterations=1)
    _print(result)
    write_result(result)
    assert result["met_slo"], "tuned config misses the SLO"
    assert result["tuned_over_best"] <= 1.25, (
        f"tuned config {result['tuned_config']} is "
        f"{result['tuned_over_best']:.2f}x the best grid point "
        f"{result['best_grid_config']}"
    )
    budget = max(1, int(np.ceil(0.25 * result["grid_size"])))
    assert result["n_probed"] <= budget, (
        f"probed {result['n_probed']} configs, budget {budget}"
    )
    assert result["deterministic_replay"], "same-seed replay diverged"


if __name__ == "__main__":
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=SMOKE_N)
    ap.add_argument("--kernel", default="laplace")
    ap.add_argument("--distribution", default="uniform")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--latency-ms", type=float, default=500.0)
    args = ap.parse_args()
    res = run_bench(n=args.n, kernel=args.kernel,
                    distribution=args.distribution, seed=args.seed,
                    latency_ms=args.latency_ms)
    _print(res)
    write_result(res)
