"""Ablation — the paper's future-work items, quantified.

The conclusions list the remaining acceleration opportunities:
"multicore multithreading for the CPU-to-GPU data transformations, the
acceleration of the setup phase using GPU-accelerated sorting and tree
construction, and [overlap]" plus the limitations note "we do not
thoroughly overlap computation and communication".  Two of these are
implemented as modelled extensions; this bench reports what they buy.

* **Overlap**: ghost-density exchange hidden behind the upward pass and
  the reduce-scatter hidden behind the X-list (legal by Algorithm 1's
  dependency structure).
* **GPU sort**: the setup-phase Morton sort moved onto the device
  (bandwidth-bound radix passes vs a single-core comparison sort).
"""

import numpy as np

from common import make_points, print_series, run_distributed
from repro.gpu import VirtualGpu
from repro.gpu.sort import RADIX_BITS
from repro.mpi import KRAKEN
from repro.perf.model import overlapped_eval_seconds

RANKS = [4, 8, 16]
PER_RANK = 1500


def test_ablation_overlap(benchmark):
    def sweep():
        rows = []
        for p in RANKS:
            points = make_points("ellipsoid", PER_RANK * p)
            res = run_distributed(points, p, load_balance=True)
            ovl, seq = overlapped_eval_seconds(res.profiles, KRAKEN)
            rows.append(
                [p, f"{seq:.4f}", f"{ovl:.4f}", f"{100 * (1 - ovl / seq):.1f}%"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Future work: comm/compute overlap (modelled eval seconds)",
        ["p", "sequential", "overlapped", "saving"],
        rows,
    )
    for r in rows:
        assert float(r[2]) <= float(r[1]) + 1e-12
    # the saving is bounded by the comm share (small here, as in Table II)
    assert all(float(r[3].rstrip("%")) < 50 for r in rows)


def test_ablation_gpu_sort(benchmark):
    def sweep():
        gpu = VirtualGpu()
        passes = -(-64 // RADIX_BITS)
        rows = []
        for n in (100_000, 1_000_000, 10_000_000):
            dev = gpu.model.kernel_seconds(
                passes * n * 4.0, passes * n * 20.0
            ) + gpu.model.transfer_seconds(16.0 * n)
            cpu = KRAKEN.compute_seconds(4.0 * n * np.log2(n))
            rows.append([n, f"{cpu:.4f}", f"{dev:.4f}", f"{cpu / dev:.1f}x"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Future work: GPU radix sort of Morton keys (modelled seconds/rank)",
        ["n keys", "CPU sort", "GPU sort", "speedup"],
        rows,
    )
    speedups = [float(r[3].rstrip("x")) for r in rows]
    assert all(s > 5 for s in speedups)
    assert speedups[-1] >= speedups[0]  # log n factor favours the device
