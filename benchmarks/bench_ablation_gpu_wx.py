"""Ablation — W/X lists on the CPU (paper's configuration) vs on the GPU.

The paper keeps the W- and X-list phases on the CPU and names moving them
to the device as ongoing work ("Our ongoing work includes transferring
the W,X-lists on the GPU").  This bench quantifies that move on a
nonuniform workload (adaptive trees are what make W/X nontrivial):
modelled per-rank seconds of the W/X work in both configurations, and the
resulting total-evaluation improvement.
"""

import numpy as np

from repro.core import build_lists, build_tree
from repro.datasets import ellipsoid_surface
from repro.gpu import GpuFmmEvaluator
from repro.kernels import get_kernel
from repro.mpi import LINCOLN
from repro.perf.report import format_table
from repro.util.timer import PhaseProfile

N = 30_000
Q = 40


def run(accelerate_wx: bool):
    points = ellipsoid_surface(N, seed=88)
    kernel = get_kernel("laplace")
    tree = build_tree(points, Q)
    lists = build_lists(tree)
    dens = np.random.default_rng(2).standard_normal(N)[tree.order]
    ev = GpuFmmEvaluator(kernel, 6, accelerate_wx=accelerate_wx)
    prof = PhaseProfile()
    out = ev.evaluate(tree, lists, dens, prof)
    led = ev.gpu.ledger
    wx_dev = led.phase_seconds("WLI") + led.phase_seconds("XLI")
    wx_cpu = sum(
        LINCOLN.compute_seconds(prof.events[ph].flops)
        for ph in ("WLI", "XLI")
        if ph in prof.events
    )
    dev_rest = sum(
        led.phase_seconds(ph) for ph in ("S2U", "VLI", "D2T", "ULI")
    )
    cpu_rest = LINCOLN.fft_seconds(
        sum(prof.events[ph].flops for ph in ("U2U", "D2D", "VLI") if ph in prof.events)
    )
    total = wx_dev + wx_cpu + dev_rest + cpu_rest
    return out, wx_cpu, wx_dev, total


def test_ablation_gpu_wx(benchmark):
    def sweep():
        out_cpu, wx_cpu, _, total_cpu = run(accelerate_wx=False)
        out_gpu, _, wx_dev, total_gpu = run(accelerate_wx=True)
        err = np.linalg.norm(out_gpu - out_cpu) / np.linalg.norm(out_cpu)
        return [
            ["W/X on CPU (paper)", f"{wx_cpu:.4f}", f"{total_cpu:.4f}", "-"],
            ["W/X on GPU (ext.)", f"{wx_dev:.4f}", f"{total_gpu:.4f}",
             f"{err:.1e}"],
        ], wx_cpu, wx_dev, total_cpu, total_gpu

    rows, wx_cpu, wx_dev, total_cpu, total_gpu = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["configuration", "W/X seconds", "total eval", "rel diff"],
        rows,
        title=f"Ablation: W/X placement (ellipsoid, N={N}, q={Q}) — modelled",
    ))
    assert wx_dev < wx_cpu, "device W/X must beat the CPU path"
    assert total_gpu < total_cpu
