"""Benchmark suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the regenerated paper tables.)  Every benchmark executes its
experiment exactly once per round; the interesting output is the printed
series, not the wall time of the simulator.
"""

import sys
from pathlib import Path

# allow `import common` from benchmark modules
sys.path.insert(0, str(Path(__file__).parent))
