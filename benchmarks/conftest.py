"""Benchmark suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the regenerated paper tables.)  Every benchmark executes its
experiment exactly once per round; the interesting output is the printed
series, not the wall time of the simulator.
"""

import sys
from pathlib import Path

# allow `import common` from benchmark modules
sys.path.insert(0, str(Path(__file__).parent))


def pytest_addoption(parser):
    # (`--trace` itself is taken by pytest's own pdb option)
    parser.addoption(
        "--trace-jsonl",
        default=None,
        metavar="OUT_JSONL",
        help="record a per-message trace of every distributed benchmark "
        "run (appended to this JSONL file)",
    )


def pytest_configure(config):
    path = config.getoption("--trace-jsonl", default=None)
    if path:
        import common

        # truncate once per session; runs append
        open(path, "w").close()
        common.TRACE_PATH = path
