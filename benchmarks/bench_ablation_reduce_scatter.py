"""Ablation — hypercube REDUCE-AND-SCATTER (Alg. 3) vs owner-based scheme.

Paper §III-C: the owner-based reduction "worked well on up to 32K
processes, but failed in the 64K case" because octants near the root have
up to p users, so the owner must send O(p) point-to-point messages; the
hypercube scheme bounds every rank at log2(p) messages per round with
total volume O(m (3 sqrt(p) - 2)).

Here: both schemes reduce the same shared-octant densities from a real
ellipsoid setup, sweeping the rank count.  Reported: the maximum
per-rank message count and modelled communication seconds of the COMM
phase.  Reproduced shape: owner-based max-messages grows linearly in p,
hypercube stays logarithmic.
"""

import numpy as np

from common import make_points, print_series, run_distributed

RANKS = [4, 8, 16, 32]
PER_RANK = 500


def comm_stats(result):
    """Max per-rank message count / modelled seconds of the reduction
    step alone (the density exchange is identical in both schemes)."""
    msgs, secs = [], []
    for prof in result.profiles:
        ev = prof.events.get("COMM_reduce")
        msgs.append(ev.comm_messages if ev else 0)
        secs.append(ev.comm_seconds if ev else 0.0)
    return max(msgs), max(secs)


def test_ablation_reduce_scatter(benchmark):
    def sweep():
        rows = []
        for p in RANKS:
            points = make_points("ellipsoid", PER_RANK * p)
            m_h, s_h = comm_stats(
                run_distributed(points, p, comm_scheme="hypercube")
            )
            m_o, s_o = comm_stats(
                run_distributed(points, p, comm_scheme="owner")
            )
            rows.append(
                [p, m_h, m_o, f"{s_h * 1e3:.2f}", f"{s_o * 1e3:.2f}"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Ablation: Algorithm 3 vs owner-based reduction (max per-rank COMM)",
        ["p", "hcube msgs", "owner msgs", "hcube ms", "owner ms"],
        rows,
    )
    # message growth: owner-based grows ~linearly with p, hypercube ~log p
    h_growth = rows[-1][1] / rows[0][1]
    o_growth = rows[-1][2] / rows[0][2]
    assert o_growth > 2.0 * h_growth, (
        f"owner scheme should blow up with p (owner x{o_growth:.1f}, "
        f"hypercube x{h_growth:.1f})"
    )
