"""Ablation — hypercube REDUCE-AND-SCATTER (Alg. 3) vs owner-based scheme.

Paper §III-C: the owner-based reduction "worked well on up to 32K
processes, but failed in the 64K case" because octants near the root have
up to p users, so the owner must send O(p) point-to-point messages; the
hypercube scheme bounds every rank at log2(p) messages per round with
total volume O(m (3 sqrt(p) - 2)).

Here: both schemes reduce the same shared-octant densities from a real
ellipsoid setup, sweeping the rank count, with per-message tracing on.
Reported: the maximum per-rank message count and modelled communication
seconds of the COMM phase, plus — from the trace — the per-scheme p x p
communication matrices of the reduction step.  Reproduced shape:
owner-based max-messages grows linearly in p, hypercube stays
logarithmic; the hypercube's *total* message count never exceeds the
owner scheme's (the §III-C argument, checked structurally).
"""

from common import make_points, print_series, run_distributed
from repro.perf.commviz import communication_matrix, render_matrix

RANKS = [4, 8, 16, 32]
MATRIX_RANKS = (4, 8, 16)  # print/check the full matrices at these sizes
PER_RANK = 500
PHASE = "COMM_reduce"


def comm_stats(result):
    """Max per-rank message count / modelled seconds of the reduction
    step alone (the density exchange is identical in both schemes)."""
    msgs, secs = [], []
    for prof in result.profiles:
        ev = prof.events.get(PHASE)
        msgs.append(ev.comm_messages if ev else 0)
        secs.append(ev.comm_seconds if ev else 0.0)
    return max(msgs), max(secs)


def test_ablation_reduce_scatter(benchmark):
    matrices = {}  # (p, scheme) -> CommMatrix of the reduction phase

    def sweep():
        rows = []
        for p in RANKS:
            points = make_points("ellipsoid", PER_RANK * p)
            res_h = run_distributed(points, p, comm_scheme="hypercube", trace=True)
            res_o = run_distributed(points, p, comm_scheme="owner", trace=True)
            m_h, s_h = comm_stats(res_h)
            m_o, s_o = comm_stats(res_o)
            matrices[(p, "hypercube")] = communication_matrix(
                res_h.trace, p, phase=PHASE
            )
            matrices[(p, "owner")] = communication_matrix(
                res_o.trace, p, phase=PHASE
            )
            rows.append(
                [p, m_h, m_o, f"{s_h * 1e3:.2f}", f"{s_o * 1e3:.2f}"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Ablation: Algorithm 3 vs owner-based reduction (max per-rank COMM)",
        ["p", "hcube msgs", "owner msgs", "hcube ms", "owner ms"],
        rows,
    )
    for p in MATRIX_RANKS:
        for scheme in ("hypercube", "owner"):
            print()
            print(f"[{scheme}, p={p}]")
            print(render_matrix(matrices[(p, scheme)]))
    # structural check (paper §III-C): the hypercube scheme never sends
    # more messages in total than the owner-based scheme
    for p in MATRIX_RANKS:
        hc = matrices[(p, "hypercube")].total_messages()
        ow = matrices[(p, "owner")].total_messages()
        assert hc <= ow, (
            f"p={p}: hypercube sent {hc} msgs > owner scheme's {ow}"
        )
    # message growth: owner-based grows ~linearly with p, hypercube ~log p
    h_growth = rows[-1][1] / rows[0][1]
    o_growth = rows[-1][2] / rows[0][2]
    assert o_growth > 2.0 * h_growth, (
        f"owner scheme should blow up with p (owner x{o_growth:.1f}, "
        f"hypercube x{h_growth:.1f})"
    )
