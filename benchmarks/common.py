"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures at laptop
scale: the virtual-rank counts and point counts are scaled down, but the
series shapes (efficiency, crossover, who-wins) are the reproduction
targets.  Numbers print next to the paper's values; EXPERIMENTS.md records
both.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import ellipsoid_surface, uniform_cube
from repro.dist.driver import distributed_fmm_rank
from repro.mpi import KRAKEN, run_spmd
from repro.perf.model import EVAL_PHASES

__all__ = [
    "density",
    "make_points",
    "run_distributed",
    "modeled_eval_seconds",
    "modeled_setup_seconds",
    "print_series",
]

#: Set by ``benchmarks/conftest.py`` when pytest is invoked with
#: ``--trace-jsonl out.jsonl``: every ``run_distributed`` call then records
#: a full per-message trace and appends it to this file.
TRACE_PATH: str | None = None


def density(pts: np.ndarray) -> np.ndarray:
    """Deterministic synthetic density (function of position)."""
    return np.sin(17.0 * pts[:, 0]) + pts[:, 2] * np.cos(11.0 * pts[:, 1])


def make_points(dist: str, n: int, seed: int = 1234) -> np.ndarray:
    return {"uniform": uniform_cube, "ellipsoid": ellipsoid_surface}[dist](
        n, seed=seed
    )


def vector_density(pts: np.ndarray) -> np.ndarray:
    """Synthetic 3-dof density (Stokes force field)."""
    return np.stack(
        [np.sin(9 * pts[:, 0]), pts[:, 1] - 0.5, np.cos(7 * pts[:, 2])], axis=1
    ).reshape(-1)


def run_distributed(points: np.ndarray, p: int, density_fn=None, trace=None, **kwargs):
    """One full distributed FMM run; returns the SpmdResult.

    ``trace`` is forwarded to :func:`run_spmd` (``True`` or a
    ``TraceRecorder``); when pytest was started with ``--trace-jsonl``,
    runs are traced automatically and appended to that JSONL file.
    """
    defaults = dict(kernel="laplace", order=4, max_points_per_box=50)
    defaults.update(kwargs)
    if density_fn is None:
        density_fn = vector_density if defaults["kernel"] == "stokes" else density
    if trace is None and TRACE_PATH is not None:
        trace = True
    result = run_spmd(
        p, distributed_fmm_rank, points, density_fn, timeout=560, trace=trace,
        **defaults,
    )
    if TRACE_PATH is not None and result.trace is not None:
        result.trace.write_jsonl(TRACE_PATH, append=True)
    return result


def modeled_eval_seconds(result, machine=KRAKEN) -> tuple[float, float]:
    """(max, avg) modelled evaluation seconds over ranks."""
    per_rank = []
    for prof in result.profiles:
        t = 0.0
        for ph in EVAL_PHASES:
            ev = prof.events.get(ph)
            if ev is not None:
                t += machine.compute_seconds(ev.flops) + ev.comm_seconds
        per_rank.append(t)
    return max(per_rank), sum(per_rank) / len(per_rank)


def modeled_setup_seconds(result, machine=KRAKEN) -> tuple[float, float]:
    """(max, avg) modelled setup (tree+LET+lists+balance) seconds."""
    per_rank = []
    for prof in result.profiles:
        t = 0.0
        for ph in ("tree", "let", "lists", "balance"):
            ev = prof.events.get(ph)
            if ev is not None:
                t += machine.compute_seconds(ev.flops) + ev.comm_seconds
        per_rank.append(t)
    return max(per_rank), sum(per_rank) / len(per_rank)


def print_series(title: str, headers: list[str], rows: list[list]) -> None:
    from repro.perf.report import format_table

    print()
    print(format_table(headers, rows, title=title))
