"""Repeated evaluation on a fixed tree: setup/apply amortisation.

The paper's driving applications (vortex-flow time stepping, iterative
boundary-integral solvers) apply the FMM many times per tree.  This bench
measures what the plan-compiled engine (:mod:`repro.core.plan`) buys in
that regime: the first call pays plan compilation on top of the apply,
every later call runs the precompiled pure-array schedules with cached
leaf kernel matrices.

Reported wall times (real seconds, not the modelled machine):

* ``legacy_apply_s``   — median per-call time of the per-call path
* ``plan_compile_s``   — one-time plan compilation
* ``plan_first_s``     — compile + first apply (what call #1 costs)
* ``plan_apply_s``     — median steady-state apply with the plan
* ``speedup``          — legacy_apply_s / plan_apply_s

Results are written to ``BENCH_repeat_eval.json`` at the repo root.  Run
standalone for the paper-scale numbers (N=20k, order 6)::

    PYTHONPATH=src python benchmarks/bench_repeat_eval.py

or via pytest at smoke scale (used by CI's perf-smoke step)::

    pytest benchmarks/bench_repeat_eval.py --benchmark-only -s
"""

import argparse
import json
import statistics
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_repeat_eval.json"


def run_bench(
    n: int = 20_000,
    order: int = 6,
    q: int = 50,
    kernel: str = "laplace",
    repeats: int = 5,
    seed: int = 1234,
) -> dict:
    from repro.core import Fmm
    from repro.datasets import uniform_cube

    points = uniform_cube(n, seed=seed)
    rng = np.random.default_rng(seed)
    fmm = Fmm(kernel, order=order, max_points_per_box=q)
    ks = fmm.kernel.source_dim
    dens = rng.standard_normal(n * ks)
    plan = fmm.plan(points)

    def legacy():
        return fmm.evaluate(points, dens, plan=plan, use_plan=False)

    def timed(fn):
        t0 = time.perf_counter()
        out = fn()
        return time.perf_counter() - t0, out

    # Legacy per-call path (warm operator caches first so both sides
    # measure steady-state numerics, not one-time operator setup).
    legacy()
    legacy_times = [timed(legacy)[0] for _ in range(max(3, repeats // 2))]
    ref = legacy()

    t_compile, ep = timed(lambda: fmm.compile_eval_plan(plan))
    t_first, out = timed(lambda: fmm.evaluate(points, dens, plan=plan, eval_plan=ep))
    assert np.array_equal(ref, out), "plan apply must be bit-identical"
    plan_times = [
        timed(lambda: fmm.evaluate(points, dens, plan=plan, eval_plan=ep))[0]
        for _ in range(repeats)
    ]

    legacy_s = statistics.median(legacy_times)
    plan_s = statistics.median(plan_times)
    return {
        "n": n,
        "order": order,
        "q": q,
        "kernel": kernel,
        "repeats": repeats,
        "legacy_apply_s": legacy_s,
        "plan_compile_s": t_compile,
        "plan_first_s": t_compile + t_first,
        "plan_apply_s": plan_s,
        "speedup": legacy_s / plan_s,
        "plan_matrix_mb": ep.matrix_bytes() / 2**20,
        "bit_identical": True,
    }


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2) + "\n")


def _print(result: dict) -> None:
    print(
        f"N={result['n']} order={result['order']} q={result['q']} "
        f"{result['kernel']}:"
    )
    print(f"  legacy apply      {result['legacy_apply_s'] * 1e3:9.1f} ms")
    print(f"  plan compile      {result['plan_compile_s'] * 1e3:9.1f} ms (once)")
    print(f"  plan first call   {result['plan_first_s'] * 1e3:9.1f} ms")
    print(f"  plan apply        {result['plan_apply_s'] * 1e3:9.1f} ms (steady)")
    print(f"  amortised speedup {result['speedup']:9.2f}x")
    print(f"  cached matrices   {result['plan_matrix_mb']:9.1f} MB")


def test_repeat_eval(benchmark):
    """Smoke-scale amortisation check (CI's perf-smoke gate).

    Asserts the amortised plan apply is no slower than the legacy
    per-call path (1.1x tolerance against timer noise at tiny N) and
    that the result stayed bit-identical.
    """
    result = benchmark.pedantic(
        lambda: run_bench(n=4_000, order=4, q=40, repeats=3),
        rounds=1,
        iterations=1,
    )
    _print(result)
    write_result(result)
    assert result["bit_identical"]
    assert result["plan_apply_s"] <= 1.1 * result["legacy_apply_s"], (
        f"amortised plan apply {result['plan_apply_s']:.4f}s slower than "
        f"legacy single-shot {result['legacy_apply_s']:.4f}s"
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--n", type=int, default=20_000)
    ap.add_argument("--order", type=int, default=6)
    ap.add_argument("--q", type=int, default=50, help="max points per box")
    ap.add_argument("--kernel", default="laplace")
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--seed", type=int, default=1234)
    ap.add_argument("--assert-speedup", type=float, default=None,
                    metavar="X", help="fail unless speedup >= X")
    args = ap.parse_args()
    result = run_bench(
        n=args.n, order=args.order, q=args.q, kernel=args.kernel,
        repeats=args.repeats, seed=args.seed,
    )
    _print(result)
    write_result(result)
    print(f"wrote {RESULT_PATH}")
    if args.assert_speedup is not None and result["speedup"] < args.assert_speedup:
        print(f"FAIL: speedup {result['speedup']:.2f}x < {args.assert_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
