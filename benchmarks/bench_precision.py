"""Precision-parameterised warm-plan applies: fp64 vs fp32 vs auto.

The plan-compiled engine (:mod:`repro.core.plan`) carries precision as a
compile-time axis: an fp32 plan stores float32 kernel matrices, complex64
FFT kernel transforms and float32 gather scratch, while every
accumulation (U2U/D2D operator chains, check-potential reductions,
multi-RHS column sums) stays float64.  This bench measures what that
buys on the paper's repeated-apply workload:

* ``apply_s``       — median steady-state warm-plan apply per precision
* ``phase_s``       — per-phase wall seconds (median over repeats)
* ``rel_err``       — relative l2 error vs direct summation on a sample
* ``plan_bytes``    — actual bytes held by the compiled plan
* ``auto``          — what the calibration probe picked, and whether the
                      error target was met end-to-end

Results are written to ``BENCH_precision.json`` at the repo root.  Run
standalone for the paper-scale numbers (N=20k, order 6)::

    PYTHONPATH=src python benchmarks/bench_precision.py

or via pytest at smoke scale (used by CI's precision-smoke step)::

    pytest benchmarks/bench_precision.py --benchmark-only -s
"""

import argparse
import json
import statistics
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_precision.json"

#: Evaluation phases reported per precision (setup phases excluded: the
#: bench measures warm applies).
PHASES = ["S2U", "U2U", "VLI", "XLI", "D2D", "WLI", "D2T", "ULI"]


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def run_bench(
    n: int = 20_000,
    order: int = 6,
    q: int = 50,
    kernel: str = "laplace",
    repeats: int = 5,
    seed: int = 1234,
    check: int = 2_000,
    rtol: float = 1e-4,
) -> dict:
    from repro.core import Fmm
    from repro.datasets import uniform_cube
    from repro.kernels import direct_sum, get_kernel
    from repro.util.timer import PhaseProfile

    points = uniform_cube(n, seed=seed)
    rng = np.random.default_rng(seed)
    fmm = Fmm(kernel, order=order, max_points_per_box=q)
    ks = fmm.kernel.source_dim
    kt = fmm.kernel.target_dim
    dens = rng.standard_normal(n * ks)
    plan = fmm.plan(points)

    sample = rng.choice(n, min(n, check), replace=False)
    ref = direct_sum(get_kernel(kernel), points[sample], points, dens)

    def rel_err(pot):
        got = pot.reshape(-1, kt)[sample].reshape(-1)
        return float(np.linalg.norm(got - ref) / np.linalg.norm(ref))

    result = {
        "n": n, "order": order, "q": q, "kernel": kernel,
        "repeats": repeats, "rtol": rtol, "check_targets": int(len(sample)),
    }

    for prec in ("fp64", "fp32"):
        t_compile, ep = _timed(
            lambda p=prec: fmm.compile_eval_plan(plan, precision=p)
        )
        pot = fmm.evaluate(points, dens, plan=plan, eval_plan=ep)  # warm-up
        times, phase_walls = [], {ph: [] for ph in PHASES}
        for _ in range(repeats):
            prof = PhaseProfile()
            t, pot = _timed(
                lambda: fmm.evaluate(
                    points, dens, plan=plan, eval_plan=ep, profile=prof
                )
            )
            times.append(t)
            for ph in PHASES:
                ev = prof.events.get(ph)
                phase_walls[ph].append(ev.wall_seconds if ev else 0.0)
        result[prec] = {
            "compile_s": t_compile,
            "apply_s": statistics.median(times),
            "phase_s": {
                ph: statistics.median(w) for ph, w in phase_walls.items()
            },
            "rel_err": rel_err(pot),
            "plan_bytes": ep.nbytes,
            "plan_matrix_mb": ep.matrix_bytes() / 2**20,
        }

    f64, f32 = result["fp64"], result["fp32"]
    result["fp32"]["speedup_vs_fp64"] = f64["apply_s"] / f32["apply_s"]
    result["fp32"]["phase_speedup"] = {
        ph: (f64["phase_s"][ph] / f32["phase_s"][ph]
             if f32["phase_s"][ph] > 0 else None)
        for ph in PHASES
    }
    result["fp32"]["bytes_ratio"] = f32["plan_bytes"] / f64["plan_bytes"]
    result["fp32"]["err_ratio"] = (
        f32["rel_err"] / f64["rel_err"] if f64["rel_err"] > 0 else None
    )

    # auto: one calibration probe picks the cheapest qualifying precision
    fmm_auto = Fmm(
        kernel, order=order, max_points_per_box=q,
        precision="auto", precision_rtol=rtol,
    )
    t_probe, ep_auto = _timed(lambda: fmm_auto.compile_eval_plan(plan))
    pot = fmm_auto.evaluate(points, dens, plan=plan, eval_plan=ep_auto)
    t_auto = statistics.median(
        _timed(
            lambda: fmm_auto.evaluate(
                points, dens, plan=plan, eval_plan=ep_auto
            )
        )[0]
        for _ in range(repeats)
    )
    probe = fmm_auto.evaluator._auto_result
    auto_err = rel_err(pot)
    result["auto"] = {
        "choice": ep_auto.precision,
        "probe_and_compile_s": t_probe,
        "apply_s": t_auto,
        "rel_err": auto_err,
        "met_target": bool(auto_err <= rtol),
        "probe_errors": probe.errors if probe is not None else None,
        "probe_met": probe.met if probe is not None else None,
    }
    return result


def write_result(result: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(result, indent=2) + "\n")


def _print(result: dict) -> None:
    f64, f32, auto = result["fp64"], result["fp32"], result["auto"]
    print(
        f"N={result['n']} order={result['order']} q={result['q']} "
        f"{result['kernel']} (rtol {result['rtol']:.0e}):"
    )
    print(f"  fp64 apply  {f64['apply_s'] * 1e3:9.1f} ms  "
          f"err {f64['rel_err']:.2e}  plan {f64['plan_bytes'] / 2**20:7.1f} MiB")
    print(f"  fp32 apply  {f32['apply_s'] * 1e3:9.1f} ms  "
          f"err {f32['rel_err']:.2e}  plan {f32['plan_bytes'] / 2**20:7.1f} MiB")
    print(f"  fp32 speedup {f32['speedup_vs_fp64']:8.2f}x  "
          f"bytes ratio {f32['bytes_ratio']:.2f}  "
          f"err ratio {f32['err_ratio']:.1f}")
    for ph in PHASES:
        s = f32["phase_speedup"][ph]
        if s is not None and f64["phase_s"][ph] > 1e-4:
            print(f"    {ph:4s} {f64['phase_s'][ph] * 1e3:8.1f} -> "
                  f"{f32['phase_s'][ph] * 1e3:8.1f} ms  ({s:.2f}x)")
    print(f"  auto picked {auto['choice']} "
          f"(probe+compile {auto['probe_and_compile_s'] * 1e3:.0f} ms), "
          f"apply {auto['apply_s'] * 1e3:.1f} ms, err {auto['rel_err']:.2e}, "
          f"target {'met' if auto['met_target'] else 'MISSED'}")


def test_precision(benchmark):
    """Smoke-scale precision check (CI's precision-smoke gate).

    Asserts the fp32 warm apply is no slower than fp64 (1.1x tolerance
    against timer noise at tiny N), the fp32 error stays within the
    documented factor of fp64 (10x, or inside the float32 accuracy
    floor), the fp32 plan is materially smaller, and the auto pick meets
    its error target end-to-end.
    """
    result = benchmark.pedantic(
        lambda: run_bench(n=3_000, order=4, q=40, repeats=3, rtol=1e-3),
        rounds=1,
        iterations=1,
    )
    _print(result)
    write_result(result)
    f64, f32, auto = result["fp64"], result["fp32"], result["auto"]
    assert f32["apply_s"] <= 1.1 * f64["apply_s"], (
        f"fp32 apply {f32['apply_s']:.4f}s slower than fp64 "
        f"{f64['apply_s']:.4f}s"
    )
    assert f32["rel_err"] <= max(10.0 * f64["rel_err"], 1e-4), (
        f"fp32 err {f32['rel_err']:.2e} vs fp64 {f64['rel_err']:.2e}"
    )
    assert f32["bytes_ratio"] < 0.75
    assert auto["met_target"], (
        f"auto picked {auto['choice']} but err {auto['rel_err']:.2e} "
        f"exceeds rtol {result['rtol']:.0e}"
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--n", type=int, default=20_000)
    ap.add_argument("--order", type=int, default=6)
    ap.add_argument("--q", type=int, default=50, help="max points per box")
    ap.add_argument("--kernel", default="laplace")
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--seed", type=int, default=1234)
    ap.add_argument("--check", type=int, default=2_000,
                    help="direct-sum verification targets")
    ap.add_argument("--rtol", type=float, default=1e-4,
                    help="auto-precision error target")
    ap.add_argument("--assert-speedup", type=float, default=None,
                    metavar="X", help="fail unless fp32 speedup >= X")
    args = ap.parse_args()
    result = run_bench(
        n=args.n, order=args.order, q=args.q, kernel=args.kernel,
        repeats=args.repeats, seed=args.seed, check=args.check,
        rtol=args.rtol,
    )
    _print(result)
    write_result(result)
    print(f"wrote {RESULT_PATH}")
    if args.assert_speedup is not None:
        sp = result["fp32"]["speedup_vs_fp64"]
        if sp < args.assert_speedup:
            print(f"FAIL: fp32 speedup {sp:.2f}x < {args.assert_speedup}x")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
