"""Dynamic geometry: incremental plan patching vs from-scratch recompile.

Moving-source workloads (sedimentation, N-body dynamics) change only a
small, spatially compact subset of points per step.  The incremental
geometry path — Morton delta-sort (:mod:`repro.sort.delta`), dirty-
subtree rebuild (:mod:`repro.octree.diff`), localized list rebuild and
:func:`repro.core.plan.patch_plan` — recompiles only the plan sections
whose inputs changed and is required to stay *bit-identical* to a fresh
``compile_plan``.  This bench drives ``python -m repro evaluate
--steps K`` in-process: each step moves a localized blob of sources,
times patch vs recompile, and bit-compares the two evaluations.

Results land in ``BENCH_dynamic_geometry.json`` (flat schema written by
the CLI; see ``_cmd_evaluate_dynamic`` in :mod:`repro.__main__`).  Run
standalone for the paper-scale numbers (acceptance gate is >= 5x at
N=20k, order 6, 5% motion on the adaptive plummer cluster)::

    PYTHONPATH=src python benchmarks/bench_dynamic_geometry.py --assert-speedup 5

or via pytest at smoke scale (CI's dynamic-geometry-smoke job)::

    pytest benchmarks/bench_dynamic_geometry.py --benchmark-only -s
"""

import argparse
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_dynamic_geometry.json"


def run_bench(
    n: int = 20_000,
    order: int = 6,
    q: int = 64,
    kernel: str = "laplace",
    distribution: str = "plummer",
    steps: int = 5,
    perturb: float = 0.01,
    moved_frac: float = 0.05,
    p: int = 0,
    seed: int = 1234,
    out: Path = RESULT_PATH,
    gate: bool = False,
) -> dict:
    """Run the CLI dynamic-geometry bench in-process; return its JSON.

    The default distribution is the adaptive ``plummer`` cluster: deep
    nonuniform trees are the regime the paper's adaptive pipeline (and
    this patching path) exists for, and a compact 5% blob there touches
    far fewer near-capacity leaves than on a uniform cloud.
    """
    from repro.__main__ import main

    argv = [
        "evaluate", "--kernel", kernel, "--n", str(n),
        "--order", str(order), "--q", str(q), "--seed", str(seed),
        "--distribution", distribution,
        "--steps", str(steps), "--perturb", str(perturb),
        "--moved-frac", str(moved_frac), "--p", str(p),
        "--out", str(out),
    ]
    if gate:
        argv.append("--gate")
    rc = main(argv)
    result = json.loads(Path(out).read_text())
    result["gate_rc"] = rc
    return result


def _print(result: dict) -> None:
    cfg = result["config"]
    print(
        f"N={cfg['n']} order={cfg['order']} q={cfg['q']} {cfg['kernel']} "
        f"steps={cfg['steps']} moved={cfg['moved_frac']:.0%}:"
    )
    print(f"  initial compile        {result['initial_compile_s'] * 1e3:9.1f} ms")
    print(f"  median patch           {result['median_patch_s'] * 1e3:9.1f} ms")
    print(f"  median recompile       {result['median_recompile_s'] * 1e3:9.1f} ms")
    print(f"  median speedup         {result['median_speedup']:9.2f}x")
    print(f"  bit-identical          {result['bit_identical']}")
    if result.get("dist_bit_identical") is not None:
        print(f"  sharded bit-identical  {result['dist_bit_identical']}")


def test_dynamic_geometry_smoke(benchmark, tmp_path):
    """Smoke-scale patching check (CI's dynamic-geometry-smoke gate).

    Asserts every step's patched plan evaluates bit-identically to the
    from-scratch rebuild and that patching beats recompiling even at
    tiny N (0.9x tolerance against timer noise; the >= 5x acceptance
    gate runs at paper scale via ``--assert-speedup``).
    """
    result = benchmark.pedantic(
        lambda: run_bench(
            n=4_000, order=4, q=64, steps=3, perturb=0.005,
            moved_frac=0.05, distribution="plummer",
            out=tmp_path / "bench.json",
        ),
        rounds=1,
        iterations=1,
    )
    _print(result)
    assert result["bit_identical"], "patched plan diverged from recompile"
    assert all(s["kmat_slots_reused"] > 0 for s in result["steps"]), (
        "no kernel-matrix slots reused — patching degenerated to recompile"
    )
    assert result["median_patch_s"] < 0.9 * result["median_recompile_s"], (
        f"patch {result['median_patch_s']:.3f}s not faster than recompile "
        f"{result['median_recompile_s']:.3f}s"
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--n", type=int, default=20_000)
    ap.add_argument("--order", type=int, default=6)
    ap.add_argument("--q", type=int, default=64, help="max points per box")
    ap.add_argument("--kernel", default="laplace")
    ap.add_argument("--distribution", default="plummer")
    ap.add_argument("--steps", type=int, default=5)
    ap.add_argument("--perturb", type=float, default=0.01)
    ap.add_argument("--moved-frac", type=float, default=0.05)
    ap.add_argument("--p", type=int, default=0,
                    help="also verify a p-rank sharded update_geometry")
    ap.add_argument("--seed", type=int, default=1234)
    ap.add_argument("--assert-speedup", type=float, default=None,
                    metavar="X", help="fail unless median speedup >= X")
    args = ap.parse_args()
    result = run_bench(
        n=args.n, order=args.order, q=args.q, kernel=args.kernel,
        distribution=args.distribution, steps=args.steps,
        perturb=args.perturb, moved_frac=args.moved_frac,
        p=args.p, seed=args.seed,
    )
    _print(result)
    print(f"wrote {RESULT_PATH}")
    if not result["bit_identical"]:
        print("FAIL: patched plan is not bit-identical to recompile")
        return 1
    if (args.assert_speedup is not None
            and result["median_speedup"] < args.assert_speedup):
        print(f"FAIL: speedup {result['median_speedup']:.2f}x "
              f"< {args.assert_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
