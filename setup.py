"""Legacy setup shim: this offline environment lacks the ``wheel`` package,
so ``pip install -e .`` must go through the setuptools develop path
(``--no-use-pep517 --no-build-isolation``)."""

from setuptools import setup

setup()
