"""Precision axis of the plan-compiled engine.

Covers the contract the precision feature is sold on:

* **fp64 is bit-identical** to the pre-precision engine: plan applies,
  multi-RHS blocks, distributed runs and checkpoint resumes all produce
  exactly the bytes the fp64 path always produced.
* **fp32 is a bounded accuracy trade**: across kernels and orders the
  fp32 error stays within a documented factor of fp64 (10x, or inside
  the float32 accuracy floor when truncation error is already below it),
  and is deterministic run-to-run.
* **auto never violates its target**: the calibration probe may pick
  either precision, but the end-to-end error always meets ``rtol``.
* **misuse fails typed**: fp32 without a plan, conflicting overrides,
  and disallowed serve-side precisions raise
  :class:`~repro.core.plan.PrecisionError`.
"""

import numpy as np
import pytest

from repro.core.autotune import autotune_precision
from repro.core.fmm import Fmm
from repro.core.plan import PrecisionError
from repro.core.evaluator import FmmEvaluator
from repro.datasets import ellipsoid_surface, uniform_cube
from repro.kernels import direct_sum, get_kernel
from repro.util.timer import PhaseProfile

#: fp32 may lose up to this factor over fp64 before we call it broken.
ERR_FACTOR = 10.0
#: Relative-error floor of float32 arithmetic on these sums; when the
#: fp64 error is already below it (high orders), fp32 lands here.
F32_FLOOR = 5e-5


def _dens_for(kernel, n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n * kernel.source_dim)


def _rel_err(kernel, points, dens, pot):
    ref = direct_sum(kernel, points, points, dens)
    return np.linalg.norm(pot - ref) / np.linalg.norm(ref)


class TestAccuracyLadder:
    """fp32 error within a documented factor of fp64, per kernel/order."""

    @pytest.mark.parametrize("kernel_name,n", [
        ("laplace", 900), ("stokes", 500), ("yukawa", 900),
    ])
    @pytest.mark.parametrize("order", [4, 6, 8])
    def test_fp32_within_factor_of_fp64(self, kernel_name, n, order):
        kernel = get_kernel(kernel_name)
        points = uniform_cube(n, seed=order)
        dens = _dens_for(kernel, n, seed=7)
        fmm = Fmm(kernel_name, order=order, max_points_per_box=40)
        plan = fmm.plan(points)
        errs = {}
        for prec in ("fp64", "fp32"):
            ep = fmm.compile_eval_plan(plan, precision=prec)
            pot = fmm.evaluate(points, dens, plan=plan, eval_plan=ep)
            errs[prec] = _rel_err(kernel, points, dens, pot)
        assert errs["fp32"] <= max(ERR_FACTOR * errs["fp64"], F32_FLOOR), (
            f"{kernel_name} order {order}: fp32 err {errs['fp32']:.2e} vs "
            f"fp64 {errs['fp64']:.2e}"
        )

    def test_auto_meets_target(self):
        # generous target: either pick qualifies, auto must still meet it
        kernel = get_kernel("laplace")
        n = 1_200
        points = ellipsoid_surface(n, seed=3)
        dens = _dens_for(kernel, n, seed=3)
        rtol = 1e-3
        fmm = Fmm("laplace", order=6, max_points_per_box=40,
                  precision="auto", precision_rtol=rtol)
        plan = fmm.plan(points)
        ep = fmm.compile_eval_plan(plan)
        assert ep.precision in ("fp64", "fp32")
        pot = fmm.evaluate(points, dens, plan=plan, eval_plan=ep)
        assert _rel_err(kernel, points, dens, pot) <= rtol

    def test_auto_unsatisfiable_target_falls_back_to_fp64(self):
        points = uniform_cube(1_000, seed=4)
        res = autotune_precision(points, kernel="laplace", order=4,
                                 rtol=1e-14, sample=800)
        assert res.best == "fp64"
        assert not res.met
        assert set(res.errors) == {"fp64", "fp32"}

    def test_probe_ranks_both_precisions(self):
        points = uniform_cube(1_000, seed=5)
        res = autotune_precision(points, kernel="laplace", order=4,
                                 rtol=1e-3, sample=800)
        assert res.met
        ranked = res.ranked()
        assert {p for p, _ in ranked} == {"fp64", "fp32"}


class TestFp64BitIdentity:
    """precision='fp64' must be byte-for-byte the pre-precision engine."""

    def test_plan_matches_legacy_path(self):
        n = 1_500
        points = uniform_cube(n, seed=11)
        fmm = Fmm("laplace", order=4, max_points_per_box=40)
        dens = _dens_for(fmm.kernel, n, seed=11)
        plan = fmm.plan(points)
        legacy = fmm.evaluate(points, dens, plan=plan, use_plan=False)
        ep = fmm.compile_eval_plan(plan, precision="fp64")
        assert ep.precision == "fp64"
        planned = fmm.evaluate(points, dens, plan=plan, eval_plan=ep)
        np.testing.assert_array_equal(planned, legacy)

    def test_multi_rhs_matches_columns(self):
        n = 1_000
        points = uniform_cube(n, seed=12)
        fmm = Fmm("laplace", order=4, max_points_per_box=40)
        rng = np.random.default_rng(12)
        block = rng.standard_normal((n, 3))
        plan = fmm.plan(points)
        ep = fmm.compile_eval_plan(plan, precision="fp64")
        pot = fmm.evaluate(points, block, plan=plan, eval_plan=ep)
        for j in range(block.shape[1]):
            solo = fmm.evaluate(
                points, np.ascontiguousarray(block[:, j]),
                plan=plan, eval_plan=ep,
            )
            np.testing.assert_array_equal(pot[:, j], solo)

    @pytest.mark.parametrize("p", [1, 4])
    def test_distributed_fp64_identical_to_default(self, p):
        from repro.dist.driver import distributed_fmm_rank
        from repro.mpi import run_spmd

        pts = uniform_cube(1_200, seed=13)

        def densfn(q):
            return np.sin(17 * q[:, 0]) + q[:, 2]

        def fn(comm, **kw):
            own, pot, _ = distributed_fmm_rank(
                comm, pts, densfn, kernel="laplace", order=4,
                max_points_per_box=40, **kw,
            )
            return pot

        base = run_spmd(p, fn, timeout=300)
        explicit = run_spmd(p, fn, timeout=300, precision="fp64")
        for r in range(p):
            np.testing.assert_array_equal(
                explicit.values[r], base.values[r]
            )

    def test_checkpoint_resume_bit_identical(self):
        from repro.dist.driver import DistributedFmm
        from repro.mpi import run_spmd

        pts = ellipsoid_surface(1_000, seed=14)

        def fn(comm, precision):
            fmm = DistributedFmm(
                order=4, max_points_per_box=40, precision=precision
            )
            fmm.setup(comm, pts[comm.rank :: comm.size])
            own = fmm.owned_points
            dens = np.sin(9 * own[:, 0]) + own[:, 1]
            first = fmm.evaluate(dens)
            resumed = fmm.evaluate(dens, resume=True)
            return first, resumed

        for prec in ("fp64", "fp32"):
            res = run_spmd(4, fn, prec, timeout=300)
            for first, resumed in res.values:
                np.testing.assert_array_equal(first, resumed)


class TestFp32Behaviour:
    def test_fp32_deterministic(self):
        n = 1_200
        points = uniform_cube(n, seed=21)
        fmm = Fmm("laplace", order=4, max_points_per_box=40)
        dens = _dens_for(fmm.kernel, n, seed=21)
        plan = fmm.plan(points)
        ep = fmm.compile_eval_plan(plan, precision="fp32")
        a = fmm.evaluate(points, dens, plan=plan, eval_plan=ep)
        b = fmm.evaluate(points, dens, plan=plan, eval_plan=ep)
        np.testing.assert_array_equal(a, b)

    def test_fp32_plan_smaller(self):
        points = uniform_cube(1_500, seed=22)
        fmm = Fmm("laplace", order=6, max_points_per_box=40)
        plan = fmm.plan(points)
        ep64 = fmm.compile_eval_plan(plan, precision="fp64")
        ep32 = fmm.compile_eval_plan(plan, precision="fp32")
        assert ep32.matrix_bytes() * 2 == ep64.matrix_bytes()
        assert ep32.nbytes < 0.75 * ep64.nbytes

    def test_fp32_compiles_on_first_call(self):
        # fp64 compiles lazily on the second same-setup call; fp32 cannot
        # run plan-free, so the evaluator compiles eagerly on the first
        n = 800
        points = uniform_cube(n, seed=23)
        fmm = Fmm("laplace", order=4, max_points_per_box=40,
                  precision="fp32")
        dens = _dens_for(fmm.kernel, n, seed=23)
        prof = PhaseProfile()
        pot = fmm.evaluate(points, dens, profile=prof)
        assert "setup:plan" in prof.events
        assert prof.precision == "fp32"
        assert np.isfinite(pot).all()

    def test_gpu_fp32_uses_plan_buffers(self):
        from repro.core.lists import build_lists
        from repro.core.tree import build_tree
        from repro.gpu.accel import GpuFmmEvaluator

        n = 1_000
        points = uniform_cube(n, seed=24)
        kernel = get_kernel("laplace")
        ev = GpuFmmEvaluator(kernel, 4, precision="fp32")
        tree = build_tree(points, 40)
        lists = build_lists(tree)
        dens = _dens_for(kernel, n, seed=24)[tree.order]
        plan = ev.compile_plan(tree, lists)
        assert plan.precision == "fp32"
        a = ev.evaluate(tree, lists, dens, plan=plan)
        b = ev.evaluate(tree, lists, dens, plan=plan)
        np.testing.assert_array_equal(a, b)
        # no side cache of narrowed transforms: the plan's own complex64
        # buffers are consumed directly
        assert "vli_that32" not in plan.gpu


class TestTypedErrors:
    def test_invalid_precision_rejected(self):
        with pytest.raises(PrecisionError, match="precision"):
            Fmm("laplace", order=4, precision="fp16")
        with pytest.raises(PrecisionError, match="precision"):
            FmmEvaluator(get_kernel("laplace"), 4, precision="double")

    def test_fp32_is_plan_only(self):
        n = 600
        points = uniform_cube(n, seed=31)
        fmm = Fmm("laplace", order=4, max_points_per_box=40)
        dens = _dens_for(fmm.kernel, n, seed=31)
        with pytest.raises(PrecisionError, match="plan"):
            fmm.evaluate(points, dens, use_plan=False, precision="fp32")

    def test_conflicting_plan_override_rejected(self):
        n = 600
        points = uniform_cube(n, seed=32)
        fmm = Fmm("laplace", order=4, max_points_per_box=40)
        dens = _dens_for(fmm.kernel, n, seed=32)
        plan = fmm.plan(points)
        ep64 = fmm.compile_eval_plan(plan, precision="fp64")
        with pytest.raises(PrecisionError, match="fp32"):
            fmm.evaluate(points, dens, plan=plan, eval_plan=ep64,
                         precision="fp32")

    def test_distributed_fp32_requires_plan(self):
        from repro.dist.driver import DistributedFmm

        with pytest.raises(PrecisionError, match="use_plan"):
            DistributedFmm(order=4, use_plan=False, precision="fp32")


class TestServePrecision:
    def _engine_and_model(self, **reg_kwargs):
        from repro.serve import ServeEngine

        n = 800
        points = uniform_cube(n, seed=41)
        fmm = Fmm("laplace", order=4, max_points_per_box=40)
        eng = ServeEngine(n_workers=1, max_batch=4, max_wait_ms=5.0)
        eng.register("m", fmm, points, **reg_kwargs)
        return eng, n

    def test_fp32_model_serves_and_caches_separately(self):
        eng, n = self._engine_and_model(precision="fp32")
        rng = np.random.default_rng(41)
        d = rng.standard_normal(n)
        with eng:
            p32 = eng.evaluate("m", d, timeout_s=60.0)
            p64 = eng.evaluate("m", d, timeout_s=60.0, precision="fp64")
        assert not np.array_equal(p32, p64)  # genuinely different plans
        stats = eng.plan_stats()["m"]
        assert stats["precision"] == "fp32"
        assert set(stats["plan_bytes"]) == {"fp64", "fp32"}
        assert stats["plan_bytes"]["fp32"] < stats["plan_bytes"]["fp64"]

    def test_disallowed_precision_rejected_typed(self):
        eng, n = self._engine_and_model(
            precision="fp32", allowed={"fp32"}
        )
        with pytest.raises(PrecisionError, match="allow"):
            eng.submit("m", np.zeros(n), precision="fp64")

    def test_default_outside_allowed_rejected(self):
        from repro.serve import ServeEngine

        points = uniform_cube(500, seed=42)
        eng = ServeEngine(n_workers=1)
        with pytest.raises(PrecisionError, match="allowed"):
            eng.register("m", Fmm("laplace", order=4), points,
                         precision="fp64", allowed={"fp32"})

    def test_batches_never_mix_precisions(self):
        from repro.serve.scheduler import FairQueue, Request

        q = FairQueue(max_depth=16)
        for prec in ("fp64", "fp64", "fp32", "fp32"):
            q.push(Request("m", np.zeros(1), precision=prec))
        head = q.pop()
        assert head.precision == "fp64"
        taken = q.take_matching("m", 8, precision=head.precision)
        # Only the head run of matching requests is taken: the second
        # fp64 joins the batch, the fp32 pair behind it stays queued
        # (FIFO order within a tenant is never reordered).
        assert [r.precision for r in taken] == ["fp64"]
        assert q.depth == 2
        assert q.take_matching("m", 8, precision="fp64") == []


class TestChaosFp32:
    def test_fp32_survives_retries_bit_identically(self):
        from repro.dist.driver import DistributedFmm
        from repro.mpi import run_spmd_resilient
        from repro.mpi.faults import Fault, FaultPlan, RetryPolicy

        pts = ellipsoid_surface(900, seed=51)

        def body(comm, state):
            if "fmm" not in state:
                fmm = DistributedFmm(
                    order=4, max_points_per_box=40, precision="fp32"
                )
                fmm.setup(comm, pts[comm.rank :: comm.size])
                state["fmm"] = fmm
                own = fmm.owned_points
                state["dens"] = np.sin(11 * own[:, 0]) + own[:, 2]
            else:
                fmm = state["fmm"]
                fmm.rebind(comm)
            return fmm.evaluate(state["dens"], resume=True)

        def run(faults=None):
            return run_spmd_resilient(
                4, body, policy=RetryPolicy(max_attempts=3),
                faults=faults, rank_state=True, timeout=120.0,
            )

        base = run()
        faults = FaultPlan(
            [Fault("crash", rank=1, op="phase", phase="VLI", attempts=1)],
            seed=5,
        )
        faulted = run(faults=faults)
        assert faulted.attempts > 1
        for r in range(4):
            np.testing.assert_array_equal(
                faulted.values[r], base.values[r]
            )
        again = run()
        for r in range(4):
            np.testing.assert_array_equal(again.values[r], base.values[r])


class TestTracePrecision:
    def test_spans_carry_precision(self, tmp_path):
        from repro.perf.trace import TraceRecorder

        n = 800
        points = uniform_cube(n, seed=61)
        fmm = Fmm("laplace", order=4, max_points_per_box=40,
                  precision="fp32")
        dens = _dens_for(fmm.kernel, n, seed=61)
        rec = TraceRecorder()
        prof = PhaseProfile()
        prof.bind_trace(rec, rank=0)
        plan = fmm.plan(points, profile=prof)
        fmm.evaluate(points, dens, plan=plan, profile=prof)
        phases = {ev.phase for ev in rec.span_events()}
        assert "VLI" in phases
        eval_spans = [ev for ev in rec.span_events() if ev.phase == "VLI"]
        assert all(ev.precision == "fp32" for ev in eval_spans)

        # JSONL roundtrip preserves the field; signatures match
        out = tmp_path / "trace.jsonl"
        rec.write_jsonl(str(out))
        back = TraceRecorder.read_jsonl(str(out))
        assert back.signature() == rec.signature()

    def test_old_traces_without_precision_still_load(self):
        from repro.perf.trace import TraceRecorder

        rec = TraceRecorder.from_records([
            {"kind": "span", "rank": 0, "phase": "VLI", "wall_s": 0.1,
             "flops": 10.0, "comm_messages": 0, "comm_bytes": 0.0,
             "comm_s": 0.0, "aborted": False},
        ])
        assert rec.span_events()[0].precision == "fp64"
